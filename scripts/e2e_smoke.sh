#!/usr/bin/env bash
# End-to-end smoke test of the reduction service:
#   1. start `lbr-reduce serve` in the background (journal enabled),
#   2. submit one generated instance over the Unix socket,
#   3. check the reduced pool is byte-identical to an in-process
#      `lbr-reduce reduce` of the same instance,
#   4. SIGTERM the daemon and require a clean drain + zero exit.
#
# Usage: scripts/e2e_smoke.sh  (after `dune build`; override BIN to point
# at the lbr_reduce executable if it lives elsewhere)
set -euo pipefail

BIN=${BIN:-_build/default/bin/lbr_reduce.exe}
[ -x "$BIN" ] || { echo "lbr_reduce binary not found at $BIN (run dune build)"; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/lbr.sock"

"$BIN" serve --socket "$SOCK" --jobs 2 --queue-depth 8 --journal "$WORK/journal" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; cat "$WORK/serve.log"; exit 1; }

"$BIN" submit --socket "$SOCK" --seed 1 --classes 30 --output-pool "$WORK/socket.lbrc"
"$BIN" reduce --seed 1 --classes 30 --output-pool "$WORK/inproc.lbrc" > /dev/null

cmp "$WORK/socket.lbrc" "$WORK/inproc.lbrc"
echo "OK: socket result is byte-identical to the in-process run"

test -f "$WORK/journal/job-000001/done" || { echo "journal has no done marker"; exit 1; }
echo "OK: journal recorded the job and its terminal marker"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"  # set -e: a non-zero daemon exit fails the smoke test
grep -q "drained" "$WORK/serve.log" || { echo "daemon did not report a drain"; cat "$WORK/serve.log"; exit 1; }
echo "OK: daemon drained and exited cleanly on SIGTERM"
