#!/usr/bin/env bash
# End-to-end smoke test of the reduction service:
#   1. start `lbr-reduce serve` in the background (journal enabled),
#   2. submit one generated instance over the Unix socket,
#   3. check the reduced pool is byte-identical to an in-process
#      `lbr-reduce reduce` of the same instance — run with --trace, which
#      doubles as the check that tracing never changes results,
#   4. validate the emitted Chrome trace JSON (≥1 gbr.iteration span),
#   5. SIGTERM the daemon and require a clean drain + zero exit.
#
# Usage: scripts/e2e_smoke.sh  (after `dune build`; override BIN to point
# at the lbr_reduce executable if it lives elsewhere, and TRACE_OUT to
# keep the trace file, e.g. for a CI artifact)
set -euo pipefail

BIN=${BIN:-_build/default/bin/lbr_reduce.exe}
[ -x "$BIN" ] || { echo "lbr_reduce binary not found at $BIN (run dune build)"; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/lbr.sock"

"$BIN" serve --socket "$SOCK" --jobs 2 --queue-depth 8 --journal "$WORK/journal" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; cat "$WORK/serve.log"; exit 1; }

TRACE_OUT=${TRACE_OUT:-$WORK/reduce-trace.json}

"$BIN" submit --socket "$SOCK" --seed 1 --classes 30 --output-pool "$WORK/socket.lbrc"
"$BIN" reduce --seed 1 --classes 30 --output-pool "$WORK/inproc.lbrc" \
  --trace "$TRACE_OUT" > /dev/null 2>&1

cmp "$WORK/socket.lbrc" "$WORK/inproc.lbrc"
echo "OK: socket result is byte-identical to the in-process (traced) run"

# The traced run must have produced a loadable Chrome trace with at least
# one GBR iteration span.  jq where available, grep as the fallback.
if command -v jq >/dev/null 2>&1; then
  jq -e '.traceEvents | length > 0' "$TRACE_OUT" > /dev/null \
    || { echo "trace has no events"; exit 1; }
  jq -e '[.traceEvents[] | select(.name == "gbr.iteration")] | length >= 1' \
    "$TRACE_OUT" > /dev/null || { echo "trace has no gbr.iteration span"; exit 1; }
else
  grep -q '"traceEvents"' "$TRACE_OUT" || { echo "not a trace file"; exit 1; }
  grep -q '"gbr.iteration"' "$TRACE_OUT" || { echo "trace has no gbr.iteration span"; exit 1; }
fi
echo "OK: --trace emitted valid Chrome trace JSON with gbr.iteration spans"

test -f "$WORK/journal/job-000001/done" || { echo "journal has no done marker"; exit 1; }
echo "OK: journal recorded the job and its terminal marker"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"  # set -e: a non-zero daemon exit fails the smoke test
grep -q "drained" "$WORK/serve.log" || { echo "daemon did not report a drain"; cat "$WORK/serve.log"; exit 1; }
echo "OK: daemon drained and exited cleanly on SIGTERM"
