#!/usr/bin/env bash
# End-to-end smoke test of the reduction service:
#   1. start `lbr-reduce serve` in the background (journal enabled),
#   2. submit one generated instance over the Unix socket,
#   3. check the reduced pool is byte-identical to an in-process
#      `lbr-reduce reduce` of the same instance — run with --trace, which
#      doubles as the check that tracing never changes results,
#   4. validate the emitted Chrome trace JSON (≥1 gbr.iteration span),
#   5. reduce the checked-in DIMACS and FJ examples through the one-shot
#      CLI and through the daemon; each daemon result must be
#      byte-identical to the one-shot result and strictly smaller than
#      the input,
#   6. SIGTERM the daemon and require a clean drain + zero exit,
# then of the cluster service:
#   7. start two TCP workers and a coordinator fronting them,
#   8. submit a job through the coordinator, kill -9 a worker mid-job,
#   9. check the result is byte-identical to a sequential run, that `top`
#      reports cluster health, and that the coordinator drains cleanly.
#
# Usage: scripts/e2e_smoke.sh  (after `dune build`; override BIN to point
# at the lbr_reduce executable if it lives elsewhere, TRACE_OUT to keep
# the trace file, FRONTEND_OUT to keep the reduced DIMACS/FJ outputs and
# CLUSTER_JOURNAL_OUT to keep a copy of the coordinator journal, e.g.
# for CI artifacts)
set -euo pipefail

BIN=${BIN:-_build/default/bin/lbr_reduce.exe}
[ -x "$BIN" ] || { echo "lbr_reduce binary not found at $BIN (run dune build)"; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/lbr.sock"

"$BIN" serve --socket "$SOCK" --jobs 2 --queue-depth 8 --journal "$WORK/journal" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; cat "$WORK/serve.log"; exit 1; }

TRACE_OUT=${TRACE_OUT:-$WORK/reduce-trace.json}

"$BIN" submit --socket "$SOCK" --seed 1 --classes 30 --output-pool "$WORK/socket.lbrc"
"$BIN" reduce --seed 1 --classes 30 --output-pool "$WORK/inproc.lbrc" \
  --trace "$TRACE_OUT" > /dev/null 2>&1

cmp "$WORK/socket.lbrc" "$WORK/inproc.lbrc"
echo "OK: socket result is byte-identical to the in-process (traced) run"

# The traced run must have produced a loadable Chrome trace with at least
# one GBR iteration span.  jq where available, grep as the fallback.
if command -v jq >/dev/null 2>&1; then
  jq -e '.traceEvents | length > 0' "$TRACE_OUT" > /dev/null \
    || { echo "trace has no events"; exit 1; }
  jq -e '[.traceEvents[] | select(.name == "gbr.iteration")] | length >= 1' \
    "$TRACE_OUT" > /dev/null || { echo "trace has no gbr.iteration span"; exit 1; }
else
  grep -q '"traceEvents"' "$TRACE_OUT" || { echo "not a trace file"; exit 1; }
  grep -q '"gbr.iteration"' "$TRACE_OUT" || { echo "trace has no gbr.iteration span"; exit 1; }
fi
echo "OK: --trace emitted valid Chrome trace JSON with gbr.iteration spans"

test -f "$WORK/journal/job-000001/done" || { echo "journal has no done marker"; exit 1; }
echo "OK: journal recorded the job and its terminal marker"

# ---------------------------------------------------------------------
# Non-JVM frontends: reduce the checked-in DIMACS and FJ examples both
# one-shot and through the daemon (wire v4 frontend tag); the daemon
# result must be byte-identical and strictly smaller than the input.

CNF_IN=examples/data/php.cnf
FJ_IN=examples/data/figure1.fj
[ -f "$CNF_IN" ] && [ -f "$FJ_IN" ] \
  || { echo "frontend example inputs missing ($CNF_IN, $FJ_IN)"; exit 1; }

"$BIN" reduce "$CNF_IN" --output "$WORK/php.oneshot.cnf" > /dev/null
"$BIN" submit --socket "$SOCK" "$CNF_IN" --output "$WORK/php.daemon.cnf" > /dev/null
cmp "$WORK/php.oneshot.cnf" "$WORK/php.daemon.cnf"
[ "$(wc -c < "$WORK/php.daemon.cnf")" -lt "$(wc -c < "$CNF_IN")" ] \
  || { echo "DIMACS reduction did not shrink the input"; exit 1; }
grep -q '^p cnf ' "$WORK/php.daemon.cnf" || { echo "reduced DIMACS lacks a header"; exit 1; }
echo "OK: DIMACS daemon reduction is byte-identical to the one-shot run and smaller"

"$BIN" reduce "$FJ_IN" --require "class A" --output "$WORK/figure1.oneshot.fj" > /dev/null
"$BIN" submit --socket "$SOCK" "$FJ_IN" --require "class A" \
  --output "$WORK/figure1.daemon.fj" > /dev/null
cmp "$WORK/figure1.oneshot.fj" "$WORK/figure1.daemon.fj"
[ "$(wc -c < "$WORK/figure1.daemon.fj")" -lt "$(wc -c < "$FJ_IN")" ] \
  || { echo "FJ reduction did not shrink the input"; exit 1; }
grep -q 'class A' "$WORK/figure1.daemon.fj" || { echo "reduced FJ lost the required marker"; exit 1; }
echo "OK: FJ daemon reduction is byte-identical to the one-shot run, smaller, marker kept"

# ---------------------------------------------------------------------
# Speculative predicate pipelining: the same one-shot reductions with
# --speculate --jobs 2 must be byte-identical to their sequential runs,
# on every frontend (jvm, dimacs, fj).

"$BIN" reduce --seed 1 --classes 30 --speculate --jobs 2 \
  --output-pool "$WORK/inproc.spec.lbrc" > /dev/null 2>&1
cmp "$WORK/inproc.spec.lbrc" "$WORK/inproc.lbrc"
"$BIN" reduce "$CNF_IN" --speculate --jobs 2 --output "$WORK/php.spec.cnf" > /dev/null
cmp "$WORK/php.spec.cnf" "$WORK/php.oneshot.cnf"
"$BIN" reduce "$FJ_IN" --require "class A" --speculate --jobs 2 \
  --output "$WORK/figure1.spec.fj" > /dev/null
cmp "$WORK/figure1.spec.fj" "$WORK/figure1.oneshot.fj"
echo "OK: --speculate --jobs 2 is byte-identical to sequential on jvm, dimacs and fj"

# Keep the reduced frontend outputs (e.g. as CI artifacts) when asked to.
if [ -n "${FRONTEND_OUT:-}" ]; then
  mkdir -p "$FRONTEND_OUT"
  cp "$WORK/php.daemon.cnf" "$FRONTEND_OUT/php.reduced.cnf"
  cp "$WORK/figure1.daemon.fj" "$FRONTEND_OUT/figure1.reduced.fj"
  echo "OK: reduced frontend outputs copied to $FRONTEND_OUT"
fi

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"  # set -e: a non-zero daemon exit fails the smoke test
grep -q "drained" "$WORK/serve.log" || { echo "daemon did not report a drain"; cat "$WORK/serve.log"; exit 1; }
echo "OK: daemon drained and exited cleanly on SIGTERM"

# ---------------------------------------------------------------------
# Cluster: coordinator + two TCP workers, kill -9 one worker mid-job.
# Everything runs traced: worker spans parent under the coordinator's
# per-job span (wire v5 context propagation), and the coordinator
# federates the workers' metric registries.

"$BIN" serve --socket 127.0.0.1:0 --jobs 1 --queue-depth 8 --trace "$WORK/w1-trace.json" \
  > "$WORK/w1.log" 2>&1 &
W1_PID=$!
"$BIN" serve --socket 127.0.0.1:0 --jobs 1 --queue-depth 8 --trace "$WORK/w2-trace.json" \
  > "$WORK/w2.log" 2>&1 &
W2_PID=$!

worker_addr() {  # $1: logfile — wait for the bound TCP address to be printed
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^lbr-serve: listening on \([0-9.:]*\) .*/\1/p' "$1")
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  return 1
}
W1_ADDR=$(worker_addr "$WORK/w1.log") || { echo "worker 1 never bound"; cat "$WORK/w1.log"; exit 1; }
W2_ADDR=$(worker_addr "$WORK/w2.log") || { echo "worker 2 never bound"; cat "$WORK/w2.log"; exit 1; }

COORD_SOCK="$WORK/coord.sock"
COORD_JOURNAL="$WORK/coordjournal"
"$BIN" coordinate --listen "$COORD_SOCK" --worker "$W1_ADDR" --worker "$W2_ADDR" \
  --journal "$COORD_JOURNAL" --cache "$WORK/verdicts.cache" \
  --trace "$WORK/coord-trace.json" --poll-interval 0.5 --prometheus-listen 0 \
  > "$WORK/coord.log" 2>&1 &
COORD_PID=$!

for _ in $(seq 1 100); do
  [ -S "$COORD_SOCK" ] && break
  sleep 0.1
done
[ -S "$COORD_SOCK" ] || { echo "coordinator never bound $COORD_SOCK"; cat "$WORK/coord.log"; exit 1; }

# 512 classes: the job must run for seconds, not milliseconds, so the
# kill -9 below lands while it is genuinely mid-reduction (the pre-kill
# trace dumps each cost a process spawn).
"$BIN" submit --socket "$COORD_SOCK" --seed 21 --classes 512 \
  --output-pool "$WORK/cluster.lbrc" > "$WORK/submit.log" 2>&1 &
SUBMIT_PID=$!

# Wait until the coordinator has mirrored a few of the worker's streamed
# verdicts into its journal — proof the job is mid-reduction somewhere.
VERDICTS=0
for _ in $(seq 1 500); do
  # The glob may not match yet; under pipefail the failing cat must not
  # take the whole script down with it.
  VERDICTS=$({ cat "$COORD_JOURNAL"/job-*/preds.log 2>/dev/null || true; } | wc -l)
  [ "$VERDICTS" -ge 3 ] && break
  sleep 0.01
done

# Capture both workers' span rings BEFORE the kill: the victim's spans
# survive only in this pre-kill .tdump, and the merged trace must still
# show them parented under the coordinator's job span.
"$BIN" trace-dump --socket "$W1_ADDR" -o "$WORK/w1.tdump" > /dev/null
"$BIN" trace-dump --socket "$W2_ADDR" -o "$WORK/w2.tdump" > /dev/null
echo "OK: captured pre-kill trace dumps of both workers"

# kill -9 the worker holding the job.  Which worker that is depends on a
# work-stealing race at startup, but the pre-kill trace dumps already
# tell us: only the busy worker's span ring carries ctx.parent-annotated
# job spans.  (Sniffing coordinator TCP connections no longer works: the
# metrics-federation poller dials every worker twice a second.)
W1_CTX=$(grep -ac 'ctx.parent' "$WORK/w1.tdump" || true)
W2_CTX=$(grep -ac 'ctx.parent' "$WORK/w2.tdump" || true)
if [ "$W1_CTX" -eq "$W2_CTX" ]; then
  echo "cannot tell which worker runs the job (ctx spans: w1=$W1_CTX w2=$W2_CTX)"
  exit 1
fi
if [ "$W1_CTX" -gt "$W2_CTX" ]; then
  VICTIM=$W1_PID SURVIVOR=$W2_PID SURVIVOR_ADDR=$W2_ADDR
else
  VICTIM=$W2_PID SURVIVOR=$W1_PID SURVIVOR_ADDR=$W1_ADDR
fi
kill -9 "$VICTIM"
echo "OK: killed a worker after $VERDICTS mirrored verdicts"

wait "$SUBMIT_PID"  # set -e: the cluster submission must still succeed

"$BIN" reduce --seed 21 --classes 512 --output-pool "$WORK/seq.lbrc" > /dev/null 2>&1
cmp "$WORK/cluster.lbrc" "$WORK/seq.lbrc"
echo "OK: cluster result (worker killed mid-job) is byte-identical to a sequential run"

"$BIN" top --socket "$COORD_SOCK" > "$WORK/top.out"
grep -q '^cluster:' "$WORK/top.out" || { echo "top lacks cluster health"; cat "$WORK/top.out"; exit 1; }
grep -q '^cluster cache:' "$WORK/top.out" || { echo "top lacks cluster cache stats"; cat "$WORK/top.out"; exit 1; }
echo "OK: top reports cluster worker and verdict-cache health"

test -s "$COORD_JOURNAL"/job-000001/preds.log || { echo "coordinator journal mirrored no verdicts"; exit 1; }
test -s "$WORK/verdicts.cache" || { echo "verdict cache file is empty"; exit 1; }
echo "OK: coordinator journal and verdict cache were persisted"

# ---------------------------------------------------------------------
# Distributed trace: merge the live coordinator, the live survivor and
# both pre-kill worker captures into one Chrome trace, then assert the
# cross-node parentage the whole layer exists for — worker-side spans
# carrying the coordinator job span's id as ctx.parent, on a different
# process lane, for at least two worker lanes (the victim's spans come
# from its pre-kill .tdump).
MERGED_TRACE=${MERGED_TRACE:-$WORK/cluster-trace.json}
"$BIN" trace-merge -o "$MERGED_TRACE" \
  "$COORD_SOCK" "$SURVIVOR_ADDR" "$WORK/w1.tdump" "$WORK/w2.tdump"

if command -v jq >/dev/null 2>&1; then
  jq -e '
    [.traceEvents[] | select(.name == "coordinator.job" and .args.span_id != null)] as $jobs
    | [.traceEvents[] | . as $e
       | select((.args["ctx.parent"] // "") != "")
       | select(any($jobs[]; .args.span_id == $e.args["ctx.parent"] and .pid != $e.pid))
       | .pid]
    | unique | length >= 2' "$MERGED_TRACE" > /dev/null \
    || { echo "merged trace lacks cross-node parented spans on two worker lanes"; exit 1; }
else
  grep -q '"coordinator.job"' "$MERGED_TRACE" || { echo "merged trace has no coordinator.job span"; exit 1; }
  grep -q '"ctx.parent"' "$MERGED_TRACE" || { echo "merged trace has no context-parented spans"; exit 1; }
fi
echo "OK: merged trace parents worker spans under the coordinator job span on both lanes"

# ---------------------------------------------------------------------
# Metrics federation: `top --metrics` serves the cluster-merged view
# (local registry + per-worker dumps + an exact-merged {worker="cluster"}
# series), and the --prometheus-listen HTTP endpoint serves the same text.
FEDERATED_METRICS=${FEDERATED_METRICS:-$WORK/federated-metrics.prom}
"$BIN" top --socket "$COORD_SOCK" --metrics > "$WORK/top-metrics.out"
grep -q 'worker="cluster"' "$WORK/top-metrics.out" \
  || { echo "top --metrics lacks the merged cluster series"; cat "$WORK/top-metrics.out"; exit 1; }
grep -q 'speculation:' "$WORK/top-metrics.out" || true  # spec line only when counters exist
cp "$WORK/top-metrics.out" "$FEDERATED_METRICS"

PROM_PORT=$(sed -n 's#.*federated metrics on http://127.0.0.1:\([0-9]*\)/metrics.*#\1#p' "$WORK/coord.log")
if [ -n "$PROM_PORT" ] && command -v curl >/dev/null 2>&1; then
  curl -sf "http://127.0.0.1:$PROM_PORT/metrics" > "$FEDERATED_METRICS"
  grep -q 'worker="cluster"' "$FEDERATED_METRICS" \
    || { echo "prometheus endpoint lacks the merged cluster series"; exit 1; }
  echo "OK: --prometheus-listen endpoint serves the federated registry"
else
  echo "OK: federated metrics taken via top --metrics (no curl or no endpoint port)"
fi
echo "OK: coordinator federates worker metric registries"

kill -TERM "$COORD_PID"
wait "$COORD_PID"
grep -q "drained" "$WORK/coord.log" || { echo "coordinator did not drain"; cat "$WORK/coord.log"; exit 1; }
kill -TERM "$SURVIVOR" 2>/dev/null || true
wait "$SURVIVOR" 2>/dev/null || true
echo "OK: coordinator drained and exited cleanly on SIGTERM"

# The drain must have dropped a flight-recorder dump into the journal
# directory, and `report` must render a post-mortem from it.
ls "$COORD_JOURNAL"/flight-*-drain.json > /dev/null 2>&1 \
  || { echo "coordinator drain left no flight-recorder dump"; ls "$COORD_JOURNAL"; exit 1; }
"$BIN" report --journal "$COORD_JOURNAL" > "$WORK/report.out"
grep -q 'flight' "$WORK/report.out" || { echo "report ignored the flight dump"; cat "$WORK/report.out"; exit 1; }
grep -q 'job-000001' "$WORK/report.out" || { echo "report lacks the job's history"; cat "$WORK/report.out"; exit 1; }
"$BIN" report --journal "$COORD_JOURNAL" --json > "$WORK/report.json"
if command -v jq >/dev/null 2>&1; then
  jq -e . "$WORK/report.json" > /dev/null || { echo "report --json is not valid JSON"; exit 1; }
fi
echo "OK: flight recorder dumped on drain and report renders the post-mortem"

# Keep the coordinator journal (e.g. as a CI artifact) when asked to.
if [ -n "${CLUSTER_JOURNAL_OUT:-}" ]; then
  rm -rf "$CLUSTER_JOURNAL_OUT"
  cp -r "$COORD_JOURNAL" "$CLUSTER_JOURNAL_OUT"
  cp "$WORK/verdicts.cache" "$CLUSTER_JOURNAL_OUT/verdicts.cache"
  echo "OK: coordinator journal copied to $CLUSTER_JOURNAL_OUT"
fi
