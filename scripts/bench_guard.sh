#!/usr/bin/env bash
# Non-timing benchmark regression guard.
#
# Runs the evaluation harness on a small fixed corpus (--programs 5, default
# seed) and compares the deterministic strategy counters — reduction ratios,
# predicate-run geomeans, simulated time — against the committed baseline.
# Wall-clock fields are stripped, so the check is stable across hosts; any
# diff means reduction *behavior* changed.  If the change is intended,
# regenerate the baseline and commit it:
#
#   scripts/bench_guard.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline_p5.txt
json=$(mktemp)
trap 'rm -f "$json"' EXIT

dune exec bench/main.exe -- --programs 5 --skip-micro --json "$json" >/dev/null

# One strategy object per line in the JSON dump; drop the host-dependent
# timing fields, keep everything else byte-for-byte.  The positive grep
# also keeps the Lbr_obs metric rows (tagged "kind": latency histograms,
# span aggregates) out of the baseline: their values are wall-clock
# dependent, so they are stripped from this non-timing diff.
extract() {
  grep '"geo_sim_time_seconds"' "$1" |
    grep -v '"kind"' |
    sed -E 's/"wall_seconds": [^,]+, //; s/"speedup": [^,]+, //'
}

if [ "${1:-}" = "--update" ]; then
  extract "$json" >"$baseline"
  echo "bench_guard: baseline updated: $baseline"
  exit 0
fi

if diff -u "$baseline" <(extract "$json"); then
  echo "bench_guard: OK — strategy counters match $baseline"
else
  echo "bench_guard: FAIL — deterministic strategy counters drifted from $baseline" >&2
  echo "bench_guard: if intended, regenerate with: scripts/bench_guard.sh --update" >&2
  exit 1
fi
