#!/usr/bin/env bash
# Non-timing benchmark regression guard.
#
# Runs the evaluation harness on a small fixed corpus (--programs 5, default
# seed) and compares two classes of deterministic output against committed
# baselines:
#
#   1. Strategy counters — reduction ratios, predicate-run geomeans,
#      simulated time.  Wall-clock fields are stripped, so the check is
#      stable across hosts; any diff means reduction *behavior* changed.
#   2. Allocation counters — per-phase calls and minor words from the Perf
#      registry.  Calls must match exactly; minor words get a ±10% band
#      (the allocation sequence is deterministic at jobs=1, the band
#      absorbs stdlib/runtime drift across compiler versions).  A phase
#      silently doubling its allocations fails the gate even when timing
#      and behavior look fine.
#
# If a change is intended, regenerate the baselines and commit them:
#
#   scripts/bench_guard.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline_p5.txt
alloc_baseline=scripts/bench_alloc_baseline_p5.txt
wall_baseline=scripts/bench_wall_baseline_p5.txt
json=$(mktemp)
spec_json=$(mktemp)
trap 'rm -f "$json" "$spec_json"' EXIT

dune exec bench/main.exe -- --programs 5 --skip-micro --json "$json" >/dev/null

# One strategy object per line in the JSON dump; drop the host-dependent
# timing fields, keep everything else byte-for-byte.  The positive grep
# also keeps the Lbr_obs metric rows (tagged "kind": latency histograms,
# span aggregates) out of the baseline: their values are wall-clock
# dependent, so they are stripped from this non-timing diff.
extract() {
  grep '"geo_sim_time_seconds"' "$1" |
    grep -v '"kind"' |
    sed -E 's/"wall_seconds": [^,]+, //; s/"speedup": [^,]+, //; s/"intra_speedup": [^,]+, //'
}

# Phase counter rows ("counters" array): name, calls, minor_words.  The
# seconds field is wall-clock and dropped here.
extract_alloc() {
  grep '"minor_words"' "$1" |
    sed -E 's/.*"name": "([^"]+)", "calls": ([0-9]+), "seconds": [^,]+, "minor_words": ([^ }]+).*/\1 \2 \3/'
}

# Per-strategy wall-clock seconds — the only timing the guard looks at,
# and only through a wide ±25% band (see below).
extract_wall() {
  grep '"geo_sim_time_seconds"' "$1" |
    sed -E 's/.*"name": "([^"]+)", "frontend": "[^"]*", "wall_seconds": ([^,]+),.*/\1 \2/'
}

if [ "${1:-}" = "--update" ]; then
  extract "$json" >"$baseline"
  extract_alloc "$json" >"$alloc_baseline"
  extract_wall "$json" >"$wall_baseline"
  echo "bench_guard: baselines updated: $baseline, $alloc_baseline, $wall_baseline"
  exit 0
fi

fail=0

if diff -u "$baseline" <(extract "$json"); then
  echo "bench_guard: OK — strategy counters match $baseline"
else
  echo "bench_guard: FAIL — deterministic strategy counters drifted from $baseline" >&2
  fail=1
fi

if [ -f "$alloc_baseline" ]; then
  if extract_alloc "$json" | awk -v tol=0.10 '
      NR == FNR { base_calls[$1] = $2; base_mw[$1] = $3; next }
      {
        seen[$1] = 1
        if (!($1 in base_calls)) {
          printf "bench_guard: new phase counter %s (not in baseline)\n", $1
          bad = 1
          next
        }
        if ($2 != base_calls[$1]) {
          printf "bench_guard: %s: calls %s != baseline %s\n", $1, $2, base_calls[$1]
          bad = 1
        }
        mw = $3 + 0; bmw = base_mw[$1] + 0
        band = bmw * tol; if (band < 1000) band = 1000
        d = mw - bmw; if (d < 0) d = -d
        if (d > band) {
          printf "bench_guard: %s: minor_words %g outside +/-%.0f%% of baseline %g\n", \
            $1, mw, tol * 100, bmw
          bad = 1
        }
      }
      END {
        for (n in base_calls)
          if (!(n in seen)) { printf "bench_guard: phase counter %s disappeared\n", n; bad = 1 }
        exit bad
      }' "$alloc_baseline" -; then
    echo "bench_guard: OK — allocation counters within band of $alloc_baseline"
  else
    echo "bench_guard: FAIL — per-phase allocation counters drifted from $alloc_baseline" >&2
    fail=1
  fi
else
  echo "bench_guard: NOTE — no allocation baseline ($alloc_baseline); run --update to create it"
fi

# Wall-clock gate: per-strategy wall seconds within ±25% of the committed
# baseline.  Deliberately the loosest of the gates — wall time moves with
# the host and with unrelated code — but a strategy suddenly taking 2x
# (a lost fast path, an accidental O(n^2)) fails here even when the
# deterministic counters above are untouched.  Regenerate on a quiet
# machine with --update when a shift is intended.
if [ -f "$wall_baseline" ]; then
  if extract_wall "$json" | awk -v tol=0.25 '
      NR == FNR { base[$1] = $2; next }
      {
        seen[$1] = 1
        if (!($1 in base)) {
          printf "bench_guard: new strategy %s (not in wall baseline)\n", $1
          bad = 1
          next
        }
        w = $2 + 0; bw = base[$1] + 0
        if (bw <= 0) next
        d = w - bw; if (d < 0) d = -d
        if (d > bw * tol) {
          printf "bench_guard: %s: wall_seconds %g outside +/-%.0f%% of baseline %g\n", \
            $1, w, tol * 100, bw
          bad = 1
        }
      }
      END {
        for (n in base)
          if (!(n in seen)) { printf "bench_guard: strategy %s disappeared from wall rows\n", n; bad = 1 }
        exit bad
      }' "$wall_baseline" -; then
    echo "bench_guard: OK — wall clock within +/-25% of $wall_baseline"
  else
    echo "bench_guard: FAIL — wall clock drifted >25% from $wall_baseline" >&2
    fail=1
  fi
else
  echo "bench_guard: NOTE — no wall-clock baseline ($wall_baseline); run --update to create it"
fi

# Speculative pipelining gate: the same corpus at --jobs 2 runs GBR's
# speculative sweep (bench itself aborts on any byte divergence from the
# sequential sweep); on top of that, geo_predicate_runs must stay within
# a 1% band of the committed sequential baseline — speculation may waste
# idle-core work, but must never inflate the *charged*,
# sequential-equivalent predicate runs.
dune exec bench/main.exe -- --programs 5 --skip-micro --jobs 2 --json "$spec_json" >/dev/null
runs_of_gbr() {
  grep '"name": "gbr"' "$1" | sed -E 's/.*"geo_predicate_runs": ([0-9.eE+-]+).*/\1/'
}
spec_runs=$(runs_of_gbr "$spec_json")
base_runs=$(runs_of_gbr "$baseline")
if awk -v a="$spec_runs" -v b="$base_runs" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(b > 0 && d / b <= 0.01) }'; then
  echo "bench_guard: OK — speculative (jobs=2) geo_predicate_runs $spec_runs within 1% of baseline $base_runs"
else
  echo "bench_guard: FAIL — speculative (jobs=2) geo_predicate_runs $spec_runs drifted >1% from baseline $base_runs" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "bench_guard: if intended, regenerate with: scripts/bench_guard.sh --update" >&2
  exit 1
fi
