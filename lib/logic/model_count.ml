let check_universe cnf over =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Model_count: duplicate variable in ~over";
      Hashtbl.add seen v ())
    over;
  Assignment.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then
        invalid_arg "Model_count: formula mentions a variable outside ~over")
    (Cnf.vars cnf)

let pow2 n =
  if n < 0 || n > 61 then invalid_arg "Model_count: universe too large";
  1 lsl n

let count_naive cnf ~over =
  check_universe cnf over;
  let vars = Array.of_list over in
  let n = Array.length vars in
  let total = pow2 n in
  let count = ref 0 in
  for mask = 0 to total - 1 do
    let m =
      Array.to_list vars
      |> List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
      |> Assignment.of_list
    in
    if Cnf.holds cnf m then incr count
  done;
  !count

(* The DPLL counter proper, running on one shared packed formula.  A
   subproblem is a [scope]: the clause indices it owns.  Conditioning on a
   branch variable is a trail assignment undone after each branch instead of
   a clause-list rebuild; clauses satisfied along the way are skipped via
   {!Cnf.Packed.clause_is_active}.  Free variables not mentioned by any
   active clause of the scope contribute a factor of two each. *)

module ISet = Set.Make (Int)

(* Split the scope's active clauses into connected components (clauses
   linked by shared unassigned variables). *)
let components p scope =
  match scope with
  | [] -> []
  | _ ->
      let arr = Array.of_list scope in
      let n = Array.length arr in
      let parent = Array.init n (fun i -> i) in
      let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun i ci ->
          List.iter
            (fun v ->
              match Hashtbl.find_opt owner v with
              | None -> Hashtbl.add owner v i
              | Some j -> union i j)
            (Cnf.Packed.clause_unassigned_vars p ci))
        arr;
      let buckets : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      Array.iteri
        (fun i ci ->
          let r = find i in
          let prev = Option.value ~default:[] (Hashtbl.find_opt buckets r) in
          Hashtbl.replace buckets r (ci :: prev))
        arr;
      Hashtbl.fold (fun _ cs acc -> cs :: acc) buckets []

let rec count_scope p scope nfree =
  let m = Cnf.Packed.mark p in
  if not (Cnf.Packed.propagate p) then begin
    Cnf.Packed.undo_to p m;
    0
  end
  else begin
    let fixed = Cnf.Packed.mark p - m in
    let nfree = nfree - fixed in
    let active = List.filter (Cnf.Packed.clause_is_active p) scope in
    let cvars =
      List.fold_left
        (fun acc ci ->
          List.fold_left
            (fun acc v -> ISet.add v acc)
            acc
            (Cnf.Packed.clause_unassigned_vars p ci))
        ISet.empty active
    in
    let constrained = ISet.cardinal cvars in
    assert (constrained <= nfree);
    let free_factor = pow2 (nfree - constrained) in
    let result =
      if active = [] then free_factor
      else
        let product =
          List.fold_left
            (fun acc comp ->
              if acc = 0 then 0
              else begin
                (* Branch on the most frequent variable of the component. *)
                let freq : (int, int) Hashtbl.t = Hashtbl.create 16 in
                List.iter
                  (fun ci ->
                    List.iter
                      (fun v ->
                        Hashtbl.replace freq v
                          (1 + Option.value ~default:0 (Hashtbl.find_opt freq v)))
                      (Cnf.Packed.clause_unassigned_vars p ci))
                  comp;
                let nv = Hashtbl.length freq in
                let branch_var =
                  Hashtbl.fold
                    (fun v n best ->
                      match best with
                      | Some (_, bn) when bn >= n -> best
                      | _ -> Some (v, n))
                    freq None
                  |> Option.get |> fst
                in
                let branch value =
                  let m2 = Cnf.Packed.mark p in
                  Cnf.Packed.assign p branch_var value;
                  let r = count_scope p comp (nv - 1) in
                  Cnf.Packed.undo_to p m2;
                  r
                in
                acc * (branch true + branch false)
              end)
            1 (components p active)
        in
        free_factor * product
    in
    Cnf.Packed.undo_to p m;
    result
  end

let count cnf ~over =
  check_universe cnf over;
  if Cnf.is_unsat cnf then 0
  else begin
    let p = Cnf.Packed.make cnf in
    let scope = List.init (Cnf.Packed.num_clauses p) (fun i -> i) in
    count_scope p scope (List.length over)
  end
