let check_universe cnf over =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Model_count: duplicate variable in ~over";
      Hashtbl.add seen v ())
    over;
  Assignment.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then
        invalid_arg "Model_count: formula mentions a variable outside ~over")
    (Cnf.vars cnf)

let pow2 n =
  if n < 0 || n > 61 then invalid_arg "Model_count: universe too large";
  1 lsl n

let count_naive cnf ~over =
  check_universe cnf over;
  let vars = Array.of_list over in
  let n = Array.length vars in
  let total = pow2 n in
  let count = ref 0 in
  for mask = 0 to total - 1 do
    let m =
      Array.to_list vars
      |> List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
      |> Assignment.of_list
    in
    if Cnf.holds cnf m then incr count
  done;
  !count

(* The DPLL counter proper, running on one shared packed formula.  A
   subproblem is a [scope]: the clause indices it owns.  Conditioning on a
   branch variable is a trail assignment undone after each branch instead of
   a clause-list rebuild; clauses satisfied along the way are skipped via
   {!Cnf.Packed.clause_is_active}.  Free variables not mentioned by any
   active clause of the scope contribute a factor of two each. *)

(* Reused scratch for the variable-indexed working sets of one count: an
   epoch stamp per variable replaces the per-call hash tables and int
   sets, so the hot recursion allocates only the component lists it
   returns.  Every use bumps [epoch] and completes before any recursive
   call, so a single scratch serves the whole recursion tree. *)
type scratch = {
  stamp : int array;  (* epoch at which the variable was last touched *)
  data : int array;   (* per-use payload: owning slot, or occurrence count *)
  mutable epoch : int;
}

let make_scratch nvars =
  { stamp = Array.make nvars 0; data = Array.make nvars 0; epoch = 0 }

(* Split the scope's active clauses into connected components (clauses
   linked by shared unassigned variables).  [sc.data] holds the slot that
   first claimed each variable in this epoch. *)
let components sc p scope =
  match scope with
  | [] -> []
  | _ ->
      let arr = Array.of_list scope in
      let n = Array.length arr in
      let parent = Array.init n (fun i -> i) in
      let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      sc.epoch <- sc.epoch + 1;
      let e = sc.epoch in
      Array.iteri
        (fun i ci ->
          Cnf.Packed.iter_clause_unassigned p ci (fun v ->
              if sc.stamp.(v) = e then union i sc.data.(v)
              else begin
                sc.stamp.(v) <- e;
                sc.data.(v) <- i
              end))
        arr;
      let buckets = Array.make n [] in
      let roots = ref [] in
      for i = n - 1 downto 0 do
        let r = find i in
        if buckets.(r) = [] then roots := r :: !roots;
        buckets.(r) <- arr.(i) :: buckets.(r)
      done;
      List.rev_map (fun r -> buckets.(r)) !roots

let rec count_scope sc p scope nfree =
  let m = Cnf.Packed.mark p in
  if not (Cnf.Packed.propagate p) then begin
    Cnf.Packed.undo_to p m;
    0
  end
  else begin
    let fixed = Cnf.Packed.mark p - m in
    let nfree = nfree - fixed in
    let active = List.filter (Cnf.Packed.clause_is_active p) scope in
    (* Distinct unassigned variables across the active clauses. *)
    sc.epoch <- sc.epoch + 1;
    let e = sc.epoch in
    let constrained = ref 0 in
    List.iter
      (fun ci ->
        Cnf.Packed.iter_clause_unassigned p ci (fun v ->
            if sc.stamp.(v) <> e then begin
              sc.stamp.(v) <- e;
              incr constrained
            end))
      active;
    assert (!constrained <= nfree);
    let free_factor = pow2 (nfree - !constrained) in
    let result =
      if active = [] then free_factor
      else
        let product =
          List.fold_left
            (fun acc comp ->
              if acc = 0 then 0
              else begin
                (* Branch on the most frequent variable of the component;
                   occurrence counts live in the scratch payload.  The
                   exact count is independent of the branch variable, so
                   the first-to-reach-maximum tie-break is free to differ
                   from a hash-order fold. *)
                sc.epoch <- sc.epoch + 1;
                let e = sc.epoch in
                let nv = ref 0 and branch_var = ref (-1) and best = ref 0 in
                List.iter
                  (fun ci ->
                    Cnf.Packed.iter_clause_unassigned p ci (fun v ->
                        let c =
                          if sc.stamp.(v) = e then sc.data.(v) + 1
                          else begin
                            sc.stamp.(v) <- e;
                            incr nv;
                            1
                          end
                        in
                        sc.data.(v) <- c;
                        if c > !best then begin
                          best := c;
                          branch_var := v
                        end))
                  comp;
                let branch_var = !branch_var and nv = !nv in
                let branch value =
                  let m2 = Cnf.Packed.mark p in
                  Cnf.Packed.assign p branch_var value;
                  let r = count_scope sc p comp (nv - 1) in
                  Cnf.Packed.undo_to p m2;
                  r
                in
                acc * (branch true + branch false)
              end)
            1 (components sc p active)
        in
        free_factor * product
    in
    Cnf.Packed.undo_to p m;
    result
  end

let count cnf ~over =
  check_universe cnf over;
  if Cnf.is_unsat cnf then 0
  else begin
    let p = Cnf.Packed.make cnf in
    let sc = make_scratch (Cnf.Packed.num_vars p) in
    let scope = List.init (Cnf.Packed.num_clauses p) (fun i -> i) in
    count_scope sc p scope (List.length over)
  end
