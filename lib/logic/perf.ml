(* Phase-level performance counters.

   Each domain owns a private hash table (no locking, no contention on the
   hot path); a global registry keeps every table ever created so process
   totals can be summed after parallel runs — tables of terminated pool
   domains stay registered and keep contributing to the totals. *)

type totals = {
  mutable calls : int;
  mutable seconds : float;
  mutable minor_words : float;
}

type row = { name : string; calls : int; seconds : float; minor_words : float }

let registry : (string, totals) Hashtbl.t list ref = ref []
let registry_mutex = Mutex.create ()

let table_key =
  Domain.DLS.new_key (fun () ->
      let table : (string, totals) Hashtbl.t = Hashtbl.create 16 in
      Mutex.lock registry_mutex;
      registry := table :: !registry;
      Mutex.unlock registry_mutex;
      table)

let totals_for table name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      let c = { calls = 0; seconds = 0.; minor_words = 0. } in
      Hashtbl.replace table name c;
      c

let add name n =
  let c = totals_for (Domain.DLS.get table_key) name in
  c.calls <- c.calls + n

let time name f =
  let c = totals_for (Domain.DLS.get table_key) name in
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  Fun.protect f ~finally:(fun () ->
      c.calls <- c.calls + 1;
      c.seconds <- c.seconds +. (Unix.gettimeofday () -. t0);
      c.minor_words <- c.minor_words +. (Gc.minor_words () -. w0))

let rows_of_table table =
  Hashtbl.fold
    (fun name (c : totals) acc ->
      { name; calls = c.calls; seconds = c.seconds; minor_words = c.minor_words }
      :: acc)
    table []

let merge rows =
  let m : (string, row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt m r.name with
      | None -> Hashtbl.replace m r.name r
      | Some p ->
          Hashtbl.replace m r.name
            {
              r with
              calls = p.calls + r.calls;
              seconds = p.seconds +. r.seconds;
              minor_words = p.minor_words +. r.minor_words;
            })
    rows;
  Hashtbl.fold (fun _ r acc -> r :: acc) m []
  |> List.sort (fun a b -> String.compare a.name b.name)

let snapshot_local () = merge (rows_of_table (Domain.DLS.get table_key))

let aggregate () =
  Mutex.lock registry_mutex;
  let tables = !registry in
  Mutex.unlock registry_mutex;
  merge (List.concat_map rows_of_table tables)

let since ~before ~after =
  let b : (string, row) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (r : row) -> Hashtbl.replace b r.name r) before;
  List.filter_map
    (fun (a : row) ->
      let calls, seconds, minor_words =
        match Hashtbl.find_opt b a.name with
        | None -> (a.calls, a.seconds, a.minor_words)
        | Some p ->
            (a.calls - p.calls, a.seconds -. p.seconds, a.minor_words -. p.minor_words)
      in
      if calls = 0 then None else Some { a with calls; seconds; minor_words })
    after

let reset () =
  Mutex.lock registry_mutex;
  let tables = !registry in
  Mutex.unlock registry_mutex;
  List.iter Hashtbl.reset tables
