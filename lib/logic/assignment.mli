(** Truth assignments, written as the set of true variables.

    Following the paper's notation, a solution is identified with the set of
    variables it maps to true; all other variables are false.  This module is
    an immutable set of {!Var.t} with the operations reduction algorithms
    need (prefix unions, differences, minima under a variable order), backed
    by a word-level bitset so the bulk operations run a word at a time. *)

type t

val empty : t
val singleton : Var.t -> t
val of_list : Var.t list -> t
val to_list : t -> Var.t list
(** Elements in increasing variable order. *)

val of_words : int array -> t
(** Low-level constructor from a little-endian word array ([Sys.int_size]
    bits per word, bit [b] of word [w] is variable [w * Sys.int_size + b]).
    The array is copied.  Used by packed data structures (e.g. the graph
    library's bitsets) to hand over a set without an element-by-element
    rebuild. *)

val word_width : t -> int
(** Number of words in the canonical representation — the minimum buffer
    length {!or_into} accepts. *)

val digest_hex : t -> string
(** A 32-hex-character digest of the set, stable across processes on the
    same platform and injective up to digest collisions — a set-sized
    stand-in for digesting a serialized artifact derived from the set. *)

val word_at : t -> int -> int
(** The [i]-th representation word, [0] beyond {!word_width} — for readers
    that compare membership of a fixed variable set word-at-a-time. *)

val masks_of : Var.t list -> int array * int array
(** [masks_of vs] is [(words, masks)]: the distinct representation-word
    indices covering [vs] (ascending) and, per index, the bit mask of the
    variables of [vs] that live in it.  [word_at s words.(i) land masks.(i)]
    then reads the membership bits of those variables in one operation. *)

val or_into : t -> int array -> unit
(** [or_into s buf] ors [s]'s words into [buf] in place: the scratch-buffer
    companion to {!of_words}, letting running unions (prefix unions of a
    progression) accumulate into one reused buffer instead of allocating an
    intermediate set per step.  Raises [Invalid_argument] when [buf] is
    shorter than [word_width s]. *)

val add : Var.t -> t -> t
val remove : Var.t -> t -> t
val mem : Var.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val fold : (Var.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Var.t -> unit) -> t -> unit
val exists : (Var.t -> bool) -> t -> bool
val for_all : (Var.t -> bool) -> t -> bool
val filter : (Var.t -> bool) -> t -> t
val choose_opt : t -> Var.t option

val min_by : order:(Var.t -> int) -> t -> Var.t option
(** [min_by ~order s] is the element of [s] minimising [order], i.e. the
    [<]-smallest variable; [None] on the empty set. *)

val union_all : t list -> t

val pp : Var.Pool.t -> Format.formatter -> t -> unit
