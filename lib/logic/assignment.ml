(* Word-level bitset representation.  A set is an immutable array of words in
   little-endian order: bit [b] of word [w] encodes variable [w * bits + b].
   Canonical form — enforced by every constructor — has a nonzero last word,
   so [equal] and [compare] are plain array walks and the empty set is [||].

   The API is persistent (operations return fresh arrays), which keeps the
   module a drop-in replacement for the previous [Set.Make (Int)] while
   making [union]/[inter]/[diff]/[subset] word-at-a-time. *)

let bits = Sys.int_size

type t = int array

let[@inline] word v = v / bits
let[@inline] bit v = v mod bits

(* 16-bit popcount table, shared; 63-bit words take four lookups. *)
let popcount16 =
  let table = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.set table i (Char.chr (Char.code (Bytes.get table (i lsr 1)) + (i land 1)))
  done;
  fun x -> Char.code (Bytes.unsafe_get table x)

let popcount x =
  popcount16 (x land 0xffff)
  + popcount16 ((x lsr 16) land 0xffff)
  + popcount16 ((x lsr 32) land 0xffff)
  + popcount16 (x lsr 48)

(* Number of trailing zeros of a one-bit word. *)
let[@inline] ntz_pow2 low = popcount (low - 1)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let empty = [||]

let check v = if v < 0 then invalid_arg "Assignment: negative variable"

let singleton v =
  check v;
  let a = Array.make (word v + 1) 0 in
  a.(word v) <- 1 lsl bit v;
  a

let mem v s =
  v >= 0
  &&
  let w = word v in
  w < Array.length s && s.(w) land (1 lsl bit v) <> 0

let add v s =
  check v;
  if mem v s then s
  else begin
    let len = max (Array.length s) (word v + 1) in
    let a = Array.make len 0 in
    Array.blit s 0 a 0 (Array.length s);
    a.(word v) <- a.(word v) lor (1 lsl bit v);
    a
  end

let remove v s =
  if not (mem v s) then s
  else begin
    let a = Array.copy s in
    a.(word v) <- a.(word v) land lnot (1 lsl bit v);
    trim a
  end

let of_list vs =
  match vs with
  | [] -> empty
  | _ ->
      let m = List.fold_left (fun acc v -> check v; max acc v) 0 vs in
      let a = Array.make (word m + 1) 0 in
      List.iter (fun v -> a.(word v) <- a.(word v) lor (1 lsl bit v)) vs;
      a

let of_words w = trim (Array.copy w)

let word_width s = Array.length s

let digest_hex s =
  (* The canonical word array (nonzero last word) makes the digest a
     function of the set, and the 8-byte little-endian framing makes it
     stable across processes on the same platform. *)
  let n = Array.length s in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (i * 8) (Int64.of_int s.(i))
  done;
  Digest.to_hex (Digest.bytes b)

let word_at s i = if i < Array.length s then Array.unsafe_get s i else 0

let masks_of vs =
  let vs = List.sort_uniq Int.compare vs in
  let idxs = ref [] and masks = ref [] in
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Assignment.masks_of: negative variable";
      let w = word v and b = bit v in
      match (!idxs, !masks) with
      | i :: _, m :: rest when i = w -> masks := m lor (1 lsl b) :: rest
      | _ ->
          idxs := w :: !idxs;
          masks := 1 lsl b :: !masks)
    vs;
  (Array.of_list (List.rev !idxs), Array.of_list (List.rev !masks))

let or_into s buf =
  if Array.length buf < Array.length s then
    invalid_arg "Assignment.or_into: buffer too short";
  for i = 0 to Array.length s - 1 do
    buf.(i) <- buf.(i) lor s.(i)
  done

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let short, long = if la <= lb then (a, b) else (b, a) in
    let r = Array.copy long in
    for i = 0 to Array.length short - 1 do
      r.(i) <- r.(i) lor short.(i)
    done;
    r
  end

let inter a b =
  let l = min (Array.length a) (Array.length b) in
  if l = 0 then empty
  else begin
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    trim r
  end

let diff a b =
  let la = Array.length a in
  if la = 0 then empty
  else begin
    let r = Array.copy a in
    let l = min la (Array.length b) in
    for i = 0 to l - 1 do
      r.(i) <- r.(i) land lnot b.(i)
    done;
    trim r
  end

let subset a b =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let rec go i =
    i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1))
  in
  go 0

let disjoint a b =
  let l = min (Array.length a) (Array.length b) in
  let rec go i = i >= l || (a.(i) land b.(i) = 0 && go (i + 1)) in
  go 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let is_empty s = Array.length s = 0

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* Matches [Set.Make (Int)]'s order: lexicographic comparison of the two
   increasing element sequences (a strict prefix sorts first).  Callers rely
   on this only as "some total order", but keeping the seed's order keeps
   candidate orderings — and thus reduction traces — bit-for-bit stable. *)
let compare a b =
  let la = Array.length a and lb = Array.length b in
  let l = min la lb in
  let rec go i =
    if i >= l then Int.compare la lb
    else if a.(i) = b.(i) then go (i + 1)
    else begin
      let d = a.(i) lxor b.(i) in
      let low = d land -d in
      (* Bits strictly above the lowest differing bit. *)
      let above = -low lsl 1 in
      if a.(i) land low <> 0 then
        (* [a] owns the smallest differing element e; if [b] still has any
           element above e its sequence continues with a larger element. *)
        if b.(i) land above <> 0 || lb > i + 1 then -1 else 1
      else if a.(i) land above <> 0 || la > i + 1 then 1
      else -1
    end
  in
  go 0

let fold f s init =
  let acc = ref init in
  for i = 0 to Array.length s - 1 do
    let w = ref s.(i) in
    let base = i * bits in
    while !w <> 0 do
      let low = !w land - !w in
      acc := f (base + ntz_pow2 low) !acc;
      w := !w land (!w - 1)
    done
  done;
  !acc

let iter f s = fold (fun v () -> f v) s ()

let to_list s = List.rev (fold (fun v acc -> v :: acc) s [])

let exists p s =
  let rec go_word i =
    i < Array.length s
    &&
    let rec go_bits w =
      w <> 0
      &&
      let low = w land -w in
      p ((i * bits) + ntz_pow2 low) || go_bits (w land (w - 1))
    in
    go_bits s.(i) || go_word (i + 1)
  in
  go_word 0

let for_all p s = not (exists (fun v -> not (p v)) s)

let filter p s =
  let a = Array.make (Array.length s) 0 in
  iter (fun v -> if p v then a.(word v) <- a.(word v) lor (1 lsl bit v)) s;
  trim a

let choose_opt s =
  if is_empty s then None
  else begin
    let i = ref 0 in
    while s.(!i) = 0 do
      incr i
    done;
    let low = s.(!i) land -s.(!i) in
    Some ((!i * bits) + ntz_pow2 low)
  end

let min_by ~order s =
  fold
    (fun v best ->
      match best with
      | None -> Some v
      | Some b -> if order v < order b then Some v else best)
    s None

let union_all sets = List.fold_left union empty sets

let pp pool ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (Var.pp pool))
    (to_list s)
