(** Formulas in conjunctive normal form, with the conditioning operations the
    paper's algorithms rely on.

    Conditioning ([R | X = 1] and [R | X = 0]) substitutes constants for
    variables and simplifies: satisfied clauses disappear, falsified literals
    are dropped, and producing the empty clause marks the formula
    unsatisfiable (observable via {!is_unsat}). *)

type t

val make : Clause.t list -> t
val of_clauses : Clause.t list -> t
(** Alias of {!make}. *)

val top : t
(** The empty conjunction (always true). *)

val clauses : t -> Clause.t list
(** The remaining clauses.  Empty list on an unsatisfiable formula does not
    mean true — check {!is_unsat} first. *)

val is_unsat : t -> bool
(** Whether simplification has derived the empty clause.  [false] does not
    imply satisfiability. *)

val conj : t -> t -> t
val add_clause : t -> Clause.t -> t
val add_clauses : t -> Clause.t list -> t

val vars : t -> Assignment.t
(** All variables occurring in the formula. *)

val num_clauses : t -> int

val holds : t -> Assignment.t -> bool
(** [holds r m] is the paper's [R(M)]: does the assignment that maps exactly
    [m] to true satisfy [r]?  [false] on unsatisfiable formulas. *)

val condition_true : t -> Assignment.t -> t
(** [condition_true r x] is [R | X = 1]. *)

val condition_false : t -> Assignment.t -> t
(** [condition_false r x] is [R | X = 0]. *)

val restrict : t -> keep:Assignment.t -> t
(** [restrict r ~keep] sets every variable of [r] outside [keep] to false —
    the restriction used to build [R⁺] in the progression subroutine. *)

(** Corpus statistics over the clause kinds (cf. the paper's "97.5 % edges"
    measurement). *)
type stats = {
  total : int;
  unit_pos : int;
  unit_neg : int;
  edges : int;
  horn : int;
  general : int;
}

val stats : t -> stats

val graph_fraction : t -> float
(** Fraction of clauses representable as graph constraints (unit-positive or
    edge); [1.0] on the empty formula. *)

val pp : Var.Pool.t -> Format.formatter -> t -> unit

(** Packed, mutable view of a formula for search-heavy algorithms.

    All literals live in one flat int array with per-variable occurrence
    lists; conditioning assigns a variable and bumps per-clause counters
    instead of rebuilding clause lists, and an explicit trail makes undo
    proportional to the number of assignments.  One [Packed.make] amortises
    the index build across an entire DPLL search, greedy minimization, or
    model count. *)
module Packed : sig
  type cnf := t
  type t

  val make : cnf -> t
  (** Build the packed index.  O(total literals). *)

  val num_vars : t -> int
  (** One past the largest variable occurring in the formula.  Variables
      [>= num_vars t] are unconstrained. *)

  val num_clauses : t -> int

  val mark : t -> int
  (** Current trail position, for a later {!undo_to}. *)

  val undo_to : t -> int -> unit
  (** Unassign every variable above the mark, clear any pending unit
      propagations, and reset the conflict flag. *)

  val conflicted : t -> bool
  (** Whether some clause has all literals false under the current
      assignment. *)

  val active_count : t -> int
  (** Number of clauses not yet satisfied. *)

  val value : t -> Var.t -> [ `True | `False | `Unassigned ]

  val assign : t -> Var.t -> bool -> unit
  (** Assign an unassigned variable (< [num_vars]), pushing it on the trail
      and updating clause counters.  Sets the conflict flag if a clause runs
      out of literals; queues clauses that become unit. *)

  val propagate : t -> bool
  (** Drain the unit-propagation queue; [false] iff a conflict was hit. *)

  val search : t -> bool
  (** DPLL search from the current assignment.  On [true] the satisfying
      assignments remain on the trail (read them via {!value} or {!model},
      then {!undo_to}); on [false] the state is left partially wound and the
      caller must {!undo_to} its mark. *)

  val model : t -> Assignment.t
  (** The set of variables currently assigned true. *)

  val solve :
    t -> assume_true:Var.t list -> assume_false:Var.t list -> Assignment.t option
  (** Self-contained satisfiability check under assumptions: assigns the
      assumptions, runs {!search}, extracts the model, and restores the
      state it was called in.  Assumptions on variables [>= num_vars] are
      ignored (they are unconstrained). *)

  val clause_is_active : t -> int -> bool
  (** Whether clause [ci] has no true literal under the current
      assignment. *)

  val clause_unassigned_vars : t -> int -> Var.t list
  (** The unassigned variables of clause [ci], ascending. *)

  val iter_clause_unassigned : t -> int -> (Var.t -> unit) -> unit
  (** Apply [f] to each unassigned variable of clause [ci], ascending —
      {!clause_unassigned_vars} without building the list, for callers that
      fold the variables into reused scratch state. *)
end
