type t = { clauses : Clause.t list; count : int; unsat : bool }

let make clauses =
  let unsat = List.exists Clause.is_empty clauses in
  if unsat then { clauses = []; count = 0; unsat = true }
  else { clauses; count = List.length clauses; unsat = false }

let of_clauses = make

let top = { clauses = []; count = 0; unsat = false }

let clauses t = t.clauses

let is_unsat t = t.unsat

let conj a b =
  if a.unsat || b.unsat then { clauses = []; count = 0; unsat = true }
  else { clauses = a.clauses @ b.clauses; count = a.count + b.count; unsat = false }

let add_clause t c =
  if t.unsat then t
  else if Clause.is_empty c then { clauses = []; count = 0; unsat = true }
  else { t with clauses = c :: t.clauses; count = t.count + 1 }

let add_clauses t cs = List.fold_left add_clause t cs

let num_clauses t = t.count

let max_var t =
  List.fold_left
    (fun acc (c : Clause.t) ->
      let acc = Array.fold_left max acc c.neg in
      Array.fold_left max acc c.pos)
    (-1) t.clauses

let vars t =
  let n = max_var t + 1 in
  if n = 0 then Assignment.empty
  else begin
    let bits = Sys.int_size in
    let words = Array.make ((n + bits - 1) / bits) 0 in
    let set v = words.(v / bits) <- words.(v / bits) lor (1 lsl (v mod bits)) in
    List.iter
      (fun (c : Clause.t) ->
        Array.iter set c.neg;
        Array.iter set c.pos)
      t.clauses;
    Assignment.of_words words
  end

let holds t m =
  (not t.unsat)
  && List.for_all (fun c -> Clause.holds c ~true_set:(fun v -> Assignment.mem v m)) t.clauses

(* Shared worker for conditioning.  [sat_lit] decides whether a literal is
   made true by the substitution (satisfying the whole clause); [drop_lit]
   whether it is made false (and disappears from the clause). *)
let condition t ~sat_neg ~drop_neg ~sat_pos ~drop_pos =
  if t.unsat then t
  else
    let rec go acc count = function
      | [] -> { clauses = acc; count; unsat = false }
      | (c : Clause.t) :: rest ->
          if Array.exists sat_neg c.neg || Array.exists sat_pos c.pos then go acc count rest
          else
            let neg = Array.to_list c.neg |> List.filter (fun v -> not (drop_neg v)) in
            let pos = Array.to_list c.pos |> List.filter (fun v -> not (drop_pos v)) in
            if neg = [] && pos = [] then { clauses = []; count = 0; unsat = true }
            else go (Clause.make_exn ~neg ~pos :: acc) (count + 1) rest
    in
    go [] 0 t.clauses

let condition_true t x =
  let in_x v = Assignment.mem v x in
  (* x = 1: positive occurrences of x satisfy the clause; negative ones are
     falsified and dropped. *)
  condition t ~sat_neg:(fun _ -> false) ~drop_neg:in_x ~sat_pos:in_x ~drop_pos:(fun _ -> false)

let condition_false t x =
  let in_x v = Assignment.mem v x in
  (* x = 0: negative occurrences of x satisfy the clause; positive ones are
     falsified and dropped. *)
  condition t ~sat_neg:in_x ~drop_neg:(fun _ -> false) ~sat_pos:(fun _ -> false) ~drop_pos:in_x

let restrict t ~keep =
  let out v = not (Assignment.mem v keep) in
  condition t ~sat_neg:out ~drop_neg:(fun _ -> false) ~sat_pos:(fun _ -> false) ~drop_pos:out

type stats = {
  total : int;
  unit_pos : int;
  unit_neg : int;
  edges : int;
  horn : int;
  general : int;
}

let stats t =
  List.fold_left
    (fun s c ->
      let s = { s with total = s.total + 1 } in
      match Clause.kind c with
      | Clause.Unit_pos -> { s with unit_pos = s.unit_pos + 1 }
      | Clause.Unit_neg -> { s with unit_neg = s.unit_neg + 1 }
      | Clause.Edge -> { s with edges = s.edges + 1 }
      | Clause.Horn -> { s with horn = s.horn + 1 }
      | Clause.General -> { s with general = s.general + 1 })
    { total = 0; unit_pos = 0; unit_neg = 0; edges = 0; horn = 0; general = 0 }
    t.clauses

let graph_fraction t =
  let s = stats t in
  if s.total = 0 then 1.0
  else float_of_int (s.unit_pos + s.edges) /. float_of_int s.total

let pp pool ppf t =
  if t.unsat then Format.pp_print_string ppf "⊥"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (Clause.pp pool))
      t.clauses

(* ================================================================== *)
(* Packed representation: every literal of every clause in one flat int
   array, with per-variable occurrence lists.  Conditioning assigns a
   variable and updates per-clause counters; an explicit trail makes undo
   O(assignments) instead of rebuilding the clause list, so DPLL search,
   greedy minimization, and model counting all share one index build. *)

module Packed = struct
  type t = {
    nvars : int;
    nclauses : int;
    (* Clause [ci]'s literals are [lits.(cstart.(ci)) ..
       lits.(cstart.(ci+1) - 1)], negatives first, each side in increasing
       variable order.  A literal encodes variable [lit lsr 1]; the low bit
       is 1 for a negative occurrence. *)
    lits : int array;
    cstart : int array;
    occ_pos : int array array;
    occ_neg : int array array;
    (* Mutable conditioning state. *)
    value : Bytes.t;  (* '\000' unassigned, '\001' true, '\002' false *)
    free : int array;  (* per clause: unassigned literals *)
    satcnt : int array;  (* per clause: literals currently true *)
    trail : int array;  (* assigned variables, in order *)
    mutable trail_len : int;
    mutable active : int;  (* clauses with no true literal yet *)
    root_unsat : bool;  (* formula was flagged unsat before packing *)
    mutable conflict : bool;
    mutable units : int array;  (* stack of clauses pending unit propagation *)
    mutable units_len : int;
  }

  let num_vars t = t.nvars
  let num_clauses t = t.nclauses
  let mark t = t.trail_len
  let conflicted t = t.conflict
  let active_count t = t.active

  let value t v =
    if v >= t.nvars then `Unassigned
    else
      match Bytes.unsafe_get t.value v with
      | '\000' -> `Unassigned
      | '\001' -> `True
      | _ -> `False

  let push_unit t ci =
    if t.units_len = Array.length t.units then begin
      let grown = Array.make (2 * Array.length t.units) 0 in
      Array.blit t.units 0 grown 0 t.units_len;
      t.units <- grown
    end;
    t.units.(t.units_len) <- ci;
    t.units_len <- t.units_len + 1

  let make cnf =
    let clause_arr = Array.of_list cnf.clauses in
    let nclauses = Array.length clause_arr in
    let nvars = max_var cnf + 1 in
    let cstart = Array.make (nclauses + 1) 0 in
    Array.iteri
      (fun ci c -> cstart.(ci + 1) <- cstart.(ci) + Clause.num_literals c)
      clause_arr;
    let lits = Array.make cstart.(nclauses) 0 in
    let pos_count = Array.make nvars 0 and neg_count = Array.make nvars 0 in
    Array.iteri
      (fun ci (c : Clause.t) ->
        let k = ref cstart.(ci) in
        Array.iter
          (fun v ->
            lits.(!k) <- (v lsl 1) lor 1;
            incr k;
            neg_count.(v) <- neg_count.(v) + 1)
          c.neg;
        Array.iter
          (fun v ->
            lits.(!k) <- v lsl 1;
            incr k;
            pos_count.(v) <- pos_count.(v) + 1)
          c.pos)
      clause_arr;
    let occ_pos = Array.init nvars (fun v -> Array.make pos_count.(v) 0) in
    let occ_neg = Array.init nvars (fun v -> Array.make neg_count.(v) 0) in
    let pos_fill = Array.make nvars 0 and neg_fill = Array.make nvars 0 in
    Array.iteri
      (fun ci (c : Clause.t) ->
        Array.iter
          (fun v ->
            occ_neg.(v).(neg_fill.(v)) <- ci;
            neg_fill.(v) <- neg_fill.(v) + 1)
          c.neg;
        Array.iter
          (fun v ->
            occ_pos.(v).(pos_fill.(v)) <- ci;
            pos_fill.(v) <- pos_fill.(v) + 1)
          c.pos)
      clause_arr;
    let free = Array.init nclauses (fun ci -> cstart.(ci + 1) - cstart.(ci)) in
    let t =
      {
        nvars;
        nclauses;
        lits;
        cstart;
        occ_pos;
        occ_neg;
        value = Bytes.make nvars '\000';
        free;
        satcnt = Array.make nclauses 0;
        trail = Array.make nvars 0;
        trail_len = 0;
        active = nclauses;
        root_unsat = cnf.unsat;
        conflict = cnf.unsat;
        units = Array.make 16 0;
        units_len = 0;
      }
    in
    (* Input unit clauses seed the propagation queue.  [Cnf.make] never
       stores an empty clause (the formula is flagged unsat instead). *)
    Array.iteri (fun ci f -> if f = 1 then push_unit t ci) free;
    t

  let assign t v b =
    Bytes.unsafe_set t.value v (if b then '\001' else '\002');
    t.trail.(t.trail_len) <- v;
    t.trail_len <- t.trail_len + 1;
    let sat_occ = if b then t.occ_pos.(v) else t.occ_neg.(v) in
    let fal_occ = if b then t.occ_neg.(v) else t.occ_pos.(v) in
    Array.iter
      (fun ci ->
        t.free.(ci) <- t.free.(ci) - 1;
        t.satcnt.(ci) <- t.satcnt.(ci) + 1;
        if t.satcnt.(ci) = 1 then t.active <- t.active - 1)
      sat_occ;
    Array.iter
      (fun ci ->
        t.free.(ci) <- t.free.(ci) - 1;
        if t.satcnt.(ci) = 0 then begin
          if t.free.(ci) = 0 then t.conflict <- true
          else if t.free.(ci) = 1 then push_unit t ci
        end)
      fal_occ

  let undo_to t m =
    while t.trail_len > m do
      t.trail_len <- t.trail_len - 1;
      let v = t.trail.(t.trail_len) in
      let b = Bytes.unsafe_get t.value v = '\001' in
      Bytes.unsafe_set t.value v '\000';
      let sat_occ = if b then t.occ_pos.(v) else t.occ_neg.(v) in
      let fal_occ = if b then t.occ_neg.(v) else t.occ_pos.(v) in
      Array.iter
        (fun ci ->
          t.free.(ci) <- t.free.(ci) + 1;
          t.satcnt.(ci) <- t.satcnt.(ci) - 1;
          if t.satcnt.(ci) = 0 then t.active <- t.active + 1)
        sat_occ;
      Array.iter (fun ci -> t.free.(ci) <- t.free.(ci) + 1) fal_occ
    done;
    t.units_len <- 0;
    t.conflict <- t.root_unsat

  let propagate t =
    while (not t.conflict) && t.units_len > 0 do
      t.units_len <- t.units_len - 1;
      let ci = t.units.(t.units_len) in
      (* The clause may have been satisfied (or further shortened into a
         conflict) since it was queued; re-check before acting. *)
      if t.satcnt.(ci) = 0 && t.free.(ci) = 1 then begin
        let lit = ref (-1) in
        for k = t.cstart.(ci) to t.cstart.(ci + 1) - 1 do
          let l = t.lits.(k) in
          if Bytes.unsafe_get t.value (l lsr 1) = '\000' then lit := l
        done;
        assign t (!lit lsr 1) (!lit land 1 = 0)
      end
    done;
    not t.conflict

  (* DPLL search over the packed state.  Mirrors the previous list-based
     solver's heuristic: branch on the first literal of the first
     still-active clause (negatives stored first), false before true, which
     biases found models towards small true-sets.  On success the satisfying
     assignments are left on the trail for the caller to read and undo. *)
  let rec search t =
    propagate t
    && (t.active = 0
       ||
       let ci = ref 0 in
       while t.satcnt.(!ci) > 0 do
         incr ci
       done;
       let v = ref (-1) in
       (try
          for k = t.cstart.(!ci) to t.cstart.(!ci + 1) - 1 do
            let l = t.lits.(k) in
            if Bytes.unsafe_get t.value (l lsr 1) = '\000' then begin
              v := l lsr 1;
              raise Exit
            end
          done
        with Exit -> ());
       let m = t.trail_len in
       assign t !v false;
       if search t then true
       else begin
         undo_to t m;
         assign t !v true;
         if search t then true
         else begin
           undo_to t m;
           false
         end
       end)

  let model t =
    let bits = Sys.int_size in
    let words = Array.make ((t.nvars + bits - 1) / bits) 0 in
    for v = 0 to t.nvars - 1 do
      if Bytes.unsafe_get t.value v = '\001' then
        words.(v / bits) <- words.(v / bits) lor (1 lsl (v mod bits))
    done;
    Assignment.of_words words

  let solve t ~assume_true ~assume_false =
    let m = t.trail_len in
    let consistent =
      (not t.conflict)
      && (try
            List.iter
              (fun v ->
                if v < t.nvars then
                  match Bytes.get t.value v with
                  | '\000' -> assign t v true
                  | '\001' -> ()
                  | _ -> raise Exit)
              assume_true;
            List.iter
              (fun v ->
                if v < t.nvars then
                  match Bytes.get t.value v with
                  | '\000' -> assign t v false
                  | '\002' -> ()
                  | _ -> raise Exit)
              assume_false;
            true
          with Exit -> false)
    in
    let result = if consistent && search t then Some (model t) else None in
    undo_to t m;
    result

  let clause_is_active t ci = t.satcnt.(ci) = 0

  let clause_unassigned_vars t ci =
    let acc = ref [] in
    for k = t.cstart.(ci + 1) - 1 downto t.cstart.(ci) do
      let v = t.lits.(k) lsr 1 in
      if Bytes.unsafe_get t.value v = '\000' then acc := v :: !acc
    done;
    !acc

  let iter_clause_unassigned t ci f =
    for k = t.cstart.(ci) to t.cstart.(ci + 1) - 1 do
      let v = t.lits.(k) lsr 1 in
      if Bytes.unsafe_get t.value v = '\000' then f v
    done
end
