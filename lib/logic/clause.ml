type t = { neg : Var.t array; pos : Var.t array }

let sorted_unique_general vars =
  let arr = Array.of_list vars in
  (* [Var.t] is an immediate int: the monomorphic comparator lets the sort
     skip the polymorphic-compare dispatch per element pair. *)
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    (* Count distinct elements, then copy them over. *)
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(i - 1) then incr distinct
    done;
    if !distinct = n then arr
    else begin
      let out = Array.make !distinct arr.(0) in
      let j = ref 0 in
      for i = 1 to n - 1 do
        if arr.(i) <> arr.(i - 1) then begin
          incr j;
          out.(!j) <- arr.(i)
        end
      done;
      out
    end
  end

(* Clauses are overwhelmingly tiny; building them is on the constraint
   generation hot path, so the 0/1/2-literal cases skip the generic
   of_list + sort + dedup round trip. *)
let sorted_unique vars =
  match vars with
  | [] -> [||]
  | [ v ] -> [| v |]
  | [ a; b ] -> if a = b then [| a |] else if a < b then [| a; b |] else [| b; a |]
  | _ -> sorted_unique_general vars

(* Both arrays sorted: a single merge scan replaces a binary search per
   element. *)
let disjoint_sorted a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then true
    else
      let x = a.(i) and y = b.(j) in
      if x = y then false else if x < y then go (i + 1) j else go i (j + 1)
  in
  go 0 0

let make ~neg ~pos =
  let neg = sorted_unique neg and pos = sorted_unique pos in
  if disjoint_sorted neg pos then Some { neg; pos } else None

let make_exn ~neg ~pos =
  match make ~neg ~pos with
  | Some c -> c
  | None -> invalid_arg "Clause.make_exn: tautology"

let unit_pos v = { neg = [||]; pos = [| v |] }

let edge x y =
  if x = y then invalid_arg "Clause.edge: self edge is a tautology";
  { neg = [| x |]; pos = [| y |] }

let of_disjunction ~pos = { neg = [||]; pos = sorted_unique pos }

type kind = Unit_pos | Unit_neg | Edge | Horn | General

let kind c =
  match Array.length c.neg, Array.length c.pos with
  | 0, 1 -> Unit_pos
  | 1, 0 -> Unit_neg
  | 1, 1 -> Edge
  | _, 1 -> Horn
  | _, _ -> General

let is_graph c = match kind c with Unit_pos | Edge -> true | Unit_neg | Horn | General -> false

let num_literals c = Array.length c.neg + Array.length c.pos

let is_empty c = num_literals c = 0

let holds c ~true_set =
  Array.exists true_set c.pos || Array.exists (fun v -> not (true_set v)) c.neg

let equal a b = a.neg = b.neg && a.pos = b.pos

let compare a b =
  let c = compare a.neg b.neg in
  if c <> 0 then c else compare a.pos b.pos

let pp pool ppf c =
  let pv = Var.pp pool in
  let plist sep ppf arr =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " sep) pv ppf
      (Array.to_list arr)
  in
  match Array.length c.neg, Array.length c.pos with
  | 0, 0 -> Format.pp_print_string ppf "false"
  | 0, _ -> plist "∨" ppf c.pos
  | _, 0 -> Format.fprintf ppf "¬(%a)" (plist "∧") c.neg
  | _, _ -> Format.fprintf ppf "%a ⇒ %a" (plist "∧") c.neg (plist "∨") c.pos
