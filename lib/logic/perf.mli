(** Phase-level performance counters.

    Cheap always-on timing of named phases: wall-clock seconds, call counts
    and minor-heap allocation ({!Gc.minor_words}) per phase, accumulated in
    domain-local tables so instrumented hot paths never contend on a lock.
    The reduction core tags its phases ([sat.engine-create],
    [sat.engine-propagate], [sat.engine-narrow], [sat.engine-add-clause],
    [core.predicate]); the harness surfaces the totals in [bench --json] and
    the serve journal.

    Phases are assumed non-overlapping: nesting {!time} calls double-counts
    the inner phase's seconds in the outer one. *)

type row = {
  name : string;
  calls : int;
  seconds : float;  (** wall-clock, summed over calls *)
  minor_words : float;  (** minor-heap words allocated during the phase *)
}

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()] and charges its duration and allocation to the
    calling domain's [name] counter (also on exception). *)

val add : string -> int -> unit
(** [add name n] bumps [name]'s call count by [n] without timing anything —
    for event counters maintained cheaply by the hot path and flushed in
    batches (watch-list visits, arena reuse hits).  Such rows report zero
    seconds and zero minor words. *)

val snapshot_local : unit -> row list
(** The calling domain's counters, sorted by name.  Pair two snapshots with
    {!since} for an exact per-task delta — exact because each domain owns
    its table. *)

val aggregate : unit -> row list
(** Process-wide totals: the sum over every domain's table (including
    domains that have terminated), sorted by name.  Only meaningful at a
    quiescent point (no domain concurrently inside {!time}); torn reads are
    possible otherwise, though never a crash. *)

val since : before:row list -> after:row list -> row list
(** Rows of [after] minus the matching rows of [before], dropping phases
    with no calls in between. *)

val reset : unit -> unit
(** Zero every table (all domains).  Same quiescence caveat as
    {!aggregate}. *)
