type t =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t

let var v = Var v

let conj = function [] -> True | [ f ] -> f | fs -> And fs

let disj = function [] -> False | [ f ] -> f | fs -> Or fs

let imply a b = Implies (a, b)

let imply_all premises conclusion = Implies (conj premises, conclusion)

let rec eval f m =
  match f with
  | True -> true
  | False -> false
  | Var v -> Assignment.mem v m
  | Not g -> not (eval g m)
  | And fs -> List.for_all (fun g -> eval g m) fs
  | Or fs -> List.exists (fun g -> eval g m) fs
  | Implies (a, b) -> (not (eval a m)) || eval b m
  | Iff (a, b) -> eval a m = eval b m

let rec vars = function
  | True | False -> Assignment.empty
  | Var v -> Assignment.singleton v
  | Not g -> vars g
  | And fs | Or fs -> Assignment.union_all (List.map vars fs)
  | Implies (a, b) | Iff (a, b) -> Assignment.union (vars a) (vars b)

let rec size = function
  | True | False | Var _ -> 1
  | Not g -> 1 + size g
  | And fs | Or fs -> List.fold_left (fun acc g -> acc + size g) 1 fs
  | Implies (a, b) | Iff (a, b) -> 1 + size a + size b

(* A clause under construction: negated and positive variable lists. *)
type proto = { pneg : Var.t list; ppos : Var.t list }

let proto_lit polarity v =
  if polarity then { pneg = []; ppos = [ v ] } else { pneg = [ v ]; ppos = [] }

(* Literal order inside a proto-clause is irrelevant — [Clause.make] sorts —
   so the unions use [rev_append], which never re-copies the longer side's
   spine more than once. *)
let proto_union a b =
  { pneg = List.rev_append a.pneg b.pneg; ppos = List.rev_append a.ppos b.ppos }

let rec cross = function
  | [] -> [ { pneg = []; ppos = [] } ] (* empty disjunction: the empty clause *)
  | [ cs ] -> cs
  | cs :: rest ->
      let tail = cross rest in
      List.concat_map (fun c -> List.map (proto_union c) tail) cs

(* CNF of a formula under a polarity, as a list of proto-clauses.  [None]
   stands for the unsatisfiable formula; the empty list for the valid one.
   This fuses the former negation-normal-form pass with the distribution
   pass — no NNF tree is materialized — and the clause LIST it produces is
   byte-identical to NNF-then-distribute's, order included (reduction
   outputs are order-sensitive through the engine trail, and the bench
   guard diffs them).  [lower] is only used at disjunctive positions,
   where the whole child clause set is needed for the cross product;
   conjunctive spines — the overwhelming bulk of generated constraint
   formulas — go through the [conj_rev]/[conj_fwd] pair, which prepends
   clauses directly onto the caller's accumulator instead of building
   per-child lists and re-copying them at every level of the spine.

   The old NNF fold [rev_append]ed each child's clause list into its
   conjunction's accumulator, so every nesting level reversed once and
   two levels cancelled.  The pair replays that exactly: [conj_rev]
   prepends the REVERSE of [f]'s clause list (one level of rev),
   [conj_fwd] prepends it in order (two levels, cancelled), and each
   conjunction case calls the other function on its children — left to
   right under [conj_fwd], right to left under [conj_rev]. *)
let rec lower polarity f =
  match f, polarity with
  | True, true | False, false -> Some []
  | True, false | False, true -> None
  | Var v, p -> Some [ proto_lit p v ]
  | Not g, p -> lower (not p) g
  | And _, true | Or _, false | Implies (_, _), false -> conj_fwd polarity f []
  | Iff (a, b), p -> lower p (And [ Implies (a, b); Implies (b, a) ])
  | And fs, false | Or fs, true ->
      (* Distribute: the clause set of a disjunction is the cross product of
         the children's clause sets, unioning literals.  An unsatisfiable
         child contributes nothing to the disjunction and is dropped — unless
         every child was unsatisfiable. *)
      let children = List.filter_map (lower polarity) fs in
      if children = [] && fs <> [] then None else Some (cross children)
  | Implies (a, b), true ->
      let children = List.filter_map Fun.id [ lower false a; lower true b ] in
      if children = [] then None else Some (cross children)

(* [conj_rev polarity f acc] prepends the reverse of [f]'s clause list. *)
and conj_rev polarity f acc =
  match f, polarity with
  | True, true | False, false -> Some acc
  | True, false | False, true -> None
  | Var v, p -> Some (proto_lit p v :: acc)
  | Not g, p -> conj_rev (not p) g acc
  | And fs, true | Or fs, false ->
      (* rev of the fold's output restores child order: f1's clauses first. *)
      let rec go = function
        | [] -> Some acc
        | g :: rest -> (
            match go rest with
            | None -> None
            | Some acc -> conj_fwd polarity g acc)
      in
      go fs
  | Implies (a, b), false -> (
      match conj_fwd false b acc with
      | None -> None
      | Some acc -> conj_fwd true a acc)
  | Iff (a, b), p -> conj_rev p (And [ Implies (a, b); Implies (b, a) ]) acc
  | And _, false | Or _, true | Implies (_, _), true -> (
      match lower polarity f with
      | None -> None
      | Some cs -> Some (List.rev_append cs acc))

(* [conj_fwd polarity f acc] prepends [f]'s clause list in order. *)
and conj_fwd polarity f acc =
  match f, polarity with
  | True, true | False, false -> Some acc
  | True, false | False, true -> None
  | Var v, p -> Some (proto_lit p v :: acc)
  | Not g, p -> conj_fwd (not p) g acc
  | And fs, true | Or fs, false ->
      (* The old fold itself: each child's list lands reversed, left to
         right, so the LAST child's clauses head the result. *)
      let rec go acc = function
        | [] -> Some acc
        | g :: rest -> (
            match conj_rev polarity g acc with
            | None -> None
            | Some acc -> go acc rest)
      in
      go acc fs
  | Implies (a, b), false -> (
      match conj_rev true a acc with
      | None -> None
      | Some acc -> conj_rev false b acc)
  | Iff (a, b), p -> conj_fwd p (And [ Implies (a, b); Implies (b, a) ]) acc
  | And _, false | Or _, true | Implies (_, _), true -> (
      match lower polarity f with
      | None -> None
      | Some cs -> Some (List.rev_append (List.rev cs) acc))

let to_cnf f =
  match conj_fwd true f [] with
  | None ->
      (* The empty clause marks the CNF unsatisfiable. *)
      Cnf.make [ Clause.make_exn ~neg:[] ~pos:[] ]
  | Some protos ->
      let clauses =
        List.filter_map (fun p -> Clause.make ~neg:p.pneg ~pos:p.ppos) protos
      in
      Cnf.make clauses

let rec pp pool ppf f =
  let pv = Var.pp pool in
  match f with
  | True -> Format.pp_print_string ppf "⊤"
  | False -> Format.pp_print_string ppf "⊥"
  | Var v -> pv ppf v
  | Not g -> Format.fprintf ppf "¬%a" (pp_atom pool) g
  | And fs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ")
        (pp_atom pool) ppf fs
  | Or fs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∨ ")
        (pp_atom pool) ppf fs
  | Implies (a, b) -> Format.fprintf ppf "%a ⇒ %a" (pp_atom pool) a (pp_atom pool) b
  | Iff (a, b) -> Format.fprintf ppf "%a ⇔ %a" (pp_atom pool) a (pp_atom pool) b

and pp_atom pool ppf f =
  match f with
  | True | False | Var _ | Not _ -> pp pool ppf f
  | And _ | Or _ | Implies _ | Iff _ -> Format.fprintf ppf "(%a)" (pp pool) f
