type t =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t

let var v = Var v

let conj = function [] -> True | [ f ] -> f | fs -> And fs

let disj = function [] -> False | [ f ] -> f | fs -> Or fs

let imply a b = Implies (a, b)

let imply_all premises conclusion = Implies (conj premises, conclusion)

let rec eval f m =
  match f with
  | True -> true
  | False -> false
  | Var v -> Assignment.mem v m
  | Not g -> not (eval g m)
  | And fs -> List.for_all (fun g -> eval g m) fs
  | Or fs -> List.exists (fun g -> eval g m) fs
  | Implies (a, b) -> (not (eval a m)) || eval b m
  | Iff (a, b) -> eval a m = eval b m

let rec vars = function
  | True | False -> Assignment.empty
  | Var v -> Assignment.singleton v
  | Not g -> vars g
  | And fs | Or fs -> Assignment.union_all (List.map vars fs)
  | Implies (a, b) | Iff (a, b) -> Assignment.union (vars a) (vars b)

let rec size = function
  | True | False | Var _ -> 1
  | Not g -> 1 + size g
  | And fs | Or fs -> List.fold_left (fun acc g -> acc + size g) 1 fs
  | Implies (a, b) | Iff (a, b) -> 1 + size a + size b

(* Negation normal form, tracking polarity.  [Iff] is expanded into the two
   implications before lowering. *)
type nnf =
  | NTrue
  | NFalse
  | NLit of bool * Var.t  (* polarity, variable *)
  | NAnd of nnf list
  | NOr of nnf list

let rec nnf polarity f =
  match f, polarity with
  | True, true | False, false -> NTrue
  | True, false | False, true -> NFalse
  | Var v, p -> NLit (p, v)
  | Not g, p -> nnf (not p) g
  | And fs, true -> NAnd (List.map (nnf true) fs)
  | And fs, false -> NOr (List.map (nnf false) fs)
  | Or fs, true -> NOr (List.map (nnf true) fs)
  | Or fs, false -> NAnd (List.map (nnf false) fs)
  | Implies (a, b), true -> NOr [ nnf false a; nnf true b ]
  | Implies (a, b), false -> NAnd [ nnf true a; nnf false b ]
  | Iff (a, b), p -> nnf p (And [ Implies (a, b); Implies (b, a) ])

(* A clause under construction: negated and positive variable lists. *)
type proto = { pneg : Var.t list; ppos : Var.t list }

let proto_lit polarity v =
  if polarity then { pneg = []; ppos = [ v ] } else { pneg = [ v ]; ppos = [] }

(* Literal order inside a proto-clause is irrelevant — [Clause.make] sorts —
   so the unions use [rev_append], which never re-copies the longer side's
   spine more than once. *)
let proto_union a b =
  { pneg = List.rev_append a.pneg b.pneg; ppos = List.rev_append a.ppos b.ppos }

(* CNF of an NNF formula as a list of proto-clauses.  [None] stands for the
   unsatisfiable formula; the empty list for the valid one.  Tautological
   clauses are dropped eagerly via [Clause.make]. *)
let rec cnf_clauses = function
  | NTrue -> Some []
  | NFalse -> None
  | NLit (p, v) -> Some [ proto_lit p v ]
  | NAnd fs ->
      List.fold_left
        (fun acc f ->
          match acc, cnf_clauses f with
          | Some cs, Some cs' -> Some (List.rev_append cs' cs)
          | None, _ | _, None -> None)
        (Some []) fs
  | NOr fs ->
      (* Distribute: the clause set of a disjunction is the cross product of
         the children's clause sets, unioning literals.  An unsatisfiable
         child contributes nothing to the disjunction and is dropped — unless
         every child was unsatisfiable. *)
      let children = List.filter_map cnf_clauses fs in
      if children = [] && fs <> [] then None else Some (cross children)

and cross = function
  | [] -> [ { pneg = []; ppos = [] } ] (* empty disjunction: the empty clause *)
  | [ cs ] -> cs
  | cs :: rest ->
      let tail = cross rest in
      List.concat_map (fun c -> List.map (proto_union c) tail) cs

let to_cnf f =
  match cnf_clauses (nnf true f) with
  | None ->
      (* The empty clause marks the CNF unsatisfiable. *)
      Cnf.make [ Clause.make_exn ~neg:[] ~pos:[] ]
  | Some protos ->
      let clauses =
        List.filter_map (fun p -> Clause.make ~neg:p.pneg ~pos:p.ppos) protos
      in
      Cnf.make clauses

let rec pp pool ppf f =
  let pv = Var.pp pool in
  match f with
  | True -> Format.pp_print_string ppf "⊤"
  | False -> Format.pp_print_string ppf "⊥"
  | Var v -> pv ppf v
  | Not g -> Format.fprintf ppf "¬%a" (pp_atom pool) g
  | And fs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ")
        (pp_atom pool) ppf fs
  | Or fs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∨ ")
        (pp_atom pool) ppf fs
  | Implies (a, b) -> Format.fprintf ppf "%a ⇒ %a" (pp_atom pool) a (pp_atom pool) b
  | Iff (a, b) -> Format.fprintf ppf "%a ⇔ %a" (pp_atom pool) a (pp_atom pool) b

and pp_atom pool ppf f =
  match f with
  | True | False | Var _ | Not _ -> pp pool ppf f
  | And _ | Or _ | Implies _ | Iff _ -> Format.fprintf ppf "(%a)" (pp pool) f
