module Addr = Lbr_server.Addr
module Wire = Lbr_server.Wire
module Client = Lbr_server.Client
module Journal = Lbr_server.Journal
module Scheduler = Lbr_server.Scheduler
module Server = Lbr_server.Server
module Metrics = Lbr_obs.Metrics

type config = {
  workers : Addr.t list;
  lanes : int;
  queue_depth : int;
  cache_path : string option;
  journal_dir : string option;
}

type cjob = {
  cj_id : string;
  cj_spec : Wire.spec;
  cj_key : string;  (* content digest — the cache's job key *)
  cj_on_event : Scheduler.event -> unit;  (* never raises *)
  cj_cancelled : bool Atomic.t;
  mutable cj_started : bool;  (* Started already emitted (failover re-runs don't repeat it) *)
  mutable cj_attempts : int;  (* failover resubmissions so far *)
  mutable cj_best : (float * int * int) option;
  mutable cj_status : Scheduler.status;
  mutable cj_remote : (int * string) option;  (* worker id, worker-side job id *)
}

type worker = {
  w_id : int;
  w_addr : Addr.t;
  w_queue : cjob Queue.t;
  mutable w_alive : bool;
  w_gauge : Metrics.gauge;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* work available / drain progress; broadcast on every transition *)
  workers : worker array;
  lanes : int;
  queue_depth : int;
  vcache : Cache.t;
  journal : Journal.t option;
  table : (string, cjob) Hashtbl.t;
  mutable seq : int;
  mutable queued : int;
  mutable running : int;
  mutable draining : bool;
  mutable pumps : Thread.t list;
  mutable rr : int;  (* round-robin shard pointer *)
  started_at : float;
  mutable recovered : int;
  m_steals : Metrics.counter;
  m_failovers : Metrics.counter;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_submitted : Metrics.counter;
  m_done : Metrics.counter;
  m_failed : Metrics.counter;
  g_alive : Metrics.gauge;
  g_entries : Metrics.gauge;
}

let recovered t = t.recovered
let cache t = t.vcache

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_depth w = Metrics.set_gauge w.w_gauge (float_of_int (Queue.length w.w_queue))

let alive_count t =
  Array.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 t.workers

(* Shortest live queue — where redistributed jobs land. *)
let shortest_live t =
  Array.fold_left
    (fun best w ->
      if not w.w_alive then best
      else
        match best with
        | Some b when Queue.length b.w_queue <= Queue.length w.w_queue -> best
        | _ -> Some w)
    None t.workers

(* Longest non-empty live queue other than [self] — who to steal from. *)
let steal_victim t self =
  Array.fold_left
    (fun best w ->
      if (not w.w_alive) || w.w_id = self.w_id || Queue.is_empty w.w_queue then
        best
      else
        match best with
        | Some b when Queue.length b.w_queue >= Queue.length w.w_queue -> best
        | _ -> Some w)
    None t.workers

let journal_marker t j (status : Scheduler.status) =
  match t.journal with
  | None -> ()
  | Some jr -> (
      match status with
      | Done _ -> Journal.mark_done jr ~id:j.cj_id
      | Failed reason -> Journal.mark_failed jr ~id:j.cj_id ~reason
      | Cancelled -> Journal.mark_cancelled jr ~id:j.cj_id
      | Queued | Running -> ())

(* Must hold the lock.  Moves [j] to a terminal state, accounts, journals,
   and delivers the Finished event before anyone can observe the state
   change (same discipline as the scheduler: a finished drain implies
   every handler ran). *)
let finalize t j status =
  (match j.cj_status with
  | Running -> t.running <- t.running - 1
  | Queued -> t.queued <- t.queued - 1
  | Done _ | Failed _ | Cancelled -> ());
  j.cj_status <- status;
  j.cj_remote <- None;
  (match status with
  | Done _ -> Metrics.incr t.m_done
  | Failed _ -> Metrics.incr t.m_failed
  | _ -> ());
  journal_marker t j status;
  (* Terminal jobs leave the table — it indexes cancellable work, and an
     unpruned table would both grow without bound and make [stats] list
     every historical job forever. *)
  Hashtbl.remove t.table j.cj_id;
  j.cj_on_event (Scheduler.Finished status);
  Condition.broadcast t.cond

(* Must hold the lock.  Mark [w] dead and move its queue — plus the
   in-flight job [inflight], if any — onto survivors.  With no survivors
   left everything fails. *)
let worker_dead t w inflight =
  if w.w_alive then begin
    w.w_alive <- false;
    Metrics.set_gauge t.g_alive (float_of_int (alive_count t))
  end;
  let orphans = Queue.fold (fun acc j -> j :: acc) [] w.w_queue in
  Queue.clear w.w_queue;
  set_depth w;
  let orphans = List.rev orphans in
  let requeue from_running j =
    if from_running then begin
      j.cj_attempts <- j.cj_attempts + 1;
      Metrics.incr t.m_failovers
    end;
    if Atomic.get j.cj_cancelled then finalize t j Cancelled
    else if from_running && j.cj_attempts >= Array.length t.workers then
      finalize t j
        (Failed
           (Printf.sprintf "gave up after %d worker failures" j.cj_attempts))
    else
      match shortest_live t with
      | None -> finalize t j (Failed "no live workers")
      | Some target ->
          if from_running then begin
            t.running <- t.running - 1;
            t.queued <- t.queued + 1;
            j.cj_status <- Scheduler.Queued;
            j.cj_remote <- None
          end;
          Queue.push j target.w_queue;
          set_depth target
  in
  List.iter (requeue false) orphans;
  Option.iter (requeue true) inflight;
  Condition.broadcast t.cond

(* Fire-and-forget remote cancel of a delegated job. *)
let remote_cancel t wid remote_id =
  let w = t.workers.(wid) in
  match Client.connect (Addr.to_string w.w_addr) with
  | Error _ -> ()
  | Ok c ->
      ignore (Client.cancel c remote_id);
      Client.close c

(* A single failed connect is not a death certificate — a full accept
   backlog or a momentary network blip refuses transiently, and treating
   it as fatal would monotonically shrink the cluster.  Probe a few
   times with backoff before giving up on the worker. *)
let connect_worker w =
  let rec go attempt delay =
    match Client.connect (Addr.to_string w.w_addr) with
    | Ok _ as ok -> ok
    | Error _ as e ->
        if attempt >= 3 then e
        else begin
          Thread.delay delay;
          go (attempt + 1) (delay *. 2.)
        end
  in
  go 1 0.05

(* Run one job on worker [w].  Called from a pump thread, lock NOT held. *)
let run_one t w j =
  let seeds = Cache.seeds t.vcache ~job:j.cj_key in
  if not j.cj_started then begin
    j.cj_started <- true;
    j.cj_on_event Scheduler.Started
  end;
  match connect_worker w with
  | Error _ -> locked t (fun () -> worker_dead t w (Some j))
  | Ok c ->
      let on_progress (p : Client.progress) =
        j.cj_best <- Some (p.sim_time, p.classes, p.bytes);
        j.cj_on_event
          (Scheduler.Progress
             { sim_time = p.sim_time; classes = p.classes; bytes = p.bytes })
      in
      let on_verdict ~key ~ok =
        (* Mirror the worker's WAL before anything downstream can observe
           the verdict: cache first (failover seeds come from here), then
           our own journal, then the event stream. *)
        Cache.store t.vcache ~job:j.cj_key ~key ok;
        Metrics.set_gauge t.g_entries (float_of_int (Cache.entries t.vcache));
        (match t.journal with
        | Some jr -> Journal.append_pred jr ~id:j.cj_id ~key ok
        | None -> ());
        j.cj_on_event (Scheduler.Evaluated { key; ok })
      in
      let on_accepted remote_id =
        let cancel_now =
          locked t (fun () ->
              j.cj_remote <- Some (w.w_id, remote_id);
              Atomic.get j.cj_cancelled)
        in
        (* A cancel that raced the handoff could not reach the worker; it
           parked the flag — honour it now that the remote id is known. *)
        if cancel_now then remote_cancel t w.w_id remote_id
      in
      let result =
        Client.submit_ex c ~on_progress ~on_verdict ~on_accepted ~seeds
          j.cj_spec
      in
      Client.close c;
      match result with
      | Ok (_, stats, pool_bytes) ->
          Metrics.add t.m_hits stats.Wire.replayed_runs;
          Metrics.add t.m_misses
            (max 0 (stats.Wire.predicate_runs - stats.Wire.replayed_runs));
          locked t (fun () -> finalize t j (Done (stats, pool_bytes)))
      | Error (`Job_failed reason) ->
          locked t (fun () ->
              if Atomic.get j.cj_cancelled then finalize t j Cancelled
              else finalize t j (Failed reason))
      | Error (`Rejected (_, retry_after)) ->
          (* Transient backpressure on the worker, not a death: park the
             job back on a queue and let the pumps breathe. *)
          locked t (fun () ->
              t.running <- t.running - 1;
              t.queued <- t.queued + 1;
              j.cj_status <- Scheduler.Queued;
              (match shortest_live t with
              | Some target -> Queue.push j target.w_queue; set_depth target
              | None -> finalize t j (Failed "no live workers"));
              Condition.broadcast t.cond);
          Thread.delay (Float.min (Float.max retry_after 0.05) 1.0)
      | Error (`Conn _) ->
          (* The worker died under us (kill -9, reset, EOF mid-stream).
             Every verdict it streamed before dying is already in the
             cache, so the resubmission replays them instead of paying
             again. *)
          locked t (fun () -> worker_dead t w (Some j))

(* Pump thread: drive worker [w], stealing when its queue runs dry. *)
let pump t w () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec acquire () =
      if not w.w_alive then None
      else if not (Queue.is_empty w.w_queue) then Some (Queue.pop w.w_queue, w)
      else
        match steal_victim t w with
        | Some victim ->
            Metrics.incr t.m_steals;
            Some (Queue.pop victim.w_queue, victim)
        | None ->
            if t.draining && t.queued = 0 && t.running = 0 then None
            else begin
              Condition.wait t.cond t.mutex;
              acquire ()
            end
    in
    let job = acquire () in
    (match job with
    | Some (j, from) ->
        set_depth from;
        t.queued <- t.queued - 1;
        t.running <- t.running + 1;
        j.cj_status <- Scheduler.Running
    | None -> ());
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some (j, _) ->
        if Atomic.get j.cj_cancelled then
          locked t (fun () -> finalize t j Cancelled)
        else run_one t w j;
        next ()
  in
  next ()

let ping_worker addr =
  match Client.connect (Addr.to_string addr) with
  | Error m ->
      failwith (Printf.sprintf "worker %s unreachable: %s" (Addr.to_string addr) m)
  | Ok c ->
      let v = Client.negotiated_version c in
      Client.close c;
      if v < 3 then
        failwith
          (Printf.sprintf "worker %s speaks protocol v%d; the cluster needs v3"
             (Addr.to_string addr) v)

let next_id t =
  t.seq <- t.seq + 1;
  Printf.sprintf "job-%06d" t.seq

(* Must hold the lock.  Round-robin shard of a fresh job, starting at
   worker 0 and skipping the dead.  The job counts as queued from here on
   either way: finalize balances the count on the no-workers path. *)
let shard t j =
  t.queued <- t.queued + 1;
  match shortest_live t with
  | None -> finalize t j (Failed "no live workers")
  | Some _ ->
      let n = Array.length t.workers in
      let rec pick i =
        let w = t.workers.((t.rr + i) mod n) in
        if w.w_alive then begin
          t.rr <- (t.rr + i + 1) mod n;
          w
        end
        else pick (i + 1)
      in
      let w = pick 0 in
      Queue.push j w.w_queue;
      set_depth w;
      Condition.broadcast t.cond

let create (config : config) =
  if config.workers = [] then invalid_arg "Coordinator.create: no workers";
  if config.lanes < 1 then invalid_arg "Coordinator.create: lanes < 1";
  List.iter ping_worker config.workers;
  let vcache = Cache.create ?path:config.cache_path () in
  let journal = Option.map Journal.open_dir config.journal_dir in
  let workers =
    Array.of_list config.workers
    |> Array.mapi (fun i addr ->
           {
             w_id = i;
             w_addr = addr;
             w_queue = Queue.create ();
             w_alive = true;
             w_gauge =
               Metrics.gauge
                 ~help:(Printf.sprintf "jobs queued for worker %d" i)
                 (Printf.sprintf "lbr_cluster_w%d_queue_depth" i);
           })
  in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      workers;
      lanes = config.lanes;
      queue_depth = max 1 config.queue_depth;
      vcache;
      journal;
      table = Hashtbl.create 64;
      seq = (match journal with Some j -> Journal.max_job_number j | None -> 0);
      queued = 0;
      running = 0;
      draining = false;
      pumps = [];
      rr = 0;
      started_at = Unix.gettimeofday ();
      recovered = 0;
      m_steals = Metrics.counter ~help:"jobs stolen between worker queues" "lbr_cluster_steals_total";
      m_failovers = Metrics.counter ~help:"in-flight jobs resubmitted after a worker death" "lbr_cluster_failovers_total";
      m_hits = Metrics.counter ~help:"predicate verdicts answered by the cluster cache" "lbr_cluster_cache_hits_total";
      m_misses = Metrics.counter ~help:"predicate verdicts that had to execute" "lbr_cluster_cache_misses_total";
      m_submitted = Metrics.counter ~help:"jobs admitted by the coordinator" "lbr_cluster_jobs_submitted_total";
      m_done = Metrics.counter ~help:"delegated jobs completed" "lbr_cluster_jobs_done_total";
      m_failed = Metrics.counter ~help:"delegated jobs failed" "lbr_cluster_jobs_failed_total";
      g_alive = Metrics.gauge ~help:"live workers" "lbr_cluster_workers_alive";
      g_entries = Metrics.gauge ~help:"verdicts in the cluster cache" "lbr_cluster_cache_entries";
    }
  in
  Metrics.set_gauge t.g_alive (float_of_int (Array.length workers));
  Metrics.set_gauge t.g_entries (float_of_int (Cache.entries vcache));
  (* Re-admit journaled jobs that never reached a terminal marker, folding
     their paid verdicts into the cache so the re-run replays them. *)
  let recovered_n =
    match journal with
    | None -> 0
    | Some jr ->
        List.fold_left
          (fun n (id, spec_bytes) ->
            match Wire.spec_of_string spec_bytes with
            | Error _ -> n
            | Ok spec ->
                let key = Cache.job_key spec in
                Hashtbl.iter
                  (fun k ok -> Cache.store t.vcache ~job:key ~key:k ok)
                  (Journal.replay jr ~id);
                let j =
                  {
                    cj_id = id;
                    cj_spec = spec;
                    cj_key = key;
                    cj_on_event = ignore;
                    cj_cancelled = Atomic.make false;
                    cj_started = false;
                    cj_attempts = 0;
                    cj_best = None;
                    cj_status = Scheduler.Queued;
                    cj_remote = None;
                  }
                in
                Hashtbl.replace t.table id j;
                locked t (fun () -> shard t j);
                n + 1)
          0 (Journal.pending jr)
  in
  Metrics.set_gauge t.g_entries (float_of_int (Cache.entries vcache));
  t.recovered <- recovered_n;
  t.pumps <-
    List.concat_map
      (fun w ->
        List.init t.lanes (fun _ -> Thread.create (pump t w) ()))
      (Array.to_list workers);
  t

let submit t ~on_event ~seeds spec =
  Mutex.lock t.mutex;
  let outcome =
    if t.draining then Error `Draining
    else if t.queued >= t.queue_depth then
      Error (`Queue_full (Float.max 0.1 (0.05 *. float_of_int t.queued)))
    else begin
      let id = next_id t in
      let safe_event ev = try on_event id ev with _ -> () in
      let key = Cache.job_key spec in
      (* Client-supplied seeds pre-warm the shared cache: any worker that
         later picks up this content digest replays them. *)
      List.iter (fun (k, ok) -> Cache.store t.vcache ~job:key ~key:k ok) seeds;
      (match t.journal with
      | Some jr -> Journal.record_job jr ~id ~spec:(Wire.spec_to_string spec)
      | None -> ());
      let j =
        {
          cj_id = id;
          cj_spec = spec;
          cj_key = key;
          cj_on_event = safe_event;
          cj_cancelled = Atomic.make false;
          cj_started = false;
          cj_attempts = 0;
          cj_best = None;
          cj_status = Scheduler.Queued;
          cj_remote = None;
        }
      in
      Hashtbl.replace t.table id j;
      Metrics.incr t.m_submitted;
      shard t j;
      Ok id
    end
  in
  Mutex.unlock t.mutex;
  outcome

let cancel t id =
  let found, remote =
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> (false, None)
        | Some j -> (
            match j.cj_status with
            | Done _ | Failed _ | Cancelled -> (false, None)
            | Queued | Running ->
                Atomic.set j.cj_cancelled true;
                Condition.broadcast t.cond;
                (true, j.cj_remote)))
  in
  (match remote with
  | Some (wid, remote_id) -> remote_cancel t wid remote_id
  | None -> ());
  found

let stats t =
  locked t (fun () ->
      (* Non-terminal jobs only, like [Scheduler.snapshot] — finalize
         prunes the table, so the filter is just the same invariant
         stated twice. *)
      let job_stats =
        Hashtbl.fold
          (fun _ j acc ->
            match j.cj_status with
            | Scheduler.Queued | Scheduler.Running ->
                {
                  Wire.js_id = j.cj_id;
                  js_running = (j.cj_status = Scheduler.Running);
                  js_best = j.cj_best;
                }
                :: acc
            | Scheduler.Done _ | Scheduler.Failed _ | Scheduler.Cancelled -> acc)
          t.table []
        |> List.sort (fun a b -> compare a.Wire.js_id b.Wire.js_id)
      in
      {
        Wire.queued_jobs = t.queued;
        running_jobs = t.running;
        job_stats;
        (* For a coordinator the "oracle" is the cluster cache: queries =
           every predicate verdict observed, memo hits = the cached ones. *)
        oracle_queries =
          Metrics.counter_value t.m_hits + Metrics.counter_value t.m_misses;
        oracle_memo_hits = Metrics.counter_value t.m_hits;
        uptime = Unix.gettimeofday () -. t.started_at;
        metrics_text = Metrics.render_prometheus ();
      })

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.cond;
  while t.queued + t.running > 0 do
    Condition.wait t.cond t.mutex
  done;
  let pumps = t.pumps in
  t.pumps <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join pumps;
  Cache.close t.vcache;
  Option.iter Journal.close t.journal

let backend t =
  {
    Server.b_submit = (fun ~on_event ~seeds spec -> submit t ~on_event ~seeds spec);
    b_cancel = cancel t;
    b_stats = (fun () -> stats t);
    b_drain = (fun () -> drain t);
  }
