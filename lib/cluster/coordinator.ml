module Addr = Lbr_server.Addr
module Wire = Lbr_server.Wire
module Client = Lbr_server.Client
module Journal = Lbr_server.Journal
module Scheduler = Lbr_server.Scheduler
module Server = Lbr_server.Server
module Metrics = Lbr_obs.Metrics
module Trace = Lbr_obs.Trace
module Flight = Lbr_obs.Flight

type config = {
  workers : Addr.t list;
  lanes : int;
  queue_depth : int;
  cache_path : string option;
  journal_dir : string option;
  poll_interval : float;
      (* seconds between federation sweeps over the workers; <= 0 disables
         the background thread (tests call [poll_workers] directly) *)
}

type cjob = {
  cj_id : string;
  cj_spec : Wire.spec;
  cj_key : string;  (* content digest — the cache's job key *)
  cj_ctx : Trace.Context.t option;
      (* forwarded to workers: trace id (client's or minted here) and the
         coordinator's per-job span id as the parent, so every worker-side
         span the job records parents under this coordinator's span *)
  cj_on_event : Scheduler.event -> unit;  (* never raises *)
  cj_cancelled : bool Atomic.t;
  cj_submitted : float;  (* Trace.now at admission — the job span's start *)
  mutable cj_queued_at : float;  (* last time it entered a worker queue *)
  mutable cj_started : bool;  (* Started already emitted (failover re-runs don't repeat it) *)
  mutable cj_attempts : int;  (* failover resubmissions so far *)
  mutable cj_best : (float * int * int) option;
  mutable cj_status : Scheduler.status;
  mutable cj_remote : (int * string) option;  (* worker id, worker-side job id *)
}

type worker = {
  w_id : int;
  w_addr : Addr.t;
  w_queue : cjob Queue.t;
  mutable w_alive : bool;
  w_gauge : Metrics.gauge;
  w_hb_gauge : Metrics.gauge;  (* seconds since the last successful poll *)
  mutable w_last_poll : float;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* work available / drain progress; broadcast on every transition *)
  workers : worker array;
  lanes : int;
  queue_depth : int;
  vcache : Cache.t;
  journal : Journal.t option;
  table : (string, cjob) Hashtbl.t;
  mutable seq : int;
  mutable queued : int;
  mutable running : int;
  mutable draining : bool;
  mutable pumps : Thread.t list;
  mutable rr : int;  (* round-robin shard pointer *)
  started_at : float;
  mutable recovered : int;
  poll_interval : float;
  fed_mutex : Mutex.t;  (* guards fed_dumps; never taken under [mutex] held
                           by someone who also wants [fed_mutex] first *)
  fed_dumps : Metrics.dump option array;  (* last pull, indexed by worker id *)
  fed_stop : bool Atomic.t;
  mutable fed_thread : Thread.t option;
  m_steals : Metrics.counter;
  m_failovers : Metrics.counter;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_submitted : Metrics.counter;
  m_done : Metrics.counter;
  m_failed : Metrics.counter;
  g_alive : Metrics.gauge;
  g_entries : Metrics.gauge;
  g_waste : Metrics.gauge;
}

let recovered t = t.recovered
let cache t = t.vcache

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_depth w = Metrics.set_gauge w.w_gauge (float_of_int (Queue.length w.w_queue))

let alive_count t =
  Array.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 t.workers

(* Shortest live queue — where redistributed jobs land. *)
let shortest_live t =
  Array.fold_left
    (fun best w ->
      if not w.w_alive then best
      else
        match best with
        | Some b when Queue.length b.w_queue <= Queue.length w.w_queue -> best
        | _ -> Some w)
    None t.workers

(* Longest non-empty live queue other than [self] — who to steal from. *)
let steal_victim t self =
  Array.fold_left
    (fun best w ->
      if (not w.w_alive) || w.w_id = self.w_id || Queue.is_empty w.w_queue then
        best
      else
        match best with
        | Some b when Queue.length b.w_queue >= Queue.length w.w_queue -> best
        | _ -> Some w)
    None t.workers

let journal_marker t j (status : Scheduler.status) =
  match t.journal with
  | None -> ()
  | Some jr -> (
      match status with
      | Done _ -> Journal.mark_done jr ~id:j.cj_id
      | Failed reason -> Journal.mark_failed jr ~id:j.cj_id ~reason
      | Cancelled -> Journal.mark_cancelled jr ~id:j.cj_id
      | Queued | Running -> ())

(* Must hold the lock.  Moves [j] to a terminal state, accounts, journals,
   and delivers the Finished event before anyone can observe the state
   change (same discipline as the scheduler: a finished drain implies
   every handler ran). *)
let finalize t j status =
  (match j.cj_status with
  | Running -> t.running <- t.running - 1
  | Queued -> t.queued <- t.queued - 1
  | Done _ | Failed _ | Cancelled -> ());
  j.cj_status <- status;
  j.cj_remote <- None;
  (match status with
  | Done _ -> Metrics.incr t.m_done
  | Failed _ -> Metrics.incr t.m_failed
  | _ -> ());
  let state_name =
    match status with
    | Scheduler.Done _ -> "done"
    | Scheduler.Failed _ -> "failed"
    | Scheduler.Cancelled -> "cancelled"
    | Scheduler.Queued -> "queued"
    | Scheduler.Running -> "running"
  in
  Flight.transition ~job:j.cj_id ~state:state_name;
  (* The coordinator's job span: admission to terminal state.  Its
     [span_id] arg is the span id every worker-side span for this job
     carries as [ctx.parent] — the merge key for cross-node parenting. *)
  (match j.cj_ctx with
  | None -> ()
  | Some ctx ->
      Trace.span_between "coordinator.job" ~start:j.cj_submitted
        ~finish:(Trace.now ())
        ~args:(fun () ->
          [
            ("job", Trace.Str j.cj_id);
            ("span_id", Trace.Str ctx.Trace.Context.parent_span);
            ("ctx.trace", Trace.Str ctx.Trace.Context.trace_id);
            ("state", Trace.Str state_name);
            ("attempts", Trace.Int j.cj_attempts);
          ]));
  journal_marker t j status;
  (* Terminal jobs leave the table — it indexes cancellable work, and an
     unpruned table would both grow without bound and make [stats] list
     every historical job forever. *)
  Hashtbl.remove t.table j.cj_id;
  j.cj_on_event (Scheduler.Finished status);
  Condition.broadcast t.cond

(* Must hold the lock.  Mark [w] dead and move its queue — plus the
   in-flight job [inflight], if any — onto survivors.  With no survivors
   left everything fails. *)
let worker_dead t w inflight =
  if w.w_alive then begin
    w.w_alive <- false;
    Metrics.set_gauge t.g_alive (float_of_int (alive_count t))
  end;
  let orphans = Queue.fold (fun acc j -> j :: acc) [] w.w_queue in
  Queue.clear w.w_queue;
  set_depth w;
  let orphans = List.rev orphans in
  let requeue from_running j =
    if from_running then begin
      j.cj_attempts <- j.cj_attempts + 1;
      Metrics.incr t.m_failovers;
      (* One edge per reseed: from the dispatch that died to the moment
         the coordinator re-queued the job elsewhere. *)
      Trace.span_between "cluster.failover" ~start:j.cj_queued_at
        ~finish:(Trace.now ())
        ~args:(fun () ->
          [
            ("job", Trace.Str j.cj_id);
            ("dead_worker", Trace.Int w.w_id);
            ("attempt", Trace.Int j.cj_attempts);
          ])
    end;
    if Atomic.get j.cj_cancelled then finalize t j Cancelled
    else if from_running && j.cj_attempts >= Array.length t.workers then
      finalize t j
        (Failed
           (Printf.sprintf "gave up after %d worker failures" j.cj_attempts))
    else
      match shortest_live t with
      | None -> finalize t j (Failed "no live workers")
      | Some target ->
          if from_running then begin
            t.running <- t.running - 1;
            t.queued <- t.queued + 1;
            j.cj_status <- Scheduler.Queued;
            j.cj_remote <- None
          end;
          j.cj_queued_at <- Trace.now ();
          Queue.push j target.w_queue;
          set_depth target
  in
  List.iter (requeue false) orphans;
  Option.iter (requeue true) inflight;
  Condition.broadcast t.cond

(* Fire-and-forget remote cancel of a delegated job. *)
let remote_cancel t wid remote_id =
  let w = t.workers.(wid) in
  match Client.connect (Addr.to_string w.w_addr) with
  | Error _ -> ()
  | Ok c ->
      ignore (Client.cancel c remote_id);
      Client.close c

(* A single failed connect is not a death certificate — a full accept
   backlog or a momentary network blip refuses transiently, and treating
   it as fatal would monotonically shrink the cluster.  Probe a few
   times with backoff before giving up on the worker. *)
let connect_worker w =
  let rec go attempt delay =
    match Client.connect (Addr.to_string w.w_addr) with
    | Ok _ as ok -> ok
    | Error _ as e ->
        if attempt >= 3 then e
        else begin
          Thread.delay delay;
          go (attempt + 1) (delay *. 2.)
        end
  in
  go 1 0.05

(* Run one job on worker [w].  Called from a pump thread, lock NOT held.
   Runs under the job's trace context so every span and instant the
   dispatch records carries the job's trace id and parent span. *)
let run_one t w j =
  Trace.with_context j.cj_ctx @@ fun () ->
  let seeds = Cache.seeds t.vcache ~job:j.cj_key in
  if not j.cj_started then begin
    j.cj_started <- true;
    j.cj_on_event Scheduler.Started
  end;
  Trace.instant "coordinator.dispatch"
    ~args:(fun () ->
      [ ("job", Trace.Str j.cj_id); ("worker", Trace.Int w.w_id) ]);
  match connect_worker w with
  | Error _ -> locked t (fun () -> worker_dead t w (Some j))
  | Ok c ->
      let on_progress (p : Client.progress) =
        j.cj_best <- Some (p.sim_time, p.classes, p.bytes);
        j.cj_on_event
          (Scheduler.Progress
             { sim_time = p.sim_time; classes = p.classes; bytes = p.bytes })
      in
      let on_verdict ~key ~ok =
        (* Mirror the worker's WAL before anything downstream can observe
           the verdict: cache first (failover seeds come from here), then
           our own journal, then the event stream. *)
        Cache.store t.vcache ~job:j.cj_key ~key ok;
        Metrics.set_gauge t.g_entries (float_of_int (Cache.entries t.vcache));
        (match t.journal with
        | Some jr -> Journal.append_pred jr ~id:j.cj_id ~key ok
        | None -> ());
        j.cj_on_event (Scheduler.Evaluated { key; ok; ctx = j.cj_ctx })
      in
      let on_accepted remote_id =
        let cancel_now =
          locked t (fun () ->
              j.cj_remote <- Some (w.w_id, remote_id);
              Atomic.get j.cj_cancelled)
        in
        (* A cancel that raced the handoff could not reach the worker; it
           parked the flag — honour it now that the remote id is known. *)
        if cancel_now then remote_cancel t w.w_id remote_id
      in
      let result =
        Client.submit_ex c ~on_progress ~on_verdict ~on_accepted ~seeds
          j.cj_spec
      in
      Client.close c;
      match result with
      | Ok (_, stats, pool_bytes) ->
          Metrics.add t.m_hits stats.Wire.replayed_runs;
          Metrics.add t.m_misses
            (max 0 (stats.Wire.predicate_runs - stats.Wire.replayed_runs));
          locked t (fun () -> finalize t j (Done (stats, pool_bytes)))
      | Error (`Job_failed reason) ->
          locked t (fun () ->
              if Atomic.get j.cj_cancelled then finalize t j Cancelled
              else finalize t j (Failed reason))
      | Error (`Rejected (_, retry_after)) ->
          (* Transient backpressure on the worker, not a death: park the
             job back on a queue and let the pumps breathe. *)
          locked t (fun () ->
              t.running <- t.running - 1;
              t.queued <- t.queued + 1;
              j.cj_status <- Scheduler.Queued;
              (match shortest_live t with
              | Some target -> Queue.push j target.w_queue; set_depth target
              | None -> finalize t j (Failed "no live workers"));
              Condition.broadcast t.cond);
          Thread.delay (Float.min (Float.max retry_after 0.05) 1.0)
      | Error (`Conn _) ->
          (* The worker died under us (kill -9, reset, EOF mid-stream).
             Every verdict it streamed before dying is already in the
             cache, so the resubmission replays them instead of paying
             again. *)
          locked t (fun () -> worker_dead t w (Some j))

(* Pump thread: drive worker [w], stealing when its queue runs dry. *)
let pump t w () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec acquire () =
      if not w.w_alive then None
      else if not (Queue.is_empty w.w_queue) then Some (Queue.pop w.w_queue, w)
      else
        match steal_victim t w with
        | Some victim ->
            Metrics.incr t.m_steals;
            let j = Queue.pop victim.w_queue in
            (* The steal edge: how long the job sat on the victim's queue
               before this pump carried it across. *)
            Trace.span_between "cluster.steal" ~start:j.cj_queued_at
              ~finish:(Trace.now ())
              ~args:(fun () ->
                [
                  ("job", Trace.Str j.cj_id);
                  ("from_worker", Trace.Int victim.w_id);
                  ("to_worker", Trace.Int w.w_id);
                ]);
            Some (j, victim)
        | None ->
            if t.draining && t.queued = 0 && t.running = 0 then None
            else begin
              Condition.wait t.cond t.mutex;
              acquire ()
            end
    in
    let job = acquire () in
    (match job with
    | Some (j, from) ->
        set_depth from;
        t.queued <- t.queued - 1;
        t.running <- t.running + 1;
        j.cj_status <- Scheduler.Running;
        Flight.transition ~job:j.cj_id ~state:"running"
    | None -> ());
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some (j, _) ->
        if Atomic.get j.cj_cancelled then
          locked t (fun () -> finalize t j Cancelled)
        else run_one t w j;
        next ()
  in
  next ()

let ping_worker addr =
  match Client.connect (Addr.to_string addr) with
  | Error m ->
      failwith (Printf.sprintf "worker %s unreachable: %s" (Addr.to_string addr) m)
  | Ok c ->
      let v = Client.negotiated_version c in
      Client.close c;
      if v < 3 then
        failwith
          (Printf.sprintf "worker %s speaks protocol v%d; the cluster needs v3"
             (Addr.to_string addr) v)

let next_id t =
  t.seq <- t.seq + 1;
  Printf.sprintf "job-%06d" t.seq

(* Must hold the lock.  Round-robin shard of a fresh job, starting at
   worker 0 and skipping the dead.  The job counts as queued from here on
   either way: finalize balances the count on the no-workers path. *)
let shard t j =
  t.queued <- t.queued + 1;
  match shortest_live t with
  | None -> finalize t j (Failed "no live workers")
  | Some _ ->
      let n = Array.length t.workers in
      let rec pick i =
        let w = t.workers.((t.rr + i) mod n) in
        if w.w_alive then begin
          t.rr <- (t.rr + i + 1) mod n;
          w
        end
        else pick (i + 1)
      in
      let w = pick 0 in
      j.cj_queued_at <- Trace.now ();
      Queue.push j w.w_queue;
      set_depth w;
      Condition.broadcast t.cond

(* ------------------------------------------------------------------ *)
(* Metrics federation                                                  *)

let worker_label w = Printf.sprintf "w%d" w.w_id

(* Per-worker dumps (workers that have been polled at least once) plus
   the exact merge of the coordinator's own registry with all of them —
   the "cluster" view.  Merge semantics are {!Metrics.merge_dumps}:
   counters and gauges sum, histograms merge bucket-wise. *)
let federated t =
  Mutex.lock t.fed_mutex;
  let per_worker =
    Array.to_list t.workers
    |> List.filter_map (fun w ->
           Option.map (fun d -> (worker_label w, d)) t.fed_dumps.(w.w_id))
  in
  Mutex.unlock t.fed_mutex;
  let merged = Metrics.merge_dumps (Metrics.dump () :: List.map snd per_worker) in
  (per_worker, merged)

(* One federation sweep: pull every live worker's registry over
   [Metrics_dump_request], refresh heartbeat-age gauges, and recompute
   the cluster-wide speculation waste ratio from the merged view.  All
   network I/O happens outside both locks; a failed pull leaves the
   previous dump in place (and the heartbeat age growing). *)
let poll_workers t =
  Array.iter
    (fun w ->
      if w.w_alive then
        match Client.connect (Addr.to_string w.w_addr) with
        | Error _ -> ()
        | Ok c ->
            (match Client.metrics_dump c with
            | Ok (_node, dump) ->
                Mutex.lock t.fed_mutex;
                t.fed_dumps.(w.w_id) <- Some dump;
                w.w_last_poll <- Unix.gettimeofday ();
                Mutex.unlock t.fed_mutex
            | Error _ -> ());
            Client.close c)
    t.workers;
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w -> Metrics.set_gauge w.w_hb_gauge (now -. w.w_last_poll))
    t.workers;
  let _, merged = federated t in
  let cval name =
    match Metrics.find_in_dump merged name with
    | Some (Metrics.D_counter n) -> n
    | _ -> 0
  in
  let launched = cval "lbr_spec_launched_total" in
  let cancelled = cval "lbr_spec_cancelled_total" in
  if launched > 0 then
    Metrics.set_gauge t.g_waste (float_of_int cancelled /. float_of_int launched)

let fed_loop t () =
  while not (Atomic.get t.fed_stop) do
    poll_workers t;
    (* Sleep in slices so drain never waits out a full interval. *)
    let rec sleep remaining =
      if remaining > 0. && not (Atomic.get t.fed_stop) then begin
        Thread.delay (Float.min 0.1 remaining);
        sleep (remaining -. 0.1)
      end
    in
    sleep t.poll_interval
  done

let create (config : config) =
  if config.workers = [] then invalid_arg "Coordinator.create: no workers";
  if config.lanes < 1 then invalid_arg "Coordinator.create: lanes < 1";
  List.iter ping_worker config.workers;
  let vcache = Cache.create ?path:config.cache_path () in
  let journal = Option.map Journal.open_dir config.journal_dir in
  let workers =
    Array.of_list config.workers
    |> Array.mapi (fun i addr ->
           {
             w_id = i;
             w_addr = addr;
             w_queue = Queue.create ();
             w_alive = true;
             w_gauge =
               Metrics.gauge
                 ~help:(Printf.sprintf "jobs queued for worker %d" i)
                 (Printf.sprintf "lbr_cluster_w%d_queue_depth" i);
             w_hb_gauge =
               Metrics.gauge
                 ~help:
                   (Printf.sprintf
                      "seconds since worker %d's registry was last pulled" i)
                 (Printf.sprintf "lbr_cluster_w%d_heartbeat_age_seconds" i);
             w_last_poll = Unix.gettimeofday ();
           })
  in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      workers;
      lanes = config.lanes;
      queue_depth = max 1 config.queue_depth;
      vcache;
      journal;
      table = Hashtbl.create 64;
      seq = (match journal with Some j -> Journal.max_job_number j | None -> 0);
      queued = 0;
      running = 0;
      draining = false;
      pumps = [];
      rr = 0;
      started_at = Unix.gettimeofday ();
      recovered = 0;
      poll_interval = config.poll_interval;
      fed_mutex = Mutex.create ();
      fed_dumps = Array.make (Array.length workers) None;
      fed_stop = Atomic.make false;
      fed_thread = None;
      m_steals = Metrics.counter ~help:"jobs stolen between worker queues" "lbr_cluster_steals_total";
      m_failovers = Metrics.counter ~help:"in-flight jobs resubmitted after a worker death" "lbr_cluster_failovers_total";
      m_hits = Metrics.counter ~help:"predicate verdicts answered by the cluster cache" "lbr_cluster_cache_hits_total";
      m_misses = Metrics.counter ~help:"predicate verdicts that had to execute" "lbr_cluster_cache_misses_total";
      m_submitted = Metrics.counter ~help:"jobs admitted by the coordinator" "lbr_cluster_jobs_submitted_total";
      m_done = Metrics.counter ~help:"delegated jobs completed" "lbr_cluster_jobs_done_total";
      m_failed = Metrics.counter ~help:"delegated jobs failed" "lbr_cluster_jobs_failed_total";
      g_alive = Metrics.gauge ~help:"live workers" "lbr_cluster_workers_alive";
      g_entries = Metrics.gauge ~help:"verdicts in the cluster cache" "lbr_cluster_cache_entries";
      g_waste = Metrics.gauge ~help:"cluster-wide speculation waste: cancelled launches / all launches" "lbr_cluster_spec_waste_ratio";
    }
  in
  Metrics.set_gauge t.g_alive (float_of_int (Array.length workers));
  Metrics.set_gauge t.g_entries (float_of_int (Cache.entries vcache));
  (* Re-admit journaled jobs that never reached a terminal marker, folding
     their paid verdicts into the cache so the re-run replays them. *)
  let recovered_n =
    match journal with
    | None -> 0
    | Some jr ->
        List.fold_left
          (fun n (id, spec_bytes) ->
            match Wire.spec_of_string spec_bytes with
            | Error _ -> n
            | Ok spec ->
                let key = Cache.job_key spec in
                Hashtbl.iter
                  (fun k ok -> Cache.store t.vcache ~job:key ~key:k ok)
                  (Journal.replay jr ~id);
                let j =
                  {
                    cj_id = id;
                    cj_spec = spec;
                    cj_key = key;
                    (* The persisted spec carries the original forwarded
                       context, so a recovered job keeps its trace id and
                       its coordinator span id across the restart. *)
                    cj_ctx = spec.Wire.trace_ctx;
                    cj_on_event = ignore;
                    cj_cancelled = Atomic.make false;
                    cj_submitted = Trace.now ();
                    cj_queued_at = Trace.now ();
                    cj_started = false;
                    cj_attempts = 0;
                    cj_best = None;
                    cj_status = Scheduler.Queued;
                    cj_remote = None;
                  }
                in
                Hashtbl.replace t.table id j;
                locked t (fun () -> shard t j);
                n + 1)
          0 (Journal.pending jr)
  in
  Metrics.set_gauge t.g_entries (float_of_int (Cache.entries vcache));
  t.recovered <- recovered_n;
  t.pumps <-
    List.concat_map
      (fun w ->
        List.init t.lanes (fun _ -> Thread.create (pump t w) ()))
      (Array.to_list workers);
  if config.poll_interval > 0. then
    t.fed_thread <- Some (Thread.create (fed_loop t) ());
  t

let submit t ~on_event ~seeds spec =
  Mutex.lock t.mutex;
  let outcome =
    if t.draining then Error `Draining
    else if t.queued >= t.queue_depth then
      Error (`Queue_full (Float.max 0.1 (0.05 *. float_of_int t.queued)))
    else begin
      let id = next_id t in
      let safe_event ev = try on_event id ev with _ -> () in
      let key = Cache.job_key spec in
      (* Distributed trace identity: keep the client's trace id when it
         sent one (the trace started there), mint one when tracing is
         live here, stay context-free otherwise so untraced journals are
         byte-identical to v4.  Either way the parent span forwarded to
         workers is a fresh coordinator-side job span id — worker spans
         parent under the coordinator, and the client's own parent (if
         any) stays visible on its side of the trace. *)
      let ctx =
        match spec.Wire.trace_ctx with
        | Some c ->
            Some
              {
                Trace.Context.trace_id = c.Trace.Context.trace_id;
                parent_span = Trace.Context.fresh_span_id ();
              }
        | None -> if Trace.enabled () then Some (Trace.Context.mint ()) else None
      in
      let spec =
        match ctx with None -> spec | Some _ -> { spec with Wire.trace_ctx = ctx }
      in
      (* Client-supplied seeds pre-warm the shared cache: any worker that
         later picks up this content digest replays them. *)
      List.iter (fun (k, ok) -> Cache.store t.vcache ~job:key ~key:k ok) seeds;
      (match t.journal with
      | Some jr -> Journal.record_job jr ~id ~spec:(Wire.spec_to_string spec)
      | None -> ());
      let j =
        {
          cj_id = id;
          cj_spec = spec;
          cj_key = key;
          cj_ctx = ctx;
          cj_on_event = safe_event;
          cj_cancelled = Atomic.make false;
          cj_submitted = Trace.now ();
          cj_queued_at = Trace.now ();
          cj_started = false;
          cj_attempts = 0;
          cj_best = None;
          cj_status = Scheduler.Queued;
          cj_remote = None;
        }
      in
      Hashtbl.replace t.table id j;
      Metrics.incr t.m_submitted;
      Flight.transition ~job:id ~state:"queued";
      shard t j;
      Ok id
    end
  in
  Mutex.unlock t.mutex;
  outcome

let cancel t id =
  let found, remote =
    locked t (fun () ->
        match Hashtbl.find_opt t.table id with
        | None -> (false, None)
        | Some j -> (
            match j.cj_status with
            | Done _ | Failed _ | Cancelled -> (false, None)
            | Queued | Running ->
                Atomic.set j.cj_cancelled true;
                Condition.broadcast t.cond;
                (true, j.cj_remote)))
  in
  (match remote with
  | Some (wid, remote_id) -> remote_cancel t wid remote_id
  | None -> ());
  found

let stats t =
  locked t (fun () ->
      (* Non-terminal jobs only, like [Scheduler.snapshot] — finalize
         prunes the table, so the filter is just the same invariant
         stated twice. *)
      let job_stats =
        Hashtbl.fold
          (fun _ j acc ->
            match j.cj_status with
            | Scheduler.Queued | Scheduler.Running ->
                {
                  Wire.js_id = j.cj_id;
                  js_running = (j.cj_status = Scheduler.Running);
                  js_best = j.cj_best;
                }
                :: acc
            | Scheduler.Done _ | Scheduler.Failed _ | Scheduler.Cancelled -> acc)
          t.table []
        |> List.sort (fun a b -> compare a.Wire.js_id b.Wire.js_id)
      in
      {
        Wire.queued_jobs = t.queued;
        running_jobs = t.running;
        job_stats;
        (* For a coordinator the "oracle" is the cluster cache: queries =
           every predicate verdict observed, memo hits = the cached ones. *)
        oracle_queries =
          Metrics.counter_value t.m_hits + Metrics.counter_value t.m_misses;
        oracle_memo_hits = Metrics.counter_value t.m_hits;
        uptime = Unix.gettimeofday () -. t.started_at;
        metrics_text =
          (* Local registry first, then each worker's last-pulled dump
             under a [worker="wN"] label, then the exact merge of all of
             them as [worker="cluster"] — one text payload, three views. *)
          (let per_worker, merged = federated t in
           String.concat ""
             ((Metrics.render_prometheus ()
              :: List.map
                   (fun (lbl, d) ->
                     Metrics.render_prometheus_dump ~label:("worker", lbl) d)
                   per_worker)
             @ [ Metrics.render_prometheus_dump ~label:("worker", "cluster") merged ]));
      })

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  Condition.broadcast t.cond;
  while t.queued + t.running > 0 do
    Condition.wait t.cond t.mutex
  done;
  let pumps = t.pumps in
  t.pumps <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join pumps;
  Atomic.set t.fed_stop true;
  (match t.fed_thread with Some th -> Thread.join th | None -> ());
  t.fed_thread <- None;
  Cache.close t.vcache;
  Option.iter Journal.close t.journal

let backend t =
  {
    Server.b_submit = (fun ~on_event ~seeds spec -> submit t ~on_event ~seeds spec);
    b_cancel = cancel t;
    b_stats = (fun () -> stats t);
    b_drain = (fun () -> drain t);
  }
