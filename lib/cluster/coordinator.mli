(** The cluster coordinator: one reduction service fronting N worker
    daemons.

    The coordinator speaks the same wire protocol as a single daemon — it
    plugs into {!Lbr_server.Server.start_backend}, so [lbr-reduce submit]
    and [lbr-reduce top] work against it unchanged — but instead of
    running jobs on local domains it delegates each to a worker daemon
    over a per-job client connection.

    {2 Sharding and stealing}

    Admitted jobs are sharded round-robin across the live workers'
    queues.  Each worker is driven by [lanes] pump threads; when a pump's
    own queue drains it steals the {e oldest} job from the {e longest}
    live peer queue, so a cluster is never idle while any queue is
    non-empty.

    {2 Failover}

    Workers journal every predicate evaluation before streaming it back
    as a v3 [Verdict] frame; the coordinator mirrors each verdict into
    the shared {!Cache} (and its own journal) as it arrives.  When a
    worker dies mid-job — connection refused, reset, or EOF without a
    terminal frame — its queued jobs are redistributed and the in-flight
    job is resubmitted to a survivor {e seeded} with every cached verdict
    for that job's content digest.  The runner replays those seeds
    instead of re-executing, so the retried run is byte-identical to an
    uninterrupted one and strictly cheaper than starting over.  A job
    that outlives as many failovers as there are workers is failed.

    {2 Tracing}

    When tracing is live (or the submitting client shipped a trace
    context), every job gets a context whose parent span is a fresh
    coordinator-side {e job span id}, forwarded to workers in the v5
    spec.  Worker-side spans then carry that id as [ctx.parent]; the
    coordinator records one [coordinator.job] span per job (admission →
    terminal state, with the job span id as its [span_id] arg — the
    cross-node merge key), plus [cluster.steal] and [cluster.failover]
    edges for jobs that moved between workers.

    {2 Introspection}

    Queue depths are exported per worker as [lbr_cluster_w<i>_queue_depth]
    gauges, plus [lbr_cluster_cache_{hits,misses}_total],
    [lbr_cluster_{steals,failovers}_total] and the jobs/alive/entries
    family, all in the process Metrics registry (and thus in the
    Prometheus text [lbr-reduce top] renders).  A federation thread
    additionally pulls each worker's whole registry every
    [poll_interval] seconds, maintaining
    [lbr_cluster_w<i>_heartbeat_age_seconds] gauges and the
    [lbr_cluster_spec_waste_ratio] gauge (cancelled / launched
    speculations, cluster-wide); the coordinator's [metrics_text]
    concatenates its local registry, each worker's dump under a
    [worker="wN"] label, and the exact merge under [worker="cluster"]. *)

type config = {
  workers : Lbr_server.Addr.t list;  (** at least one; pinged at {!create} *)
  lanes : int;  (** concurrent delegated jobs per worker (>= 1) *)
  queue_depth : int;  (** cluster-wide cap on queued jobs (backpressure) *)
  cache_path : string option;  (** persist the verdict cache here *)
  journal_dir : string option;  (** coordinator WAL + restart recovery *)
  poll_interval : float;
      (** seconds between federation sweeps; [<= 0] disables the
          background thread (call {!poll_workers} manually) *)
}

type t

val create : config -> t
(** Registers (pings) every worker — raises [Failure] if one is
    unreachable or negotiates protocol < 3 — recovers journaled pending
    jobs, and starts the pump threads. *)

val backend : t -> Lbr_server.Server.backend
(** Plug into {!Lbr_server.Server.start_backend}.  Its [b_drain] waits for
    every admitted job to reach a terminal state, then stops the pumps and
    closes cache + journal. *)

val recovered : t -> int
(** Journaled in-flight jobs {!create} re-admitted (their already-paid
    verdicts were folded into the cache first). *)

val cache : t -> Cache.t

val poll_workers : t -> unit
(** One synchronous federation sweep (what the background thread runs
    every [poll_interval] seconds) — pull each live worker's metric
    registry, refresh heartbeat-age gauges, recompute the speculation
    waste ratio.  Exposed so tests and one-shot tools get a
    deterministic view without sleeping. *)

val federated : t -> (string * Lbr_obs.Metrics.dump) list * Lbr_obs.Metrics.dump
(** [(per_worker, merged)]: each worker's last-pulled registry dump under
    its ["wN"] label, and the exact {!Lbr_obs.Metrics.merge_dumps} of the
    coordinator's own registry with all of them. *)
