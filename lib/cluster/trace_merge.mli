(** Merging per-node trace dumps into a single Chrome trace.

    Each node's dump carries its own clock epoch plus the wall-clock
    instants on both ends of the dump request; the merger uses the
    half-RTT midpoint to estimate per-node clock skew and places every
    node on one corrected timeline — one Chrome [pid] lane per node,
    named by a [process_name] metadata record, with flow arrows linking
    each [coordinator.job] span to the worker-side events that carry its
    span id as [ctx.parent].

    Dumps can come from two sources: {!fetch} pulls a live daemon over
    the v5 [Trace_dump_request], and {!read_file} loads a [.tdump]
    capture written earlier by {!write_file} (the e2e harness dumps each
    worker {e before} killing one, so the victim's spans survive into
    the merged trace).  Dumps sharing a node name collapse into one
    deduplicated lane. *)

type node_dump = {
  nd_node : string;  (** lane label (the daemon's bound address) *)
  nd_epoch : float;  (** node-clock second its [ts = 0] maps to *)
  nd_server_now : float;  (** node clock at dump time *)
  nd_client_mid : float;  (** dumper clock at (roughly) the same instant *)
  nd_dropped : int;
  nd_events : Lbr_obs.Trace.event list;
}

val fetch : string -> (node_dump, string) result
(** Pull a live daemon's span rings; the address string is parsed by
    {!Lbr_server.Addr.parse}.  Requires a v5 server. *)

val skew : node_dump -> float
(** Estimated clock offset: add to node-clock times to get dumper time. *)

val to_string : node_dump -> string
(** Binary [.tdump] form ("LBRTD1" magic; events in wire-v5 encoding). *)

val of_string : string -> (node_dump, string) result
(** Total: [Ok] or [Error], never an exception. *)

val write_file : string -> node_dump -> unit
val read_file : string -> (node_dump, string) result

val merge : node_dump list -> string
(** The merged Chrome trace JSON ([traceEvents] + [epochSeconds]). *)
