(* Merging per-node trace dumps into one Chrome trace.

   Every node records spans against its own monotonic-ish clock (µs since
   its [Trace.start]) and ships, with each dump, the absolute second that
   zero maps to ([epoch]) plus its wall clock at dump time ([server_now]).
   The dumper brackets the request with its own clock ([client_mid] = the
   midpoint of send/receive) — the classic NTP half-RTT estimate — so the
   merger can place every node on the dumper's timeline:

     absolute(ev) = epoch + ev_ts/1e6 + (client_mid - server_now)

   The merged trace uses the earliest corrected epoch as its zero and one
   Chrome [pid] lane per node name.  Dumps sharing a node name (a live
   pull plus an earlier pre-kill .tdump of the same daemon) collapse into
   one lane, deduplicating byte-identical events — the surviving-worker
   case, where the pre-kill capture is a prefix of the final dump. *)

module Wire = Lbr_server.Wire
module Client = Lbr_server.Client
module Trace = Lbr_obs.Trace

type node_dump = {
  nd_node : string;  (* lane label *)
  nd_epoch : float;  (* node-clock second its ts = 0 maps to *)
  nd_server_now : float;  (* node clock at dump time *)
  nd_client_mid : float;  (* dumper clock at (roughly) the same instant *)
  nd_dropped : int;
  nd_events : Trace.event list;
}

let skew d = d.nd_client_mid -. d.nd_server_now

(* ------------------------------------------------------------------ *)
(* Live capture                                                        *)

let fetch addr =
  match Client.connect addr with
  | Error m -> Error m
  | Ok c ->
      let t0 = Unix.gettimeofday () in
      let result = Client.trace_dump c in
      let t1 = Unix.gettimeofday () in
      Client.close c;
      Result.map
        (fun (d : Client.trace_dump) ->
          {
            nd_node = d.td_node;
            nd_epoch = d.td_epoch;
            nd_server_now = d.td_server_now;
            nd_client_mid = (t0 +. t1) /. 2.;
            nd_dropped = d.td_dropped;
            nd_events = d.td_events;
          })
        result

(* ------------------------------------------------------------------ *)
(* .tdump files — pre-kill victim captures                             *)

let magic = "LBRTD1"

let w_u32 b n =
  Buffer.add_uint8 b ((n lsr 24) land 0xff);
  Buffer.add_uint8 b ((n lsr 16) land 0xff);
  Buffer.add_uint8 b ((n lsr 8) land 0xff);
  Buffer.add_uint8 b (n land 0xff)

let w_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let w_str16 b s =
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let to_string d =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_str16 b d.nd_node;
  w_f64 b d.nd_epoch;
  w_f64 b d.nd_server_now;
  w_f64 b d.nd_client_mid;
  w_u32 b d.nd_dropped;
  Buffer.add_string b (Wire.trace_events_to_string d.nd_events);
  Buffer.contents b

let of_string data =
  let pos = ref 0 in
  let len = String.length data in
  let need n what =
    if !pos + n > len then Error (Printf.sprintf "truncated .tdump (%s)" what)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = need (String.length magic) "magic" in
  if String.sub data 0 (String.length magic) <> magic then
    Error "not a .tdump file (bad magic)"
  else begin
    pos := String.length magic;
    let u8 () =
      let n = Char.code data.[!pos] in
      pos := !pos + 1;
      n
    in
    let* () = need 2 "node length" in
    (* force left-to-right byte order: OCaml evaluates operator operands
       right to left, so inlining the u8 calls would swap the bytes *)
    let u16 () =
      let hi = u8 () in
      let lo = u8 () in
      (hi lsl 8) lor lo
    in
    let u32 () =
      let hi = u16 () in
      let lo = u16 () in
      (hi lsl 16) lor lo
    in
    let node_len = u16 () in
    let* () = need node_len "node" in
    let nd_node = String.sub data !pos node_len in
    pos := !pos + node_len;
    let f64 () =
      let bits = ref 0L in
      for _ = 1 to 8 do
        bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (u8 ()))
      done;
      Int64.float_of_bits !bits
    in
    let* () = need 28 "header" in
    let nd_epoch = f64 () in
    let nd_server_now = f64 () in
    let nd_client_mid = f64 () in
    let nd_dropped = u32 () in
    let* nd_events =
      Wire.trace_events_of_string (String.sub data !pos (len - !pos))
    in
    Ok { nd_node; nd_epoch; nd_server_now; nd_client_mid; nd_dropped; nd_events }
  end

let write_file path d =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string d))

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> of_string data
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated")

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)

let str_arg ev key =
  List.find_map
    (function k, Trace.Str v when k = key -> Some v | _ -> None)
    ev.Trace.ev_args

(* Same-lane dedup key: the raw (pre-correction) event identity.  Two
   dumps of the same process share an epoch, so identical events collide
   exactly. *)
let event_key (e : Trace.event) =
  (e.ev_name, e.ev_ph, e.ev_ts, e.ev_dur, e.ev_tid)

(* Group dumps by node name, dedup within each group, correct each
   node's events onto the dumper timeline, and render one Chrome trace
   with a [pid] lane (plus a [process_name] metadata record) per node
   and a flow arrow from every [coordinator.job] span to the first
   worker-side event that names it as [ctx.parent]. *)
let merge dumps =
  (* Lane order = first appearance; later same-name dumps fold in. *)
  let lanes = ref [] in
  List.iter
    (fun d ->
      match List.assoc_opt d.nd_node !lanes with
      | Some group -> group := d :: !group
      | None -> lanes := !lanes @ [ (d.nd_node, ref [ d ]) ])
    dumps;
  let lanes =
    List.mapi
      (fun i (node, group) -> (i + 1, node, List.rev !group))
      !lanes
  in
  (* Per lane: skew from its first dump, events deduped across dumps. *)
  let corrected =
    List.map
      (fun (pid, node, group) ->
        let first = List.hd group in
        let offset = first.nd_epoch +. skew first in
        let seen = Hashtbl.create 256 in
        let events =
          List.concat_map (fun d -> d.nd_events) group
          |> List.filter (fun e ->
                 let k = event_key e in
                 if Hashtbl.mem seen k then false
                 else begin
                   Hashtbl.add seen k ();
                   true
                 end)
        in
        let dropped = List.fold_left (fun n d -> n + d.nd_dropped) 0 group in
        (pid, node, offset, dropped, events))
      lanes
  in
  (* The merged timeline's zero: the earliest corrected epoch. *)
  let ref_epoch =
    List.fold_left
      (fun acc (_, _, offset, _, _) -> Float.min acc offset)
      infinity corrected
  in
  let ref_epoch = if ref_epoch = infinity then 0. else ref_epoch in
  let shifted =
    List.map
      (fun (pid, node, offset, dropped, events) ->
        let delta = (offset -. ref_epoch) *. 1e6 in
        ( pid,
          node,
          dropped,
          List.map (fun e -> { e with Trace.ev_ts = e.Trace.ev_ts +. delta }) events
        ))
      corrected
  in
  (* Cross-node flows: coordinator job span -> first event on another
     lane carrying that span id as its ctx.parent. *)
  let job_spans =
    List.concat_map
      (fun (pid, _, _, events) ->
        List.filter_map
          (fun e ->
            if e.Trace.ev_name = "coordinator.job" then
              Option.map (fun id -> (id, pid, e)) (str_arg e "span_id")
            else None)
          events)
      shifted
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"epochSeconds\":";
  Buffer.add_string buf (Printf.sprintf "%.6f" ref_epoch);
  Buffer.add_string buf ",\"traceEvents\":[";
  let first_ev = ref true in
  let emit json =
    if not !first_ev then Buffer.add_char buf ',';
    first_ev := false;
    Buffer.add_string buf json
  in
  List.iter
    (fun (pid, node, _, _) ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           pid (Trace.json_escape node)))
    shifted;
  List.iter
    (fun (pid, _, _, events) ->
      List.iter (fun e -> emit (Trace.event_json_string ~pid e)) events)
    shifted;
  (* Flow arrows, one per (job span, foreign lane) pair. *)
  let flow_seq = ref 0 in
  List.iter
    (fun (span_id, coord_pid, coord_ev) ->
      let linked = Hashtbl.create 4 in
      List.iter
        (fun (pid, _, _, events) ->
          if pid <> coord_pid && not (Hashtbl.mem linked pid) then
            match
              List.find_opt (fun e -> str_arg e "ctx.parent" = Some span_id) events
            with
            | None -> ()
            | Some target ->
                Hashtbl.add linked pid ();
                incr flow_seq;
                let id = !flow_seq in
                emit
                  (Printf.sprintf
                     "{\"ph\":\"s\",\"name\":\"job\",\"cat\":\"job\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%.3f}"
                     id coord_pid coord_ev.Trace.ev_tid coord_ev.Trace.ev_ts);
                emit
                  (Printf.sprintf
                     "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"job\",\"cat\":\"job\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%.3f}"
                     id pid target.Trace.ev_tid target.Trace.ev_ts))
        shifted)
    job_spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf
