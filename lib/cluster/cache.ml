let is_hex32 s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let job_key (spec : Lbr_server.Wire.spec) =
  (* Only the verdict-relevant content: which frontend interprets the
     payload, what tool/spec is asked, how crashes count, and the exact
     pool bytes.  Strategy and priority steer the search, not any single
     verdict, so sharing across them is safe and wanted.  The frontend
     joined the key in wire v4; caches persisted before that simply miss
     (the old keys hash as frontend "jvm" did not exist), never collide. *)
  let b = Buffer.create (String.length spec.pool_bytes + 32) in
  Buffer.add_string b spec.frontend;
  Buffer.add_char b '\x00';
  Buffer.add_string b spec.tool;
  Buffer.add_char b '\x00';
  Buffer.add_uint8 b
    (match spec.crash_policy with
    | Lbr_runtime.Oracle.Crash_fails -> 0
    | Crash_passes -> 1
    | Crash_raises -> 2);
  Buffer.add_uint16_be b spec.retries;
  Buffer.add_string b spec.pool_bytes;
  Digest.to_hex (Digest.string (Buffer.contents b))

type t = {
  mutex : Mutex.t;
  table : (string * string, bool) Hashtbl.t;  (* (job, assignment) digests *)
  by_job : (string, string list) Hashtbl.t;   (* job digest -> assignment digests *)
  mutable oc : out_channel option;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let remember t ~job ~key ok =
  if not (Hashtbl.mem t.table (job, key)) then begin
    Hashtbl.replace t.table (job, key) ok;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_job job) in
    Hashtbl.replace t.by_job job (key :: prev);
    true
  end
  else false

let load t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          (* A torn trailing line from a crash mid-append is expected; any
             line that does not parse in full is skipped, never fatal. *)
          match String.split_on_char ' ' line with
          | [ job; key; v ] when is_hex32 job && is_hex32 key ->
              let ok =
                match v with "1" -> Some true | "0" -> Some false | _ -> None
              in
              Option.iter (fun ok -> ignore (remember t ~job ~key ok)) ok
          | _ -> ()
        done
      with End_of_file -> ())

let create ?path () =
  let t =
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 4096;
      by_job = Hashtbl.create 64;
      oc = None;
      closed = false;
    }
  in
  (match path with
  | None -> ()
  | Some path ->
      let torn_tail =
        (* A crash mid-append can leave the log without a final newline;
           appending straight after it would corrupt the next entry too.
           Seal the torn line first — load already skips it. *)
        Sys.file_exists path
        &&
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            len > 0
            &&
            (seek_in ic (len - 1);
             input_char ic <> '\n'))
      in
      if Sys.file_exists path then load t path;
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      if torn_tail then begin
        output_char oc '\n';
        flush oc
      end;
      t.oc <- Some oc);
  t

let find t ~job ~key = locked t (fun () -> Hashtbl.find_opt t.table (job, key))

let store t ~job ~key ok =
  locked t (fun () ->
      if remember t ~job ~key ok then
        match t.oc with
        | None -> ()
        | Some oc ->
            output_string oc
              (Printf.sprintf "%s %s %c\n" job key (if ok then '1' else '0'));
            flush oc)

let seeds t ~job =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_job job with
      | None -> []
      | Some keys ->
          List.rev_map (fun key -> (key, Hashtbl.find t.table (job, key))) keys)

let entries t = locked t (fun () -> Hashtbl.length t.table)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Option.iter close_out_noerr t.oc;
        t.oc <- None
      end)
