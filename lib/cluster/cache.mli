(** The cluster-wide, content-addressed verdict cache.

    GBR's dominant cost is black-box predicate execution; the journal
    (PR 3) already guarantees one {e job} never re-pays an execution
    across a crash.  This cache lifts that guarantee to the cluster: a
    verdict is addressed purely by {e content} — the digest of the job's
    substance (tool, crash policy, retries, pool bytes) plus the digest
    of the assignment evaluated — so {e any} job on {e any} worker that
    asks the same question gets the answer for free.  The strategy is
    deliberately not part of the key: GBR, ddmin and the lossy modes all
    ask the same kind of question of the same tool, and sharing across
    them is the point.

    Persistence is an append-only log of
    [<32-hex job> <32-hex assignment> 0|1] lines, flushed to the OS per
    entry like the journal's [preds.log] — a kill -9'd coordinator
    restarts with every verdict it ever saw.  Malformed (torn) trailing
    lines are skipped on load, not fatal.

    Thread-safe; every operation takes the cache's internal lock. *)

type t

val create : ?path:string -> unit -> t
(** In-memory cache, persisted to [path] when given (loading whatever the
    file already holds).  Raises [Sys_error] if the path exists and is
    unreadable, or its parent cannot take the log. *)

val job_key : Lbr_server.Wire.spec -> string
(** 32-hex digest of the spec's verdict-relevant content: tool, crash
    policy, retries and pool bytes — {e not} strategy or priority, which
    cannot change a verdict. *)

val find : t -> job:string -> key:string -> bool option

val store : t -> job:string -> key:string -> bool -> unit
(** Idempotent: re-storing an existing entry neither rewrites the log nor
    changes the value (first write wins — verdicts are deterministic, so
    a disagreement would mean a faulty tool; the original is kept). *)

val seeds : t -> job:string -> (string * bool) list
(** Every cached (assignment digest, verdict) for a job content digest —
    what the coordinator ships as [Submit_seeded] seeds. *)

val entries : t -> int
val close : t -> unit
