open Lbr_logic

module Engine = struct
  let bits = Sys.int_size

  (* Operations recorded since the last structural reset ([create] or
     [narrow]), for replay by structural rollbacks: a non-negative entry is
     an assumed variable, a negative entry [-(ci+1)] is the integration of
     learned clause [ci]. *)
  let op_add ci = -ci - 1
  let op_ci op = -op - 1

  (* A narrow is undone by restoring the variables it removed and — because
     it reset the operation log — the log it discarded.  [nclauses_at]
     remembers which learned clauses were part of its canonical base
     propagation (later ones replay at their recorded log position). *)
  type narrow_record = {
    removed : Var.t list;
    nclauses_at : int;
    saved_ops : int array;
  }

  type t = {
    order : Order.t;
    truth : int array;  (* bitset over variable ids, same layout as Assignment *)
    in_universe : bool array;
    nvars : int;
    original_nclauses : int;
    (* Clause state, indexed by clause id.  Learned clauses are appended
       past [original_nclauses], so these arrays are growable: [nclauses]
       live entries, capacity = array length. *)
    mutable nclauses : int;
    mutable heads : Var.t array array;  (* positive literals inside the universe *)
    mutable premises_left : int array;
    mutable satisfied : bool array;
    occurs_premise : int array array;  (* var id -> original clauses where it is a premise *)
    occurs_head : int array array;  (* var id -> original clauses where it is a head *)
    extra_occurs_head : int list array;  (* var id -> learned clauses, newest first *)
    (* Propagation trail: variables in the order they were made true.  The
       pending queue is the suffix [trail.(drained) .. trail.(trail_len - 1)]
       — a variable enters the trail exactly when it turns true, and [drain]
       consumes in FIFO order, so no separate queue is needed.  This makes
       {!rollback} a walk down the trail. *)
    trail : Var.t array;
    mutable trail_len : int;
    mutable drained : int;
    mutable conflicted : bool;
    (* Structural history. *)
    mutable narrows : narrow_record list;  (* newest first *)
    mutable narrow_count : int;
    mutable ops : int array;  (* growable operation log since the last narrow *)
    mutable op_len : int;
  }

  (* Snapshots capture the four monotone cursors; a rollback that only moves
     [s_trail] is the cheap trail unwind, one that moves the structural
     cursors rebuilds by replay. *)
  type snapshot = {
    s_trail : int;
    s_clauses : int;
    s_narrows : int;
    s_ops : int;
  }

  let max_var cnf universe =
    let m = ref (-1) in
    Assignment.iter (fun v -> if v > !m then m := v) (Cnf.vars cnf);
    Assignment.iter (fun v -> if v > !m then m := v) universe;
    !m

  let is_true t v =
    v < t.nvars && t.truth.(v / bits) land (1 lsl (v mod bits)) <> 0

  let true_set t = Assignment.of_words t.truth

  let mark t = t.trail_len

  let delta_since t m =
    (* The variables turned true since [m] are exactly the trail suffix;
       building the set from it allocates entry-sized words instead of two
       universe-sized closure copies and a diff. *)
    if m >= t.trail_len then Assignment.empty
    else begin
      let hi = ref 0 in
      for i = m to t.trail_len - 1 do
        if t.trail.(i) > !hi then hi := t.trail.(i)
      done;
      let words = Array.make ((!hi / bits) + 1) 0 in
      for i = m to t.trail_len - 1 do
        let v = t.trail.(i) in
        words.(v / bits) <- words.(v / bits) lor (1 lsl (v mod bits))
      done;
      Assignment.of_words words
    end

  (* Turn [v] true and append it to the trail for propagation. *)
  let set_true t v =
    if t.truth.(v / bits) land (1 lsl (v mod bits)) = 0 then begin
      t.truth.(v / bits) <- t.truth.(v / bits) lor (1 lsl (v mod bits));
      t.trail.(t.trail_len) <- v;
      t.trail_len <- t.trail_len + 1
    end

  (* A clause whose premises are all true and whose satisfied flag is unset:
     all heads are false (head truths mark the flag eagerly), so choose the
     [<]-smallest head, or conflict when there is none.  Heads are filtered
     to the universe at indexing time but the universe can shrink afterwards
     ([narrow]), hence the [keep] check. *)
  let trigger t ci =
    if not t.satisfied.(ci) then begin
      (* A head may already be true but still sitting in the pending suffix
         (its satisfied-flag sweep has not run yet); recheck before
         choosing. *)
      if Array.exists (fun h -> is_true t h) t.heads.(ci) then t.satisfied.(ci) <- true
      else
        match Order.min_of_array t.order t.heads.(ci) ~keep:(fun h -> t.in_universe.(h)) with
        | None -> t.conflicted <- true
        | Some h ->
            t.satisfied.(ci) <- true;
            set_true t h
    end

  let drain t =
    while (not t.conflicted) && t.drained < t.trail_len do
      let v = t.trail.(t.drained) in
      t.drained <- t.drained + 1;
      Array.iter (fun ci -> t.satisfied.(ci) <- true) t.occurs_head.(v);
      List.iter (fun ci -> t.satisfied.(ci) <- true) t.extra_occurs_head.(v);
      Array.iter
        (fun ci ->
          t.premises_left.(ci) <- t.premises_left.(ci) - 1;
          if t.premises_left.(ci) = 0 then trigger t ci)
        t.occurs_premise.(v)
    done

  let push_op t op =
    if t.op_len >= Array.length t.ops then begin
      let a = Array.make (max 16 (2 * Array.length t.ops)) 0 in
      Array.blit t.ops 0 a 0 t.op_len;
      t.ops <- a
    end;
    t.ops.(t.op_len) <- op;
    t.op_len <- t.op_len + 1

  let create cnf ~order ~universe =
    Lbr_obs.Trace.with_span "sat.engine-create"
      ~args:(fun () ->
        [ ("universe", Lbr_obs.Trace.Int (Assignment.cardinal universe)) ])
    @@ fun () ->
    Perf.time "sat.engine-create" @@ fun () ->
    let n = max_var cnf universe + 1 in
    let in_universe = Array.make n false in
    Assignment.iter (fun v -> in_universe.(v) <- true) universe;
    let relevant =
      (* Drop clauses pre-satisfied by the restriction: any premise outside
         the universe is false, making the clause true. *)
      List.filter
        (fun (c : Clause.t) -> Array.for_all (fun v -> in_universe.(v)) c.neg)
        (Cnf.clauses cnf)
      |> Array.of_list
    in
    let nclauses = Array.length relevant in
    let heads =
      Array.map
        (fun (c : Clause.t) ->
          Array.to_list c.pos |> List.filter (fun v -> in_universe.(v)) |> Array.of_list)
        relevant
    in
    let premise_count = Array.make n 0 and head_count = Array.make n 0 in
    Array.iteri
      (fun ci (c : Clause.t) ->
        Array.iter (fun v -> premise_count.(v) <- premise_count.(v) + 1) c.neg;
        Array.iter (fun v -> head_count.(v) <- head_count.(v) + 1) heads.(ci))
      relevant;
    let occurs_premise = Array.init n (fun v -> Array.make premise_count.(v) 0) in
    let occurs_head = Array.init n (fun v -> Array.make head_count.(v) 0) in
    (* Fill from the last clause down so each variable's occurrence array
       runs through clauses in decreasing index — the order the previous
       cons-built lists presented, which the closure construction (and thus
       the head choices recorded in reduction traces) is sensitive to. *)
    for ci = nclauses - 1 downto 0 do
      let c = relevant.(ci) in
      Array.iter
        (fun v ->
          premise_count.(v) <- premise_count.(v) - 1;
          occurs_premise.(v).(Array.length occurs_premise.(v) - 1 - premise_count.(v)) <- ci)
        c.neg;
      Array.iter
        (fun v ->
          head_count.(v) <- head_count.(v) - 1;
          occurs_head.(v).(Array.length occurs_head.(v) - 1 - head_count.(v)) <- ci)
        heads.(ci)
    done;
    let t =
      {
        order;
        truth = Array.make ((n + bits - 1) / bits) 0;
        in_universe;
        nvars = n;
        original_nclauses = nclauses;
        nclauses;
        heads;
        premises_left = Array.map (fun (c : Clause.t) -> Array.length c.neg) relevant;
        satisfied = Array.make nclauses false;
        occurs_premise;
        occurs_head;
        extra_occurs_head = Array.make n [];
        trail = Array.make n 0;
        trail_len = 0;
        drained = 0;
        conflicted = Cnf.is_unsat cnf;
        narrows = [];
        narrow_count = 0;
        ops = [||];
        op_len = 0;
      }
    in
    (* Zero-premise clauses fire immediately. *)
    Array.iteri (fun ci pl -> if pl = 0 then trigger t ci) t.premises_left;
    drain t;
    if t.conflicted then Error `Conflict else Ok t

  let assume t v =
    if t.conflicted then Error `Conflict
    else if v >= Array.length t.in_universe || not t.in_universe.(v) then Error `Conflict
    else begin
      set_true t v;
      drain t;
      if t.conflicted then Error `Conflict
      else begin
        push_op t v;
        Ok ()
      end
    end

  let assume_all t vs =
    List.fold_left
      (fun acc v -> match acc with Error _ as e -> e | Ok () -> assume t v)
      (Ok ()) vs

  let add_clause t ~pos =
    Lbr_obs.Trace.with_span "sat.engine-add-clause"
      ~args:(fun () -> [ ("literals", Lbr_obs.Trace.Int (List.length pos)) ])
    @@ fun () ->
    Perf.time "sat.engine-add-clause" @@ fun () ->
    if t.conflicted then Error `Conflict
    else begin
      if t.nclauses >= Array.length t.premises_left then begin
        let cap = max 8 (2 * Array.length t.premises_left) in
        let grow blank a =
          let g = Array.make cap blank in
          Array.blit a 0 g 0 (Array.length a);
          g
        in
        t.heads <- grow [||] t.heads;
        t.premises_left <- grow 0 t.premises_left;
        t.satisfied <- grow false t.satisfied
      end;
      (* Variables outside the universe (or past it) are fixed to false:
         they cannot serve as heads, exactly as [create] restricts. *)
      let heads =
        List.filter (fun v -> v >= 0 && v < t.nvars && t.in_universe.(v)) pos
        |> Array.of_list
      in
      let ci = t.nclauses in
      t.nclauses <- ci + 1;
      t.heads.(ci) <- heads;
      t.premises_left.(ci) <- 0;
      t.satisfied.(ci) <- false;
      Array.iter (fun h -> t.extra_occurs_head.(h) <- ci :: t.extra_occurs_head.(h)) heads;
      (* Integrate into the current fixpoint. *)
      trigger t ci;
      drain t;
      if t.conflicted then Error `Conflict
      else begin
        push_op t (op_add ci);
        Ok ()
      end
    end

  (* Clause count at the current virgin base: learned clauses up to the most
     recent narrow belong to its canonical base propagation; later ones
     replay at their recorded log position. *)
  let base_clauses t =
    match t.narrows with [] -> t.original_nclauses | r :: _ -> r.nclauses_at

  (* Propagate the virgin state in the canonical rebuild order.  [r_plus]
     prepends learned clauses oldest-first, so a fresh [create] on the
     rebuilt formula triggers learned zero-premise clauses (oldest to
     newest) before the original ones — multi-head choices depend on that
     order, and replicating it keeps narrow-then-build byte-identical to the
     rebuild oracle. *)
  let reinit t =
    for ci = t.original_nclauses to base_clauses t - 1 do
      if t.premises_left.(ci) = 0 then trigger t ci
    done;
    for ci = 0 to t.original_nclauses - 1 do
      if t.premises_left.(ci) = 0 then trigger t ci
    done;
    drain t

  let rollback_trail t s =
    (* Premise decrements were applied only for drained variables; undo
       those first. *)
    for i = s to t.drained - 1 do
      Array.iter
        (fun ci -> t.premises_left.(ci) <- t.premises_left.(ci) + 1)
        t.occurs_premise.(t.trail.(i))
    done;
    for i = s to t.trail_len - 1 do
      let v = t.trail.(i) in
      t.truth.(v / bits) <- t.truth.(v / bits) land lnot (1 lsl (v mod bits))
    done;
    (* Any satisfied flag set since the snapshot is witnessed by a head
       turned true since the snapshot (flags follow head truths, and the
       [<]-chosen head of a premise-triggered clause turns true on the
       spot), so sweeping the unwound variables' head occurrences and
       re-deriving the flag from current truths restores every flag —
       clauses satisfied before the snapshot keep an older true head. *)
    for i = s to t.trail_len - 1 do
      let v = t.trail.(i) in
      let rederive ci =
        t.satisfied.(ci) <- Array.exists (fun h -> is_true t h) t.heads.(ci)
      in
      Array.iter rederive t.occurs_head.(v);
      List.iter rederive t.extra_occurs_head.(v)
    done;
    t.trail_len <- s;
    t.drained <- s;
    t.conflicted <- false

  let narrow t ~keep =
    Lbr_obs.Trace.with_span "sat.engine-narrow"
      ~args:(fun () -> [ ("keep", Lbr_obs.Trace.Int (Assignment.cardinal keep)) ])
    @@ fun () ->
    Perf.time "sat.engine-narrow" @@ fun () ->
    if t.conflicted then Error `Conflict
    else begin
      let removed = ref [] in
      for v = t.nvars - 1 downto 0 do
        if t.in_universe.(v) && not (Assignment.mem v keep) then removed := v :: !removed
      done;
      let saved_ops = Array.sub t.ops 0 t.op_len in
      rollback_trail t 0;
      List.iter (fun v -> t.in_universe.(v) <- false) !removed;
      t.narrows <-
        { removed = !removed; nclauses_at = t.nclauses; saved_ops } :: t.narrows;
      t.narrow_count <- t.narrow_count + 1;
      t.op_len <- 0;
      reinit t;
      if t.conflicted then Error `Conflict else Ok ()
    end

  (* Snapshots are only meaningful at quiescent points (pending suffix
     empty): [create] and every successful operation drain fully, and
     [rollback] re-establishes quiescence, so the four cursors are the
     entire state. *)
  let snapshot t =
    assert (t.drained = t.trail_len);
    {
      s_trail = t.trail_len;
      s_clauses = t.nclauses;
      s_narrows = t.narrow_count;
      s_ops = t.op_len;
    }

  let remove_learned t ~down_to =
    (* Popping from the newest clause down keeps each variable's extra
       occurrence list aligned: the clause being removed is always at the
       head of its heads' lists. *)
    for ci = t.nclauses - 1 downto down_to do
      Array.iter
        (fun h ->
          match t.extra_occurs_head.(h) with
          | c :: rest when c = ci -> t.extra_occurs_head.(h) <- rest
          | _ -> ())
        t.heads.(ci);
      t.heads.(ci) <- [||]
    done;
    t.nclauses <- down_to

  let replay t =
    for i = 0 to t.op_len - 1 do
      let op = t.ops.(i) in
      if op >= 0 then set_true t op else trigger t (op_ci op);
      drain t
    done

  let rollback t s =
    if s.s_clauses = t.nclauses && s.s_narrows = t.narrow_count then begin
      (* Structure unchanged: the cheap trail unwind. *)
      rollback_trail t s.s_trail;
      t.op_len <- s.s_ops
    end
    else begin
      (* Structure changed: drop the clauses and narrows taken since, then
         rebuild the snapshot state from the virgin base by replaying the
         recorded operation prefix.  Each replayed op previously succeeded
         in this exact structural context, so the replay is deterministic
         and conflict-free. *)
      rollback_trail t 0;
      if s.s_clauses < t.nclauses then remove_learned t ~down_to:s.s_clauses;
      if s.s_narrows < t.narrow_count then begin
        let rec undo n narrows =
          if n = s.s_narrows then narrows
          else
            match narrows with
            | [] -> narrows
            | r :: rest ->
                List.iter (fun v -> t.in_universe.(v) <- true) r.removed;
                (* The op log at the snapshot is a prefix of the log saved
                   by the first narrow that followed it. *)
                if n - 1 = s.s_narrows then t.ops <- Array.copy r.saved_ops;
                undo (n - 1) rest
        in
        t.narrows <- undo t.narrow_count t.narrows;
        t.narrow_count <- s.s_narrows
      end;
      t.op_len <- s.s_ops;
      reinit t;
      replay t
    end
end

let compute cnf ~order ?universe ?(required = Assignment.empty) () =
  let universe =
    match universe with
    | Some u -> u
    | None -> Assignment.union (Cnf.vars cnf) required
  in
  if not (Assignment.subset required universe) then None
  else
    let fast =
      match Engine.create cnf ~order ~universe with
      | Error `Conflict -> None
      | Ok engine -> (
          match Engine.assume_all engine (Assignment.to_list required) with
          | Ok () -> Some (Engine.true_set engine)
          | Error `Conflict -> None)
    in
    match fast with
    | Some _ as result -> result
    | None ->
        (* Fallback: DPLL search, then greedy minimization.  Reached only for
           formulas outside the implication fragment. *)
        let restricted = Cnf.restrict cnf ~keep:universe in
        (match Solver.solve_with restricted ~required with
        | None -> None
        | Some model ->
            Some (Solver.minimize restricted ~order ~required ~model))
