open Lbr_logic

module Engine = struct
  let bits = Sys.int_size

  (* Operations recorded since the last structural reset ([create] or
     [narrow]), for replay by structural rollbacks: a non-negative entry is
     an assumed variable, a negative entry [-(ci+1)] is the integration of
     learned clause [ci]. *)
  let op_add ci = -ci - 1
  let op_ci op = -op - 1

  (* A narrow is undone by restoring the variables it removed and — because
     it reset the operation log — the log it discarded.  [nclauses_at]
     remembers which learned clauses were part of its canonical base
     propagation (later ones replay at their recorded log position). *)
  type narrow_record = {
    removed : Var.t list;
    nclauses_at : int;
    saved_ops : int array;
  }

  (* Everything is a flat array over variable or clause indices, and every
     field is mutable so an {!arena} can reset an engine in place: arrays
     are capacity-sized (length >= the logical bound, [nvars] or
     [nclauses]) and only reallocated when a reset needs more room. *)
  type t = {
    mutable order : Order.t;
    mutable truth : int array;  (* bitset over variable ids, same layout as Assignment *)
    mutable pos_in_trail : int array;  (* var -> trail index, valid while true *)
    mutable in_universe : bool array;
    mutable nvars : int;
    mutable original_nclauses : int;
    mutable nclauses : int;
    (* Original clauses in CSR form: clause [ci]'s premises are
       [prem_data.(prem_off.(ci)) .. prem_data.(prem_off.(ci+1) - 1)], its
       in-universe heads likewise under [head_off]/[head_data]. *)
    mutable prem_off : int array;
    mutable prem_data : Var.t array;
    mutable head_off : int array;
    mutable head_data : Var.t array;
    (* var -> original clauses where it is a head, in decreasing clause
       order (CSR); used only to re-derive satisfied flags on rollback. *)
    mutable occh_off : int array;
    mutable occh_data : int array;
    (* Learned clauses (premise-free, appended past [original_nclauses]):
       clause [original_nclauses + j]'s heads live at
       [lhead_data.(lhead_off.(j)) .. lhead_data.(lhead_off.(j+1) - 1)]. *)
    mutable lhead_off : int array;
    mutable lhead_data : Var.t array;
    mutable satisfied : bool array;  (* original + learned, indexed by clause *)
    mutable extra_occurs_head : int list array;  (* var -> learned clauses, newest first *)
    (* Watched-premise lists.  Each original clause with at least one
       premise watches exactly one premise that is not yet drained; the
       per-variable watcher lists are singly linked through the clauses:
       [watch_head.(v)] is the first watching clause (or -1) and
       [watch_next.(ci)] the next one.  [watch_slot.(ci)] indexes
       [prem_data] at the watched premise, so membership is implicit:
       clause [ci] is on the list of [prem_data.(watch_slot.(ci))]. *)
    mutable watch_head : int array;
    mutable watch_next : int array;
    mutable watch_slot : int array;
    mutable fire_buf : int array;  (* scratch: clauses completed by one drain step *)
    (* Propagation trail: variables in the order they were made true.  The
       pending queue is the suffix [trail.(drained) .. trail.(trail_len - 1)]
       — a variable enters the trail exactly when it turns true, and [drain]
       consumes in FIFO order, so no separate queue is needed.  This makes
       {!rollback} a walk down the trail. *)
    mutable trail : Var.t array;
    mutable trail_len : int;
    mutable drained : int;
    mutable conflicted : bool;
    (* Structural history. *)
    mutable narrows : narrow_record list;  (* newest first *)
    mutable narrow_count : int;
    mutable ops : int array;  (* growable operation log since the last narrow *)
    mutable op_len : int;
    mutable watch_visits : int;  (* watcher-list nodes visited since the last flush *)
  }

  (* A pool of dead engines: [create ?arena] pops one and resets it in
     place, reallocating only the arrays whose capacity no longer fits, so
     per-iteration engine churn costs array fills instead of fresh solver
     state. *)
  type arena = { mutable pool : t list; mutable reused : int; mutable fresh : int }

  (* Snapshots capture the four monotone cursors; a rollback that only moves
     [s_trail] is the cheap trail unwind, one that moves the structural
     cursors rebuilds by replay. *)
  type snapshot = {
    s_trail : int;
    s_clauses : int;
    s_narrows : int;
    s_ops : int;
  }

  let max_var cnf universe =
    let m = ref (-1) in
    Assignment.iter (fun v -> if v > !m then m := v) (Cnf.vars cnf);
    Assignment.iter (fun v -> if v > !m then m := v) universe;
    !m

  let is_true t v =
    v < t.nvars && t.truth.(v / bits) land (1 lsl (v mod bits)) <> 0

  let true_set t = Assignment.of_words t.truth

  let mark t = t.trail_len

  let delta_since t m =
    (* The variables turned true since [m] are exactly the trail suffix;
       building the set from it allocates entry-sized words instead of two
       universe-sized closure copies and a diff. *)
    if m >= t.trail_len then Assignment.empty
    else begin
      let hi = ref 0 in
      for i = m to t.trail_len - 1 do
        if t.trail.(i) > !hi then hi := t.trail.(i)
      done;
      let words = Array.make ((!hi / bits) + 1) 0 in
      for i = m to t.trail_len - 1 do
        let v = t.trail.(i) in
        words.(v / bits) <- words.(v / bits) lor (1 lsl (v mod bits))
      done;
      Assignment.of_words words
    end

  let flush_counters t =
    if t.watch_visits > 0 then begin
      Perf.add "sat.watch-visits" t.watch_visits;
      t.watch_visits <- 0
    end

  (* Turn [v] true and append it to the trail for propagation. *)
  let set_true t v =
    if t.truth.(v / bits) land (1 lsl (v mod bits)) = 0 then begin
      t.truth.(v / bits) <- t.truth.(v / bits) lor (1 lsl (v mod bits));
      t.pos_in_trail.(v) <- t.trail_len;
      t.trail.(t.trail_len) <- v;
      t.trail_len <- t.trail_len + 1
    end

  (* The heads of clause [ci]: [(data, lo, hi)] with the heads at
     [data.(lo) .. data.(hi - 1)]. *)
  let head_range t ci =
    if ci < t.original_nclauses then
      (t.head_data, t.head_off.(ci), t.head_off.(ci + 1))
    else
      let j = ci - t.original_nclauses in
      (t.lhead_data, t.lhead_off.(j), t.lhead_off.(j + 1))

  let exists_true_head t ci =
    let data, lo, hi = head_range t ci in
    let found = ref false in
    let i = ref lo in
    while (not !found) && !i < hi do
      if is_true t data.(!i) then found := true;
      incr i
    done;
    !found

  (* A clause whose premises are all drained and whose satisfied flag is
     unset: choose the [<]-smallest head, or conflict when there is none.
     The satisfied flag is a pure cache of "some head is true": a head may
     already be true but still sitting in the pending suffix, so recheck
     before choosing.  Heads are filtered to the universe at indexing time
     but the universe can shrink afterwards ([narrow]), hence the
     in-universe check. *)
  let trigger t ci =
    if not t.satisfied.(ci) then begin
      if exists_true_head t ci then t.satisfied.(ci) <- true
      else begin
        let data, lo, hi = head_range t ci in
        (* First strictly-smaller rank wins, matching the order the heads
           were stored in (ascending variable id within the clause). *)
        let best = ref (-1) and best_rank = ref 0 in
        for i = lo to hi - 1 do
          let h = data.(i) in
          if t.in_universe.(h) then begin
            let r = Order.rank t.order h in
            if !best < 0 || r < !best_rank then begin
              best := h;
              best_rank := r
            end
          end
        done;
        if !best < 0 then t.conflicted <- true
        else begin
          t.satisfied.(ci) <- true;
          set_true t !best
        end
      end
    end

  (* Sort the completed-clause batch into decreasing clause order: the old
     occurrence scan visited clauses in decreasing index per drained
     variable, multi-head choices depend on that firing order, and the
     watcher lists present clauses in whatever order watch moves left them.
     Batches are almost always tiny, so insertion sort. *)
  let sort_desc a len =
    for i = 1 to len - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) < x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done

  (* Propagate the pending trail suffix.  Draining a variable visits only
     the clauses watching it: each either moves its watch to another
     undrained premise (false, or true but still pending) or has every
     premise drained and fires.  A completed clause keeps watching the
     variable that completed it — after any rollback that variable is false
     again, so the watch invariant (every watch rests on an undrained
     premise) survives rollbacks with no undo log: watches only ever move
     onto variables that are unwound with them. *)
  let drain t =
    while (not t.conflicted) && t.drained < t.trail_len do
      let v = t.trail.(t.drained) in
      t.drained <- t.drained + 1;
      let fire_len = ref 0 in
      let c = ref t.watch_head.(v) in
      if !c >= 0 then begin
        t.watch_head.(v) <- -1;
        while !c >= 0 do
          let ci = !c in
          t.watch_visits <- t.watch_visits + 1;
          let next = t.watch_next.(ci) in
          let lo = t.prem_off.(ci) and hi = t.prem_off.(ci + 1) in
          let len = hi - lo in
          (* Scan circularly from just past the stale watch so repeated
             repairs of one clause sweep its premises once overall. *)
          let start = t.watch_slot.(ci) + 1 in
          let slot = ref (-1) in
          let k = ref 0 in
          while !slot < 0 && !k < len do
            let p = start + !k in
            let i = if p >= hi then p - len else p in
            let u = t.prem_data.(i) in
            if (not (is_true t u)) || t.pos_in_trail.(u) >= t.drained then
              slot := i;
            incr k
          done;
          if !slot >= 0 then begin
            t.watch_slot.(ci) <- !slot;
            let w = t.prem_data.(!slot) in
            t.watch_next.(ci) <- t.watch_head.(w);
            t.watch_head.(w) <- ci
          end
          else begin
            (* Every premise drained: keep watching [v] (see above) and
               queue the clause for firing. *)
            t.watch_next.(ci) <- t.watch_head.(v);
            t.watch_head.(v) <- ci;
            t.fire_buf.(!fire_len) <- ci;
            incr fire_len
          end;
          c := next
        done;
        sort_desc t.fire_buf !fire_len;
        (* Fire the whole batch even through a conflict, exactly as the
           occurrence scan kept decrementing and triggering to the end of
           the drained variable's clause list. *)
        for k = 0 to !fire_len - 1 do
          trigger t t.fire_buf.(k)
        done
      end
    done

  let push_op t op =
    if t.op_len >= Array.length t.ops then begin
      let a = Array.make (max 16 (2 * Array.length t.ops)) 0 in
      Array.blit t.ops 0 a 0 t.op_len;
      t.ops <- a
    end;
    t.ops.(t.op_len) <- op;
    t.op_len <- t.op_len + 1

  let fresh_shell order =
    {
      order;
      truth = [||];
      pos_in_trail = [||];
      in_universe = [||];
      nvars = 0;
      original_nclauses = 0;
      nclauses = 0;
      prem_off = [| 0 |];
      prem_data = [||];
      head_off = [| 0 |];
      head_data = [||];
      occh_off = [| 0 |];
      occh_data = [||];
      lhead_off = [| 0 |];
      lhead_data = [||];
      satisfied = [||];
      extra_occurs_head = [||];
      watch_head = [||];
      watch_next = [||];
      watch_slot = [||];
      fire_buf = [||];
      trail = [||];
      trail_len = 0;
      drained = 0;
      conflicted = false;
      narrows = [];
      narrow_count = 0;
      ops = [||];
      op_len = 0;
      watch_visits = 0;
    }

  let grab_int a len = if Array.length a < len then Array.make len 0 else a
  let grab_bool a len = if Array.length a < len then Array.make len false else a

  let create ?arena cnf ~order ~universe =
    Lbr_obs.Trace.with_span "sat.engine-create"
      ~args:(fun () ->
        [ ("universe", Lbr_obs.Trace.Int (Assignment.cardinal universe)) ])
    @@ fun () ->
    Perf.time "sat.engine-create" @@ fun () ->
    let t =
      match arena with
      | Some a -> (
          match a.pool with
          | e :: rest ->
              a.pool <- rest;
              a.reused <- a.reused + 1;
              Perf.add "sat.arena-reuse" 1;
              e
          | [] ->
              a.fresh <- a.fresh + 1;
              fresh_shell order)
      | None -> fresh_shell order
    in
    t.order <- order;
    let n = max_var cnf universe + 1 in
    let words = (n + bits - 1) / bits in
    t.truth <- grab_int t.truth words;
    (* Invariant: truth words beyond the logical prefix stay zero.  [true_set]
       reads the physical array, and a recycled shell from a larger reduction
       would otherwise leak its stale bits into this one's assignments. *)
    Array.fill t.truth 0 (Array.length t.truth) 0;
    t.in_universe <- grab_bool t.in_universe n;
    Array.fill t.in_universe 0 n false;
    Assignment.iter (fun v -> t.in_universe.(v) <- true) universe;
    t.pos_in_trail <- grab_int t.pos_in_trail n;
    t.trail <- grab_int t.trail n;
    t.watch_head <- grab_int t.watch_head n;
    Array.fill t.watch_head 0 n (-1);
    if Array.length t.extra_occurs_head < n then t.extra_occurs_head <- Array.make n []
    else Array.fill t.extra_occurs_head 0 n [];
    t.occh_off <- grab_int t.occh_off (n + 1);
    Array.fill t.occh_off 0 (n + 1) 0;
    t.nvars <- n;
    (* Pass 1: count.  Clauses with any premise outside the universe are
       pre-satisfied by the restriction (that premise is fixed false) and
       dropped; heads are filtered to the universe.  Head-occurrence counts
       accumulate in [occh_off]. *)
    let clauses = Cnf.clauses cnf in
    let keep (c : Clause.t) = Array.for_all (fun v -> t.in_universe.(v)) c.neg in
    let nc = ref 0 and tot_prem = ref 0 and tot_head = ref 0 in
    List.iter
      (fun (c : Clause.t) ->
        if keep c then begin
          incr nc;
          tot_prem := !tot_prem + Array.length c.neg;
          Array.iter
            (fun h ->
              if t.in_universe.(h) then begin
                incr tot_head;
                t.occh_off.(h) <- t.occh_off.(h) + 1
              end)
            c.pos
        end)
      clauses;
    let nc = !nc in
    t.prem_off <- grab_int t.prem_off (nc + 1);
    t.head_off <- grab_int t.head_off (nc + 1);
    t.satisfied <- grab_bool t.satisfied nc;
    t.watch_next <- grab_int t.watch_next nc;
    t.watch_slot <- grab_int t.watch_slot nc;
    t.fire_buf <- grab_int t.fire_buf nc;
    t.prem_data <- grab_int t.prem_data !tot_prem;
    t.head_data <- grab_int t.head_data !tot_head;
    t.occh_data <- grab_int t.occh_data !tot_head;
    t.lhead_off <- grab_int t.lhead_off 1;
    t.lhead_off.(0) <- 0;
    (* Prefix-sum head-occurrence counts to bucket ends; pass 2 fills each
       bucket back to front while walking clauses in increasing index, so a
       bucket read forward lists clauses in decreasing index — the order
       the closure construction (and thus the head choices recorded in
       reduction traces) is sensitive to — and [occh_off.(v)] lands on the
       bucket start. *)
    let sum = ref 0 in
    for v = 0 to n - 1 do
      sum := !sum + t.occh_off.(v);
      t.occh_off.(v) <- !sum
    done;
    t.occh_off.(n) <- !sum;
    (* Pass 2: fill the CSRs. *)
    let ci = ref 0 and pcur = ref 0 and hcur = ref 0 in
    List.iter
      (fun (c : Clause.t) ->
        if keep c then begin
          let i = !ci in
          t.prem_off.(i) <- !pcur;
          Array.iter
            (fun v ->
              t.prem_data.(!pcur) <- v;
              incr pcur)
            c.neg;
          t.head_off.(i) <- !hcur;
          Array.iter
            (fun h ->
              if t.in_universe.(h) then begin
                t.head_data.(!hcur) <- h;
                incr hcur;
                t.occh_off.(h) <- t.occh_off.(h) - 1;
                t.occh_data.(t.occh_off.(h)) <- i
              end)
            c.pos;
          t.satisfied.(i) <- false;
          incr ci
        end)
      clauses;
    t.prem_off.(nc) <- !pcur;
    t.head_off.(nc) <- !hcur;
    t.original_nclauses <- nc;
    t.nclauses <- nc;
    (* Initial watches: the first premise — every variable is false, so any
       premise is undrained. *)
    for i = 0 to nc - 1 do
      if t.prem_off.(i + 1) > t.prem_off.(i) then begin
        let slot = t.prem_off.(i) in
        let v = t.prem_data.(slot) in
        t.watch_slot.(i) <- slot;
        t.watch_next.(i) <- t.watch_head.(v);
        t.watch_head.(v) <- i
      end
    done;
    t.trail_len <- 0;
    t.drained <- 0;
    t.conflicted <- Cnf.is_unsat cnf;
    t.narrows <- [];
    t.narrow_count <- 0;
    t.op_len <- 0;
    t.watch_visits <- 0;
    (* Zero-premise clauses fire immediately. *)
    for i = 0 to nc - 1 do
      if t.prem_off.(i + 1) = t.prem_off.(i) then trigger t i
    done;
    drain t;
    flush_counters t;
    if t.conflicted then begin
      (* The shell is still reusable: hand it straight back. *)
      (match arena with Some a -> a.pool <- t :: a.pool | None -> ());
      Error `Conflict
    end
    else Ok t

  let assume t v =
    if t.conflicted then Error `Conflict
    else if v >= t.nvars || not t.in_universe.(v) then Error `Conflict
    else begin
      set_true t v;
      drain t;
      if t.conflicted then Error `Conflict
      else begin
        push_op t v;
        Ok ()
      end
    end

  let assume_all t vs =
    List.fold_left
      (fun acc v -> match acc with Error _ as e -> e | Ok () -> assume t v)
      (Ok ()) vs

  let add_clause t ~pos =
    Lbr_obs.Trace.with_span "sat.engine-add-clause"
      ~args:(fun () -> [ ("literals", Lbr_obs.Trace.Int (List.length pos)) ])
    @@ fun () ->
    Perf.time "sat.engine-add-clause" @@ fun () ->
    if t.conflicted then Error `Conflict
    else begin
      let j = t.nclauses - t.original_nclauses in
      if j + 2 > Array.length t.lhead_off then begin
        let a = Array.make (max 8 (2 * Array.length t.lhead_off)) 0 in
        Array.blit t.lhead_off 0 a 0 (j + 1);
        t.lhead_off <- a
      end;
      let base = t.lhead_off.(j) in
      let cap_needed = base + List.length pos in
      if cap_needed > Array.length t.lhead_data then begin
        let a = Array.make (max 16 (max cap_needed (2 * Array.length t.lhead_data))) 0 in
        Array.blit t.lhead_data 0 a 0 base;
        t.lhead_data <- a
      end;
      (* Variables outside the universe (or past it) are fixed to false:
         they cannot serve as heads, exactly as [create] restricts. *)
      let cursor = ref base in
      List.iter
        (fun v ->
          if v >= 0 && v < t.nvars && t.in_universe.(v) then begin
            t.lhead_data.(!cursor) <- v;
            incr cursor
          end)
        pos;
      t.lhead_off.(j + 1) <- !cursor;
      let ci = t.nclauses in
      t.nclauses <- ci + 1;
      if ci >= Array.length t.satisfied then begin
        let a = Array.make (max 8 (2 * Array.length t.satisfied)) false in
        Array.blit t.satisfied 0 a 0 ci;
        t.satisfied <- a
      end;
      t.satisfied.(ci) <- false;
      for i = base to !cursor - 1 do
        let h = t.lhead_data.(i) in
        t.extra_occurs_head.(h) <- ci :: t.extra_occurs_head.(h)
      done;
      (* Integrate into the current fixpoint. *)
      trigger t ci;
      drain t;
      flush_counters t;
      if t.conflicted then Error `Conflict
      else begin
        push_op t (op_add ci);
        Ok ()
      end
    end

  (* Clause count at the current virgin base: learned clauses up to the most
     recent narrow belong to its canonical base propagation; later ones
     replay at their recorded log position. *)
  let base_clauses t =
    match t.narrows with [] -> t.original_nclauses | r :: _ -> r.nclauses_at

  (* Propagate the virgin state in the canonical rebuild order.  [r_plus]
     prepends learned clauses oldest-first, so a fresh [create] on the
     rebuilt formula triggers learned zero-premise clauses (oldest to
     newest) before the original ones — multi-head choices depend on that
     order, and replicating it keeps narrow-then-build byte-identical to the
     rebuild oracle. *)
  let reinit t =
    for ci = t.original_nclauses to base_clauses t - 1 do
      trigger t ci
    done;
    for ci = 0 to t.original_nclauses - 1 do
      if t.prem_off.(ci + 1) = t.prem_off.(ci) then trigger t ci
    done;
    drain t

  let rollback_trail t s =
    for i = s to t.trail_len - 1 do
      let v = t.trail.(i) in
      t.truth.(v / bits) <- t.truth.(v / bits) land lnot (1 lsl (v mod bits))
    done;
    (* A satisfied flag is only ever set with a currently-true head as
       witness, and every true variable is on the trail — so sweeping the
       unwound variables' head occurrences and re-deriving each flag from
       the remaining truths clears every flag whose witness went away.
       Watches need no repair: watch moves since the snapshot only landed
       on variables drained after it (unwound here) or still false. *)
    for i = s to t.trail_len - 1 do
      let v = t.trail.(i) in
      for k = t.occh_off.(v) to t.occh_off.(v + 1) - 1 do
        let ci = t.occh_data.(k) in
        t.satisfied.(ci) <- exists_true_head t ci
      done;
      List.iter
        (fun ci -> t.satisfied.(ci) <- exists_true_head t ci)
        t.extra_occurs_head.(v)
    done;
    t.trail_len <- s;
    t.drained <- s;
    t.conflicted <- false

  let narrow t ~keep =
    Lbr_obs.Trace.with_span "sat.engine-narrow"
      ~args:(fun () -> [ ("keep", Lbr_obs.Trace.Int (Assignment.cardinal keep)) ])
    @@ fun () ->
    Perf.time "sat.engine-narrow" @@ fun () ->
    if t.conflicted then Error `Conflict
    else begin
      let removed = ref [] in
      for v = t.nvars - 1 downto 0 do
        if t.in_universe.(v) && not (Assignment.mem v keep) then removed := v :: !removed
      done;
      let saved_ops = Array.sub t.ops 0 t.op_len in
      rollback_trail t 0;
      List.iter (fun v -> t.in_universe.(v) <- false) !removed;
      t.narrows <-
        { removed = !removed; nclauses_at = t.nclauses; saved_ops } :: t.narrows;
      t.narrow_count <- t.narrow_count + 1;
      t.op_len <- 0;
      reinit t;
      flush_counters t;
      if t.conflicted then Error `Conflict else Ok ()
    end

  (* Snapshots are only meaningful at quiescent points (pending suffix
     empty): [create] and every successful operation drain fully, and
     [rollback] re-establishes quiescence, so the four cursors are the
     entire state. *)
  let snapshot t =
    assert (t.drained = t.trail_len);
    {
      s_trail = t.trail_len;
      s_clauses = t.nclauses;
      s_narrows = t.narrow_count;
      s_ops = t.op_len;
    }

  let remove_learned t ~down_to =
    (* Popping from the newest clause down keeps each variable's extra
       occurrence list aligned: the clause being removed is always at the
       head of its heads' lists. *)
    for ci = t.nclauses - 1 downto down_to do
      let j = ci - t.original_nclauses in
      for i = t.lhead_off.(j) to t.lhead_off.(j + 1) - 1 do
        let h = t.lhead_data.(i) in
        match t.extra_occurs_head.(h) with
        | c :: rest when c = ci -> t.extra_occurs_head.(h) <- rest
        | _ -> ()
      done
    done;
    t.nclauses <- down_to

  let replay t =
    for i = 0 to t.op_len - 1 do
      let op = t.ops.(i) in
      if op >= 0 then set_true t op else trigger t (op_ci op);
      drain t
    done

  let rollback t s =
    if s.s_clauses = t.nclauses && s.s_narrows = t.narrow_count then begin
      (* Structure unchanged: the cheap trail unwind. *)
      rollback_trail t s.s_trail;
      t.op_len <- s.s_ops
    end
    else begin
      (* Structure changed: drop the clauses and narrows taken since, then
         rebuild the snapshot state from the virgin base by replaying the
         recorded operation prefix.  Each replayed op previously succeeded
         in this exact structural context, so the replay is deterministic
         and conflict-free. *)
      rollback_trail t 0;
      if s.s_clauses < t.nclauses then remove_learned t ~down_to:s.s_clauses;
      if s.s_narrows < t.narrow_count then begin
        let rec undo n narrows =
          if n = s.s_narrows then narrows
          else
            match narrows with
            | [] -> narrows
            | r :: rest ->
                List.iter (fun v -> t.in_universe.(v) <- true) r.removed;
                (* The op log at the snapshot is a prefix of the log saved
                   by the first narrow that followed it. *)
                if n - 1 = s.s_narrows then t.ops <- Array.copy r.saved_ops;
                undo (n - 1) rest
        in
        t.narrows <- undo t.narrow_count t.narrows;
        t.narrow_count <- s.s_narrows
      end;
      t.op_len <- s.s_ops;
      reinit t;
      replay t
    end

  (* An independent copy of a quiescent engine: every mutable array is
     blitted at its logical length into a pooled (or fresh) shell, so the
     branch and the original never alias state that either side resets or
     grows in place.  Immutable structure is shared: the order, the narrow
     records (their [saved_ops] are only ever replaced wholesale, via
     [Array.copy], never mutated) and the tails of the learned-occurrence
     lists ([add_clause] conses, [remove_learned] pops — cells themselves
     are never rewritten).  [fire_buf] is per-drain scratch, so the fork
     only needs capacity.  O(state size), no propagation. *)
  let fork ?arena t =
    assert (t.drained = t.trail_len && not t.conflicted);
    Perf.time "sat.engine-fork" @@ fun () ->
    let f =
      match arena with
      | Some a -> (
          match a.pool with
          | e :: rest ->
              a.pool <- rest;
              e
          | [] -> fresh_shell t.order)
      | None -> fresh_shell t.order
    in
    f.order <- t.order;
    let n = t.nvars in
    let words = (n + bits - 1) / bits in
    let onc = t.original_nclauses in
    let j = t.nclauses - onc in
    let copy_int dst src len =
      let dst = grab_int dst len in
      Array.blit src 0 dst 0 len;
      dst
    in
    let copy_bool dst src len =
      let dst = grab_bool dst len in
      Array.blit src 0 dst 0 len;
      dst
    in
    f.truth <- copy_int f.truth t.truth words;
    (* Same invariant as [create]: an oversized recycled shell keeps stale
       truth bits past [words] that [true_set]'s physical read would see. *)
    Array.fill f.truth words (Array.length f.truth - words) 0;
    f.pos_in_trail <- copy_int f.pos_in_trail t.pos_in_trail n;
    f.in_universe <- copy_bool f.in_universe t.in_universe n;
    f.prem_off <- copy_int f.prem_off t.prem_off (onc + 1);
    f.prem_data <- copy_int f.prem_data t.prem_data t.prem_off.(onc);
    f.head_off <- copy_int f.head_off t.head_off (onc + 1);
    f.head_data <- copy_int f.head_data t.head_data t.head_off.(onc);
    f.occh_off <- copy_int f.occh_off t.occh_off (n + 1);
    f.occh_data <- copy_int f.occh_data t.occh_data t.occh_off.(n);
    f.lhead_off <- copy_int f.lhead_off t.lhead_off (j + 1);
    f.lhead_data <- copy_int f.lhead_data t.lhead_data t.lhead_off.(j);
    f.satisfied <- copy_bool f.satisfied t.satisfied t.nclauses;
    (let eoh =
       if Array.length f.extra_occurs_head < n then Array.make n []
       else f.extra_occurs_head
     in
     Array.blit t.extra_occurs_head 0 eoh 0 n;
     f.extra_occurs_head <- eoh);
    f.watch_head <- copy_int f.watch_head t.watch_head n;
    f.watch_next <- copy_int f.watch_next t.watch_next onc;
    f.watch_slot <- copy_int f.watch_slot t.watch_slot onc;
    f.fire_buf <- grab_int f.fire_buf onc;
    f.trail <- copy_int f.trail t.trail n;
    f.ops <- copy_int f.ops t.ops t.op_len;
    f.nvars <- n;
    f.original_nclauses <- onc;
    f.nclauses <- t.nclauses;
    f.trail_len <- t.trail_len;
    f.drained <- t.drained;
    f.conflicted <- false;
    f.narrows <- t.narrows;
    f.narrow_count <- t.narrow_count;
    f.op_len <- t.op_len;
    f.watch_visits <- 0;
    f
end

module Arena = struct
  type t = Engine.arena

  let create () : t = { Engine.pool = []; reused = 0; fresh = 0 }

  let release (a : t) (e : Engine.t) =
    Engine.flush_counters e;
    a.Engine.pool <- e :: a.Engine.pool

  let reuse_hits (a : t) = a.Engine.reused

  let key = Domain.DLS.new_key create
  let default () : t = Domain.DLS.get key
end

let compute cnf ~order ?universe ?(required = Assignment.empty) () =
  let universe =
    match universe with
    | Some u -> u
    | None -> Assignment.union (Cnf.vars cnf) required
  in
  if not (Assignment.subset required universe) then None
  else
    let arena = Arena.default () in
    let fast =
      match Engine.create ~arena cnf ~order ~universe with
      | Error `Conflict -> None
      | Ok engine ->
          let result =
            match Engine.assume_all engine (Assignment.to_list required) with
            | Ok () -> Some (Engine.true_set engine)
            | Error `Conflict -> None
          in
          Arena.release arena engine;
          result
    in
    match fast with
    | Some _ as result -> result
    | None ->
        (* Fallback: DPLL search, then greedy minimization.  Reached only for
           formulas outside the implication fragment. *)
        let restricted = Cnf.restrict cnf ~keep:universe in
        (match Solver.solve_with restricted ~required with
        | None -> None
        | Some model ->
            Some (Solver.minimize restricted ~order ~required ~model))
