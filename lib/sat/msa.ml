open Lbr_logic

module Engine = struct
  let bits = Sys.int_size

  type t = {
    order : Order.t;
    truth : int array;  (* bitset over variable ids, same layout as Assignment *)
    in_universe : bool array;
    nvars : int;
    (* Clause state, indexed by clause id. *)
    heads : Var.t array array;  (* positive literals inside the universe *)
    premises_left : int array;
    satisfied : bool array;
    occurs_premise : int array array;  (* var id -> clauses where it is a premise *)
    occurs_head : int array array;
    (* Propagation trail: variables in the order they were made true.  The
       pending queue is the suffix [trail.(drained) .. trail.(trail_len - 1)]
       — a variable enters the trail exactly when it turns true, and [drain]
       consumes in FIFO order, so no separate queue is needed.  This makes
       {!rollback} a walk down the trail. *)
    trail : Var.t array;
    mutable trail_len : int;
    mutable drained : int;
    mutable conflicted : bool;
  }

  type snapshot = int

  let max_var cnf universe =
    let m = ref (-1) in
    Assignment.iter (fun v -> if v > !m then m := v) (Cnf.vars cnf);
    Assignment.iter (fun v -> if v > !m then m := v) universe;
    !m

  let is_true t v =
    v < t.nvars && t.truth.(v / bits) land (1 lsl (v mod bits)) <> 0

  let true_set t = Assignment.of_words t.truth

  (* Turn [v] true and append it to the trail for propagation. *)
  let set_true t v =
    if t.truth.(v / bits) land (1 lsl (v mod bits)) = 0 then begin
      t.truth.(v / bits) <- t.truth.(v / bits) lor (1 lsl (v mod bits));
      t.trail.(t.trail_len) <- v;
      t.trail_len <- t.trail_len + 1
    end

  (* A clause whose premises are all true and whose satisfied flag is unset:
     all heads are false (head truths mark the flag eagerly), so choose the
     [<]-smallest head, or conflict when there is none. *)
  let trigger t ci =
    if not t.satisfied.(ci) then begin
      (* A head may already be true but still sitting in the pending suffix
         (its satisfied-flag sweep has not run yet); recheck before
         choosing. *)
      if Array.exists (fun h -> is_true t h) t.heads.(ci) then t.satisfied.(ci) <- true
      else
        match Order.min_of_array t.order t.heads.(ci) ~keep:(fun _ -> true) with
        | None -> t.conflicted <- true
        | Some h ->
            t.satisfied.(ci) <- true;
            set_true t h
    end

  let drain t =
    while (not t.conflicted) && t.drained < t.trail_len do
      let v = t.trail.(t.drained) in
      t.drained <- t.drained + 1;
      Array.iter (fun ci -> t.satisfied.(ci) <- true) t.occurs_head.(v);
      Array.iter
        (fun ci ->
          t.premises_left.(ci) <- t.premises_left.(ci) - 1;
          if t.premises_left.(ci) = 0 then trigger t ci)
        t.occurs_premise.(v)
    done

  let create cnf ~order ~universe =
    let n = max_var cnf universe + 1 in
    let in_universe = Array.make n false in
    Assignment.iter (fun v -> in_universe.(v) <- true) universe;
    let relevant =
      (* Drop clauses pre-satisfied by the restriction: any premise outside
         the universe is false, making the clause true. *)
      List.filter
        (fun (c : Clause.t) -> Array.for_all (fun v -> in_universe.(v)) c.neg)
        (Cnf.clauses cnf)
      |> Array.of_list
    in
    let nclauses = Array.length relevant in
    let heads =
      Array.map
        (fun (c : Clause.t) ->
          Array.to_list c.pos |> List.filter (fun v -> in_universe.(v)) |> Array.of_list)
        relevant
    in
    let premise_count = Array.make n 0 and head_count = Array.make n 0 in
    Array.iteri
      (fun ci (c : Clause.t) ->
        Array.iter (fun v -> premise_count.(v) <- premise_count.(v) + 1) c.neg;
        Array.iter (fun v -> head_count.(v) <- head_count.(v) + 1) heads.(ci))
      relevant;
    let occurs_premise = Array.init n (fun v -> Array.make premise_count.(v) 0) in
    let occurs_head = Array.init n (fun v -> Array.make head_count.(v) 0) in
    (* Fill from the last clause down so each variable's occurrence array
       runs through clauses in decreasing index — the order the previous
       cons-built lists presented, which the closure construction (and thus
       the head choices recorded in reduction traces) is sensitive to. *)
    for ci = nclauses - 1 downto 0 do
      let c = relevant.(ci) in
      Array.iter
        (fun v ->
          premise_count.(v) <- premise_count.(v) - 1;
          occurs_premise.(v).(Array.length occurs_premise.(v) - 1 - premise_count.(v)) <- ci)
        c.neg;
      Array.iter
        (fun v ->
          head_count.(v) <- head_count.(v) - 1;
          occurs_head.(v).(Array.length occurs_head.(v) - 1 - head_count.(v)) <- ci)
        heads.(ci)
    done;
    let t =
      {
        order;
        truth = Array.make ((n + bits - 1) / bits) 0;
        in_universe;
        nvars = n;
        heads;
        premises_left = Array.map (fun (c : Clause.t) -> Array.length c.neg) relevant;
        satisfied = Array.make nclauses false;
        occurs_premise;
        occurs_head;
        trail = Array.make n 0;
        trail_len = 0;
        drained = 0;
        conflicted = Cnf.is_unsat cnf;
      }
    in
    (* Zero-premise clauses fire immediately. *)
    Array.iteri (fun ci pl -> if pl = 0 then trigger t ci) t.premises_left;
    drain t;
    if t.conflicted then Error `Conflict else Ok t

  let assume t v =
    if t.conflicted then Error `Conflict
    else if v >= Array.length t.in_universe || not t.in_universe.(v) then Error `Conflict
    else begin
      set_true t v;
      drain t;
      if t.conflicted then Error `Conflict else Ok ()
    end

  let assume_all t vs =
    List.fold_left
      (fun acc v -> match acc with Error _ as e -> e | Ok () -> assume t v)
      (Ok ()) vs

  (* Snapshots are only meaningful at quiescent points (pending suffix
     empty): [create] and every successful [assume] drain fully, and
     [rollback] re-establishes quiescence, so the trail position is the
     entire state. *)
  let snapshot t =
    assert (t.drained = t.trail_len);
    t.trail_len

  let rollback t s =
    (* Premise decrements were applied only for drained variables; undo
       those first. *)
    for i = s to t.drained - 1 do
      Array.iter
        (fun ci -> t.premises_left.(ci) <- t.premises_left.(ci) + 1)
        t.occurs_premise.(t.trail.(i))
    done;
    for i = s to t.trail_len - 1 do
      let v = t.trail.(i) in
      t.truth.(v / bits) <- t.truth.(v / bits) land lnot (1 lsl (v mod bits))
    done;
    (* Any satisfied flag set since the snapshot is witnessed by a head
       turned true since the snapshot (flags follow head truths, and the
       [<]-chosen head of a premise-triggered clause turns true on the
       spot), so sweeping the unwound variables' head occurrences and
       re-deriving the flag from current truths restores every flag —
       clauses satisfied before the snapshot keep an older true head. *)
    for i = s to t.trail_len - 1 do
      Array.iter
        (fun ci -> t.satisfied.(ci) <- Array.exists (fun h -> is_true t h) t.heads.(ci))
        t.occurs_head.(t.trail.(i))
    done;
    t.trail_len <- s;
    t.drained <- s;
    t.conflicted <- false
end

let compute cnf ~order ?universe ?(required = Assignment.empty) () =
  let universe =
    match universe with
    | Some u -> u
    | None -> Assignment.union (Cnf.vars cnf) required
  in
  if not (Assignment.subset required universe) then None
  else
    let fast =
      match Engine.create cnf ~order ~universe with
      | Error `Conflict -> None
      | Ok engine -> (
          match Engine.assume_all engine (Assignment.to_list required) with
          | Ok () -> Some (Engine.true_set engine)
          | Error `Conflict -> None)
    in
    match fast with
    | Some _ as result -> result
    | None ->
        (* Fallback: DPLL search, then greedy minimization.  Reached only for
           formulas outside the implication fragment. *)
        let restricted = Cnf.restrict cnf ~keep:universe in
        (match Solver.solve_with restricted ~required with
        | None -> None
        | Some model ->
            Some (Solver.minimize restricted ~order ~required ~model))
