open Lbr_logic

let solve cnf =
  let p = Cnf.Packed.make cnf in
  Cnf.Packed.solve p ~assume_true:[] ~assume_false:[]

let satisfiable cnf = Option.is_some (solve cnf)

let solve_with cnf ~required =
  let p = Cnf.Packed.make cnf in
  Cnf.Packed.solve p ~assume_true:(Assignment.to_list required) ~assume_false:[]
  |> Option.map (Assignment.union required)

let minimize cnf ~order ~required ~model =
  assert (Cnf.holds cnf model);
  assert (Assignment.subset required model);
  (* Work inside the model's universe so satisfiability checks cannot cheat
     by turning on variables outside [model]. *)
  let p = Cnf.Packed.make (Cnf.restrict cnf ~keep:model) in
  let nvars = Cnf.Packed.num_vars p in
  (* Decisions are committed onto the packed state permanently (assign and
     propagate); each satisfiability probe for "can this candidate be false?"
     then only has to search — and undo — the still-undecided variables,
     instead of re-conditioning the formula from scratch per candidate.
     Propagation-forced values are logically implied by the commitments, so
     committing them early answers those candidates' probes for free. *)
  let commit v b =
    (match Cnf.Packed.value p v with
    | `Unassigned -> Cnf.Packed.assign p v b
    | `True -> assert b
    | `False -> assert (not b));
    let ok = Cnf.Packed.propagate p in
    assert ok
  in
  Assignment.iter (fun v -> if v < nvars then commit v true) required;
  (* Visit candidates largest-[<] first so the surviving set prefers
     [<]-small variables, matching the MSA tie-breaking discipline. *)
  let candidates =
    Assignment.diff model required |> Assignment.to_list |> Order.sort order |> List.rev
  in
  let keep =
    List.fold_left
      (fun keep v ->
        if v >= nvars then keep (* unconstrained: always droppable *)
        else
          match Cnf.Packed.value p v with
          | `False -> keep
          | `True -> Assignment.add v keep
          | `Unassigned ->
              let m = Cnf.Packed.mark p in
              Cnf.Packed.assign p v false;
              let sat = Cnf.Packed.search p in
              Cnf.Packed.undo_to p m;
              if sat then begin
                commit v false;
                keep
              end
              else begin
                commit v true;
                Assignment.add v keep
              end)
      required candidates
  in
  assert (Cnf.holds cnf keep);
  keep
