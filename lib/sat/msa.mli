(** Approximate minimal satisfying assignments, [MSA_<].

    A minimal satisfying assignment maps as few variables as possible to
    true; computing one exactly is NP-complete (Ravi–Somenzi), so — like the
    paper — we compute an approximation in polynomial time, driven by a total
    variable order [<]:

    {ul
    {- clauses are read as implications [(⋀ N) ⇒ (⋁ P)];}
    {- a least fixpoint makes variables true only when forced: when all of a
       clause's premises hold and none of its head does, the [<]-smallest
       head variable is turned on;}
    {- on the graph/Horn fragment (single-variable heads) this computes the
       exact least model, which is what Theorem 4.5's minimality relies on.}}

    The {!Engine} exposes the fixpoint incrementally: GBR's progression
    subroutine calls [MSA_<(R⁺ ∧ x | D^∪ = 1)] for growing [D^∪], which maps
    to one {!Engine.assume} per step, each variable being processed at most
    once over a whole progression. *)

open Lbr_logic

module Engine : sig
  type t

  val create :
    Cnf.t -> order:Order.t -> universe:Assignment.t -> (t, [ `Conflict ]) result
  (** Index the formula restricted to [universe] (variables outside it are
      fixed to false) and propagate all zero-premise clauses.  [`Conflict]
      when a clause has all premises inside the initial closure but no head
      inside the universe. *)

  val assume : t -> Var.t -> (unit, [ `Conflict ]) result
  (** Set a variable to true and close under the fixpoint.  The engine is
      monotone: assumptions accumulate.  After a [`Conflict] the engine must
      be discarded. *)

  val assume_all : t -> Var.t list -> (unit, [ `Conflict ]) result

  val is_true : t -> Var.t -> bool

  val true_set : t -> Assignment.t
  (** The current closure (the MSA of the formula conditioned on everything
      assumed so far). *)

  type snapshot

  val snapshot : t -> snapshot
  (** Capture the current state.  Only valid on a quiescent engine (after
      [create] or a successful [assume]); cheap — a trail position. *)

  val rollback : t -> snapshot -> unit
  (** Undo every assumption and propagation made since the snapshot,
      including clearing a conflict, in time proportional to the number of
      variables turned true since.  This makes one engine reusable across
      the entries of a whole progression: a failed [assume] rolls back
      instead of forcing a rebuild. *)
end

val compute :
  Cnf.t ->
  order:Order.t ->
  ?universe:Assignment.t ->
  ?required:Assignment.t ->
  unit ->
  Assignment.t option
(** [compute r ~order ~universe ~required ()] is an approximate MSA of
    [(r | required = 1)] restricted to [universe] (default: the formula's
    variables together with [required]).  Falls back to DPLL search plus
    greedy minimization when the fixpoint meets a conflict (possible only
    outside the implication fragment, e.g. purely negative clauses).  [None]
    when unsatisfiable. *)
