(** Approximate minimal satisfying assignments, [MSA_<].

    A minimal satisfying assignment maps as few variables as possible to
    true; computing one exactly is NP-complete (Ravi–Somenzi), so — like the
    paper — we compute an approximation in polynomial time, driven by a total
    variable order [<]:

    {ul
    {- clauses are read as implications [(⋀ N) ⇒ (⋁ P)];}
    {- a least fixpoint makes variables true only when forced: when all of a
       clause's premises hold and none of its head does, the [<]-smallest
       head variable is turned on;}
    {- on the graph/Horn fragment (single-variable heads) this computes the
       exact least model, which is what Theorem 4.5's minimality relies on.}}

    The {!Engine} exposes the fixpoint incrementally, in two dimensions:

    {ul
    {- {e within} a progression, one {!Engine.assume} per step, each
       variable being processed at most once over the whole progression;}
    {- {e across} GBR iterations, {!Engine.add_clause} appends a learned
       disjunction in place and {!Engine.narrow} shrinks the universe to a
       prefix union — so one engine survives the whole reduction instead of
       re-indexing the growing formula every iteration.}} *)

open Lbr_logic

module Engine : sig
  type t

  type arena
  (** A pool of dead engines.  {!create} with an arena pops a pooled engine
      and resets it in place — arrays are reallocated only when their
      capacity no longer fits, so per-iteration engine churn costs array
      fills instead of fresh solver state. *)

  val create :
    ?arena:arena ->
    Cnf.t ->
    order:Order.t ->
    universe:Assignment.t ->
    (t, [ `Conflict ]) result
  (** Index the formula restricted to [universe] (variables outside it are
      fixed to false) and propagate all zero-premise clauses.  [`Conflict]
      when a clause has all premises inside the initial closure but no head
      inside the universe (on conflict an arena-backed shell returns to the
      pool immediately). *)

  val assume : t -> Var.t -> (unit, [ `Conflict ]) result
  (** Set a variable to true and close under the fixpoint.  The engine is
      monotone: assumptions accumulate.  After a [`Conflict] the engine must
      be rolled back or discarded. *)

  val assume_all : t -> Var.t list -> (unit, [ `Conflict ]) result

  val add_clause : t -> pos:Var.t list -> (unit, [ `Conflict ]) result
  (** Append the disjunction [⋁ pos] (a learned set) in place — the clause
      state grows incrementally, with no re-indexing of the formula — and
      integrate it into the current fixpoint: if no listed variable is
      already true, the [<]-smallest one inside the universe turns true and
      propagates.  [`Conflict] when the clause has no head inside the
      universe (the engine must then be rolled back or discarded). *)

  val narrow : t -> keep:Assignment.t -> (unit, [ `Conflict ]) result
  (** Shrink the universe to [universe ∩ keep], discard every assumption,
      and recompute the base closure.  The recomputation triggers learned
      clauses oldest-first before the original clauses — exactly the
      propagation order of a fresh {!create} on [r_plus], so a
      narrow-then-build is byte-identical to the per-iteration rebuild it
      replaces.  [`Conflict] exactly when that fresh [create] would
      conflict. *)

  val is_true : t -> Var.t -> bool

  val true_set : t -> Assignment.t
  (** The current closure (the MSA of the formula conditioned on everything
      assumed so far). *)

  val mark : t -> int
  (** The current propagation-trail position.  Only meaningful on a
      quiescent engine (like {!snapshot}). *)

  val delta_since : t -> int -> Assignment.t
  (** [delta_since t m] is the set of variables turned true since the
      {!mark} [m] — equal to [diff (true_set t) (true-set at m)] but built
      from the trail suffix, allocating delta-sized instead of
      universe-sized. *)

  type snapshot

  val snapshot : t -> snapshot
  (** Capture the current state.  Only valid on a quiescent engine (after
      [create] or a successful operation); cheap — four cursor positions. *)

  val rollback : t -> snapshot -> unit
  (** Undo everything done since the snapshot, including clearing a
      conflict.  When only assumptions were made, this is the cheap trail
      unwind, proportional to the number of variables turned true since —
      which makes one engine reusable across the entries of a whole
      progression.  When the structure changed ({!add_clause} / {!narrow}),
      the added clauses are dropped, the removed variables restored, and the
      snapshot state rebuilt by replaying the recorded operation log from
      the base closure — every replayed operation already succeeded in the
      same structural context, so the replay is deterministic and restores
      the state exactly. *)

  val flush_counters : t -> unit
  (** Flush the engine's internally-batched event counters (watch-list
      visits) into the calling domain's {!Lbr_logic.Perf} table.  Called
      automatically by the structural operations and by {!Arena.release};
      call it after a burst of {!assume}s when exact counter attribution
      matters. *)

  val fork : ?arena:arena -> t -> t
  (** An independent copy of a quiescent, conflict-free engine, suitable
      for exploring a speculative branch: mutating either copy (assume,
      add_clause, narrow, rollback) never affects the other, and identical
      operation sequences on the two produce identical results.  Storage
      comes from the arena when given (release the fork back when the
      branch is abandoned or adopted over).  Cost is proportional to the
      engine's state size — no propagation is redone. *)
end

module Arena : sig
  type t = Engine.arena

  val create : unit -> t

  val default : unit -> t
  (** The calling domain's shared arena (domain-local, so pooled engines
      never cross domains). *)

  val release : t -> Engine.t -> unit
  (** Return an engine to the pool.  The engine must not be used afterwards
      — the next {!Engine.create} on this arena may recycle its storage. *)

  val reuse_hits : t -> int
  (** How many {!Engine.create} calls were served by resetting a pooled
      engine instead of allocating. *)
end

val compute :
  Cnf.t ->
  order:Order.t ->
  ?universe:Assignment.t ->
  ?required:Assignment.t ->
  unit ->
  Assignment.t option
(** [compute r ~order ~universe ~required ()] is an approximate MSA of
    [(r | required = 1)] restricted to [universe] (default: the formula's
    variables together with [required]).  Falls back to DPLL search plus
    greedy minimization when the fixpoint meets a conflict (possible only
    outside the implication fragment, e.g. purely negative clauses).  [None]
    when unsatisfiable. *)
