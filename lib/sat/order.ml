open Lbr_logic

type t = { rank_of : Var.t -> int }

let by_creation _pool = { rank_of = (fun v -> v) }

let of_list vars =
  let tbl = Hashtbl.create (List.length vars) in
  List.iteri
    (fun i v ->
      if Hashtbl.mem tbl v then invalid_arg "Order.of_list: duplicate variable";
      Hashtbl.add tbl v i)
    vars;
  let n = List.length vars in
  { rank_of = (fun v -> match Hashtbl.find_opt tbl v with Some r -> r | None -> n + v) }

let reversed t = { rank_of = (fun v -> -t.rank_of v) }

let rank t v = t.rank_of v

let compare t a b = Int.compare (t.rank_of a) (t.rank_of b)

let min_of t set = Assignment.min_by ~order:t.rank_of set

let min_of_array t arr ~keep =
  Array.fold_left
    (fun best v ->
      if not (keep v) then best
      else
        match best with
        | None -> Some v
        | Some b -> if t.rank_of v < t.rank_of b then Some v else best)
    None arr

(* Universes overwhelmingly arrive already rank-ascending — bitset
   enumeration yields ascending variable ids and [by_creation] ranks by id —
   so an O(n) presorted check saves the O(n log n) sort on the common path.
   The check costs one extra scan when the input is genuinely unsorted. *)
let sort t vars =
  let rec is_sorted prev = function
    | [] -> true
    | v :: rest -> t.rank_of prev <= t.rank_of v && is_sorted v rest
  in
  match vars with
  | [] | [ _ ] -> vars
  | v :: rest -> if is_sorted v rest then vars else List.sort (compare t) vars
