(** A resilient predicate oracle.

    [Lbr.Predicate] assumes the black box always returns; real tools
    (decompiler + compiler pipelines) are flaky — they crash, hang, or
    fail transiently under load.  An oracle wraps a black box with:

    - a thread-safe memo table, so concurrent reducers sharing one oracle
      never pay for a repeated input;
    - retry with exponential backoff for failures classified as transient
      by [config.transient] (and for advisory timeouts);
    - crash classification: once retries are exhausted, or on a
      non-transient exception, the attempt is mapped by [crash_policy] to
      a [false] outcome, a [true] outcome, or a {!Crashed} exception.

    The timeout is {e advisory}: a black box cannot be preempted from
    within a domain, so an attempt whose wall-clock time exceeds
    [config.timeout] has its result discarded and is treated like a
    transient failure (real deployments would put the tool behind a
    process boundary; the simulated tools here return quickly, and fault
    injection raises instead of sleeping).

    Concurrency contract: {!run} may be called from any number of domains.
    Counters are mutex-guarded and exact.  Concurrent queries for the same
    uncached input are deduplicated in flight: the first caller becomes the
    leader and executes the black box (with retries); the others block until
    the leader settles, then re-read the memo — each waiter still counts as
    a query, and a waiter answered from the leader's memoized result counts
    as a memo hit.  If the leader raised instead of memoizing
    ([Crash_raises]), one waiter takes over as the new leader, so a
    transiently-crashing input costs one full retry ladder per waking
    caller, never duplicate concurrent executions. *)

open Lbr_logic

type crash_policy =
  | Crash_fails  (** a crashed run counts as "bug not reproduced" *)
  | Crash_passes  (** a crashed run counts as "bug reproduced" *)
  | Crash_raises  (** escalate as {!Crashed} to the caller *)

type config = {
  timeout : float option;  (** advisory per-attempt wall-clock budget, seconds *)
  retries : int;  (** extra attempts after the first, for transient failures *)
  backoff : float;  (** sleep [backoff * 2^(k-1)] seconds before retry [k] *)
  crash_policy : crash_policy;
  transient : exn -> bool;  (** which exceptions are worth retrying *)
}

val default_config : config
(** No timeout, no retries, no backoff, [Crash_raises], nothing
    transient — the strict behaviour of a bare predicate. *)

exception Crashed of { oracle : string; attempts : int; reason : string }
(** Raised under [Crash_raises] when every attempt failed. *)

type t

val make : ?config:config -> ?name:string -> (Assignment.t -> bool) -> t
(** Wrap a raw black box. *)

val of_predicate : ?config:config -> Lbr.Predicate.t -> t
(** Layer an oracle over an instrumented predicate: the predicate keeps
    counting underlying executions, the oracle adds resilience on top.
    (Both layers memoize; the predicate's table only ever sees inputs the
    oracle retried past its own cache, so the double bookkeeping is
    harmless.) *)

val name : t -> string

val run : t -> Assignment.t -> bool
(** Evaluate with memoization, retry, and crash classification.  Outcomes
    produced by crash classification ([Crash_fails] / [Crash_passes]) are
    memoized too: a deterministic black box would crash again. *)

val queries : t -> int
(** Total {!run} calls. *)

val executions : t -> int
(** Black-box attempts, including retries. *)

val memo_hits : t -> int

val retries_used : t -> int
(** Attempts beyond the first, summed over all inputs. *)

val timeouts : t -> int
(** Attempts whose wall-clock time exceeded [config.timeout]. *)

val crashes : t -> int
(** Inputs whose outcome came from crash classification. *)

val reset : t -> unit
(** Clear the memo table and all counters. *)
