type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;  (* signaled on enqueue and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

(* Workers drain the queue even while stopping, so shutdown is graceful:
   everything submitted before [shutdown] still runs. *)
let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.has_work pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopping: exit *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    Lbr_obs.Trace.with_span "pool.task" (fun () -> job ());
    worker_loop pool
  end

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let submit pool f =
  let future = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  let job () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock future.fm;
    future.state <- result;
    Condition.broadcast future.fc;
    Mutex.unlock future.fm
  in
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job pool.queue;
  Condition.signal pool.has_work;
  Mutex.unlock pool.mutex;
  future

let await future =
  Mutex.lock future.fm;
  let rec wait () =
    match future.state with
    | Pending ->
        Condition.wait future.fc future.fm;
        wait ()
    | Done v ->
        Mutex.unlock future.fm;
        v
    | Failed (e, bt) ->
        Mutex.unlock future.fm;
        Printexc.raise_with_backtrace e bt
  in
  wait ()

let map_list pool f xs =
  let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
  List.map await futures

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.stopping <- true;
  pool.workers <- [];
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
