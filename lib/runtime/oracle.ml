open Lbr_logic

type crash_policy = Crash_fails | Crash_passes | Crash_raises

type config = {
  timeout : float option;
  retries : int;
  backoff : float;
  crash_policy : crash_policy;
  transient : exn -> bool;
}

let default_config =
  {
    timeout = None;
    retries = 0;
    backoff = 0.0;
    crash_policy = Crash_raises;
    transient = (fun _ -> false);
  }

exception Crashed of { oracle : string; attempts : int; reason : string }

module AMap = Map.Make (struct
  type t = Assignment.t

  let compare = Assignment.compare
end)

(* An input currently being executed by a leader: concurrent queries for
   the same input wait on [done_cond] instead of launching a duplicate
   black-box run.  [settled] flips exactly once, under the oracle mutex,
   when the leader finishes (successfully or not). *)
type inflight = { mutable settled : bool; done_cond : Condition.t }

type t = {
  name : string;
  config : config;
  black_box : Assignment.t -> bool;
  mutex : Mutex.t;
  mutable memo : bool AMap.t;
  mutable inflight : inflight AMap.t;
  mutable queries : int;
  mutable executions : int;
  mutable memo_hits : int;
  mutable retries_used : int;
  mutable timeouts : int;
  mutable crashes : int;
}

let make ?(config = default_config) ?(name = "oracle") black_box =
  if config.retries < 0 then invalid_arg "Oracle.make: retries must be >= 0";
  {
    name;
    config;
    black_box;
    mutex = Mutex.create ();
    memo = AMap.empty;
    inflight = AMap.empty;
    queries = 0;
    executions = 0;
    memo_hits = 0;
    retries_used = 0;
    timeouts = 0;
    crashes = 0;
  }

let of_predicate ?config predicate =
  make ?config ~name:(Lbr.Predicate.name predicate) (Lbr.Predicate.run predicate)

let name t = t.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Process-wide oracle metrics: oracles are short-lived (one per job in
   the daemon), so rates like the memo hit ratio are only meaningful
   aggregated across instances. *)
let m_queries = lazy (Lbr_obs.Metrics.counter ~help:"Oracle queries." "lbr_oracle_queries_total")

let m_memo_hits =
  lazy (Lbr_obs.Metrics.counter ~help:"Oracle queries answered from the memo." "lbr_oracle_memo_hits_total")

let m_executions =
  lazy (Lbr_obs.Metrics.counter ~help:"Black-box attempts, including retries." "lbr_oracle_executions_total")

let m_retries = lazy (Lbr_obs.Metrics.counter ~help:"Retried attempts." "lbr_oracle_retries_total")
let m_crashes = lazy (Lbr_obs.Metrics.counter ~help:"Queries whose every attempt failed." "lbr_oracle_crashes_total")

let m_attempt_latency =
  lazy
    (Lbr_obs.Metrics.histogram ~help:"Oracle black-box attempt latency."
       "lbr_oracle_attempt_latency_seconds")

(* One attempt, without the lock held (the black box may be slow).
   [Ok b] is a usable outcome; [Error reason] is a failed attempt with
   [`Transient] worth retrying and [`Crash] not.  [attempt_no] is 1 for
   the first try; the trace span records it plus how the attempt was
   classified. *)
let attempt t input ~attempt_no =
  locked t (fun () -> t.executions <- t.executions + 1);
  Lbr_obs.Metrics.incr (Lazy.force m_executions);
  let classification = ref "ok" in
  Lbr_obs.Trace.with_span "oracle.attempt"
    ~args:(fun () ->
      [
        ("oracle", Lbr_obs.Trace.Str t.name);
        ("attempt", Lbr_obs.Trace.Int attempt_no);
        ("retry", Lbr_obs.Trace.Int (attempt_no - 1));
        ("classification", Lbr_obs.Trace.Str !classification);
      ])
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let finish r =
    Lbr_obs.Metrics.observe (Lazy.force m_attempt_latency) (Unix.gettimeofday () -. t0);
    r
  in
  match t.black_box input with
  | outcome -> (
      let elapsed = Unix.gettimeofday () -. t0 in
      match t.config.timeout with
      | Some limit when elapsed > limit ->
          locked t (fun () -> t.timeouts <- t.timeouts + 1);
          classification := "timeout";
          finish
            (Error
               ( `Transient,
                 Printf.sprintf "attempt exceeded the %.3fs timeout (took %.3fs)" limit
                   elapsed ))
      | Some _ | None ->
          classification := (if outcome then "pass" else "fail");
          finish (Ok outcome))
  | exception e when t.config.transient e ->
      classification := "transient";
      finish (Error (`Transient, "transient failure: " ^ Printexc.to_string e))
  | exception e ->
      classification := "crash";
      finish (Error (`Crash, "crash: " ^ Printexc.to_string e))

let run t input =
  (* Memo lookup and in-flight arbitration under one lock: a second
     concurrent query for an input already executing waits for the leader
     to settle, then re-reads the memo — so N racing domains cost one
     black-box execution, not N.  If the leader raised instead of
     memoizing (Crash_raises), the longest waiter takes over as the new
     leader. *)
  let role =
    Mutex.lock t.mutex;
    t.queries <- t.queries + 1;
    let rec decide () =
      match AMap.find_opt input t.memo with
      | Some outcome ->
          t.memo_hits <- t.memo_hits + 1;
          `Memo outcome
      | None -> (
          match AMap.find_opt input t.inflight with
          | Some cell ->
              while not cell.settled do
                Condition.wait cell.done_cond t.mutex
              done;
              decide ()
          | None ->
              let cell = { settled = false; done_cond = Condition.create () } in
              t.inflight <- AMap.add input cell t.inflight;
              `Leader cell)
    in
    let role = decide () in
    Mutex.unlock t.mutex;
    role
  in
  Lbr_obs.Metrics.incr (Lazy.force m_queries);
  (match role with
  | `Memo _ ->
      Lbr_obs.Metrics.incr (Lazy.force m_memo_hits);
      Lbr_obs.Trace.instant "oracle.memo"
        ~args:(fun () -> [ ("oracle", Lbr_obs.Trace.Str t.name); ("hit", Lbr_obs.Trace.Bool true) ])
  | `Leader _ ->
      Lbr_obs.Trace.instant "oracle.memo"
        ~args:(fun () -> [ ("oracle", Lbr_obs.Trace.Str t.name); ("hit", Lbr_obs.Trace.Bool false) ]));
  match role with
  | `Memo outcome -> outcome
  | `Leader cell ->
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              cell.settled <- true;
              Condition.broadcast cell.done_cond;
              t.inflight <- AMap.remove input t.inflight))
      @@ fun () ->
      let max_attempts = t.config.retries + 1 in
      let rec go k =
        match attempt t input ~attempt_no:k with
        | Ok outcome -> Ok (outcome, k)
        | Error (`Transient, _reason) when k < max_attempts ->
            if t.config.backoff > 0.0 then
              Unix.sleepf (t.config.backoff *. (2.0 ** float_of_int (k - 1)));
            locked t (fun () -> t.retries_used <- t.retries_used + 1);
            Lbr_obs.Metrics.incr (Lazy.force m_retries);
            go (k + 1)
        | Error ((`Transient | `Crash), reason) -> Error (reason, k)
      in
      let memoize outcome =
        locked t (fun () -> t.memo <- AMap.add input outcome t.memo);
        outcome
      in
      (match go 1 with
      | Ok (outcome, _) -> memoize outcome
      | Error (reason, attempts) -> (
          locked t (fun () -> t.crashes <- t.crashes + 1);
          Lbr_obs.Metrics.incr (Lazy.force m_crashes);
          match t.config.crash_policy with
          | Crash_fails -> memoize false
          | Crash_passes -> memoize true
          | Crash_raises -> raise (Crashed { oracle = t.name; attempts; reason })))

let queries t = locked t (fun () -> t.queries)
let executions t = locked t (fun () -> t.executions)
let memo_hits t = locked t (fun () -> t.memo_hits)
let retries_used t = locked t (fun () -> t.retries_used)
let timeouts t = locked t (fun () -> t.timeouts)
let crashes t = locked t (fun () -> t.crashes)

let reset t =
  locked t (fun () ->
      t.memo <- AMap.empty;
      t.queries <- 0;
      t.executions <- 0;
      t.memo_hits <- 0;
      t.retries_used <- 0;
      t.timeouts <- 0;
      t.crashes <- 0)
