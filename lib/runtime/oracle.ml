open Lbr_logic

type crash_policy = Crash_fails | Crash_passes | Crash_raises

type config = {
  timeout : float option;
  retries : int;
  backoff : float;
  crash_policy : crash_policy;
  transient : exn -> bool;
}

let default_config =
  {
    timeout = None;
    retries = 0;
    backoff = 0.0;
    crash_policy = Crash_raises;
    transient = (fun _ -> false);
  }

exception Crashed of { oracle : string; attempts : int; reason : string }

module AMap = Map.Make (struct
  type t = Assignment.t

  let compare = Assignment.compare
end)

type t = {
  name : string;
  config : config;
  black_box : Assignment.t -> bool;
  mutex : Mutex.t;
  mutable memo : bool AMap.t;
  mutable queries : int;
  mutable executions : int;
  mutable memo_hits : int;
  mutable retries_used : int;
  mutable timeouts : int;
  mutable crashes : int;
}

let make ?(config = default_config) ?(name = "oracle") black_box =
  if config.retries < 0 then invalid_arg "Oracle.make: retries must be >= 0";
  {
    name;
    config;
    black_box;
    mutex = Mutex.create ();
    memo = AMap.empty;
    queries = 0;
    executions = 0;
    memo_hits = 0;
    retries_used = 0;
    timeouts = 0;
    crashes = 0;
  }

let of_predicate ?config predicate =
  make ?config ~name:(Lbr.Predicate.name predicate) (Lbr.Predicate.run predicate)

let name t = t.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* One attempt, without the lock held (the black box may be slow).
   [Ok b] is a usable outcome; [Error reason] is a failed attempt with
   [`Transient] worth retrying and [`Crash] not. *)
let attempt t input =
  locked t (fun () -> t.executions <- t.executions + 1);
  let t0 = Unix.gettimeofday () in
  match t.black_box input with
  | outcome -> (
      let elapsed = Unix.gettimeofday () -. t0 in
      match t.config.timeout with
      | Some limit when elapsed > limit ->
          locked t (fun () -> t.timeouts <- t.timeouts + 1);
          Error
            ( `Transient,
              Printf.sprintf "attempt exceeded the %.3fs timeout (took %.3fs)" limit elapsed )
      | Some _ | None -> Ok outcome)
  | exception e when t.config.transient e ->
      Error (`Transient, "transient failure: " ^ Printexc.to_string e)
  | exception e -> Error (`Crash, "crash: " ^ Printexc.to_string e)

let run t input =
  let cached =
    locked t (fun () ->
        t.queries <- t.queries + 1;
        match AMap.find_opt input t.memo with
        | Some outcome ->
            t.memo_hits <- t.memo_hits + 1;
            Some outcome
        | None -> None)
  in
  match cached with
  | Some outcome -> outcome
  | None ->
      let max_attempts = t.config.retries + 1 in
      let rec go k =
        match attempt t input with
        | Ok outcome -> Ok (outcome, k)
        | Error (`Transient, _reason) when k < max_attempts ->
            if t.config.backoff > 0.0 then
              Unix.sleepf (t.config.backoff *. (2.0 ** float_of_int (k - 1)));
            locked t (fun () -> t.retries_used <- t.retries_used + 1);
            go (k + 1)
        | Error ((`Transient | `Crash), reason) -> Error (reason, k)
      in
      let memoize outcome =
        locked t (fun () -> t.memo <- AMap.add input outcome t.memo);
        outcome
      in
      (match go 1 with
      | Ok (outcome, _) -> memoize outcome
      | Error (reason, attempts) -> (
          locked t (fun () -> t.crashes <- t.crashes + 1);
          match t.config.crash_policy with
          | Crash_fails -> memoize false
          | Crash_passes -> memoize true
          | Crash_raises -> raise (Crashed { oracle = t.name; attempts; reason })))

let queries t = locked t (fun () -> t.queries)
let executions t = locked t (fun () -> t.executions)
let memo_hits t = locked t (fun () -> t.memo_hits)
let retries_used t = locked t (fun () -> t.retries_used)
let timeouts t = locked t (fun () -> t.timeouts)
let crashes t = locked t (fun () -> t.crashes)

let reset t =
  locked t (fun () ->
      t.memo <- AMap.empty;
      t.queries <- 0;
      t.executions <- 0;
      t.memo_hits <- 0;
      t.retries_used <- 0;
      t.timeouts <- 0;
      t.crashes <- 0)
