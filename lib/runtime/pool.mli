(** A fixed-size pool of worker domains with a shared work queue.

    Built on stdlib [Domain] + [Mutex] + [Condition] only.  The pool owns
    [jobs] domains for its whole lifetime; work is submitted as thunks and
    handed back through futures, so callers never deal with domains
    directly.  Results are collected in submission order by {!map_list},
    which is what makes parallel corpus runs deterministic: scheduling may
    interleave any way it likes, but the output list order (and every
    non-timing field in it) is the sequential one.

    Nested blocking — calling {!await} from inside a task running on the
    same pool — is not supported and can deadlock (the worker waiting on
    the future is the one that was supposed to run it). *)

type t

type 'a future

val create : jobs:int -> unit -> t
(** Spawn [jobs] worker domains ([jobs >= 1]; [Invalid_argument]
    otherwise).  The workers idle on a condition variable until work
    arrives. *)

val jobs : t -> int
(** Pool size as given to {!create}. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a thunk.  Raises [Invalid_argument] if the pool was shut
    down.  Exceptions raised by the thunk are captured and re-raised (with
    their original backtrace) by {!await}. *)

val await : 'a future -> 'a
(** Block until the task completes; return its value or re-raise its
    exception.  May be called from any domain, any number of times. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] runs [f] on every element concurrently and
    returns the results in the order of [xs] (not completion order).  If
    several applications raise, the exception of the earliest element is
    re-raised; later tasks still run to completion in the background. *)

val shutdown : t -> unit
(** Finish all queued work, then join every worker domain.  Idempotent;
    subsequent {!submit} calls raise [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} on both normal return and exception. *)
