(* Crash flight recorder: an always-on bounded ring of the most recent
   spans plus the last K job state transitions, dumped to the journal
   directory when the process dies badly (SIGSEGV, uncaught exception)
   or is asked to stop (the daemons call [dump] from their SIGTERM drain
   hook).  `lbr-reduce report` renders the dump post-mortem.

   Span capture rides {!Trace.set_flight_hook}: while armed, every span
   and instant is mirrored here with absolute wall-clock timestamps even
   when classic tracing is off — so a crash of an untraced production
   daemon still leaves the last window of evidence.  The hook path is a
   mutex + two array stores; the rings are small by design (the point is
   the last few hundred events, not a full trace). *)

type transition = { tr_ts : float; tr_job : string; tr_state : string }

type t = {
  mutex : Mutex.t;
  node : string;
  dir : string;
  spans : Trace.event array;  (* ev_ts/ev_dur in absolute microseconds *)
  mutable s_first : int;
  mutable s_count : int;
  trans : transition array;
  mutable t_first : int;
  mutable t_count : int;
  mutable dumped : string list;  (* paths written, latest first *)
}

let none_transition = { tr_ts = 0.; tr_job = ""; tr_state = "" }

(* Single armed recorder per process, like the metrics registry. *)
let current : t option ref = ref None
let armed () = !current <> None

let push_ring buf first count v =
  let cap = Array.length buf in
  if count = cap then begin
    buf.(first) <- v;
    ((first + 1) mod cap, count)
  end
  else begin
    buf.((first + count) mod cap) <- v;
    (first, count + 1)
  end

let note_span t ~name ~ph ~t0 ~t1 ~args =
  Mutex.lock t.mutex;
  let first, count =
    push_ring t.spans t.s_first t.s_count
      {
        Trace.ev_name = name;
        ev_ph = ph;
        ev_ts = t0 *. 1e6;
        ev_dur = (t1 -. t0) *. 1e6;
        ev_tid = (Domain.self () :> int);
        ev_args = args;
      }
  in
  t.s_first <- first;
  t.s_count <- count;
  Mutex.unlock t.mutex

let transition ~job ~state =
  match !current with
  | None -> ()
  | Some t ->
      Mutex.lock t.mutex;
      let first, count =
        push_ring t.trans t.t_first t.t_count
          { tr_ts = Unix.gettimeofday (); tr_job = job; tr_state = state }
      in
      t.t_first <- first;
      t.t_count <- count;
      Mutex.unlock t.mutex

let ring_to_list buf first count =
  List.init count (fun i -> buf.((first + i) mod Array.length buf))

let render_rows buf rows =
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      match r with
      | Metrics.Counter_row { name; value } ->
          Buffer.add_string buf
            (Printf.sprintf "    {\"kind\":\"counter\",\"name\":\"%s\",\"value\":%d}"
               (Trace.json_escape name) value)
      | Metrics.Gauge_row { name; value } ->
          Buffer.add_string buf
            (Printf.sprintf "    {\"kind\":\"gauge\",\"name\":\"%s\",\"value\":%s}"
               (Trace.json_escape name)
               (if Float.is_finite value then Printf.sprintf "%.6g" value else "null"))
      | Metrics.Histogram_row { name; count; sum; p50; p90; p99 } ->
          let n v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"kind\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
               (Trace.json_escape name) count (n sum) (n p50) (n p90) (n p99)))
    rows

let render t ~reason =
  let spans, trans =
    Mutex.lock t.mutex;
    let s = ring_to_list t.spans t.s_first t.s_count in
    let tr = ring_to_list t.trans t.t_first t.t_count in
    Mutex.unlock t.mutex;
    (s, tr)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"flightRecorder\":1,\n\"node\":\"%s\",\n\"pid\":%d,\n\"reason\":\"%s\",\n\"time\":%.6f,\n"
       (Trace.json_escape t.node) (Unix.getpid ()) (Trace.json_escape reason)
       (Unix.gettimeofday ()));
  Buffer.add_string buf "\"spans\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf ("    " ^ Trace.event_json_string ev))
    spans;
  Buffer.add_string buf "\n],\n\"transitions\":[\n";
  List.iteri
    (fun i { tr_ts; tr_job; tr_state } ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"ts\":%.6f,\"job\":\"%s\",\"state\":\"%s\"}" tr_ts
           (Trace.json_escape tr_job) (Trace.json_escape tr_state)))
    trans;
  Buffer.add_string buf "\n],\n\"metrics\":[\n";
  render_rows buf (Metrics.rows ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let dump_t t ~reason =
  let path =
    Filename.concat t.dir (Printf.sprintf "flight-%d-%s.json" (Unix.getpid ()) reason)
  in
  let body = render t ~reason in
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc body)
    ~finally:(fun () -> close_out oc);
  Mutex.lock t.mutex;
  t.dumped <- path :: t.dumped;
  Mutex.unlock t.mutex;
  path

let dump ~reason =
  match !current with
  | None -> None
  | Some t -> ( try Some (dump_t t ~reason) with _ -> None)

let install_crash_handlers () =
  (* SIGSEGV delivery after real memory corruption may not survive long
     enough to write the dump — this is strictly best-effort, and the
     common OCaml case (stack overflow mapped to sigsegv) does work. *)
  (try
     Sys.set_signal Sys.sigsegv
       (Sys.Signal_handle
          (fun _ ->
            ignore (dump ~reason:"sigsegv");
            exit 139))
   with Invalid_argument _ | Sys_error _ -> ());
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      ignore (dump ~reason:"uncaught-exn");
      Printexc.default_uncaught_exception_handler exn bt)

let arm ?(node = Printf.sprintf "pid-%d" (Unix.getpid ())) ?(spans = 512)
    ?(transitions = 256) ~dir () =
  if spans < 1 || transitions < 1 then invalid_arg "Flight.arm: capacities must be >= 1";
  (match Sys.is_directory dir with
  | true -> ()
  | false -> invalid_arg (Printf.sprintf "Flight.arm: %s is not a directory" dir)
  | exception Sys_error _ -> Unix.mkdir dir 0o755);
  let t =
    {
      mutex = Mutex.create ();
      node;
      dir;
      spans = Array.make spans Trace.{ ev_name = ""; ev_ph = 'i'; ev_ts = 0.; ev_dur = 0.; ev_tid = 0; ev_args = [] };
      s_first = 0;
      s_count = 0;
      trans = Array.make transitions none_transition;
      t_first = 0;
      t_count = 0;
      dumped = [];
    }
  in
  current := Some t;
  Trace.set_flight_hook
    (Some (fun ~name ~ph ~t0 ~t1 ~args -> note_span t ~name ~ph ~t0 ~t1 ~args));
  install_crash_handlers ()

let disarm () =
  Trace.set_flight_hook None;
  current := None

let render_current ~reason =
  match !current with None -> None | Some t -> Some (render t ~reason)

let span_count () =
  match !current with
  | None -> 0
  | Some t ->
      Mutex.lock t.mutex;
      let n = t.s_count in
      Mutex.unlock t.mutex;
      n

let transition_count () =
  match !current with
  | None -> 0
  | Some t ->
      Mutex.lock t.mutex;
      let n = t.t_count in
      Mutex.unlock t.mutex;
      n
