(** A minimal Prometheus scrape endpoint: a background thread serving
    every HTTP request on a TCP port with the render callback's output as
    [text/plain] (the Prometheus text exposition content type).  Used by
    [lbr-reduce serve --prometheus-listen] (node-local registry) and
    [lbr-reduce coordinate --prometheus-listen] (federated cluster
    view). *)

type t

(** [start ?host ~port render] binds and serves in a background thread.
    [port = 0] picks a free port (see {!port}).  Raises [Unix.Unix_error]
    if the bind fails.  [render] runs on the listener thread per scrape;
    exceptions in it produce a comment body, never kill the listener. *)
val start : ?host:string -> port:int -> (unit -> string) -> t

(** The bound port (kernel-chosen when [start] was given 0). *)
val port : t -> int

(** Stop the listener and join its thread.  Idempotent. *)
val stop : t -> unit
