(** Low-overhead tracing: per-domain ring buffers of span events, exported
    as Chrome [trace_event] JSON loadable in [chrome://tracing] and
    Perfetto.

    {2 Cost contract}

    Tracing is off by default.  A disabled call site costs one atomic flag
    load and a branch — single-digit nanoseconds, verified by the
    [sat:trace-disabled-overhead] micro-benchmark (budget: 50ns/call).
    Instrumentation must therefore never compute span attributes eagerly:
    [args] is a thunk, evaluated only when tracing is enabled, at span
    {e end} — so it may read state the traced section updates.

    {2 Concurrency}

    Each domain records into its own ring buffer (no locks, no
    cross-domain traffic on the hot path).  Rings are bounded: when full,
    the oldest event is overwritten and [dropped] counts it — a trace
    keeps its most recent window.  [events] / [to_json] read all rings and
    are meant to run after [stop] (or at a quiescent point); events being
    written concurrently may be missed or torn, never crash. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_ph : char;  (** ['X'] complete span, ['i'] instant *)
  ev_ts : float;  (** microseconds since [start] *)
  ev_dur : float;  (** microseconds; [0.] for instants *)
  ev_tid : int;  (** recording domain's id *)
  ev_args : (string * arg) list;
}

val enabled : unit -> bool

(** Enable tracing: resets all rings, re-arms the clock epoch and sets the
    per-domain ring capacity (default 65536 events). *)
val start : ?capacity:int -> unit -> unit

(** Disable tracing.  Recorded events stay readable. *)
val stop : unit -> unit

(** [with_span ?args name f] runs [f ()]; when tracing is enabled, records
    a complete span covering it (also on exception).  [args] is evaluated
    once, after [f] returns; exceptions it raises are swallowed. *)
val with_span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a

(** Zero-duration marker event. *)
val instant : ?args:(unit -> (string * arg) list) -> string -> unit

(** Wall-clock seconds ([Unix.gettimeofday]), for [span_between]. *)
val now : unit -> float

(** Record a span from timestamps captured with [now] — for durations
    that don't nest as a call scope (e.g. queue wait measured between
    submit and claim on different threads).  No-op when disabled. *)
val span_between :
  ?args:(unit -> (string * arg) list) -> string -> start:float -> finish:float -> unit

(** All recorded events, oldest first (sorted by timestamp). *)
val events : unit -> event list

(** Events overwritten because a ring was full. *)
val dropped : unit -> int

(** Chrome [trace_event] JSON ({["traceEvents"]} array of ["X"]/["i"]
    events with [ts]/[dur] in microseconds). *)
val to_json : unit -> string

val write_file : string -> unit
