(** Low-overhead tracing: per-domain ring buffers of span events, exported
    as Chrome [trace_event] JSON loadable in [chrome://tracing] and
    Perfetto.

    {2 Cost contract}

    Tracing is off by default.  A disabled call site costs one atomic flag
    load and a branch — single-digit nanoseconds, verified by the
    [sat:trace-disabled-overhead] micro-benchmark (budget: 50ns/call).
    The flag is a bitmask (tracing | flight recorder) so arming the
    {!Flight} recorder does not add a second load.  Instrumentation must
    therefore never compute span attributes eagerly: [args] is a thunk,
    evaluated only when recording is enabled, at span {e end} — so it may
    read state the traced section updates.

    {2 Concurrency}

    Each domain records into its own ring buffer (no locks, no
    cross-domain traffic on the hot path).  Rings are bounded: when full,
    the oldest event is overwritten and [dropped] counts it — a trace
    keeps its most recent window.  [events] / [to_json] read all rings and
    are meant to run after [stop] (or at a quiescent point); events being
    written concurrently may be missed or torn, never crash. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_ph : char;  (** ['X'] complete span, ['i'] instant *)
  ev_ts : float;  (** microseconds since [start] *)
  ev_dur : float;  (** microseconds; [0.] for instants *)
  ev_tid : int;  (** recording domain's id *)
  ev_args : (string * arg) list;
}

val enabled : unit -> bool

(** Enable tracing: resets all rings, re-arms the clock epoch and sets the
    per-domain ring capacity (default 65536 events). *)
val start : ?capacity:int -> unit -> unit

(** Disable tracing.  Recorded events stay readable. *)
val stop : unit -> unit

(** The trace context a job carries across every process boundary: minted
    once per job, shipped in wire v5 frames, and installed (via
    {!with_context}) around the code that runs the job so every span it
    records — on whichever node — names the same trace and the same
    parent span. *)
module Context : sig
  type t = {
    trace_id : string;  (** 16 hex chars; constant for the job's lifetime *)
    parent_span : string;  (** span id the receiving side parents under *)
  }

  (** Fresh trace id + fresh root span id. *)
  val mint : unit -> t

  (** A fresh 16-hex-char span id (same generator as {!mint}). *)
  val fresh_span_id : unit -> string
end

(** [with_context ctx f] runs [f ()] with [ctx] as the domain-local
    current context (restored afterwards, also on exception).  While a
    context is installed, every recorded event gains
    [ctx.trace]/[ctx.parent] args. *)
val with_context : Context.t option -> (unit -> 'a) -> 'a

val current_context : unit -> Context.t option

(** [with_span ?args name f] runs [f ()]; when tracing is enabled, records
    a complete span covering it (also on exception).  [args] is evaluated
    once, after [f] returns; a raising thunk poisons only that span's args
    (they are recorded as [{"args": "<error>"}]), never the span. *)
val with_span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a

(** Zero-duration marker event. *)
val instant : ?args:(unit -> (string * arg) list) -> string -> unit

(** Wall-clock seconds ([Unix.gettimeofday]), for [span_between]. *)
val now : unit -> float

(** Absolute wall-clock second that [ts = 0] maps to — the moment of the
    last {!start} ([0.] before the first).  Trace dumps ship it so a
    merger can align nodes on absolute time. *)
val epoch_seconds : unit -> float

(** Record a span from timestamps captured with [now] — for durations
    that don't nest as a call scope (e.g. queue wait measured between
    submit and claim on different threads).  No-op when disabled. *)
val span_between :
  ?args:(unit -> (string * arg) list) -> string -> start:float -> finish:float -> unit

(** All recorded events, oldest first (sorted by timestamp). *)
val events : unit -> event list

(** Events overwritten because a ring was full. *)
val dropped : unit -> int

(** Chrome [trace_event] JSON ({["traceEvents"]} array of ["X"]/["i"]
    events with [ts]/[dur] in microseconds, plus an ["epochSeconds"]
    top-level key). *)
val to_json : unit -> string

val write_file : string -> unit

(** One event as a Chrome [trace_event] JSON object, under an explicit
    process lane (default [pid = 1]).  Used by [trace-merge] and the
    flight recorder. *)
val event_json_string : ?pid:int -> event -> string

val json_escape : string -> string

(** {!Flight}'s tap: while set, every span/instant is also delivered to
    the hook with {e absolute} wall-clock seconds, even when classic
    tracing is off.  The hook must not raise (exceptions are swallowed).
    Internal — use {!Flight.arm}. *)
val set_flight_hook :
  (name:string -> ph:char -> t0:float -> t1:float -> args:(string * arg) list -> unit)
  option ->
  unit
