(** Process-wide metrics: counters, gauges, and log-bucketed histograms.

    Aggregation is exact and mutex-guarded: every metric carries its own
    lock, taken on each update, so values observed from concurrent domains
    are never lost or torn.  Updates are cheap (one lock + one array store)
    but not free — instrument operations that do real work (a predicate
    run, a scheduler transition), not inner loops.

    Metrics are registered in a single process-global registry keyed by
    name.  Registration is create-or-get: registering the same name twice
    with the same kind returns the existing metric; a kind mismatch raises
    [Invalid_argument].  Names must match the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

(** Plain log-bucketed histogram data, usable standalone (per-domain
    shards, journal post-mortems) and as the state behind registry
    histograms.  Not thread-safe on its own. *)
module Histogram : sig
  type t

  (** [create ~lo ~growth ~buckets ()] builds a histogram whose finite
      bucket upper bounds are [lo, lo*growth, lo*growth^2, ...] with the
      last bucket extending to [+inf].  Defaults: [lo = 1e-6],
      [growth = 2.0], [buckets = 32] — with seconds as the unit this
      spans 1µs to ~35min.  Raises [Invalid_argument] unless [lo > 0],
      [growth > 1] and [buckets >= 2]. *)
  val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** Upper bounds of each bucket; the last is [infinity]. *)
  val upper_bounds : t -> float array

  (** Per-bucket (non-cumulative) observation counts. *)
  val bucket_counts : t -> int array

  (** Index of the bucket a value falls into. *)
  val bucket_index : t -> float -> int

  (** [merge a b] is a fresh histogram containing both inputs'
      observations.  Raises [Invalid_argument] if the bucket layouts
      differ. *)
  val merge : t -> t -> t

  (** [quantile t q] estimates the [q]-quantile (q in [0,1]) as the upper
      bound of the bucket containing the ceil(q*count)-th smallest
      observation — i.e. exact up to bucket resolution.  [nan] when
      empty; the open last bucket reports one growth step past its lower
      bound. *)
  val quantile : t -> float -> float

  val reset : t -> unit
  val copy : t -> t
end

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?help:string -> ?lo:float -> ?growth:float -> ?buckets:int -> string -> histogram

val observe : histogram -> float -> unit

(** Consistent locked copy of a registry histogram's current state. *)
val histogram_state : histogram -> Histogram.t

(** Look up current values by name — [None] when the name is unregistered
    or of a different kind. *)
val find_counter_value : string -> int option

(** One row per registered metric, sorted by name, for structured dumps
    ([bench --json]). *)
type row =
  | Counter_row of { name : string; value : int }
  | Gauge_row of { name : string; value : float }
  | Histogram_row of {
      name : string;
      count : int;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

val rows : unit -> row list

(** Prometheus text exposition format (counters, gauges, histograms with
    cumulative [le] buckets, [_sum], [_count]). *)
val render_prometheus : unit -> string

(** Zero every registered metric (registrations survive).  Test helper. *)
val reset_all : unit -> unit

(** {2 Registry dumps — metrics federation}

    A [dump] is a value snapshot of a whole registry: one
    [(name, help, value)] triple per metric, sorted by name.  Dumps are
    what a cluster coordinator pulls from each worker over the
    [Metrics_dump] wire request; {!merge_dumps} combines them {e exactly}
    — counters and gauges by addition, histograms bucket-by-bucket under
    the same layout check {!Histogram.merge} enforces (a kind or layout
    mismatch keeps the first value rather than raising: federation
    degrades under version skew, never dies). *)

type dumped =
  | D_counter of int
  | D_gauge of float
  | D_hist of { d_lo : float; d_growth : float; d_counts : int array; d_sum : float }

type dump = (string * string * dumped) list

(** Snapshot every registered metric. *)
val dump : unit -> dump

(** Compact binary form ("LBRM1" magic, big-endian). *)
val encode_dump : dump -> string

(** Total: any input yields [Ok] or [Error], never an exception. *)
val decode_dump : string -> (dump, string) result

val merge_dumps : dump list -> dump

(** Dump rows in the same shape {!rows} produces for the live registry
    ([bench --json] federated rows, [top]). *)
val rows_of_dump : dump -> row list

val find_in_dump : dump -> string -> dumped option

(** Prometheus text for a dump; [label] (e.g. [("worker", "w0")]) is
    attached to every sample, composing with histogram [le] labels. *)
val render_prometheus_dump : ?label:string * string -> dump -> string
