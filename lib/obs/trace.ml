type arg = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_ph : char;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_args : (string * arg) list;
}

(* Per-domain ring buffer.  Only its owning domain writes; readers accept
   the quiescence caveat documented in the interface. *)
type ring = {
  mutable buf : event array;
  mutable first : int;  (* index of the oldest event *)
  mutable count : int;
  mutable dropped : int;
}

let none_event =
  { ev_name = ""; ev_ph = 'i'; ev_ts = 0.; ev_dur = 0.; ev_tid = 0; ev_args = [] }

let default_capacity = 65536
let ring_capacity = Atomic.make default_capacity

(* The only state a disabled call site reads: a bitmask so the flight
   recorder (bit 1) can observe spans without a second atomic on the hot
   path.  Bit 0 is classic tracing; 0 means every span is free. *)
let trace_bit = 1
let flight_bit = 2
let state = Atomic.make 0
let epoch = Atomic.make 0.0

(* Armed by {!Flight}; receives every span/instant with absolute
   timestamps (seconds) while [flight_bit] is set.  Must never raise. *)
let flight_hook :
    (name:string -> ph:char -> t0:float -> t1:float -> args:(string * arg) list -> unit)
    option
    ref =
  ref None

let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r = { buf = [||]; first = 0; count = 0; dropped = 0 } in
      Mutex.lock registry_mutex;
      registry := r :: !registry;
      Mutex.unlock registry_mutex;
      r)

let push ev =
  let r = Domain.DLS.get ring_key in
  let cap = Atomic.get ring_capacity in
  (* Storage is allocated on first use after [start], so idle domains and
     disabled runs never pay for the ring. *)
  if Array.length r.buf <> cap then begin
    r.buf <- Array.make cap none_event;
    r.first <- 0;
    r.count <- 0
  end;
  if r.count = cap then begin
    r.buf.(r.first) <- ev;
    r.first <- (r.first + 1) mod cap;
    r.dropped <- r.dropped + 1
  end
  else begin
    r.buf.((r.first + r.count) mod cap) <- ev;
    r.count <- r.count + 1
  end

let enabled () = Atomic.get state land trace_bit <> 0

let set_bit bit on =
  let rec go () =
    let s = Atomic.get state in
    let s' = if on then s lor bit else s land lnot bit in
    if not (Atomic.compare_and_set state s s') then go ()
  in
  go ()

let start ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.start: capacity must be >= 1";
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      r.buf <- [||];
      r.first <- 0;
      r.count <- 0;
      r.dropped <- 0)
    !registry;
  Mutex.unlock registry_mutex;
  Atomic.set ring_capacity capacity;
  Atomic.set epoch (Unix.gettimeofday ());
  set_bit trace_bit true

let stop () = set_bit trace_bit false
let now () = Unix.gettimeofday ()
let epoch_seconds () = Atomic.get epoch

(* ------------------------------------------------------------------ *)
(* Trace contexts: the causal identity a job carries across processes.  *)

module Context = struct
  type t = { trace_id : string; parent_span : string }

  (* Ids are 16 hex chars: a process-unique seed hashed with a counter.
     Uniqueness across a cluster comes from pid + wall clock in the seed;
     no global coordination needed. *)
  let seed =
    lazy
      (Digest.to_hex
         (Digest.string
            (Printf.sprintf "%d.%.9f.%d" (Unix.getpid ()) (Unix.gettimeofday ())
               (Hashtbl.hash Sys.executable_name))))

  let counter = Atomic.make 0

  let fresh_span_id () =
    let n = Atomic.fetch_and_add counter 1 in
    String.sub
      (Digest.to_hex (Digest.string (Printf.sprintf "%s-%d" (Lazy.force seed) n)))
      0 16

  let mint () = { trace_id = fresh_span_id (); parent_span = fresh_span_id () }
end

let ctx_key : Context.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get ctx_key)

let with_context ctx f =
  let cell = Domain.DLS.get ctx_key in
  let saved = !cell in
  cell := ctx;
  Fun.protect f ~finally:(fun () -> cell := saved)

(* ------------------------------------------------------------------ *)

(* A raising thunk poisons only its own span's args: the span is kept,
   its args replaced by a marker, so instrumentation bugs show up in the
   trace instead of silently erasing evidence. *)
let eval_args = function
  | None -> []
  | Some f -> ( try f () with _ -> [ ("args", Str "<error>") ])

let ctx_args () =
  match current_context () with
  | None -> []
  | Some { Context.trace_id; parent_span } ->
      [ ("ctx.trace", Str trace_id); ("ctx.parent", Str parent_span) ]

(* Span durations feed a metrics histogram so `bench --json` and the
   Prometheus dump can summarize where traced time went without parsing
   the trace itself.  Only touched while tracing is enabled. *)
let span_hist =
  lazy
    (Metrics.histogram ~help:"Traced span durations (tracing enabled only)."
       ~lo:1e-6 ~growth:4.0 ~buckets:24 "lbr_span_duration_seconds")

let record ?args name ~t0 ~t1 ~ph =
  let s = Atomic.get state in
  if s <> 0 then begin
    let args = eval_args args @ ctx_args () in
    if s land trace_bit <> 0 then begin
      let e = Atomic.get epoch in
      push
        {
          ev_name = name;
          ev_ph = ph;
          ev_ts = (t0 -. e) *. 1e6;
          ev_dur = (t1 -. t0) *. 1e6;
          ev_tid = (Domain.self () :> int);
          ev_args = args;
        };
      if ph = 'X' then Metrics.observe (Lazy.force span_hist) (t1 -. t0)
    end;
    if s land flight_bit <> 0 then
      match !flight_hook with
      | None -> ()
      | Some hook -> ( try hook ~name ~ph ~t0 ~t1 ~args with _ -> ())
  end

let with_span ?args name f =
  if Atomic.get state = 0 then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        record ?args name ~t0 ~t1:(Unix.gettimeofday ()) ~ph:'X')
  end

let instant ?args name =
  if Atomic.get state <> 0 then begin
    let t = Unix.gettimeofday () in
    record ?args name ~t0:t ~t1:t ~ph:'i'
  end

let span_between ?args name ~start ~finish =
  if Atomic.get state <> 0 then record ?args name ~t0:start ~t1:finish ~ph:'X'

let set_flight_hook hook =
  flight_hook := hook;
  set_bit flight_bit (hook <> None)

let rings () =
  Mutex.lock registry_mutex;
  let rs = !registry in
  Mutex.unlock registry_mutex;
  rs

let events () =
  let collect r =
    let len = Array.length r.buf in
    if len = 0 then []
    else List.init r.count (fun i -> r.buf.((r.first + i) mod len))
  in
  List.concat_map collect (rings ())
  |> List.sort (fun a b -> Float.compare a.ev_ts b.ev_ts)

let dropped () = List.fold_left (fun acc r -> acc + r.dropped) 0 (rings ())

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v = if Float.is_nan v then "0" else Printf.sprintf "%.3f" v

let arg_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f -> if Float.is_nan f || Float.abs f = infinity then "null" else Printf.sprintf "%.6g" f
  | Bool b -> if b then "true" else "false"

let event_json ?(pid = 1) buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"lbr\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
       (json_escape ev.ev_name) ev.ev_ph pid ev.ev_tid (json_float ev.ev_ts));
  if ev.ev_ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (json_float ev.ev_dur))
  else if ev.ev_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  (match ev.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v)))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let event_json_string ?pid ev =
  let buf = Buffer.create 128 in
  event_json ?pid buf ev;
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"epochSeconds\":%.6f,\"traceEvents\":[" (Atomic.get epoch));
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      event_json buf ev)
    (events ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    (fun () -> output_string oc (to_json ()))
    ~finally:(fun () -> close_out oc)
