(** Crash flight recorder: a bounded, always-on ring of the most recent
    spans plus the last K job state transitions, dumped to the journal
    directory when the process dies badly (SIGSEGV, uncaught exception)
    or drains on SIGTERM.  Rendered post-mortem by [lbr-reduce report].

    Arming taps {!Trace.set_flight_hook}, so spans are mirrored here with
    absolute wall-clock timestamps even when classic tracing is off.  The
    rings are deliberately small: the product is the last few hundred
    events before death, not a full trace.  One recorder per process. *)

(** Arm the recorder: ring capacities (spans, transitions), a node label
    for the dump, and the directory dumps are written to (created if
    missing).  Installs a best-effort SIGSEGV handler and chains the
    uncaught-exception handler; SIGTERM is {e not} hooked here — the
    daemons' drain path calls {!dump} so the recorder composes with
    {!Lbr_server.Shutdown} instead of racing it. *)
val arm : ?node:string -> ?spans:int -> ?transitions:int -> dir:string -> unit -> unit

val armed : unit -> bool

(** Drop the recorder and the trace hook (test helper; signal handlers
    stay installed but become no-ops). *)
val disarm : unit -> unit

(** Record a job state transition, e.g. [~job:"job-3" ~state:"running"].
    No-op unless armed. *)
val transition : job:string -> state:string -> unit

(** Write [flight-<pid>-<reason>.json] into the armed directory.  [None]
    when not armed or the write failed (a dying process never dies twice
    here). *)
val dump : reason:string -> string option

(** The dump body as a string, without touching the filesystem. *)
val render_current : reason:string -> string option

val span_count : unit -> int
val transition_count : unit -> int
