(* Exact, mutex-guarded metrics.  Each metric owns a lock taken on every
   update; the registry lock is only taken on registration and snapshot,
   so steady-state updates from different metrics never contend with each
   other. *)

module Histogram = struct
  type t = {
    le : float array;  (* bucket upper bounds; le.(n-1) = infinity *)
    counts : int array;
    mutable sum : float;
    mutable count : int;
    lo : float;
    growth : float;
  }

  let create ?(lo = 1e-6) ?(growth = 2.0) ?(buckets = 32) () =
    if not (lo > 0. && growth > 1. && buckets >= 2) then
      invalid_arg "Metrics.Histogram.create: need lo > 0, growth > 1, buckets >= 2";
    let le =
      Array.init buckets (fun i ->
          if i = buckets - 1 then infinity else lo *. (growth ** float_of_int i))
    in
    { le; counts = Array.make buckets 0; sum = 0.; count = 0; lo; growth }

  (* First bucket whose upper bound admits [v]; the last bucket catches
     everything (including nan, which compares false everywhere). *)
  let bucket_index t v =
    let n = Array.length t.le in
    let rec go i = if i >= n - 1 || v <= t.le.(i) then i else go (i + 1) in
    go 0

  let observe t v =
    let i = bucket_index t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v

  let count t = t.count
  let sum t = t.sum
  let upper_bounds t = Array.copy t.le
  let bucket_counts t = Array.copy t.counts

  let same_layout a b =
    a.lo = b.lo && a.growth = b.growth && Array.length a.le = Array.length b.le

  let merge a b =
    if not (same_layout a b) then
      invalid_arg "Metrics.Histogram.merge: incompatible bucket layouts";
    let t = create ~lo:a.lo ~growth:a.growth ~buckets:(Array.length a.le) () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.sum <- a.sum +. b.sum;
    t.count <- a.count + b.count;
    t

  let quantile t q =
    if t.count = 0 || Float.is_nan q then nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
      let n = Array.length t.le in
      let rec go i acc =
        let acc = acc + t.counts.(i) in
        if acc >= rank || i = n - 1 then i else go (i + 1) acc
      in
      let i = go 0 0 in
      if i = n - 1 then
        (* Open-ended bucket: report one growth step past its lower bound
           rather than infinity. *)
        t.lo *. (t.growth ** float_of_int (n - 1))
      else t.le.(i)
    end

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.sum <- 0.;
    t.count <- 0

  let copy t =
    { t with le = Array.copy t.le; counts = Array.copy t.counts }
end

type counter = { c_mutex : Mutex.t; mutable c_value : int }
type gauge = { g_mutex : Mutex.t; mutable g_value : float }
type histogram = { h_mutex : Mutex.t; h_state : Histogram.t }

type metric = Counter of counter | Gauge of gauge | Hist of histogram

let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let locked m f =
  Mutex.lock m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock m)

let name_ok name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let register name help make unwrap kind =
  if not (name_ok name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  locked registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (_, m) -> (
          match unwrap m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered with a different kind (wanted %s)"
                   name kind))
      | None ->
          let v, m = make () in
          Hashtbl.replace registry name (help, m);
          v)

let counter ?(help = "") name =
  register name help
    (fun () ->
      let c = { c_mutex = Mutex.create (); c_value = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)
    "counter"

let incr c = locked c.c_mutex (fun () -> c.c_value <- c.c_value + 1)
let add c n = locked c.c_mutex (fun () -> c.c_value <- c.c_value + n)
let counter_value c = locked c.c_mutex (fun () -> c.c_value)

let gauge ?(help = "") name =
  register name help
    (fun () ->
      let g = { g_mutex = Mutex.create (); g_value = 0. } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let set_gauge g v = locked g.g_mutex (fun () -> g.g_value <- v)
let add_gauge g v = locked g.g_mutex (fun () -> g.g_value <- g.g_value +. v)
let gauge_value g = locked g.g_mutex (fun () -> g.g_value)

let histogram ?(help = "") ?lo ?growth ?buckets name =
  register name help
    (fun () ->
      let h =
        { h_mutex = Mutex.create (); h_state = Histogram.create ?lo ?growth ?buckets () }
      in
      (h, Hist h))
    (function Hist h -> Some h | _ -> None)
    "histogram"

let observe h v = locked h.h_mutex (fun () -> Histogram.observe h.h_state v)
let histogram_state h = locked h.h_mutex (fun () -> Histogram.copy h.h_state)

let find_counter_value name =
  locked registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (_, Counter c) -> Some (counter_value c)
      | _ -> None)

type row =
  | Counter_row of { name : string; value : int }
  | Gauge_row of { name : string; value : float }
  | Histogram_row of {
      name : string;
      count : int;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

let sorted_entries () =
  let entries =
    locked registry_mutex (fun () ->
        Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) registry [])
  in
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) entries

let rows () =
  List.map
    (fun (name, _, m) ->
      match m with
      | Counter c -> Counter_row { name; value = counter_value c }
      | Gauge g -> Gauge_row { name; value = gauge_value g }
      | Hist h ->
          let s = histogram_state h in
          Histogram_row
            {
              name;
              count = Histogram.count s;
              sum = Histogram.sum s;
              p50 = Histogram.quantile s 0.5;
              p90 = Histogram.quantile s 0.9;
              p99 = Histogram.quantile s 0.99;
            })
    (sorted_entries ())

(* Prometheus floats: %g gives "1e-06", "0.00032768", "+Inf" handled
   explicitly. *)
let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%g" v

let render_prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, help, m) ->
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      match m with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (counter_value c))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float (gauge_value g)))
      | Hist h ->
          let s = histogram_state h in
          let le = Histogram.upper_bounds s in
          let counts = Histogram.bucket_counts s in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let acc = ref 0 in
          Array.iteri
            (fun i bound ->
              acc := !acc + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_float bound) !acc))
            le;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (prom_float (Histogram.sum s)));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name (Histogram.count s)))
    (sorted_entries ());
  Buffer.contents buf

let reset_all () =
  let entries = sorted_entries () in
  List.iter
    (fun (_, _, m) ->
      match m with
      | Counter c -> locked c.c_mutex (fun () -> c.c_value <- 0)
      | Gauge g -> locked g.g_mutex (fun () -> g.g_value <- 0.)
      | Hist h -> locked h.h_mutex (fun () -> Histogram.reset h.h_state))
    entries

(* ------------------------------------------------------------------ *)
(* Registry dumps: a value snapshot of every metric, serializable so a
   coordinator can pull worker registries over the wire and merge them
   exactly — counters and gauges by addition, histograms bucket-by-bucket
   via the same layout check {!Histogram.merge} enforces. *)

type dumped =
  | D_counter of int
  | D_gauge of float
  | D_hist of { d_lo : float; d_growth : float; d_counts : int array; d_sum : float }

type dump = (string * string * dumped) list

let dump () =
  List.map
    (fun (name, help, m) ->
      let v =
        match m with
        | Counter c -> D_counter (counter_value c)
        | Gauge g -> D_gauge (gauge_value g)
        | Hist h ->
            let s = histogram_state h in
            D_hist
              {
                d_lo = s.Histogram.lo;
                d_growth = s.Histogram.growth;
                d_counts = Histogram.bucket_counts s;
                d_sum = Histogram.sum s;
              }
      in
      (name, help, v))
    (sorted_entries ())

(* Wire form: "LBRM1", then n(u32) entries of
   name str16 | help str16 | tag u8 | payload (all big-endian).  Kept
   here (not in the server's Wire module) because the codec is the
   federation payload on every transport, including files. *)

let dump_magic = "LBRM1"

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u16 b v = Buffer.add_uint16_be b (v land 0xffff)
let w_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let w_str16 b s =
  if String.length s > 0xffff then invalid_arg "Metrics.encode_dump: string too long";
  w_u16 b (String.length s);
  Buffer.add_string b s

let encode_dump d =
  let b = Buffer.create 1024 in
  Buffer.add_string b dump_magic;
  Buffer.add_int32_be b (Int32.of_int (List.length d));
  List.iter
    (fun (name, help, v) ->
      w_str16 b name;
      w_str16 b help;
      match v with
      | D_counter c ->
          w_u8 b 0;
          w_i64 b c
      | D_gauge g ->
          w_u8 b 1;
          w_f64 b g
      | D_hist { d_lo; d_growth; d_counts; d_sum } ->
          w_u8 b 2;
          w_f64 b d_lo;
          w_f64 b d_growth;
          w_u16 b (Array.length d_counts);
          Array.iter (fun c -> w_i64 b c) d_counts;
          w_f64 b d_sum)
    d;
  Buffer.contents b

exception Malformed_dump of string

let decode_dump s =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Malformed_dump "truncated dump")
  in
  let r_u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    pos := !pos + 1;
    v
  in
  let r_u16 () =
    need 2;
    let v = String.get_uint16_be s !pos in
    pos := !pos + 2;
    v
  in
  let r_u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_be s !pos) land 0xffffffff in
    pos := !pos + 4;
    v
  in
  let r_i64 () =
    need 8;
    let v = Int64.to_int (String.get_int64_be s !pos) in
    pos := !pos + 8;
    v
  in
  let r_f64 () =
    need 8;
    let v = Int64.float_of_bits (String.get_int64_be s !pos) in
    pos := !pos + 8;
    v
  in
  let r_str16 () =
    let n = r_u16 () in
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    need (String.length dump_magic);
    if String.sub s 0 (String.length dump_magic) <> dump_magic then
      raise (Malformed_dump "bad dump magic");
    pos := String.length dump_magic;
    let n = r_u32 () in
    if n > 1_000_000 then raise (Malformed_dump "implausible entry count");
    let entries =
      List.init n (fun _ ->
          let name = r_str16 () in
          let help = r_str16 () in
          let v =
            match r_u8 () with
            | 0 -> D_counter (r_i64 ())
            | 1 -> D_gauge (r_f64 ())
            | 2 ->
                let d_lo = r_f64 () in
                let d_growth = r_f64 () in
                let buckets = r_u16 () in
                let d_counts = Array.init buckets (fun _ -> r_i64 ()) in
                let d_sum = r_f64 () in
                D_hist { d_lo; d_growth; d_counts; d_sum }
            | t -> raise (Malformed_dump (Printf.sprintf "unknown metric tag %d" t))
          in
          (name, help, v))
    in
    if !pos <> String.length s then raise (Malformed_dump "trailing garbage in dump");
    Ok entries
  with
  | Malformed_dump m -> Error m
  | _ -> Error "malformed metrics dump"

let merge_values a b =
  match (a, b) with
  | D_counter x, D_counter y -> D_counter (x + y)
  | D_gauge x, D_gauge y -> D_gauge (x +. y)
  | ( D_hist { d_lo; d_growth; d_counts; d_sum },
      D_hist { d_lo = lo'; d_growth = g'; d_counts = c'; d_sum = s' } )
    when d_lo = lo' && d_growth = g' && Array.length d_counts = Array.length c' ->
      D_hist
        {
          d_lo;
          d_growth;
          d_counts = Array.mapi (fun i c -> c + c'.(i)) d_counts;
          d_sum = d_sum +. s';
        }
  (* Kind or layout mismatch across nodes (version skew): first wins,
     never raise — federation must degrade, not die. *)
  | a, _ -> a

let merge_dumps dumps =
  let table : (string, string * dumped) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, help, v) ->
         match Hashtbl.find_opt table name with
         | None -> Hashtbl.replace table name (help, v)
         | Some (help0, v0) ->
             Hashtbl.replace table name
               ((if help0 = "" then help else help0), merge_values v0 v)))
    dumps;
  Hashtbl.fold (fun name (help, v) acc -> (name, help, v) :: acc) table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let hist_of_dumped d_lo d_growth d_counts d_sum =
  let h = Histogram.create ~lo:d_lo ~growth:d_growth ~buckets:(Array.length d_counts) () in
  Array.iteri (fun i c -> h.Histogram.counts.(i) <- c) d_counts;
  h.Histogram.count <- Array.fold_left ( + ) 0 d_counts;
  h.Histogram.sum <- d_sum;
  h

let rows_of_dump d =
  List.map
    (fun (name, _, v) ->
      match v with
      | D_counter value -> Counter_row { name; value }
      | D_gauge value -> Gauge_row { name; value }
      | D_hist { d_lo; d_growth; d_counts; d_sum } ->
          let s = hist_of_dumped d_lo d_growth d_counts d_sum in
          Histogram_row
            {
              name;
              count = Histogram.count s;
              sum = Histogram.sum s;
              p50 = Histogram.quantile s 0.5;
              p90 = Histogram.quantile s 0.9;
              p99 = Histogram.quantile s 0.99;
            })
    d

let find_in_dump d name =
  List.find_map (fun (n, _, v) -> if n = name then Some v else None) d

let render_prometheus_dump ?label d =
  let lbl =
    match label with
    | None -> ""
    | Some (k, v) -> Printf.sprintf "{%s=\"%s\"}" k v
  in
  let lbl_with extra =
    match label with
    | None -> Printf.sprintf "{%s}" extra
    | Some (k, v) -> Printf.sprintf "{%s=\"%s\",%s}" k v extra
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      match v with
      | D_counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name lbl c)
      | D_gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name lbl (prom_float g))
      | D_hist { d_lo; d_growth; d_counts; d_sum } ->
          let s = hist_of_dumped d_lo d_growth d_counts d_sum in
          let le = Histogram.upper_bounds s in
          let counts = Histogram.bucket_counts s in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let acc = ref 0 in
          Array.iteri
            (fun i bound ->
              acc := !acc + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (lbl_with (Printf.sprintf "le=\"%s\"" (prom_float bound)))
                   !acc))
            le;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name lbl (prom_float (Histogram.sum s)));
          Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name lbl (Histogram.count s)))
    d;
  Buffer.contents buf
