(* A deliberately tiny Prometheus scrape endpoint: one listener thread,
   one short-lived HTTP/1.0 exchange per accepted connection.  Every GET
   gets the render callback's output as text/plain; nothing else of HTTP
   is implemented because scrapers need nothing else. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  thread : Thread.t;
}

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let respond client body =
  let head =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      content_type (String.length body)
  in
  let msg = Bytes.of_string (head ^ body) in
  let rec write_all off =
    if off < Bytes.length msg then
      let n = Unix.write client msg off (Bytes.length msg - off) in
      write_all (off + n)
  in
  write_all 0

let serve_client render client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      (* Drain the request head (best effort — a scraper that sends
         nothing still gets its metrics). *)
      Unix.setsockopt_float client Unix.SO_RCVTIMEO 2.0;
      let buf = Bytes.create 4096 in
      (try ignore (Unix.read client buf 0 (Bytes.length buf) : int)
       with Unix.Unix_error _ -> ());
      let body = try render () with _ -> "# render failed\n" in
      respond client body)

let accept_loop t render =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.fd with
        | client, _ -> ( try serve_client render client with _ -> ())
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port render =
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> invalid_arg (Printf.sprintf "Exporter.start: bad host %S" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { fd; port; stop_flag = Atomic.make false; thread = Thread.self () } in
  let thread = Thread.create (fun () -> accept_loop t render) () in
  { t with thread }

let port t = t.port

let stop t =
  Atomic.set t.stop_flag true;
  try Thread.join t.thread with _ -> ()
