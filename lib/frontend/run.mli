(** Generic GBR driver over any {!Frontend.S}.

    The frontend-agnostic mirror of the harness driver: a simulated clock
    charging [1 + 4e-4 × bytes] seconds per predicate run, an improvement
    timeline on (bytes, items), memoized predicates keyed by the candidate
    assignment's digest, and the same hook surface the server's scheduler
    speaks — so journal replay, verdict streaming and cancellation work
    unchanged over non-JVM workloads.

    Only the GBR strategy is offered here: the baselines (J-Reduce, the
    lossy encodings) are JVM-specific measurements and stay in
    {!Lbr_harness.Experiment}. *)

type evaluation = Fresh of bool | Replayed of bool

type hooks = {
  on_improvement : (float -> int -> int -> unit) option;
      (** (simulated time, items, bytes) at each improvement *)
  should_stop : (unit -> bool) option;
      (** polled before every predicate run; [true] raises {!Cancelled} *)
  evaluate : (key:string -> (unit -> bool) -> evaluation) option;
      (** interception of the black-box run; [key] is the candidate
          assignment's digest, stable across processes *)
  peek : (key:string -> bool option) option;
      (** non-executing verdict lookup (e.g. into a replay journal), used
          to gate speculative launches: an assignment whose verdict is
          already known is never executed speculatively, so speculation
          adds no fresh executions to a replayed workload *)
}

val default_hooks : hooks

exception Cancelled

type outcome = {
  frontend : string;
  ok : bool;
  sim_time : float;
  wall_time : float;
  predicate_runs : int;
  replayed_runs : int;
  items0 : int;
  items1 : int;
  bytes0 : int;
  bytes1 : int;
  timeline : (float * int * int) list;
      (** (simulated time, items, bytes) at each improvement, oldest first *)
}

val reduce_input :
  ?hooks:hooks ->
  ?pool:Lbr_runtime.Pool.t ->
  ?speculate:bool ->
  (module Frontend.S with type ctx = 'c and type input = 'i) ->
  'i ->
  spec:string ->
  (outcome * 'i, string) result
(** Derive, generate constraints, validate the problem (including one
    predicate run on the full input) and run GBR in the creation order.
    [Error] on malformed inputs, unsatisfiable-by-construction problems,
    or a failing full-input predicate; a mid-flight GBR failure (e.g. an
    inconsistent predicate) returns [Ok] with [ok = false] and the
    original input, mirroring the harness.

    [~pool] together with [~speculate:true] turns on speculative predicate
    pipelining ({!Lbr.Speculate}): while each predicate verdict is pending,
    the assignments GBR would demand next on either branch are computed on
    the pool's idle workers, and the loser is cancelled when the verdict
    lands.  Results, statistics, the simulated clock and the improvement
    timeline are byte-identical to the sequential run; only wall-clock
    changes.  Requires the predicate check to be pure (every built-in
    frontend's is). *)

val reduce_text :
  ?hooks:hooks ->
  ?pool:Lbr_runtime.Pool.t ->
  ?speculate:bool ->
  Frontend.packed ->
  text:string ->
  spec:string ->
  (outcome * string, string) result
(** {!reduce_input} over serialized bytes: parse, reduce, print.  This is
    the wire-payload entry point the server's runner dispatches to. *)
