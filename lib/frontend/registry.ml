let all : Frontend.packed list =
  [ Frontend.Packed (module Jvm); Packed (module Dimacs); Packed (module Fj) ]

let ids = List.map Frontend.id_of all

let describe () =
  String.concat ", " ids

let find id =
  match List.find_opt (fun p -> Frontend.id_of p = id) all with
  | Some p -> Ok p
  | None ->
      Error (Printf.sprintf "unknown frontend %S (known frontends: %s)" id (describe ()))

let for_path path =
  let ext = Filename.extension path in
  match
    List.find_opt (fun p -> List.mem ext (Frontend.extensions_of p)) all
  with
  | Some p -> Ok p
  | None ->
      let known =
        List.concat_map
          (fun p ->
            List.map
              (fun e -> Printf.sprintf "%s (%s)" e (Frontend.id_of p))
              (Frontend.extensions_of p))
          all
      in
      Error
        (Printf.sprintf "cannot infer a frontend from %S (known extensions: %s); use --frontend"
           path (String.concat ", " known))
