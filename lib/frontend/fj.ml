open Lbr_logic
open Lbr_fji
open Syntax

type input = Syntax.program
type ctx = Vars.t

let id = "fj"
let doc = "reduce a Featherweight Java program (DRReduce-style def/use dependency edges)"
let extensions = [ ".fj"; ".fji" ]

let parse = Parse.program_of_string
let print = Pretty.program_to_string
let items = Reduce.size
let bytes p = String.length (print p)

let derive vpool program =
  match Vars.derive vpool program with
  | vars -> Ok vars
  | exception Invalid_argument m -> Error m

let universe = Vars.all

(* ------------------------------------------------------------------ *)
(* Dependency reconstruction: walk the tree, record which definition
   every use site needs, dedup through the graph library.              *)

let rec expr_type_refs acc = function
  | Var _ -> acc
  | Field (e, _) -> expr_type_refs acc e
  | Call (e, _, args) -> List.fold_left expr_type_refs (expr_type_refs acc e) args
  | New (c, args) -> List.fold_left expr_type_refs (c :: acc) args
  | Cast (t, e) -> expr_type_refs (t :: acc) e

let dependency_edges vars program =
  let edges = ref [] in
  let num_nodes = ref 0 in
  let node v =
    if v + 1 > !num_nodes then num_nodes := v + 1;
    v
  in
  let edge x y = edges := (node x, node y) :: !edges in
  (* use -> def edges to a (non-builtin) type from a source variable *)
  let uses src tys =
    List.iter (fun t -> if not (is_builtin t) then edge src (Vars.cls vars t)) tys
  in
  List.iter
    (fun decl ->
      match decl with
      | Class c ->
          let cv = Vars.cls vars c.c_name in
          (* the declaration's own spine *)
          (match Vars.impl_opt vars ~c:c.c_name with
          | Some iv ->
              edge iv cv;
              uses iv [ c.c_iface ]
          | None -> ());
          (* extends and field types are not separately removable in FJI:
             the class keeps them, so the class requires their defs *)
          uses cv (c.c_super :: List.map fst c.c_fields);
          List.iter
            (fun (m : meth) ->
              let mv = Vars.meth vars ~c:c.c_name ~m:m.m_name in
              let bv = Vars.code vars ~c:c.c_name ~m:m.m_name in
              edge mv cv;
              edge bv mv;
              (* the signature survives with the method; the body's use
                 sites survive only with the code *)
              uses mv (m.m_ret :: List.map fst m.m_params);
              uses bv (expr_type_refs [] m.m_body))
            c.c_methods
      | Interface i ->
          let iv = Vars.cls vars i.i_name in
          List.iter
            (fun (s : signature) ->
              let sv = Vars.sig_ vars ~i:i.i_name ~m:s.s_name in
              edge sv iv;
              uses sv (s.s_ret :: List.map fst s.s_params))
            i.i_sigs)
    program.decls;
  match !edges with
  | [] -> []
  | edges -> Lbr_graph.Digraph.edges (Lbr_graph.Digraph.make ~n:!num_nodes ~edges)

let constraints vars program =
  match Typecheck.generate vars program with
  | Error e -> Error (Format.asprintf "%a" Typecheck.pp_error e)
  | Ok formula ->
      let edges =
        List.map (fun (x, y) -> Clause.edge x y) (dependency_edges vars program)
      in
      (* the main expression, when present, is never reduced: its use
         sites are hard requirements *)
      let required =
        match program.main with
        | None -> []
        | Some e ->
            List.filter_map
              (fun t -> if is_builtin t then None else Some (Clause.unit_pos (Vars.cls vars t)))
              (expr_type_refs [] e)
      in
      Ok (Cnf.add_clauses (Formula.to_cnf formula) (edges @ required))

let prepare vars program = fun phi -> Reduce.reduce vars program phi

(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let type_checks p = match Typecheck.check p with Ok () -> true | Error _ -> false

let predicate (_ : ctx) program ~spec =
  match Typecheck.check program with
  | Error e -> Error (Format.asprintf "input does not type check: %a" Typecheck.pp_error e)
  | Ok () ->
      if not (contains ~needle:spec (print program)) then
        Error (Printf.sprintf "required text %S does not occur in the input program" spec)
      else Ok (fun sub -> type_checks sub && contains ~needle:spec (print sub))
