(** The JVM class-pool frontend — the paper's original workload, now just
    one {!Frontend.S} instance.

    Everything delegates to [lib/jvm]: inventory and variables to
    {!Lbr_jvm.Jvars}, the dependency model to {!Lbr_jvm.Constraints}, the
    reducer to {!Lbr_jvm.Reducer.prepare}, sizes to {!Lbr_jvm.Size} and
    the serializer to {!Lbr_jvm.Serialize} (LBRC container bytes).  The
    delegation is pure — {!Lbr_harness.Experiment} routes its item
    derivation and constraint generation through this module and produces
    byte-identical reductions to the pre-frontend code, which the test
    suite pins on the reference workload.

    The predicate spec is a simulated-decompiler name
    ({!Lbr_decompiler.Tool}); [""] picks the first tool that is buggy on
    the input.  The bridged predicate is the paper's: the candidate
    sub-pool must reproduce every baseline error message. *)

include Frontend.S with type input = Lbr_jvm.Classpool.t and type ctx = Lbr_jvm.Jvars.t

val includes_sorted : baseline:string list -> string list -> bool
(** Sorted-list inclusion: is every baseline message present?  The error
    comparison used by the predicate bridge (and by the harness). *)
