(** DIMACS-native reduction: any unsatisfiable CNF file is a workload.

    Items are the {e clauses} of the benchmark (one selector variable per
    clause); the predicate is UNSAT preservation — a sub-formula made of
    the selected clauses must still be unsatisfiable, which is monotone in
    the clause set exactly as Definition 4.1 requires.  Reduction thus
    extracts a small unsatisfiable core, honouring user-supplied validity
    constraints embedded in the file as [c lbr] comment directives:

    {v
    c lbr keep 3          -- clause 3 must stay in every sub-formula
    c lbr implies 4 7     -- keeping clause 4 requires keeping clause 7
    v}

    The parser/printer round-trips: {!S.parse} of {!S.print} returns the
    same value, including directives and the literal order inside clauses.
    Malformed input — bad headers, literals out of range, clause-count
    mismatches, unknown [c lbr] directives, unterminated clauses — returns
    [Error], never raises.  Plain comments and blank lines are accepted
    anywhere and are not preserved (printing is canonical: header,
    directives, clauses). *)

type t = {
  num_vars : int;  (** the header's variable count; literals are 1-based *)
  clauses : int array array;  (** literals as written, zero-terminator stripped *)
  keeps : int list;  (** 1-based clause indices that must survive *)
  implications : (int * int) list;  (** (i, j): keeping clause i requires j *)
}

include Frontend.S with type input = t
