open Lbr_logic

type t = {
  num_vars : int;
  clauses : int array array;
  keeps : int list;
  implications : (int * int) list;
}

type input = t

let id = "dimacs"
let doc = "reduce a DIMACS CNF file to a small unsatisfiable core (items = clauses)"
let extensions = [ ".cnf"; ".dimacs" ]

(* ------------------------------------------------------------------ *)
(* Parser.  Line-oriented, but clauses may span lines; total.          *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse text =
  let header = ref None in
  let clauses = ref [] in
  let pending = ref [] in  (* literals of the clause being read, reversed *)
  let keeps = ref [] in
  let implications = ref [] in
  let directive line words =
    match words with
    | [ "keep"; i ] -> (
        match int_of_string_opt i with
        | Some i when i >= 1 -> keeps := i :: !keeps
        | _ -> failf "line %d: bad clause index %S in 'c lbr keep'" line i)
    | [ "implies"; i; j ] -> (
        match (int_of_string_opt i, int_of_string_opt j) with
        | Some i, Some j when i >= 1 && j >= 1 -> implications := (i, j) :: !implications
        | _ -> failf "line %d: bad clause indices in 'c lbr implies'" line)
    | w :: _ -> failf "line %d: unknown 'c lbr' directive %S (expected keep or implies)" line w
    | [] -> failf "line %d: empty 'c lbr' directive" line
  in
  let tokens line_no line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
    |> fun toks ->
    match toks with
    | [] -> ()  (* blank line *)
    | "c" :: "lbr" :: words -> directive line_no words
    | tok :: _ when String.length tok > 0 && tok.[0] = 'c' -> ()  (* comment *)
    | "p" :: rest -> (
        if !header <> None then failf "line %d: duplicate DIMACS header" line_no;
        if !pending <> [] || !clauses <> [] then
          failf "line %d: header after clause data" line_no;
        match rest with
        | [ "cnf"; nv; nc ] -> (
            match (int_of_string_opt nv, int_of_string_opt nc) with
            | Some nv, Some nc when nv >= 0 && nc >= 0 -> header := Some (nv, nc)
            | _ -> failf "line %d: malformed header counts (p cnf %s %s)" line_no nv nc)
        | _ -> failf "line %d: malformed DIMACS header (expected p cnf <vars> <clauses>)" line_no)
    | toks ->
        let nv =
          match !header with
          | Some (nv, _) -> nv
          | None -> failf "line %d: clause data before the DIMACS header" line_no
        in
        List.iter
          (fun tok ->
            match int_of_string_opt tok with
            | None -> failf "line %d: bad literal %S" line_no tok
            | Some 0 ->
                clauses := Array.of_list (List.rev !pending) :: !clauses;
                pending := []
            | Some lit ->
                if abs lit > nv then
                  failf "line %d: literal %d out of range (header declares %d variables)"
                    line_no lit nv;
                pending := lit :: !pending)
          toks
  in
  match
    List.iteri (fun i line -> tokens (i + 1) line) (String.split_on_char '\n' text);
    (match !pending with [] -> () | _ -> failf "unterminated clause (missing 0)");
    let num_vars, declared =
      match !header with
      | Some h -> h
      | None -> failf "missing DIMACS header (p cnf <vars> <clauses>)"
    in
    let clauses = Array.of_list (List.rev !clauses) in
    if Array.length clauses <> declared then
      failf "header declares %d clauses but %d were given" declared (Array.length clauses);
    let check_index what i =
      if i < 1 || i > Array.length clauses then
        failf "'c lbr %s' references clause %d (only %d clauses)" what i (Array.length clauses)
    in
    List.iter (check_index "keep") !keeps;
    List.iter
      (fun (i, j) ->
        check_index "implies" i;
        check_index "implies" j)
      !implications;
    {
      num_vars;
      clauses;
      keeps = List.rev !keeps;
      implications = List.rev !implications;
    }
  with
  | t -> Ok t
  | exception Bad m -> Error m

let print t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" t.num_vars (Array.length t.clauses));
  List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "c lbr keep %d\n" i)) t.keeps;
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "c lbr implies %d %d\n" i j))
    t.implications;
  Array.iter
    (fun lits ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) lits;
      Buffer.add_string buf "0\n")
    t.clauses;
  Buffer.contents buf

let items t = Array.length t.clauses
let bytes t = String.length (print t)

(* ------------------------------------------------------------------ *)
(* Inventory and constraints: one selector variable per clause.        *)

type ctx = Var.t array

let derive vpool t =
  Ok (Array.init (Array.length t.clauses) (fun i -> Var.Pool.fresh vpool (Printf.sprintf "clause#%d" (i + 1))))

let universe (ctx : ctx) = Assignment.of_list (Array.to_list ctx)

let constraints (ctx : ctx) t =
  let keep = List.map (fun i -> Clause.unit_pos ctx.(i - 1)) t.keeps in
  let implies =
    (* i = j would be a tautology; Clause.make drops it. *)
    List.filter_map
      (fun (i, j) -> Clause.make ~neg:[ ctx.(i - 1) ] ~pos:[ ctx.(j - 1) ])
      t.implications
  in
  Ok (Cnf.make (keep @ implies))

let prepare (ctx : ctx) t =
  fun phi ->
    let n = Array.length t.clauses in
    (* old (1-based) index -> new (1-based) index of surviving clauses *)
    let remap = Array.make (n + 1) 0 in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if Assignment.mem ctx.(i) phi then begin
        incr next;
        remap.(i + 1) <- !next
      end
    done;
    let clauses =
      Array.of_list
        (List.filteri (fun i _ -> remap.(i + 1) <> 0) (Array.to_list t.clauses))
    in
    (* R_I guarantees kept directives survive: unit_pos keeps the clause a
       'keep' names, and the edge keeps an implication's target whenever
       its source is in.  An implication whose source was dropped is
       itself dropped (it constrains nothing anymore). *)
    let keeps = List.filter_map (fun i -> if remap.(i) <> 0 then Some remap.(i) else None) t.keeps in
    let implications =
      List.filter_map
        (fun (i, j) ->
          if remap.(i) <> 0 && remap.(j) <> 0 then Some (remap.(i), remap.(j)) else None)
        t.implications
    in
    { t with clauses; keeps; implications }

(* ------------------------------------------------------------------ *)
(* Predicate: the selected clauses still form an unsatisfiable formula.
   Monotone by construction — adding clauses to an unsatisfiable formula
   keeps it unsatisfiable. *)

let formula_of t =
  Cnf.make
    (Array.to_list t.clauses
    |> List.filter_map (fun lits ->
           let neg = ref [] and pos = ref [] in
           Array.iter
             (fun l -> if l < 0 then neg := (-l - 1) :: !neg else pos := (l - 1) :: !pos)
             lits;
           Clause.make ~neg:!neg ~pos:!pos))

let predicate (_ : ctx) t ~spec =
  if spec <> "" then
    Error (Printf.sprintf "the dimacs frontend takes no predicate spec (got %S)" spec)
  else if Lbr_sat.Solver.satisfiable (formula_of t) then
    Error "input formula is satisfiable; the dimacs predicate preserves unsatisfiability"
  else Ok (fun sub -> not (Lbr_sat.Solver.satisfiable (formula_of sub)))
