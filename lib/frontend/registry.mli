(** The table of known frontends, keyed by id and by file extension. *)

val all : Frontend.packed list
(** [jvm], [dimacs], [fj] — registration order is display order. *)

val ids : string list

val find : string -> (Frontend.packed, string) result
(** Lookup by id.  The error message lists every known frontend, so a
    typo on the command line (or an unknown wire tag) is self-explaining. *)

val for_path : string -> (Frontend.packed, string) result
(** Infer a frontend from a file path's extension ([.cnf] → dimacs, [.fj]
    → fj, [.lbrc] → jvm); the error lists the known extensions. *)
