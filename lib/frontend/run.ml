open Lbr_logic

type evaluation = Fresh of bool | Replayed of bool

type hooks = {
  on_improvement : (float -> int -> int -> unit) option;
  should_stop : (unit -> bool) option;
  evaluate : (key:string -> (unit -> bool) -> evaluation) option;
  peek : (key:string -> bool option) option;
}

let default_hooks =
  { on_improvement = None; should_stop = None; evaluate = None; peek = None }

exception Cancelled

type outcome = {
  frontend : string;
  ok : bool;
  sim_time : float;
  wall_time : float;
  predicate_runs : int;
  replayed_runs : int;
  items0 : int;
  items1 : int;
  bytes0 : int;
  bytes1 : int;
  timeline : (float * int * int) list;
}

(* Everything the demand path charges and journals about one predicate run,
   precomputed by a speculative worker.  The demand path consumes this
   instead of re-applying the assignment: [apply] and the size accessors
   are deterministic, so the payload is exactly what the inline computation
   would have produced. *)
type spec_payload = { sp_ok : bool; sp_items : int; sp_bytes : int }

let reduce_input (type i c) ?(hooks = default_hooks) ?pool ?(speculate = false)
    (module F : Frontend.S with type ctx = c and type input = i) (input : i) ~spec =
  let vpool = Var.Pool.create () in
  match F.derive vpool input with
  | Error m -> Error (Printf.sprintf "%s: derivation failed: %s" F.id m)
  | Ok ctx -> (
      match F.constraints ctx input with
      | Error m -> Error (Printf.sprintf "%s: constraint generation failed: %s" F.id m)
      | Ok cnf -> (
          match F.predicate ctx input ~spec with
          | Error m -> Error (Printf.sprintf "%s: %s" F.id m)
          | Ok check ->
              let apply = F.prepare ctx input in
              let speculation =
                match pool with
                | Some p when speculate ->
                    (* Workers get their own prepared applier (and check) —
                       [F.prepare]'s result is domain-local state for the
                       JVM frontend.  The check closure from [F.predicate]
                       is pure, so sharing it is fine; building per-domain
                       appliers through DLS keeps the rest isolated. *)
                    let applier = Domain.DLS.new_key (fun () -> F.prepare ctx input) in
                    let compute phi =
                      let sub = (Domain.DLS.get applier) phi in
                      { sp_ok = check sub; sp_items = F.items sub; sp_bytes = F.bytes sub }
                    in
                    let should_launch, verdict_hint =
                      (* Never launch what a replay journal already knows,
                         and hint the search with the journal's verdicts so
                         it only prefetches branches replay will take: a
                         fully replayed workload launches nothing, so
                         speculation adds no fresh executions to it. *)
                      match hooks.peek with
                      | None -> (None, None)
                      | Some peek ->
                          let peek phi = peek ~key:(Assignment.digest_hex phi) in
                          (Some (fun phi -> peek phi = None), Some peek)
                    in
                    Some
                      (Lbr.Speculate.create
                         ~spawn:(fun job ->
                           ignore (Lbr_runtime.Pool.submit p job : unit Lbr_runtime.Pool.future))
                         ?should_launch ?verdict_hint
                         ~max_inflight:(2 * Lbr_runtime.Pool.jobs p)
                         compute)
                | _ -> None
              in
              (* The same instrumented black box as the harness driver: a
                 simulated clock charged per run, an improvement timeline
                 on (bytes, items), and the scheduler's hook surface. *)
              let clock = ref 0.0 in
              let best = ref (max_int, max_int) in
              let improvements = ref [] in
              let replayed = ref 0 in
              (* All observable accounting happens here, on the demand
                 path, whether the verdict came from a speculative worker
                 or was computed inline — byte-identical either way. *)
              let settle ~ok ~items ~bytes ~charge ~key =
                clock := !clock +. charge;
                let ok =
                  match hooks.evaluate with
                  | None -> ok ()
                  | Some evaluate -> (
                      match evaluate ~key ok with
                      | Fresh ok -> ok
                      | Replayed ok ->
                          incr replayed;
                          ok)
                in
                if ok then begin
                  let c = items () and b = bytes () in
                  let bc, bb = !best in
                  if b < bb || (b = bb && c < bc) then begin
                    best := (min bc c, min bb b);
                    improvements := (!clock, c, b) :: !improvements;
                    match hooks.on_improvement with Some f -> f !clock c b | None -> ()
                  end
                end;
                ok
              in
              let black_box phi =
                (match hooks.should_stop with
                | Some stop when stop () -> raise Cancelled
                | _ -> ());
                let key = Assignment.digest_hex phi in
                match
                  match speculation with
                  | Some sp -> Lbr.Speculate.demand sp phi
                  | None -> None
                with
                | Some payload ->
                    settle
                      ~ok:(fun () -> payload.sp_ok)
                      ~items:(fun () -> payload.sp_items)
                      ~bytes:(fun () -> payload.sp_bytes)
                      ~charge:(1.0 +. (4e-4 *. float_of_int payload.sp_bytes))
                      ~key
                | None ->
                    let sub = apply phi in
                    settle
                      ~ok:(fun () -> check sub)
                      ~items:(fun () -> F.items sub)
                      ~bytes:(fun () -> F.bytes sub)
                      ~charge:(1.0 +. (4e-4 *. float_of_int (F.bytes sub)))
                      ~key
              in
              let predicate = Lbr.Predicate.make ~name:F.id black_box in
              let problem =
                Lbr.Problem.make ~pool:vpool ~universe:(F.universe ctx) ~constraints:cnf
                  ~predicate
              in
              let t0 = Unix.gettimeofday () in
              Fun.protect
                ~finally:(fun () ->
                  match speculation with
                  | Some sp -> Lbr.Speculate.drain sp
                  | None -> ())
              @@ fun () ->
              (* Validation runs the predicate once on the full input; the
                 memo makes GBR's own full-input query free, so the clock
                 stays identical to an unvalidated run. *)
              match Lbr.Problem.validate problem with
              | Error m -> Error (Printf.sprintf "%s: invalid problem: %s" F.id m)
              | Ok () ->
                  let result, runs, ok =
                    match
                      Lbr.Gbr.reduce ?speculate:speculation problem
                        ~order:(Lbr_sat.Order.by_creation vpool)
                    with
                    | Ok (result, stats) -> (result, stats.predicate_runs, true)
                    | Error (`Unsat | `Predicate_inconsistent | `Invariant_violation _) ->
                        (F.universe ctx, Lbr.Predicate.runs predicate, false)
                  in
                  let wall_time = Unix.gettimeofday () -. t0 in
                  let final = apply result in
                  Ok
                    ( {
                        frontend = F.id;
                        ok;
                        sim_time = !clock;
                        wall_time;
                        predicate_runs = runs;
                        replayed_runs = !replayed;
                        items0 = F.items input;
                        items1 = F.items final;
                        bytes0 = F.bytes input;
                        bytes1 = F.bytes final;
                        timeline = List.rev !improvements;
                      },
                      final )))

let reduce_text ?hooks ?pool ?speculate (Frontend.Packed (module F)) ~text ~spec =
  match F.parse text with
  | Error m -> Error (Printf.sprintf "%s: unparsable input: %s" F.id m)
  | Ok input -> (
      match reduce_input ?hooks ?pool ?speculate (module F) input ~spec with
      | Error _ as e -> e
      | Ok (outcome, final) -> Ok (outcome, F.print final))
