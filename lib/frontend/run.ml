open Lbr_logic

type evaluation = Fresh of bool | Replayed of bool

type hooks = {
  on_improvement : (float -> int -> int -> unit) option;
  should_stop : (unit -> bool) option;
  evaluate : (key:string -> (unit -> bool) -> evaluation) option;
}

let default_hooks = { on_improvement = None; should_stop = None; evaluate = None }

exception Cancelled

type outcome = {
  frontend : string;
  ok : bool;
  sim_time : float;
  wall_time : float;
  predicate_runs : int;
  replayed_runs : int;
  items0 : int;
  items1 : int;
  bytes0 : int;
  bytes1 : int;
  timeline : (float * int * int) list;
}

let reduce_input (type i c) ?(hooks = default_hooks)
    (module F : Frontend.S with type ctx = c and type input = i) (input : i) ~spec =
  let vpool = Var.Pool.create () in
  match F.derive vpool input with
  | Error m -> Error (Printf.sprintf "%s: derivation failed: %s" F.id m)
  | Ok ctx -> (
      match F.constraints ctx input with
      | Error m -> Error (Printf.sprintf "%s: constraint generation failed: %s" F.id m)
      | Ok cnf -> (
          match F.predicate ctx input ~spec with
          | Error m -> Error (Printf.sprintf "%s: %s" F.id m)
          | Ok check ->
              let apply = F.prepare ctx input in
              (* The same instrumented black box as the harness driver: a
                 simulated clock charged per run, an improvement timeline
                 on (bytes, items), and the scheduler's hook surface. *)
              let clock = ref 0.0 in
              let best = ref (max_int, max_int) in
              let improvements = ref [] in
              let replayed = ref 0 in
              let black_box phi =
                (match hooks.should_stop with
                | Some stop when stop () -> raise Cancelled
                | _ -> ());
                let sub = apply phi in
                clock := !clock +. 1.0 +. (4e-4 *. float_of_int (F.bytes sub));
                let ok =
                  match hooks.evaluate with
                  | None -> check sub
                  | Some evaluate -> (
                      match evaluate ~key:(Assignment.digest_hex phi) (fun () -> check sub) with
                      | Fresh ok -> ok
                      | Replayed ok ->
                          incr replayed;
                          ok)
                in
                if ok then begin
                  let c = F.items sub and b = F.bytes sub in
                  let bc, bb = !best in
                  if b < bb || (b = bb && c < bc) then begin
                    best := (min bc c, min bb b);
                    improvements := (!clock, c, b) :: !improvements;
                    match hooks.on_improvement with Some f -> f !clock c b | None -> ()
                  end
                end;
                ok
              in
              let predicate = Lbr.Predicate.make ~name:F.id black_box in
              let problem =
                Lbr.Problem.make ~pool:vpool ~universe:(F.universe ctx) ~constraints:cnf
                  ~predicate
              in
              let t0 = Unix.gettimeofday () in
              (* Validation runs the predicate once on the full input; the
                 memo makes GBR's own full-input query free, so the clock
                 stays identical to an unvalidated run. *)
              match Lbr.Problem.validate problem with
              | Error m -> Error (Printf.sprintf "%s: invalid problem: %s" F.id m)
              | Ok () ->
                  let result, runs, ok =
                    match
                      Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation vpool)
                    with
                    | Ok (result, stats) -> (result, stats.predicate_runs, true)
                    | Error (`Unsat | `Predicate_inconsistent | `Invariant_violation _) ->
                        (F.universe ctx, Lbr.Predicate.runs predicate, false)
                  in
                  let wall_time = Unix.gettimeofday () -. t0 in
                  let final = apply result in
                  Ok
                    ( {
                        frontend = F.id;
                        ok;
                        sim_time = !clock;
                        wall_time;
                        predicate_runs = runs;
                        replayed_runs = !replayed;
                        items0 = F.items input;
                        items1 = F.items final;
                        bytes0 = F.bytes input;
                        bytes1 = F.bytes final;
                        timeline = List.rev !improvements;
                      },
                      final )))

let reduce_text ?hooks (Frontend.Packed (module F)) ~text ~spec =
  match F.parse text with
  | Error m -> Error (Printf.sprintf "%s: unparsable input: %s" F.id m)
  | Ok input -> (
      match reduce_input ?hooks (module F) input ~spec with
      | Error _ as e -> e
      | Ok (outcome, final) -> Ok (outcome, F.print final))
