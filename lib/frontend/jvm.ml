open Lbr_jvm

type input = Classpool.t
type ctx = Jvars.t

let id = "jvm"
let doc = "reduce a JVM class pool against a buggy decompiler (LBRC container bytes)"
let extensions = [ ".lbrc" ]

let parse = Serialize.of_bytes
let print = Serialize.to_bytes
let items = Size.items
let bytes = Size.bytes

let derive vpool pool =
  match Jvars.derive vpool pool with
  | jv -> Ok jv
  | exception Invalid_argument m -> Error m

let universe = Jvars.all

let constraints jv pool =
  match Constraints.generate jv pool with
  | cnf -> Ok cnf
  | exception Invalid_argument m -> Error m

let prepare = Reducer.prepare

let rec includes_sorted ~baseline messages =
  match (baseline, messages) with
  | [], _ -> true
  | _ :: _, [] -> false
  | b :: bs, m :: ms ->
      let c = String.compare b m in
      if c = 0 then includes_sorted ~baseline:bs ms
      else if c > 0 then includes_sorted ~baseline ms
      else false

let predicate (_ : ctx) pool ~spec =
  let tool =
    match spec with
    | "" -> (
        match
          List.find_opt (fun t -> Lbr_decompiler.Tool.is_buggy_on t pool) Lbr_decompiler.Tool.all
        with
        | Some t -> Ok t
        | None -> Error "no tool is buggy on this pool")
    | name -> (
        match
          List.find_opt (fun (t : Lbr_decompiler.Tool.t) -> t.name = name)
            Lbr_decompiler.Tool.all
        with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "unknown tool %S" name))
  in
  match tool with
  | Error _ as e -> e
  | Ok tool -> (
      match Lbr_decompiler.Tool.errors tool pool with
      | [] -> Error (Printf.sprintf "tool %s is not buggy on this pool" tool.Lbr_decompiler.Tool.name)
      | baseline ->
          Ok (fun sub -> includes_sorted ~baseline (Lbr_decompiler.Tool.errors tool sub)))
