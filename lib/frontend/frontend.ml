open Lbr_logic

module type S = sig
  val id : string
  val doc : string
  val extensions : string list

  type input
  type ctx

  val parse : string -> (input, string) result
  val print : input -> string
  val items : input -> int
  val bytes : input -> int

  val derive : Var.Pool.t -> input -> (ctx, string) result
  val universe : ctx -> Assignment.t
  val constraints : ctx -> input -> (Cnf.t, string) result
  val prepare : ctx -> input -> Assignment.t -> input
  val predicate : ctx -> input -> spec:string -> (input -> bool, string) result
end

type packed = Packed : (module S with type input = 'i and type ctx = 'c) -> packed

let id_of (Packed (module F)) = F.id
let doc_of (Packed (module F)) = F.doc
let extensions_of (Packed (module F)) = F.extensions
