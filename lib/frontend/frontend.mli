(** The [Frontend] signature: what a domain must provide to become a
    reduction workload.

    The paper's algorithms only ever see an Input Reduction Problem —
    a variable universe [I], a CNF validity formula [R_I], and a black-box
    predicate [𝒫] (Definition 4.1).  A frontend is the adapter that builds
    that triple from a concrete artifact (a JVM class pool, a DIMACS file,
    an FJI program): an item inventory ({!S.derive}/{!S.universe}), a
    constraint generator ({!S.constraints}), a serializer
    ({!S.parse}/{!S.print}), size metrics ({!S.items}/{!S.bytes}), and a
    predicate bridge ({!S.predicate}).

    Invariants every frontend must maintain (checked for the shipped ones
    by the test suite):

    - {b Soundness of [R_I]}: the full item set satisfies the generated
      constraints, and any assignment satisfying them maps ({!S.prepare})
      to a well-formed artifact of the domain.  Constraints may
      over-approximate (pruning valid sub-inputs is allowed); they must
      never admit an assignment whose artifact is malformed in a way the
      predicate cannot evaluate.
    - {b Monotone predicate}: on constraint-satisfying sub-inputs, if the
      bridged predicate holds on [φ] it holds on every valid [φ' ⊇ φ].
      {!Run.reduce} relies on this exactly as GBR does.
    - {b Serializer totality}: {!S.parse} returns [Error] on malformed
      bytes — never raises — and [parse (print x)] succeeds for every [x]
      produced by [parse] or {!S.prepare}.

    Frontends are identified by {!S.id} strings; {!Registry} maps ids (and
    file extensions) to packed instances for the CLI and the wire layer. *)

open Lbr_logic

module type S = sig
  val id : string
  (** Stable identifier, used on the command line ([--frontend <id>]) and
      in wire/journal frontend tags.  Lowercase, no whitespace. *)

  val doc : string
  (** One-line description for [--frontend] listings. *)

  val extensions : string list
  (** File extensions (with the dot, e.g. [".cnf"]) this frontend claims,
      used to infer a frontend from an input path. *)

  type input
  (** The domain artifact being reduced. *)

  type ctx
  (** Per-input derivation state: the item inventory with its variable
      bindings (e.g. [Lbr_jvm.Jvars.t]). *)

  val parse : string -> (input, string) result
  (** Deserialize an artifact from its transport form (file contents /
      wire payload bytes).  Total. *)

  val print : input -> string
  (** Serialize an artifact — the inverse of {!parse}, and the payload of
      results.  For textual domains this is the concrete syntax. *)

  val items : input -> int
  (** Number of reducible items; the first axis of progress reporting. *)

  val bytes : input -> int
  (** Size in (estimated) bytes; the second axis, and the input to the
      simulated-cost model [1 + 4e-4 × bytes]. *)

  val derive : Var.Pool.t -> input -> (ctx, string) result
  (** Register one variable per item (creation order = the default
      reduction order [<]) and return the inventory. *)

  val universe : ctx -> Assignment.t
  (** The full variable set [I]. *)

  val constraints : ctx -> input -> (Cnf.t, string) result
  (** The validity formula [R_I] over the inventory's variables. *)

  val prepare : ctx -> input -> Assignment.t -> input
  (** [prepare ctx x] is the reducer: partially applied to resolve the
      inventory once, then applied per candidate assignment.  [prepare ctx
      x (universe ctx) = x] up to representation. *)

  val predicate : ctx -> input -> spec:string -> (input -> bool, string) result
  (** Bridge the black-box predicate.  [spec] is frontend-specific
      configuration carried in the job spec's tool field: the decompiler
      name for [jvm] ([""] = first buggy), a required substring of the
      printed artifact for [fj], unused for [dimacs].  [Error] when the
      full input does not satisfy the predicate (nothing to reduce) or
      [spec] is invalid. *)
end

type packed = Packed : (module S with type input = 'i and type ctx = 'c) -> packed
(** Existentially packed frontend, for registries and dispatch on ids. *)

val id_of : packed -> string
val doc_of : packed -> string
val extensions_of : packed -> string list
