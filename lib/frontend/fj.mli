(** FJI tree reduction with dependency reconstruction.

    Reduces Featherweight-Java-with-Interfaces programs ({!Lbr_fji}) in the
    style of DRReduce: def/use edges are reconstructed from the syntax tree
    — a use site (a [new C(…)], a cast, a field or signature type, an
    [extends]/[implements] clause) requires its definition — deduplicated
    through {!Lbr_graph.Digraph}, and emitted as implication clauses.  On
    top of the edges, the paper's own constraint generator
    ({!Lbr_fji.Typecheck.generate}, Figures 6–7) contributes the
    non-graph obligations (interface-method requirements, call
    resolution), so every constraint-satisfying assignment reduces to a
    program that type checks (Theorem 3.1) — GBR never produces
    unbound-variable garbage.

    The predicate spec is a required substring of the printed program
    (e.g. ["class A"]); [""] means "still type checks".  A substring
    naming a kept declaration is monotone: valid supersets keep strictly
    more text.  Items and variables follow {!Lbr_fji.Vars} (classes,
    interfaces, implements relations, methods, bodies, signatures). *)

include Frontend.S with type input = Lbr_fji.Syntax.program and type ctx = Lbr_fji.Vars.t

val dependency_edges : Lbr_fji.Vars.t -> Lbr_fji.Syntax.program -> (Lbr_logic.Var.t * Lbr_logic.Var.t) list
(** The reconstructed def/use edges (x, y) — keeping x requires keeping y —
    after {!Lbr_graph.Digraph} deduplication.  Exposed for tests. *)
