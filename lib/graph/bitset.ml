(* Fixed-capacity mutable bitsets over native-int words.  The word layout
   (little-endian, [Sys.int_size] bits per word) matches
   [Lbr_logic.Assignment], so {!to_assignment} is a single array hand-over
   instead of an element-by-element rebuild. *)

let bits = Sys.int_size

type t = { words : int array; capacity : int }

let words_for capacity = (capacity + bits - 1) / bits

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Array.make (words_for capacity) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let remove t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) land lnot (1 lsl (i mod bits))

let mem t i =
  check t i;
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let check_pair a b name =
  if a.capacity <> b.capacity then invalid_arg (name ^ ": capacity mismatch")

let union_into ~dst src =
  check_pair dst src "Bitset.union_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into ~dst src =
  check_pair dst src "Bitset.inter_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into ~dst src =
  check_pair dst src "Bitset.diff_into";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let union a b =
  check_pair a b "Bitset.union";
  let r = copy a in
  union_into ~dst:r b;
  r

let inter a b =
  check_pair a b "Bitset.inter";
  let r = copy a in
  inter_into ~dst:r b;
  r

let diff a b =
  check_pair a b "Bitset.diff";
  let r = copy a in
  diff_into ~dst:r b;
  r

(* 16-bit popcount table; a word takes four lookups. *)
let popcount16 =
  let table = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.set table i (Char.chr (Char.code (Bytes.get table (i lsr 1)) + (i land 1)))
  done;
  fun x -> Char.code (Bytes.unsafe_get table x)

let popcount x =
  popcount16 (x land 0xffff)
  + popcount16 ((x lsr 16) land 0xffff)
  + popcount16 ((x lsr 32) land 0xffff)
  + popcount16 (x lsr 48)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  a.capacity = b.capacity
  &&
  let rec go w =
    w >= Array.length a.words || (a.words.(w) land lnot b.words.(w) = 0 && go (w + 1))
  in
  go 0

let fold f t init =
  let acc = ref init in
  for w = 0 to Array.length t.words - 1 do
    let x = ref t.words.(w) in
    let base = w * bits in
    while !x <> 0 do
      let low = !x land - !x in
      acc := f (base + popcount (low - 1)) !acc;
      x := !x land (!x - 1)
    done
  done;
  !acc

let iter f t = fold (fun i () -> f i) t ()

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity elements =
  let t = create capacity in
  List.iter (add t) elements;
  t

let to_assignment t = Lbr_logic.Assignment.of_words t.words
