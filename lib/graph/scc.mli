(** Strongly connected components (Tarjan) and closure computation.

    J-Reduce's step 2 computes the closure of every node; doing this through
    the condensation (Sharir) makes the whole closure table cost one graph
    traversal plus per-component set unions. *)

type result = {
  comp_of : int array;  (** node → component id *)
  num_comps : int;
  members : int list array;  (** component id → member nodes *)
}
(** Component ids are in reverse topological order of the condensation: if
    component [a] has an edge to component [b], then [b < a]. *)

val compute : Digraph.t -> result

val condensation : Digraph.t -> result -> Digraph.t
(** The component DAG (nodes are component ids). *)

val component_closures : Digraph.t -> result * Bitset.t array
(** Per-component closures (indexed by component id).  [all_closures] is
    this table spread over nodes; callers that only need the set of
    distinct closures avoid the per-node expansion. *)

val all_closures : Digraph.t -> Bitset.t array
(** [all_closures g] maps every node to its closure — the set of nodes
    reachable from it, including itself.  Nodes in the same strongly
    connected component share (equal) closures. *)
