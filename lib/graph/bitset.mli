(** Fixed-capacity mutable bit sets over native-int words, used for closure
    computations where the per-node reachable sets of a few thousand nodes
    must stay cheap.  All bulk operations ({!union_into}, {!subset},
    {!cardinal}, …) run a word at a time. *)

type t

val create : int -> t
(** All-zeros set of the given capacity. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src].  Capacities must match. *)

val inter_into : dst:t -> t -> unit
val diff_into : dst:t -> t -> unit

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** Allocating variants; capacities must match. *)

val cardinal : t -> int
val copy : t -> t
val equal : t -> t -> bool

val subset : t -> t -> bool
(** Word-at-a-time inclusion test, exiting on the first mismatching word. *)

val to_list : t -> int list
val of_list : int -> int list -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_assignment : t -> Lbr_logic.Assignment.t
(** Convert to an immutable assignment by handing over the word array (the
    two modules share the same word layout), avoiding an element-by-element
    rebuild. *)
