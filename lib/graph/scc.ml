type result = {
  comp_of : int array;
  num_comps : int;
  members : int list array;
}

(* Tarjan's algorithm.  Components are numbered in the order they are
   completed, which is reverse topological order of the condensation. *)
let compute g =
  let n = Digraph.num_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let comp_of = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Digraph.succ g v);
    if lowlink.(v) = index.(v) then begin
      let c = !next_comp in
      incr next_comp;
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp_of.(w) <- c;
        if w = v then continue := false
      done
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let num_comps = !next_comp in
  let members = Array.make num_comps [] in
  for v = n - 1 downto 0 do
    members.(comp_of.(v)) <- v :: members.(comp_of.(v))
  done;
  { comp_of; num_comps; members }

let condensation g r =
  let edges =
    Digraph.edges g
    |> List.filter_map (fun (x, y) ->
           let cx = r.comp_of.(x) and cy = r.comp_of.(y) in
           if cx = cy then None else Some (cx, cy))
  in
  Digraph.make ~n:r.num_comps ~edges

let component_closures g =
  let n = Digraph.num_nodes g in
  let r = compute g in
  let dag = condensation g r in
  (* Component ids are in reverse topological order, so every successor
     component of [c] has an id < c and is processed first. *)
  let comp_closure = Array.init r.num_comps (fun _ -> Bitset.create n) in
  for c = 0 to r.num_comps - 1 do
    let closure = comp_closure.(c) in
    List.iter (Bitset.add closure) r.members.(c);
    List.iter
      (fun c' ->
        assert (c' < c);
        Bitset.union_into ~dst:closure comp_closure.(c'))
      (Digraph.succ dag c)
  done;
  (r, comp_closure)

let all_closures g =
  let n = Digraph.num_nodes g in
  let r, comp_closure = component_closures g in
  Array.init n (fun v -> comp_closure.(r.comp_of.(v)))
