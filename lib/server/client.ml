type t = { fd : Unix.file_descr; mutable version : int }

type progress = { sim_time : float; classes : int; bytes : int }

let negotiated_version t = t.version

let connect ?(version = Wire.protocol_version) addr_string =
  match Addr.parse addr_string with
  | Error m -> Error m
  | Ok addr -> (
      match Addr.connect addr with
      | Error m -> Error m
      | Ok fd -> (
          match
            Wire.write_message fd (Wire.Hello version);
            Wire.read_message fd
          with
          | Ok (Wire.Hello_ok v) -> Ok { fd; version = v }
          | Ok (Wire.Protocol_error m) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error ("server refused handshake: " ^ m)
          | Ok _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error "unexpected handshake reply"
          | Error `Closed ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error "server closed the connection during handshake"
          | Error (`Malformed m) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error ("malformed handshake reply: " ^ m)
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error (addr_string ^ ": " ^ Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type submit_error =
  [ `Rejected of string * float
  | `Job_failed of string
  | `Conn of string ]

let read_or_conn t =
  match Wire.read_message t.fd with
  | Ok msg -> Ok msg
  | Error `Closed -> Error (`Conn "server closed the connection")
  | Error (`Malformed m) -> Error (`Conn ("malformed server frame: " ^ m))
  | exception Unix.Unix_error (e, _, _) -> Error (`Conn (Unix.error_message e))

let submit_ex t ?(on_progress = fun (_ : progress) -> ())
    ?(on_verdict = fun ~key:(_ : string) ~ok:(_ : bool) -> ())
    ?(on_accepted = fun (_ : string) -> ()) ?(seeds = []) spec =
  (* Non-JVM frontends are v4 vocabulary; unlike seeds there is no safe
     fallback — an old daemon would misread the payload as a class pool —
     so refuse locally with a clear message instead of submitting. *)
  if spec.Wire.frontend <> "jvm" && t.version < 4 then
    Error
      (`Conn
         (Printf.sprintf
            "frontend %S requires protocol version 4 (server negotiated %d)"
            spec.Wire.frontend t.version))
  else
  (* A pre-v5 daemon cannot decode the trailing trace context; strip it so
     the encoded frame is exactly what that vintage expects.  The job loses
     distributed attribution, never correctness. *)
  let spec = if t.version < 5 then { spec with Wire.trace_ctx = None } else spec in
  let request =
    (* Seeded submission is v3 vocabulary; on an older negotiated version
       the seeds cannot be expressed — fall back to a plain Submit (the
       verdicts are then merely re-paid, never wrong). *)
    if seeds <> [] && t.version >= 3 then Wire.Submit_seeded { spec; seeds }
    else Wire.Submit spec
  in
  match Wire.write_message t.fd request with
  | exception Unix.Unix_error (e, _, _) -> Error (`Conn (Unix.error_message e))
  | () -> (
      (* First the admission reply... *)
      match read_or_conn t with
      | Error _ as e -> e
      | Ok (Wire.Rejected { reason; retry_after }) ->
          Error (`Rejected (reason, retry_after))
      | Ok (Wire.Protocol_error m) -> Error (`Conn ("protocol error: " ^ m))
      | Ok (Wire.Accepted job_id) ->
          on_accepted job_id;
          (* ...then the job's event stream up to its terminal frame. *)
          let rec wait () =
            match read_or_conn t with
            | Error _ as e -> e
            | Ok (Wire.Progress p) when p.job_id = job_id ->
                on_progress
                  { sim_time = p.sim_time; classes = p.classes; bytes = p.bytes };
                wait ()
            | Ok (Wire.Verdict v) when v.job_id = job_id ->
                on_verdict ~key:v.key ~ok:v.ok;
                wait ()
            | Ok (Wire.Result r) when r.job_id = job_id ->
                Ok (job_id, r.stats, r.pool_bytes)
            | Ok (Wire.Job_failed { job_id = id; reason }) when id = job_id ->
                Error (`Job_failed reason)
            | Ok (Wire.Protocol_error m) -> Error (`Conn ("protocol error: " ^ m))
            | Ok _ -> wait ()  (* frames for other jobs on a shared connection *)
          in
          wait ()
      | Ok _ -> Error (`Conn "unexpected reply to submit"))

let submit t ?on_progress ?on_verdict ?on_accepted ?seeds spec =
  match submit_ex t ?on_progress ?on_verdict ?on_accepted ?seeds spec with
  | Ok _ as ok -> ok
  | Error (`Rejected (reason, retry_after)) ->
      Error
        (if retry_after > 0. then
           Printf.sprintf "rejected: %s (retry in %.1fs)" reason retry_after
         else "rejected: " ^ reason)
  | Error (`Job_failed reason) -> Error ("job failed: " ^ reason)
  | Error (`Conn m) -> Error m

let read_or_error t =
  match read_or_conn t with Ok _ as ok -> ok | Error (`Conn m) -> Error m

let stats t =
  if t.version < 2 then Error "server is too old for stats (protocol < 2)"
  else
    match Wire.write_message t.fd Wire.Stats_request with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | () ->
        let rec wait () =
          match read_or_error t with
          | Error _ as e -> e
          | Ok (Wire.Stats_reply s) -> Ok s
          | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
          | Ok _ -> wait ()  (* frames for jobs on a shared connection *)
        in
        wait ()

type trace_dump = {
  td_node : string;
  td_epoch : float;
  td_server_now : float;
  td_dropped : int;
  td_events : Lbr_obs.Trace.event list;
}

let trace_dump t =
  if t.version < 5 then Error "server is too old for trace dumps (protocol < 5)"
  else
    match Wire.write_message t.fd Wire.Trace_dump_request with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | () ->
        let rec wait () =
          match read_or_error t with
          | Error _ as e -> e
          | Ok (Wire.Trace_dump_reply { node; epoch; server_now; dropped; events }) ->
              Ok
                {
                  td_node = node;
                  td_epoch = epoch;
                  td_server_now = server_now;
                  td_dropped = dropped;
                  td_events = events;
                }
          | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
          | Ok _ -> wait ()
        in
        wait ()

let metrics_dump t =
  if t.version < 5 then Error "server is too old for metrics dumps (protocol < 5)"
  else
    match Wire.write_message t.fd Wire.Metrics_dump_request with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | () ->
        let rec wait () =
          match read_or_error t with
          | Error _ as e -> e
          | Ok (Wire.Metrics_dump_reply { node; dump }) -> Ok (node, dump)
          | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
          | Ok _ -> wait ()
        in
        wait ()

let cancel t job_id =
  match Wire.write_message t.fd (Wire.Cancel job_id) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () ->
      let rec wait () =
        match read_or_error t with
        | Error _ as e -> e
        | Ok (Wire.Cancel_ok { job_id = id; found }) when id = job_id -> Ok found
        | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
        | Ok _ -> wait ()
      in
      wait ()
