type t = { fd : Unix.file_descr; mutable version : int }

type progress = { sim_time : float; classes : int; bytes : int }

let negotiated_version t = t.version

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX path);
    Wire.write_message fd (Wire.Hello Wire.protocol_version);
    Wire.read_message fd
  with
  | Ok (Wire.Hello_ok v) -> Ok { fd; version = v }
  | Ok (Wire.Protocol_error m) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error ("server refused handshake: " ^ m)
  | Ok _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error "unexpected handshake reply"
  | Error `Closed ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error "server closed the connection during handshake"
  | Error (`Malformed m) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error ("malformed handshake reply: " ^ m)
  | exception (Unix.Unix_error (e, _, _)) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (path ^ ": " ^ Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_or_error t =
  match Wire.read_message t.fd with
  | Ok msg -> Ok msg
  | Error `Closed -> Error "server closed the connection"
  | Error (`Malformed m) -> Error ("malformed server frame: " ^ m)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let submit t ?(on_progress = fun (_ : progress) -> ()) spec =
  match Wire.write_message t.fd (Wire.Submit spec) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
      (* First the admission reply... *)
      match read_or_error t with
      | Error _ as e -> e
      | Ok (Wire.Rejected { reason; retry_after }) ->
          Error
            (if retry_after > 0. then
               Printf.sprintf "rejected: %s (retry in %.1fs)" reason retry_after
             else "rejected: " ^ reason)
      | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
      | Ok (Wire.Accepted job_id) ->
          (* ...then the job's event stream up to its terminal frame. *)
          let rec wait () =
            match read_or_error t with
            | Error _ as e -> e
            | Ok (Wire.Progress p) when p.job_id = job_id ->
                on_progress
                  { sim_time = p.sim_time; classes = p.classes; bytes = p.bytes };
                wait ()
            | Ok (Wire.Result r) when r.job_id = job_id ->
                Ok (job_id, r.stats, r.pool_bytes)
            | Ok (Wire.Job_failed { job_id = id; reason }) when id = job_id ->
                Error (Printf.sprintf "job %s failed: %s" id reason)
            | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
            | Ok _ -> wait ()  (* frames for other jobs on a shared connection *)
          in
          wait ()
      | Ok _ -> Error "unexpected reply to submit")

let stats t =
  if t.version < 2 then Error "server is too old for stats (protocol < 2)"
  else
    match Wire.write_message t.fd Wire.Stats_request with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | () ->
        let rec wait () =
          match read_or_error t with
          | Error _ as e -> e
          | Ok (Wire.Stats_reply s) -> Ok s
          | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
          | Ok _ -> wait ()  (* frames for jobs on a shared connection *)
        in
        wait ()

let cancel t job_id =
  match Wire.write_message t.fd (Wire.Cancel job_id) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () ->
      let rec wait () =
        match read_or_error t with
        | Error _ as e -> e
        | Ok (Wire.Cancel_ok { job_id = id; found }) when id = job_id -> Ok found
        | Ok (Wire.Protocol_error m) -> Error ("protocol error: " ^ m)
        | Ok _ -> wait ()
      in
      wait ()
