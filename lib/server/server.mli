(** The [lbr-serve] daemon: a Unix-domain-socket front end over
    {!Scheduler} + {!Runner}.

    One accept loop (a thread polling with [select] so it can notice a
    stop request), one handler thread per connection.  A connection must
    open with [Hello]; after the [Hello_ok] reply the client may pipeline
    [Submit] and [Cancel] frames.  Replies and streamed job events share
    the connection under a per-connection write lock.  A malformed frame
    gets a [Protocol_error] reply and the connection is closed; a clean
    EOF just closes it (outstanding jobs keep running — results for them
    are dropped, which is fine because they are journaled).

    Lifecycle: {!start} binds the socket (recovering journaled jobs
    first), {!stop} stops admitting, drains in-flight jobs — every
    accepted job reaches a terminal state and its Result frame is written
    — then closes every socket.  {!run} is the blocking CLI entry: it
    serves until the {!Shutdown} flag fires, then performs the same
    drain. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains *)
  queue_depth : int;  (** max jobs waiting (backpressure past this) *)
  journal_dir : string option;  (** enables WAL + crash recovery *)
}

type t

val start : config -> t
(** Bind and serve in background threads.  Raises [Failure] if the socket
    path is in use by a live daemon (a stale socket file left by a crash
    is detected by a probe connect and replaced). *)

val recovered : t -> int
(** How many journaled in-flight jobs {!start} resumed. *)

val scheduler : t -> Scheduler.t

val stop : t -> unit
(** Graceful drain as described above.  Idempotent, blocking. *)

val run : ?shutdown:Shutdown.t -> config -> unit
(** [start], then block until SIGINT/SIGTERM (or [Shutdown.request] on the
    provided handle), then {!stop}. *)
