(** The daemon front end: an accept loop + per-connection wire protocol
    over a {!Addr} listener (Unix socket or TCP), serving any [backend] —
    the {!Scheduler} for [lbr-reduce serve], the cluster coordinator for
    [lbr-reduce coordinate].

    One accept loop (a thread polling with [select] so it can notice a
    stop request), one handler thread per connection.  A connection must
    open with [Hello]; after the [Hello_ok] reply the client may pipeline
    [Submit]/[Submit_seeded] and [Cancel] frames.  Replies and streamed
    job events share the connection under a per-connection write lock.
    The negotiated version gates what the server sends: [Verdict] frames
    (v3) are dropped, not sent, on v1/v2 connections, so old clients
    interoperate with a v3 daemon unchanged.  A malformed frame gets a
    [Protocol_error] reply and the connection is closed; a clean EOF just
    closes it (outstanding jobs keep running — results for them are
    dropped, which is fine because they are journaled).

    Lifecycle: {!start} binds the listener (recovering journaled jobs
    first), {!stop} stops admitting, drains in-flight jobs — every
    accepted job reaches a terminal state and its Result frame is written
    — then closes every socket.  {!run} is the blocking CLI entry: it
    serves until the {!Shutdown} flag fires, then performs the same
    drain. *)

type backend = {
  b_submit :
    on_event:(string -> Scheduler.event -> unit) ->
    seeds:(string * bool) list ->
    Wire.spec ->
    (string, [ `Queue_full of float | `Draining ]) result;
      (** must not invoke [on_event] synchronously (the wire layer holds
          the connection's write lock across admission) *)
  b_cancel : string -> bool;
  b_stats : unit -> Wire.daemon_stats;
  b_drain : unit -> unit;  (** stop admitting; block until in-flight work is done *)
}

type config = {
  listen : Addr.t;
  jobs : int;  (** worker domains *)
  queue_depth : int;  (** max jobs waiting (backpressure past this) *)
  journal_dir : string option;  (** enables WAL + crash recovery *)
}

type t

val start : config -> t
(** Build a scheduler + runner, recover its journal, bind and serve in
    background threads.  Raises [Failure] if the address is in use by a
    live daemon (a stale Unix socket file left by a crash is detected by
    a probe connect and replaced; a TCP port in use is never "replaced" —
    see {!Addr.listen}). *)

val start_backend :
  ?scheduler:Scheduler.t ->
  ?journal:Journal.t ->
  ?recovered:int ->
  listen:Addr.t ->
  backend ->
  t
(** Serve an arbitrary backend (the coordinator).  The optional scheduler
    and journal are only adopted for introspection/cleanup; the backend
    owns the real work. *)

val recovered : t -> int
(** How many journaled in-flight jobs {!start} resumed. *)

val scheduler : t -> Scheduler.t
(** Raises [Invalid_argument] on a backend-served daemon without one. *)

val bound_addr : t -> Addr.t
(** The listening address with the kernel-chosen port filled in — what to
    dial after starting a TCP daemon on port 0. *)

val stop : t -> unit
(** Graceful drain as described above.  Idempotent, blocking. *)

val abort : t -> unit
(** Simulate a crash: close the listener and every connection immediately,
    with no drain and no terminal frames.  In-flight jobs keep running
    detached on their domains; their events go nowhere.  For failover
    tests — production shutdown is {!stop}. *)

val run : ?shutdown:Shutdown.t -> config -> unit
(** [start], then block until SIGINT/SIGTERM (or [Shutdown.request] on the
    provided handle), then {!stop}. *)
