(** Write-ahead journal for the reduction service.

    Layout: one directory per job under the journal root.

    {v
    <root>/<job-id>/spec        — Wire.spec_to_string bytes (written
                                  tmp+rename, so it is present iff whole)
    <root>/<job-id>/preds.log   — one line per completed predicate
                                  evaluation: "<32-hex-digest> 0|1\n",
                                  appended and flushed before the result
                                  is used
    <root>/<job-id>/counters    — phase timing counters of the run
                                  (one "name calls seconds minor_words"
                                  line per phase), written at completion
    <root>/<job-id>/done        — terminal marker (empty)
    <root>/<job-id>/cancelled   — terminal marker (empty)
    <root>/<job-id>/failed      — terminal marker (first line: reason)
    v}

    A daemon killed mid-reduction leaves a job directory with a [spec]
    and a partial [preds.log] but no terminal marker; {!pending} finds
    exactly those on restart and {!replay} rebuilds the memo that lets
    the resumed run skip every predicate execution it already paid for.
    A torn final line in [preds.log] (the crash happened mid-append) is
    ignored, not fatal. *)

type t

val open_dir : string -> t
(** Create the root directory if needed.  Raises [Unix.Unix_error] /
    [Sys_error] if it cannot be created or is not writable. *)

val dir : t -> string

val record_job : t -> id:string -> spec:string -> unit
(** WAL the admission of a job.  The spec file is written to a temp name
    and renamed, so a crash can never leave a torn spec. *)

val append_pred : t -> id:string -> key:string -> bool -> unit
(** Append one completed predicate evaluation and flush it to the OS —
    after this returns, a [kill -9] cannot lose the entry. *)

val record_counters : t -> id:string -> contents:string -> unit
(** Write the job's [counters] file (atomic tmp+rename): the per-job phase
    timing delta ({!Lbr_harness.Counters.serialize} lines), written when the
    job finishes running, before its terminal marker. *)

val mark_done : t -> id:string -> unit
val mark_cancelled : t -> id:string -> unit
val mark_failed : t -> id:string -> reason:string -> unit

val pending : t -> (string * string) list
(** [(id, spec_bytes)] of journaled jobs with no terminal marker, in
    lexicographic id order (admission order for the scheduler's zero-padded
    ids).  Directories with an unreadable or missing spec are skipped. *)

val replay : t -> id:string -> (string, bool) Hashtbl.t
(** The completed predicate evaluations of a job, keyed by digest.
    Malformed lines are skipped. *)

val max_job_number : t -> int
(** Largest numeric suffix among [job-N] directories (0 if none) — lets a
    restarted scheduler continue the id sequence without collisions. *)

val close : t -> unit
(** Close any open [preds.log] handles. *)
