(** Write-ahead journal for the reduction service.

    Layout: one directory per job under the journal root.

    {v
    <root>/<job-id>/spec        — Wire.spec_to_string bytes (written
                                  tmp+rename, so it is present iff whole)
    <root>/<job-id>/preds.log   — one line per completed predicate
                                  evaluation, appended and flushed before
                                  the result is used.  Two line versions:
                                    v1: "<32-hex-digest> 0|1\n"
                                    v2: "<32-hex-digest> 0|1 <us> <retries>\n"
                                  where <us> is the evaluation's wall
                                  latency in microseconds and <retries>
                                  how many extra oracle attempts it took.
                                  Old (v1) journals replay unchanged.
    <root>/<job-id>/counters    — phase timing counters of the run
                                  (one "name calls seconds minor_words"
                                  line per phase), written at completion
    <root>/<job-id>/done        — terminal marker (empty)
    <root>/<job-id>/cancelled   — terminal marker (empty)
    <root>/<job-id>/failed      — terminal marker (first line: reason)
    v}

    A daemon killed mid-reduction leaves a job directory with a [spec]
    and a partial [preds.log] but no terminal marker; {!pending} finds
    exactly those on restart and {!replay} rebuilds the memo that lets
    the resumed run skip every predicate execution it already paid for.
    A torn final line in [preds.log] (the crash happened mid-append) is
    ignored, not fatal. *)

type t

val open_dir : string -> t
(** Create the root directory if needed.  Raises [Unix.Unix_error] /
    [Sys_error] if it cannot be created or is not writable. *)

val dir : t -> string

val record_job : t -> id:string -> spec:string -> unit
(** WAL the admission of a job.  The spec file is written to a temp name
    and renamed, so a crash can never leave a torn spec. *)

val append_pred :
  t -> id:string -> key:string -> ?latency:float -> ?retries:int -> bool -> unit
(** Append one completed predicate evaluation and flush it to the OS —
    after this returns, a [kill -9] cannot lose the entry.  With
    [latency] (seconds; [retries] defaults to 0) the v2 line format is
    written, letting [lbr-reduce top --journal] reconstruct latency
    histograms post-mortem; without it the v1 format, byte-identical to
    what older daemons wrote. *)

val record_counters : t -> id:string -> contents:string -> unit
(** Write the job's [counters] file (atomic tmp+rename): the per-job phase
    timing delta ({!Lbr_harness.Counters.serialize} lines), written when the
    job finishes running, before its terminal marker. *)

val mark_done : t -> id:string -> unit
val mark_cancelled : t -> id:string -> unit
val mark_failed : t -> id:string -> reason:string -> unit

val pending : t -> (string * string) list
(** [(id, spec_bytes)] of journaled jobs with no terminal marker, in
    lexicographic id order (admission order for the scheduler's zero-padded
    ids).  Directories with an unreadable or missing spec are skipped. *)

val replay : t -> id:string -> (string, bool) Hashtbl.t
(** The completed predicate evaluations of a job, keyed by digest.
    Malformed lines are skipped; v1 and v2 lines both count. *)

type verdict = {
  v_key : string;
  v_ok : bool;
  v_latency : float option;  (** seconds; [None] on v1 lines *)
  v_retries : int option;  (** [None] on v1 lines *)
}

val verdicts : t -> id:string -> verdict list
(** Every parseable verdict line of a job, in append order — the raw
    material for post-mortem latency histograms.  Empty if the job has no
    predicate log. *)

val jobs : t -> string list
(** Every job directory in the journal (terminal or not), in id order. *)

val max_job_number : t -> int
(** Largest numeric suffix among [job-N] directories (0 if none) — lets a
    restarted scheduler continue the id sequence without collisions. *)

val close : t -> unit
(** Close any open [preds.log] handles. *)
