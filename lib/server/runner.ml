module Experiment = Lbr_harness.Experiment
module Oracle = Lbr_runtime.Oracle
module Serialize = Lbr_jvm.Serialize
module Tool = Lbr_decompiler.Tool

(* Map a 32-hex-char digest onto an assignment over variables 0..127:
   hex char [i] contributes its 4 bits at positions [4i .. 4i+3].  The
   mapping is injective, so an oracle memo keyed on the assignment is
   exactly a memo keyed on the digest. *)
let key_assignment key =
  let vars = ref [] in
  String.iteri
    (fun i c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Runner: non-hex digest key"
      in
      for b = 0 to 3 do
        if v land (1 lsl b) <> 0 then vars := (i * 4) + b :: !vars
      done)
    key;
  Lbr_logic.Assignment.of_list !vars

let resolve_tool name pool =
  match name with
  | "" -> (
      match List.find_opt (fun t -> Tool.is_buggy_on t pool) Tool.all with
      | Some t -> Ok t
      | None -> Error "no tool is buggy on this pool")
  | name -> (
      match List.find_opt (fun t -> t.Tool.name = name) Tool.all with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unknown tool %S" name))

(* Non-JVM frontends run through the generic frontend driver.  There is no
   out-of-process tool, hence no oracle: the predicate is the frontend's
   own in-process bridge, so crash/retry accounting is structurally zero
   and [tool_executions] is exactly the fresh (non-replayed) runs.  The
   spec's [tool] field carries the frontend's predicate spec, and the
   result's classes0/1 slots carry its item counts. *)
let reduce_frontend (ctx : Scheduler.runner_ctx) (spec : Wire.spec) =
  match Lbr_frontend.Registry.find spec.frontend with
  | Error _ as e -> e
  | Ok packed -> (
      match spec.strategy with
      | Experiment.Jreduce | Experiment.Lossy_first | Experiment.Lossy_last ->
          Error
            (Printf.sprintf "frontend %S only supports the gbr strategy"
               spec.frontend)
      | Experiment.Gbr -> (
          let evaluate ~key thunk =
            match Hashtbl.find_opt ctx.replay key with
            | Some cached -> Lbr_frontend.Run.Replayed cached
            | None ->
                let t0 = Unix.gettimeofday () in
                let ok = thunk () in
                ctx.record ~key ~ok ~latency:(Unix.gettimeofday () -. t0) ~retries:0;
                Lbr_frontend.Run.Fresh ok
          in
          let hooks =
            {
              Lbr_frontend.Run.on_improvement = Some ctx.progress;
              should_stop = Some ctx.should_stop;
              evaluate = Some evaluate;
              peek = Some (fun ~key -> Hashtbl.find_opt ctx.replay key);
            }
          in
          match
            try
              Lbr_frontend.Run.reduce_text ~hooks packed ~text:spec.pool_bytes
                ~spec:spec.tool
            with Lbr_frontend.Run.Cancelled -> raise Experiment.Cancelled
          with
          | Error _ as e -> e
          | Ok (outcome, printed) ->
              let stats =
                {
                  Wire.ok = outcome.ok;
                  predicate_runs = outcome.predicate_runs;
                  replayed_runs = outcome.replayed_runs;
                  tool_executions = outcome.predicate_runs - outcome.replayed_runs;
                  oracle_retries = 0;
                  oracle_crashes = 0;
                  sim_time = outcome.sim_time;
                  wall_time = outcome.wall_time;
                  classes0 = outcome.items0;
                  classes1 = outcome.items1;
                  bytes0 = outcome.bytes0;
                  bytes1 = outcome.bytes1;
                }
              in
              Ok (stats, printed)))

let reduce_jvm (ctx : Scheduler.runner_ctx) (spec : Wire.spec) =
  match Serialize.of_bytes spec.pool_bytes with
  | Error m -> Error ("undecodable pool: " ^ m)
  | Ok pool -> (
      match resolve_tool spec.tool pool with
      | Error _ as e -> e
      | Ok tool -> (
          match Tool.errors tool pool with
          | [] ->
              Error (Printf.sprintf "tool %s is not buggy on this pool" tool.Tool.name)
          | baseline_errors ->
              let instance =
                {
                  Lbr_harness.Corpus.instance_id = ctx.job_id;
                  benchmark =
                    { Lbr_harness.Corpus.bench_id = ctx.job_id; seed = 0; pool };
                  tool;
                  baseline_errors;
                }
              in
              (* The oracle's black box is whatever thunk the current
                 evaluation handed us; single-threaded per job, so a plain
                 ref is safe. *)
              let current : (unit -> bool) ref = ref (fun () -> false) in
              let config =
                {
                  Oracle.default_config with
                  crash_policy = spec.crash_policy;
                  retries = spec.retries;
                  transient = (function Tool.Transient_failure _ -> true | _ -> false);
                }
              in
              let oracle = Oracle.make ~config ~name:ctx.job_id (fun _ -> !current ()) in
              let evaluate ~key thunk =
                match Hashtbl.find_opt ctx.replay key with
                | Some cached -> Experiment.Replayed cached
                | None ->
                    current := thunk;
                    let retries0 = Oracle.retries_used oracle in
                    let t0 = Unix.gettimeofday () in
                    let ok = Oracle.run oracle (key_assignment key) in
                    ctx.record ~key ~ok
                      ~latency:(Unix.gettimeofday () -. t0)
                      ~retries:(Oracle.retries_used oracle - retries0);
                    Experiment.Fresh ok
              in
              let hooks =
                {
                  Experiment.on_improvement = Some ctx.progress;
                  should_stop = Some ctx.should_stop;
                  evaluate = Some evaluate;
                  peek = Some (fun ~key -> Hashtbl.find_opt ctx.replay key);
                }
              in
              let outcome, final = Experiment.run_with ~hooks spec.strategy instance in
              let stats =
                {
                  Wire.ok = outcome.ok;
                  predicate_runs = outcome.predicate_runs;
                  replayed_runs = outcome.replayed_runs;
                  tool_executions = Oracle.executions oracle;
                  oracle_retries = Oracle.retries_used oracle;
                  oracle_crashes = Oracle.crashes oracle;
                  sim_time = outcome.sim_time;
                  wall_time = outcome.wall_time;
                  classes0 = outcome.classes0;
                  classes1 = outcome.classes1;
                  bytes0 = outcome.bytes0;
                  bytes1 = outcome.bytes1;
                }
              in
              Ok (stats, Serialize.to_bytes final)))

let reduce ctx (spec : Wire.spec) =
  match spec.Wire.frontend with
  | "" | "jvm" -> reduce_jvm ctx spec
  | _ -> reduce_frontend ctx spec
