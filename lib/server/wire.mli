(** The reduction service's wire protocol.

    Length-prefixed binary frames over a stream socket — a Unix domain
    socket or, since v3, a TCP connection (see {!Addr}); the framing is
    byte-identical on both transports.  Every integer is big-endian,
    matching [Lbr_jvm.Serialize]'s conventions (the LBRC pool container
    is the payload of submissions and results).

    {v
    frame    := len(u32) payload                  — len = |payload|, ≤ 64 MiB
    payload  := kind(u8) body
    str16    := len(u16) bytes
    bytes32  := len(u32) bytes
    f64      := IEEE-754 bits, 8 bytes big-endian
    v}

    A connection starts with version negotiation: the client sends
    [Hello v] (the highest protocol version it speaks) and the server
    answers [Hello_ok (min v protocol_version)] — or [Protocol_error] and
    closes if the versions share no common ground.  After that the client
    may pipeline [Submit] and [Cancel] requests; the server interleaves
    [Accepted]/[Rejected]/[Cancel_ok] replies with streamed [Progress]
    events and a terminal [Result]/[Job_failed] per job.

    Decoding is total: malformed bytes (bad magic kind, truncated body,
    oversized length, trailing garbage) come back as [Error _] — never an
    exception — because the daemon reads these frames from untrusted
    clients. *)

val protocol_version : int
(** Currently [5].  v2 added [Stats_request]/[Stats_reply]; v3 added
    [Submit_seeded]/[Verdict] (the cluster coordinator's vocabulary) and
    TCP listeners; v4 added the spec's [frontend] tag, an optional
    trailing str16 at the very end of [Submit]/[Submit_seeded] payloads
    written only for non-JVM frontends — JVM frames are byte-identical
    to v3, and v3 journals replay with [frontend = "jvm"].  v5 adds
    distributed observability: [Submit]/[Submit_seeded] may end with a
    trace context (then the frontend tag is always written, followed by
    trace id and parent span id), [Verdict] may end with the same
    context, and [Trace_dump_request]/[Metrics_dump_request] pull a
    node's span ring and metric registry.  Every optional v5 field is
    written only when present, so context-free v5 frames are
    byte-identical to v4.  A peer on an older version negotiates down
    during the handshake and simply never sends — or receives — the
    newer frames: a v5 daemon strips contexts on < 5 connections,
    rejects non-JVM submissions on < 4, and gates [Verdict] streaming
    on ≥ 3, so old clients interoperate unchanged. *)

val max_frame : int
(** Hard ceiling on a frame payload (64 MiB); larger lengths are rejected
    during {!read_message} without allocating. *)

type priority = Normal | High

type spec = {
  tool : string;  (** decompiler name; [""] = first buggy one server-side *)
  strategy : Lbr_harness.Experiment.strategy;
  priority : priority;
  crash_policy : Lbr_runtime.Oracle.crash_policy;
      (** how the job's oracle classifies tool crashes *)
  retries : int;  (** oracle retries for transient tool failures *)
  pool_bytes : string;
      (** the serialized workload to reduce: an LBRC class pool for the
          JVM frontend, the frontend's own text format otherwise *)
  frontend : string;
      (** which {!Lbr_frontend.Registry} frontend interprets
          [pool_bytes]; ["jvm"] is the v3-compatible default.  For
          non-JVM frontends [tool] carries the frontend's predicate
          spec, and the result's [stats.classes0]/[classes1] carry the
          frontend's item counts. *)
  trace_ctx : Lbr_obs.Trace.Context.t option;
      (** v5: the job's distributed trace context.  Minted by whichever
          node admits the job first (coordinator or scheduler), carried
          with the spec everywhere it goes — wire, journal, failover
          reseeds — and installed around the runner so every span the
          job records, on any node, parents under the same span id.
          Never part of the verdict cache key. *)
}

type stats = {
  ok : bool;
  predicate_runs : int;
  replayed_runs : int;  (** predicate runs answered from the journal *)
  tool_executions : int;  (** actual black-box attempts, incl. retries *)
  oracle_retries : int;
  oracle_crashes : int;
  sim_time : float;
  wall_time : float;
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
}

type job_stat = {
  js_id : string;
  js_running : bool;  (** [false] = still queued *)
  js_best : (float * int * int) option;
      (** latest improvement's (sim_time, classes, bytes); [None] before
          the first one *)
}

type daemon_stats = {
  queued_jobs : int;
  running_jobs : int;
  job_stats : job_stat list;  (** every non-terminal job, id order *)
  oracle_queries : int;  (** process-wide, across all jobs so far *)
  oracle_memo_hits : int;
  uptime : float;  (** seconds since the daemon started *)
  metrics_text : string;  (** Prometheus text-format metric snapshot *)
}

type message =
  | Hello of int  (** client → server: highest version the client speaks *)
  | Hello_ok of int  (** server → client: negotiated version *)
  | Submit of spec
  | Submit_seeded of { spec : spec; seeds : (string * bool) list }
      (** v3, client → server: submit plus pre-paid predicate verdicts
          (digest key, outcome) that seed the job's replay table — the
          coordinator's failover and shared-cache path.  Replayed
          verdicts count in [stats.replayed_runs], not tool executions. *)
  | Accepted of string  (** job id *)
  | Rejected of { reason : string; retry_after : float }
      (** backpressure: the queue is full; retry in [retry_after] seconds *)
  | Cancel of string
  | Cancel_ok of { job_id : string; found : bool }
  | Progress of { job_id : string; sim_time : float; classes : int; bytes : int }
  | Result of { job_id : string; stats : stats; pool_bytes : string }
  | Job_failed of { job_id : string; reason : string }
  | Protocol_error of string
  | Stats_request  (** v2, client → server: live introspection snapshot *)
  | Stats_reply of daemon_stats  (** v2, server → client *)
  | Verdict of {
      job_id : string;
      key : string;
      ok : bool;
      ctx : Lbr_obs.Trace.Context.t option;
    }
      (** v3, server → client, only on connections that negotiated ≥ 3:
          one frame per {e fresh} predicate evaluation, emitted after the
          verdict is journaled.  The coordinator folds these into the
          cluster-wide verdict cache as they happen, so a job's paid
          executions survive its worker.  [ctx] (v5, trailing, written
          only when present and the connection negotiated ≥ 5) echoes
          the job's trace context so the receiver can attribute the
          evaluation to the right distributed trace. *)
  | Trace_dump_request
      (** v5, client → server: ask for the node's span rings. *)
  | Trace_dump_reply of {
      node : string;  (** the daemon's self-chosen lane label *)
      epoch : float;  (** absolute second its trace [ts = 0] maps to *)
      server_now : float;  (** its wall clock when the dump was taken —
          the merger pairs this with its own request/reply timestamps to
          estimate clock skew *)
      dropped : int;
      events : Lbr_obs.Trace.event list;
    }
  | Metrics_dump_request
      (** v5, client → server: ask for the node's metric registry. *)
  | Metrics_dump_reply of { node : string; dump : Lbr_obs.Metrics.dump }
      (** The registry snapshot the coordinator's federation loop merges
          ({!Lbr_obs.Metrics.merge_dumps}). *)

(* ------------------------------------------------------------------ *)

val encode : message -> string
(** Full frame: length prefix + payload. *)

val decode_payload : string -> (message, string) result
(** Parse one payload (no length prefix).  Total: any input produces
    [Ok] or [Error], never an exception. *)

val write_message : Unix.file_descr -> message -> unit
(** Write one frame; may raise [Unix.Unix_error] (e.g. [EPIPE]) if the
    peer is gone. *)

val read_message :
  Unix.file_descr -> (message, [ `Closed | `Malformed of string ]) result
(** Read one frame.  [`Closed] on clean EOF at a frame boundary;
    [`Malformed] on truncation mid-frame, oversized length, or a payload
    that does not decode. *)

(* ------------------------------------------------------------------ *)

val spec_to_string : spec -> string
(** Standalone spec serialization — the same bytes as a [Submit] body,
    reused by the journal to persist accepted jobs. *)

val spec_of_string : string -> (spec, string) result

val strategy_code : Lbr_harness.Experiment.strategy -> int
val strategy_of_code : int -> Lbr_harness.Experiment.strategy option

val trace_events_to_string : Lbr_obs.Trace.event list -> string
(** Standalone trace-event-list serialization — byte-identical to the
    events section of a [Trace_dump_reply] payload.  Reused by
    [trace-merge]'s .tdump capture files. *)

val trace_events_of_string : string -> (Lbr_obs.Trace.event list, string) result
(** Total: [Ok] or [Error], never an exception. *)
