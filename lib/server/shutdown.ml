type t = {
  flag : bool Atomic.t;
  name : string option Atomic.t;
  drained : bool Atomic.t;
  mutex : Mutex.t;
  mutable actions : (unit -> unit) list;  (* reversed registration order *)
}

let request t = Atomic.set t.flag true

let fire t name =
  ignore (Atomic.compare_and_set t.name None (Some name) : bool);
  request t

let install () =
  let t =
    {
      flag = Atomic.make false;
      name = Atomic.make None;
      drained = Atomic.make false;
      mutex = Mutex.create ();
      actions = [];
    }
  in
  let hook signal name =
    try Sys.set_signal signal (Sys.Signal_handle (fun _ -> fire t name))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  hook Sys.sigint "INT";
  hook Sys.sigterm "TERM";
  t

let requested t = Atomic.get t.flag
let signal_name t = Atomic.get t.name

let on_drain t f =
  Mutex.lock t.mutex;
  t.actions <- f :: t.actions;
  Mutex.unlock t.mutex

let run_drain t =
  if Atomic.compare_and_set t.drained false true then begin
    Mutex.lock t.mutex;
    let actions = List.rev t.actions in
    Mutex.unlock t.mutex;
    List.iter (fun f -> try f () with _ -> ()) actions
  end
