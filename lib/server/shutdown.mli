(** Graceful SIGINT / SIGTERM handling, shared by the daemon and the
    one-shot CLI.

    The signal handler only flips a flag — all real work (stop admitting,
    drain in-flight jobs, flush timelines, close sockets) happens in
    normal control flow: long-running loops poll {!requested} (the daemon
    via its accept-loop select timeout, the one-shot reducer via the
    experiment's [should_stop] hook) and then call {!run_drain}. *)

type t

val install : unit -> t
(** Install handlers for SIGINT and SIGTERM.  Safe to call when the
    signals are not supported (e.g. inside some test harnesses): failures
    to install are ignored and the flag can still be set with
    {!request}. *)

val requested : t -> bool
(** True once a signal arrived (or {!request} was called). *)

val request : t -> unit
(** Programmatic trigger — lets tests exercise the drain path without
    delivering real signals. *)

val signal_name : t -> string option
(** Which signal fired first ("INT" / "TERM"), if any. *)

val on_drain : t -> (unit -> unit) -> unit
(** Register a drain action.  Actions run in registration order. *)

val run_drain : t -> unit
(** Run the registered drain actions exactly once (subsequent calls are
    no-ops); exceptions from one action do not stop the rest. *)
