(** Client side of the reduction service protocol — used by
    [lbr-reduce submit] and the end-to-end tests.

    One connection, synchronous usage: {!connect} performs the
    [Hello]/[Hello_ok] handshake, {!submit} sends one job and blocks —
    streaming [Progress] frames to the callback — until its terminal
    [Result] or [Job_failed] frame arrives. *)

type t

type progress = { sim_time : float; classes : int; bytes : int }

val connect : string -> (t, string) result
(** Connect to the daemon's socket and negotiate the protocol version. *)

val negotiated_version : t -> int

val submit :
  t ->
  ?on_progress:(progress -> unit) ->
  Wire.spec ->
  (string * Wire.stats * string, string) result
(** [Ok (job_id, stats, reduced_pool_bytes)] once the job completes.
    [Error _] on rejection (backpressure/draining — the message includes
    the server's retry-after hint), job failure, or a broken/closed
    connection (e.g. the daemon drained and shut down mid-stream). *)

val cancel : t -> string -> (bool, string) result
(** Ask the server to cancel a job; [Ok found] echoes whether the server
    still knew a cancellable job by that id. *)

val stats : t -> (Wire.daemon_stats, string) result
(** One live introspection snapshot (queue depth, per-job best-so-far,
    oracle memo hit rate, Prometheus metrics text).  Requires negotiated
    protocol version ≥ 2. *)

val close : t -> unit
