(** Client side of the reduction service protocol — used by
    [lbr-reduce submit], the cluster coordinator's worker links, and the
    end-to-end tests.

    One connection, synchronous usage: {!connect} performs the
    [Hello]/[Hello_ok] handshake, {!submit} sends one job and blocks —
    streaming [Progress] (and, on v3 connections, [Verdict]) frames to
    the callbacks — until its terminal [Result] or [Job_failed] frame
    arrives. *)

type t

type progress = { sim_time : float; classes : int; bytes : int }

val connect : ?version:int -> string -> (t, string) result
(** Connect to a daemon and negotiate the protocol version.  The address
    is parsed by {!Addr.parse}: a Unix socket path or a TCP [host:port].
    [version] caps what the client offers (default
    {!Wire.protocol_version}) — tests use it to act as an old client. *)

val negotiated_version : t -> int

type submit_error =
  [ `Rejected of string * float  (** backpressure: reason, retry-after *)
  | `Job_failed of string  (** the server ran the job and it failed *)
  | `Conn of string  (** transport died — job outcome unknown *) ]

val submit_ex :
  t ->
  ?on_progress:(progress -> unit) ->
  ?on_verdict:(key:string -> ok:bool -> unit) ->
  ?on_accepted:(string -> unit) ->
  ?seeds:(string * bool) list ->
  Wire.spec ->
  (string * Wire.stats * string, submit_error) result
(** Like {!submit} but with a typed error, so a caller that owns retry
    policy (the cluster coordinator) can tell a dead worker ([`Conn] —
    fail over) from a job that genuinely failed ([`Job_failed] — report). *)

val submit :
  t ->
  ?on_progress:(progress -> unit) ->
  ?on_verdict:(key:string -> ok:bool -> unit) ->
  ?on_accepted:(string -> unit) ->
  ?seeds:(string * bool) list ->
  Wire.spec ->
  (string * Wire.stats * string, string) result
(** [Ok (job_id, stats, reduced_pool_bytes)] once the job completes.
    [Error _] on rejection (backpressure/draining — the message includes
    the server's retry-after hint), job failure, or a broken/closed
    connection (e.g. the daemon drained and shut down mid-stream).

    [on_accepted] fires with the server-side job id as soon as admission
    is confirmed — the handle a caller needs to {!cancel} from another
    connection.  [on_verdict] fires per fresh predicate evaluation
    (v3 servers only).  [seeds] ships already-paid verdicts with the
    submission ([Submit_seeded], v3); on a v2 connection they are
    silently dropped and the work is re-paid. *)

val cancel : t -> string -> (bool, string) result
(** Ask the server to cancel a job; [Ok found] echoes whether the server
    still knew a cancellable job by that id. *)

val stats : t -> (Wire.daemon_stats, string) result
(** One live introspection snapshot (queue depth, per-job best-so-far,
    oracle memo hit rate, Prometheus metrics text).  Requires negotiated
    protocol version ≥ 2. *)

type trace_dump = {
  td_node : string;  (** the daemon's lane label (its bound address) *)
  td_epoch : float;  (** absolute second its trace [ts = 0] maps to *)
  td_server_now : float;  (** its wall clock when the dump was taken *)
  td_dropped : int;
  td_events : Lbr_obs.Trace.event list;
}

val trace_dump : t -> (trace_dump, string) result
(** Pull the daemon's span rings ([Trace_dump_request], v5).  Capture
    [Trace.now]-style timestamps around the call and compare them with
    [td_server_now] to estimate clock skew. *)

val metrics_dump : t -> (string * Lbr_obs.Metrics.dump, string) result
(** Pull the daemon's metric registry ([Metrics_dump_request], v5) —
    [(node, dump)], mergeable with {!Lbr_obs.Metrics.merge_dumps}. *)

val close : t -> unit
