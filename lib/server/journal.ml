type t = {
  root : string;
  mutex : Mutex.t;
  logs : (string, out_channel) Hashtbl.t;  (* open preds.log handles *)
}

let mkdir_p path =
  let rec go path =
    if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let open_dir root =
  mkdir_p root;
  if not (Sys.is_directory root) then
    raise (Sys_error (root ^ ": journal path is not a directory"));
  { root; mutex = Mutex.create (); logs = Hashtbl.create 16 }

let dir t = t.root

(* Job ids become path components; reject anything that could escape the
   journal root (recovered ids come off the filesystem, but submitted ids
   could in principle be attacker-shaped). *)
let check_id id =
  let ok_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false in
  if id = "" || String.length id > 64 || not (String.for_all ok_char id) then
    invalid_arg ("Journal: unsafe job id " ^ String.escaped id)

let job_dir t id =
  check_id id;
  Filename.concat t.root id

let spec_file t id = Filename.concat (job_dir t id) "spec"
let preds_file t id = Filename.concat (job_dir t id) "preds.log"

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  flush oc;
  close_out oc;
  Sys.rename tmp path

let record_job t ~id ~spec =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      mkdir_p (job_dir t id);
      write_file_atomic (spec_file t id) spec)

let log_channel t id =
  match Hashtbl.find_opt t.logs id with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (preds_file t id)
      in
      Hashtbl.replace t.logs id oc;
      oc

(* Verdict line formats, distinguished by field count so old journals
   replay unchanged under new code:
     v1:  "<32-hex-digest> 0|1"
     v2:  "<32-hex-digest> 0|1 <latency-microseconds> <retries>"
   Both keep the verdict at byte 33, so every reader branches on the same
   offset. *)
let append_pred t ~id ~key ?latency ?(retries = 0) ok =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let oc = log_channel t id in
      output_string oc key;
      output_char oc ' ';
      output_char oc (if ok then '1' else '0');
      (match latency with
      | None -> ()
      | Some seconds ->
          let us = int_of_float (Float.max 0. (seconds *. 1e6) +. 0.5) in
          output_string oc (Printf.sprintf " %d %d" us retries));
      output_char oc '\n';
      (* flush to the OS: survives kill -9 (though not power loss) *)
      flush oc)

let close_log_locked t id =
  match Hashtbl.find_opt t.logs id with
  | Some oc ->
      Hashtbl.remove t.logs id;
      close_out_noerr oc
  | None -> ()

let mark t ~id ~marker ~contents =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      close_log_locked t id;
      mkdir_p (job_dir t id);
      write_file_atomic (Filename.concat (job_dir t id) marker) contents)

(* Not a terminal marker — [mark] closes the preds log, this must not. *)
let record_counters t ~id ~contents =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      mkdir_p (job_dir t id);
      write_file_atomic (Filename.concat (job_dir t id) "counters") contents)

let mark_done t ~id = mark t ~id ~marker:"done" ~contents:""
let mark_cancelled t ~id = mark t ~id ~marker:"cancelled" ~contents:""
let mark_failed t ~id ~reason = mark t ~id ~marker:"failed" ~contents:(reason ^ "\n")

let is_terminal t id =
  List.exists
    (fun m -> Sys.file_exists (Filename.concat (job_dir t id) m))
    [ "done"; "cancelled"; "failed" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let pending t =
  Sys.readdir t.root |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun id ->
         match check_id id with
         | exception Invalid_argument _ -> None
         | () ->
             if
               Sys.is_directory (Filename.concat t.root id)
               && Sys.file_exists (spec_file t id)
               && not (is_terminal t id)
             then
               match read_file (spec_file t id) with
               | spec -> Some (id, spec)
               | exception Sys_error _ -> None
             else None)

(* A verdict line of either version: 34 bytes exactly (v1) or a v2 line
   whose latency/retry tail starts right after the verdict.  Torn last
   lines of a crashed daemon match neither shape and are skipped. *)
let parse_verdict_line line =
  let len = String.length line in
  if len >= 34 && line.[32] = ' ' && (len = 34 || line.[34] = ' ') then
    match line.[33] with
    | ('0' | '1') as v -> (
        let key = String.sub line 0 32 in
        let ok = v = '1' in
        if len = 34 then Some (key, ok, None)
        else
          match String.split_on_char ' ' (String.sub line 35 (len - 35)) with
          | [ us; retries ] -> (
              match (int_of_string_opt us, int_of_string_opt retries) with
              | Some us, Some retries when us >= 0 && retries >= 0 ->
                  Some (key, ok, Some (float_of_int us *. 1e-6, retries))
              | _ -> None)
          | _ -> None)
    | _ -> None
  else None

let fold_verdict_lines t ~id ~init ~f =
  match open_in_bin (preds_file t id) with
  | exception Sys_error _ -> init
  | ic ->
      let acc = ref init in
      (try
         while true do
           match parse_verdict_line (input_line ic) with
           | Some v -> acc := f !acc v
           | None -> ()
         done
       with End_of_file -> ());
      close_in_noerr ic;
      !acc

let replay t ~id =
  let table = Hashtbl.create 256 in
  fold_verdict_lines t ~id ~init:() ~f:(fun () (key, ok, _) ->
      Hashtbl.replace table key ok);
  table

type verdict = { v_key : string; v_ok : bool; v_latency : float option; v_retries : int option }

let verdicts t ~id =
  fold_verdict_lines t ~id ~init:[] ~f:(fun acc (key, ok, extra) ->
      {
        v_key = key;
        v_ok = ok;
        v_latency = Option.map fst extra;
        v_retries = Option.map snd extra;
      }
      :: acc)
  |> List.rev

let jobs t =
  Sys.readdir t.root |> Array.to_list |> List.sort String.compare
  |> List.filter (fun id ->
         match check_id id with
         | exception Invalid_argument _ -> false
         | () -> Sys.is_directory (Filename.concat t.root id))

let max_job_number t =
  Sys.readdir t.root |> Array.to_list
  |> List.fold_left
       (fun acc name ->
         match
           if String.length name > 4 && String.sub name 0 4 = "job-" then
             int_of_string_opt (String.sub name 4 (String.length name - 4))
           else None
         with
         | Some n -> max acc n
         | None -> acc)
       0

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.iter (fun _ oc -> close_out_noerr oc) t.logs;
      Hashtbl.reset t.logs)
