type t = {
  root : string;
  mutex : Mutex.t;
  logs : (string, out_channel) Hashtbl.t;  (* open preds.log handles *)
}

let mkdir_p path =
  let rec go path =
    if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let open_dir root =
  mkdir_p root;
  if not (Sys.is_directory root) then
    raise (Sys_error (root ^ ": journal path is not a directory"));
  { root; mutex = Mutex.create (); logs = Hashtbl.create 16 }

let dir t = t.root

(* Job ids become path components; reject anything that could escape the
   journal root (recovered ids come off the filesystem, but submitted ids
   could in principle be attacker-shaped). *)
let check_id id =
  let ok_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false in
  if id = "" || String.length id > 64 || not (String.for_all ok_char id) then
    invalid_arg ("Journal: unsafe job id " ^ String.escaped id)

let job_dir t id =
  check_id id;
  Filename.concat t.root id

let spec_file t id = Filename.concat (job_dir t id) "spec"
let preds_file t id = Filename.concat (job_dir t id) "preds.log"

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  flush oc;
  close_out oc;
  Sys.rename tmp path

let record_job t ~id ~spec =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      mkdir_p (job_dir t id);
      write_file_atomic (spec_file t id) spec)

let log_channel t id =
  match Hashtbl.find_opt t.logs id with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (preds_file t id)
      in
      Hashtbl.replace t.logs id oc;
      oc

let append_pred t ~id ~key ok =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let oc = log_channel t id in
      output_string oc key;
      output_char oc ' ';
      output_char oc (if ok then '1' else '0');
      output_char oc '\n';
      (* flush to the OS: survives kill -9 (though not power loss) *)
      flush oc)

let close_log_locked t id =
  match Hashtbl.find_opt t.logs id with
  | Some oc ->
      Hashtbl.remove t.logs id;
      close_out_noerr oc
  | None -> ()

let mark t ~id ~marker ~contents =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      close_log_locked t id;
      mkdir_p (job_dir t id);
      write_file_atomic (Filename.concat (job_dir t id) marker) contents)

(* Not a terminal marker — [mark] closes the preds log, this must not. *)
let record_counters t ~id ~contents =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      mkdir_p (job_dir t id);
      write_file_atomic (Filename.concat (job_dir t id) "counters") contents)

let mark_done t ~id = mark t ~id ~marker:"done" ~contents:""
let mark_cancelled t ~id = mark t ~id ~marker:"cancelled" ~contents:""
let mark_failed t ~id ~reason = mark t ~id ~marker:"failed" ~contents:(reason ^ "\n")

let is_terminal t id =
  List.exists
    (fun m -> Sys.file_exists (Filename.concat (job_dir t id) m))
    [ "done"; "cancelled"; "failed" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let pending t =
  Sys.readdir t.root |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun id ->
         match check_id id with
         | exception Invalid_argument _ -> None
         | () ->
             if
               Sys.is_directory (Filename.concat t.root id)
               && Sys.file_exists (spec_file t id)
               && not (is_terminal t id)
             then
               match read_file (spec_file t id) with
               | spec -> Some (id, spec)
               | exception Sys_error _ -> None
             else None)

let replay t ~id =
  let table = Hashtbl.create 256 in
  (match open_in_bin (preds_file t id) with
  | exception Sys_error _ -> ()
  | ic ->
      (try
         while true do
           let line = input_line ic in
           (* "<32 hex> 0|1"; anything else — e.g. the torn last line of a
              crashed daemon — is skipped *)
           if String.length line = 34 && line.[32] = ' ' then
             match line.[33] with
             | '0' -> Hashtbl.replace table (String.sub line 0 32) false
             | '1' -> Hashtbl.replace table (String.sub line 0 32) true
             | _ -> ()
         done
       with End_of_file -> ());
      close_in_noerr ic);
  table

let max_job_number t =
  Sys.readdir t.root |> Array.to_list
  |> List.fold_left
       (fun acc name ->
         match
           if String.length name > 4 && String.sub name 0 4 = "job-" then
             int_of_string_opt (String.sub name 4 (String.length name - 4))
           else None
         with
         | Some n -> max acc n
         | None -> acc)
       0

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.iter (fun _ oc -> close_out_noerr oc) t.logs;
      Hashtbl.reset t.logs)
