(* v1: handshake, submit/cancel, progress/result streams.
   v2: adds Stats_request/Stats_reply (live daemon introspection).
   v3: adds Submit_seeded (submission with pre-paid verdicts) and the
       streamed Verdict frame — the cluster coordinator's vocabulary.
       The framing itself is transport-agnostic; v3 daemons listen on
       TCP as well as Unix sockets (see Addr).
   v4: adds the spec's frontend tag, encoded as an optional trailing
       str16 at the very end of Submit/Submit_seeded payloads (and of
       the journal's spec records), written only when the frontend is
       not "jvm" — so every JVM frame is byte-identical to v3 and v3
       journals replay unchanged.
   v5: distributed observability.  Submit/Submit_seeded may carry a
       per-job trace context, encoded as two more trailing str16s after
       the (then always written) frontend tag; Verdict may carry the
       same context as two trailing str16s.  Both are written only when
       a context exists, so context-free v5 frames are byte-identical
       to v4 and a v5 client talking to a ≤v4 server simply strips the
       context.  Adds Trace_dump_request/_reply (the node's span ring +
       clocks, for `trace-merge`) and Metrics_dump_request/_reply (the
       node's metric registry snapshot, for federation). *)
let protocol_version = 5
let max_frame = 64 * 1024 * 1024

type priority = Normal | High

type spec = {
  tool : string;
  strategy : Lbr_harness.Experiment.strategy;
  priority : priority;
  crash_policy : Lbr_runtime.Oracle.crash_policy;
  retries : int;
  pool_bytes : string;
  frontend : string;
  trace_ctx : Lbr_obs.Trace.Context.t option;
}

type stats = {
  ok : bool;
  predicate_runs : int;
  replayed_runs : int;
  tool_executions : int;
  oracle_retries : int;
  oracle_crashes : int;
  sim_time : float;
  wall_time : float;
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
}

type job_stat = {
  js_id : string;
  js_running : bool;
  js_best : (float * int * int) option;
}

type daemon_stats = {
  queued_jobs : int;
  running_jobs : int;
  job_stats : job_stat list;
  oracle_queries : int;
  oracle_memo_hits : int;
  uptime : float;
  metrics_text : string;
}

type message =
  | Hello of int
  | Hello_ok of int
  | Submit of spec
  | Submit_seeded of { spec : spec; seeds : (string * bool) list }
  | Accepted of string
  | Rejected of { reason : string; retry_after : float }
  | Cancel of string
  | Cancel_ok of { job_id : string; found : bool }
  | Progress of { job_id : string; sim_time : float; classes : int; bytes : int }
  | Result of { job_id : string; stats : stats; pool_bytes : string }
  | Job_failed of { job_id : string; reason : string }
  | Protocol_error of string
  | Stats_request
  | Stats_reply of daemon_stats
  | Verdict of {
      job_id : string;
      key : string;
      ok : bool;
      ctx : Lbr_obs.Trace.Context.t option;
    }
  | Trace_dump_request
  | Trace_dump_reply of {
      node : string;
      epoch : float;
      server_now : float;
      dropped : int;
      events : Lbr_obs.Trace.event list;
    }
  | Metrics_dump_request
  | Metrics_dump_reply of { node : string; dump : Lbr_obs.Metrics.dump }

(* ------------------------------------------------------------------ *)
(* Writer primitives                                                   *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let w_u16 b n =
  if n < 0 || n > 0xFFFF then invalid_arg "Wire: u16 overflow";
  w_u8 b (n lsr 8);
  w_u8 b n

let w_u32 b n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Wire: u32 overflow";
  w_u8 b (n lsr 24);
  w_u8 b (n lsr 16);
  w_u8 b (n lsr 8);
  w_u8 b n

let w_f64 b f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical bits (i * 8)))
  done

let w_str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Wire: string too long";
  w_u16 b (String.length s);
  Buffer.add_string b s

let w_bytes32 b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_u8 b (if v then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Reader primitives — total, they only raise the local [Malformed]    *)

type reader = { data : string; mutable pos : int }

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let r_u8 r =
  if r.pos >= String.length r.data then fail "truncated (u8 at %d)" r.pos;
  let n = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  n

let r_u16 r =
  let hi = r_u8 r in
  (hi lsl 8) lor r_u8 r

let r_u32 r =
  let hi = r_u16 r in
  (hi lsl 16) lor r_u16 r

let r_f64 r =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 r))
  done;
  Int64.float_of_bits !bits

let r_bytes r n =
  if n < 0 || r.pos + n > String.length r.data then fail "truncated (%d bytes at %d)" n r.pos;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_str16 r = r_bytes r (r_u16 r)

let r_bytes32 r =
  let n = r_u32 r in
  if n > max_frame then fail "bytes32 length %d exceeds frame limit" n;
  r_bytes r n

let r_bool r = match r_u8 r with 0 -> false | 1 -> true | n -> fail "bad bool %d" n

let r_end r = if r.pos <> String.length r.data then fail "trailing garbage at %d" r.pos

(* ------------------------------------------------------------------ *)
(* Enums                                                               *)

let strategy_code : Lbr_harness.Experiment.strategy -> int = function
  | Jreduce -> 0
  | Lossy_first -> 1
  | Lossy_last -> 2
  | Gbr -> 3

let strategy_of_code : int -> Lbr_harness.Experiment.strategy option = function
  | 0 -> Some Jreduce
  | 1 -> Some Lossy_first
  | 2 -> Some Lossy_last
  | 3 -> Some Gbr
  | _ -> None

let priority_code = function Normal -> 0 | High -> 1

let priority_of_code = function
  | 0 -> Normal
  | 1 -> High
  | n -> fail "bad priority %d" n

let crash_policy_code : Lbr_runtime.Oracle.crash_policy -> int = function
  | Crash_fails -> 0
  | Crash_passes -> 1
  | Crash_raises -> 2

let crash_policy_of_code : int -> Lbr_runtime.Oracle.crash_policy = function
  | 0 -> Crash_fails
  | 1 -> Crash_passes
  | 2 -> Crash_raises
  | n -> fail "bad crash policy %d" n

(* ------------------------------------------------------------------ *)
(* Spec — shared by the Submit frame and the journal                   *)

let w_spec b spec =
  w_str16 b spec.tool;
  w_u8 b (strategy_code spec.strategy);
  w_u8 b (priority_code spec.priority);
  w_u8 b (crash_policy_code spec.crash_policy);
  w_u16 b spec.retries;
  w_bytes32 b spec.pool_bytes

let r_spec r =
  let tool = r_str16 r in
  let strategy =
    let c = r_u8 r in
    match strategy_of_code c with Some s -> s | None -> fail "bad strategy %d" c
  in
  let priority = priority_of_code (r_u8 r) in
  let crash_policy = crash_policy_of_code (r_u8 r) in
  let retries = r_u16 r in
  let pool_bytes = r_bytes32 r in
  {
    tool;
    strategy;
    priority;
    crash_policy;
    retries;
    pool_bytes;
    frontend = "jvm";
    trace_ctx = None;
  }

(* Optional spec fields ride as trailing str16s at the very END of the
   payload (after seeds in Submit_seeded), in one of three shapes:

     (none)                          — v3: JVM, no context
     frontend                        — v4: non-JVM, no context
     frontend trace_id parent_span   — v5: any frontend, with context

   Absent fields fill in their defaults, so v3 peers and journals
   produce exactly the zero-trailer bytes for the JVM path, v4 peers the
   one-string shape, and a context-free v5 frame is byte-identical to
   v4.  When a context is present the frontend is always written (even
   "jvm") so the decoder can tell the shapes apart by count alone. *)
let w_spec_trailer b spec =
  match spec.trace_ctx with
  | None -> if spec.frontend <> "jvm" then w_str16 b spec.frontend
  | Some { Lbr_obs.Trace.Context.trace_id; parent_span } ->
      w_str16 b spec.frontend;
      w_str16 b trace_id;
      w_str16 b parent_span

let r_spec_trailer r spec =
  let rec strs acc =
    if r.pos < String.length r.data then strs (r_str16 r :: acc) else List.rev acc
  in
  match strs [] with
  | [] -> spec
  | [ frontend ] -> { spec with frontend }
  | [ frontend; trace_id; parent_span ] ->
      {
        spec with
        frontend;
        trace_ctx = Some { Lbr_obs.Trace.Context.trace_id; parent_span };
      }
  | l -> fail "bad spec trailer (%d trailing strings)" (List.length l)

let spec_to_string spec =
  let b = Buffer.create (String.length spec.pool_bytes + 32) in
  w_spec b spec;
  w_spec_trailer b spec;
  Buffer.contents b

let spec_of_string data =
  let r = { data; pos = 0 } in
  match
    let spec = r_spec_trailer r (r_spec r) in
    r_end r;
    spec
  with
  | spec -> Ok spec
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let w_stats b s =
  w_bool b s.ok;
  w_u32 b s.predicate_runs;
  w_u32 b s.replayed_runs;
  w_u32 b s.tool_executions;
  w_u32 b s.oracle_retries;
  w_u32 b s.oracle_crashes;
  w_f64 b s.sim_time;
  w_f64 b s.wall_time;
  w_u32 b s.classes0;
  w_u32 b s.classes1;
  w_u32 b s.bytes0;
  w_u32 b s.bytes1

let r_stats r =
  let ok = r_bool r in
  let predicate_runs = r_u32 r in
  let replayed_runs = r_u32 r in
  let tool_executions = r_u32 r in
  let oracle_retries = r_u32 r in
  let oracle_crashes = r_u32 r in
  let sim_time = r_f64 r in
  let wall_time = r_f64 r in
  let classes0 = r_u32 r in
  let classes1 = r_u32 r in
  let bytes0 = r_u32 r in
  let bytes1 = r_u32 r in
  {
    ok;
    predicate_runs;
    replayed_runs;
    tool_executions;
    oracle_retries;
    oracle_crashes;
    sim_time;
    wall_time;
    classes0;
    classes1;
    bytes0;
    bytes1;
  }

(* ------------------------------------------------------------------ *)
(* Daemon stats (v2)                                                   *)

let w_job_stat b js =
  w_str16 b js.js_id;
  w_bool b js.js_running;
  (match js.js_best with
  | None ->
      w_bool b false;
      w_f64 b 0.;
      w_u32 b 0;
      w_u32 b 0
  | Some (sim_time, classes, bytes) ->
      w_bool b true;
      w_f64 b sim_time;
      w_u32 b classes;
      w_u32 b bytes)

let r_job_stat r =
  let js_id = r_str16 r in
  let js_running = r_bool r in
  let has_best = r_bool r in
  let sim_time = r_f64 r in
  let classes = r_u32 r in
  let bytes = r_u32 r in
  { js_id; js_running; js_best = (if has_best then Some (sim_time, classes, bytes) else None) }

let w_daemon_stats b s =
  w_u32 b s.queued_jobs;
  w_u32 b s.running_jobs;
  w_u16 b (List.length s.job_stats);
  List.iter (w_job_stat b) s.job_stats;
  w_u32 b s.oracle_queries;
  w_u32 b s.oracle_memo_hits;
  w_f64 b s.uptime;
  w_bytes32 b s.metrics_text

let r_daemon_stats r =
  let queued_jobs = r_u32 r in
  let running_jobs = r_u32 r in
  let n = r_u16 r in
  let job_stats = List.init n (fun _ -> r_job_stat r) in
  let oracle_queries = r_u32 r in
  let oracle_memo_hits = r_u32 r in
  let uptime = r_f64 r in
  let metrics_text = r_bytes32 r in
  { queued_jobs; running_jobs; job_stats; oracle_queries; oracle_memo_hits; uptime; metrics_text }

(* ------------------------------------------------------------------ *)
(* Seed tables (v3) — pre-paid verdicts shipped with a submission       *)

let w_seeds b seeds =
  let n = List.length seeds in
  if n > 0xFFFFFFFF then invalid_arg "Wire: too many seeds";
  w_u32 b n;
  List.iter
    (fun (key, ok) ->
      w_str16 b key;
      w_bool b ok)
    seeds

let r_seeds r =
  let n = r_u32 r in
  (* each seed is at least 3 bytes on the wire; bound before allocating *)
  if n > String.length r.data then fail "seed count %d exceeds frame" n;
  List.init n (fun _ ->
      let key = r_str16 r in
      let ok = r_bool r in
      (key, ok))

(* ------------------------------------------------------------------ *)
(* Trace events (v5) — the Trace_dump_reply payload                     *)

let w_i64 b v =
  let bits = Int64.of_int v in
  for i = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical bits (i * 8)))
  done

let r_i64 r =
  let bits = ref 0L in
  for _ = 1 to 8 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 r))
  done;
  Int64.to_int !bits

let w_trace_arg b : Lbr_obs.Trace.arg -> unit = function
  | Str s ->
      w_u8 b 0;
      w_str16 b s
  | Int i ->
      w_u8 b 1;
      w_i64 b i
  | Float f ->
      w_u8 b 2;
      w_f64 b f
  | Bool v ->
      w_u8 b 3;
      w_bool b v

let r_trace_arg r : Lbr_obs.Trace.arg =
  match r_u8 r with
  | 0 -> Str (r_str16 r)
  | 1 -> Int (r_i64 r)
  | 2 -> Float (r_f64 r)
  | 3 -> Bool (r_bool r)
  | t -> fail "bad trace arg tag %d" t

let w_trace_event b (e : Lbr_obs.Trace.event) =
  w_str16 b e.ev_name;
  w_u8 b (Char.code e.ev_ph);
  w_f64 b e.ev_ts;
  w_f64 b e.ev_dur;
  w_u32 b e.ev_tid;
  w_u16 b (List.length e.ev_args);
  List.iter
    (fun (k, v) ->
      w_str16 b k;
      w_trace_arg b v)
    e.ev_args

let r_trace_event r : Lbr_obs.Trace.event =
  let ev_name = r_str16 r in
  let ev_ph = Char.chr (r_u8 r) in
  let ev_ts = r_f64 r in
  let ev_dur = r_f64 r in
  let ev_tid = r_u32 r in
  let n_args = r_u16 r in
  let ev_args =
    List.init n_args (fun _ ->
        let k = r_str16 r in
        (k, r_trace_arg r))
  in
  { ev_name; ev_ph; ev_ts; ev_dur; ev_tid; ev_args }

let w_trace_events b events =
  w_u32 b (List.length events);
  List.iter (w_trace_event b) events

let r_trace_events r =
  let n = r_u32 r in
  (* each event is at least ~25 bytes on the wire; bound before allocating *)
  if n > String.length r.data then fail "event count %d exceeds frame" n;
  List.init n (fun _ -> r_trace_event r)

(* Standalone event-list serialization — the same bytes as inside a
   [Trace_dump_reply], reused by trace-merge's .tdump files. *)
let trace_events_to_string events =
  let b = Buffer.create 4096 in
  w_trace_events b events;
  Buffer.contents b

let trace_events_of_string data =
  let r = { data; pos = 0 } in
  match r_trace_events r with
  | events ->
      if r.pos <> String.length data then Error "trailing garbage after events"
      else Ok events
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)

let kind_of = function
  | Hello _ -> 0x01
  | Submit _ -> 0x02
  | Cancel _ -> 0x03
  | Stats_request -> 0x04
  | Submit_seeded _ -> 0x05
  | Hello_ok _ -> 0x81
  | Accepted _ -> 0x82
  | Rejected _ -> 0x83
  | Cancel_ok _ -> 0x84
  | Progress _ -> 0x85
  | Result _ -> 0x86
  | Job_failed _ -> 0x87
  | Protocol_error _ -> 0x88
  | Stats_reply _ -> 0x89
  | Verdict _ -> 0x8A
  | Trace_dump_request -> 0x06
  | Trace_dump_reply _ -> 0x8B
  | Metrics_dump_request -> 0x07
  | Metrics_dump_reply _ -> 0x8C

let encode_payload msg =
  let b = Buffer.create 64 in
  w_u8 b (kind_of msg);
  (match msg with
  | Hello v | Hello_ok v -> w_u16 b v
  | Submit spec ->
      w_spec b spec;
      w_spec_trailer b spec
  | Submit_seeded { spec; seeds } ->
      w_spec b spec;
      w_seeds b seeds;
      w_spec_trailer b spec
  | Verdict { job_id; key; ok; ctx } ->
      w_str16 b job_id;
      w_str16 b key;
      w_bool b ok;
      (match ctx with
      | None -> ()
      | Some { Lbr_obs.Trace.Context.trace_id; parent_span } ->
          w_str16 b trace_id;
          w_str16 b parent_span)
  | Accepted id | Cancel id -> w_str16 b id
  | Rejected { reason; retry_after } ->
      w_str16 b reason;
      w_f64 b retry_after
  | Cancel_ok { job_id; found } ->
      w_str16 b job_id;
      w_bool b found
  | Progress { job_id; sim_time; classes; bytes } ->
      w_str16 b job_id;
      w_f64 b sim_time;
      w_u32 b classes;
      w_u32 b bytes
  | Result { job_id; stats; pool_bytes } ->
      w_str16 b job_id;
      w_stats b stats;
      w_bytes32 b pool_bytes
  | Job_failed { job_id; reason } ->
      w_str16 b job_id;
      w_str16 b reason
  | Protocol_error m -> w_str16 b m
  | Stats_request -> ()
  | Stats_reply s -> w_daemon_stats b s
  | Trace_dump_request -> ()
  | Trace_dump_reply { node; epoch; server_now; dropped; events } ->
      w_str16 b node;
      w_f64 b epoch;
      w_f64 b server_now;
      w_u32 b dropped;
      w_trace_events b events
  | Metrics_dump_request -> ()
  | Metrics_dump_reply { node; dump } ->
      w_str16 b node;
      w_bytes32 b (Lbr_obs.Metrics.encode_dump dump));
  Buffer.contents b

let encode msg =
  let payload = encode_payload msg in
  let b = Buffer.create (String.length payload + 4) in
  w_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode_payload data =
  let r = { data; pos = 0 } in
  match
    let msg =
      match r_u8 r with
      | 0x01 -> Hello (r_u16 r)
      | 0x81 -> Hello_ok (r_u16 r)
      | 0x02 -> Submit (r_spec_trailer r (r_spec r))
      | 0x82 -> Accepted (r_str16 r)
      | 0x03 -> Cancel (r_str16 r)
      | 0x83 ->
          let reason = r_str16 r in
          Rejected { reason; retry_after = r_f64 r }
      | 0x84 ->
          let job_id = r_str16 r in
          Cancel_ok { job_id; found = r_bool r }
      | 0x85 ->
          let job_id = r_str16 r in
          let sim_time = r_f64 r in
          let classes = r_u32 r in
          Progress { job_id; sim_time; classes; bytes = r_u32 r }
      | 0x86 ->
          let job_id = r_str16 r in
          let stats = r_stats r in
          Result { job_id; stats; pool_bytes = r_bytes32 r }
      | 0x87 ->
          let job_id = r_str16 r in
          Job_failed { job_id; reason = r_str16 r }
      | 0x88 -> Protocol_error (r_str16 r)
      | 0x04 -> Stats_request
      | 0x89 -> Stats_reply (r_daemon_stats r)
      | 0x05 ->
          let spec = r_spec r in
          let seeds = r_seeds r in
          Submit_seeded { spec = r_spec_trailer r spec; seeds }
      | 0x8A ->
          let job_id = r_str16 r in
          let key = r_str16 r in
          let ok = r_bool r in
          let ctx =
            if r.pos < String.length r.data then begin
              let trace_id = r_str16 r in
              let parent_span = r_str16 r in
              Some { Lbr_obs.Trace.Context.trace_id; parent_span }
            end
            else None
          in
          Verdict { job_id; key; ok; ctx }
      | 0x06 -> Trace_dump_request
      | 0x8B ->
          let node = r_str16 r in
          let epoch = r_f64 r in
          let server_now = r_f64 r in
          let dropped = r_u32 r in
          let events = r_trace_events r in
          Trace_dump_reply { node; epoch; server_now; dropped; events }
      | 0x07 -> Metrics_dump_request
      | 0x8C ->
          let node = r_str16 r in
          let dump =
            match Lbr_obs.Metrics.decode_dump (r_bytes32 r) with
            | Ok d -> d
            | Error m -> fail "bad metrics dump: %s" m
          in
          Metrics_dump_reply { node; dump }
      | k -> fail "unknown message kind 0x%02x" k
    in
    r_end r;
    msg
  with
  | msg -> Ok msg
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Socket IO                                                           *)

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let write_message fd msg = write_all fd (encode msg)

(* Read exactly [n] bytes; [`Closed] only if EOF hits before the first
   byte (a clean close between frames), [`Short] otherwise. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then `Closed else `Short
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_message fd =
  match read_exact fd 4 with
  | `Closed -> Error `Closed
  | `Short -> Error (`Malformed "truncated length prefix")
  | `Ok header -> (
      let len =
        (Char.code header.[0] lsl 24)
        lor (Char.code header.[1] lsl 16)
        lor (Char.code header.[2] lsl 8)
        lor Char.code header.[3]
      in
      if len = 0 then Error (`Malformed "empty frame")
      else if len > max_frame then
        Error (`Malformed (Printf.sprintf "frame of %d bytes exceeds %d limit" len max_frame))
      else
        match read_exact fd len with
        | `Closed | `Short -> Error (`Malformed "truncated frame body")
        | `Ok payload -> (
            match decode_payload payload with
            | Ok msg -> Ok msg
            | Error m -> Error (`Malformed m)))
