module Pool = Lbr_runtime.Pool

type status =
  | Queued
  | Running
  | Done of Wire.stats * string
  | Failed of string
  | Cancelled

type event =
  | Started
  | Progress of { sim_time : float; classes : int; bytes : int }
  | Evaluated of { key : string; ok : bool; ctx : Lbr_obs.Trace.Context.t option }
  | Finished of status

type runner_ctx = {
  job_id : string;
  should_stop : unit -> bool;
  progress : float -> int -> int -> unit;
  replay : (string, bool) Hashtbl.t;
  record : key:string -> ok:bool -> latency:float -> retries:int -> unit;
}

type runner = runner_ctx -> Wire.spec -> (Wire.stats * string, string) result

type job = {
  id : string;
  spec : Wire.spec;
  on_event : event -> unit;
  replay_table : (string, bool) Hashtbl.t;
  cancel_requested : bool Atomic.t;
  submitted_at : float;
  mutable state : status;
  (* Latest improvement reported through the progress event stream —
     (sim_time, classes, bytes) — mirrored here (under the scheduler
     lock) so a Stats snapshot never has to ask the job itself. *)
  mutable best : (float * int * int) option;
}

type job_info = {
  info_id : string;
  info_running : bool;
  info_best : (float * int * int) option;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* broadcast on any job state change *)
  pool : Pool.t;
  runner : runner;
  journal : Journal.t option;
  queue_depth : int;
  high : job Queue.t;
  normal : job Queue.t;
  table : (string, job) Hashtbl.t;
  mutable next_id : int;
  mutable queued_count : int;
  mutable running_count : int;  (* includes jobs being finalized *)
  mutable draining : bool;
  mutable shut : bool;
}

(* Scheduler metrics: queue/running gauges track every transition under
   the scheduler lock; histograms record queue wait (admission → claim)
   and submitted pool sizes. *)
let m_submitted = lazy (Lbr_obs.Metrics.counter ~help:"Jobs admitted." "lbr_jobs_submitted_total")
let m_rejected = lazy (Lbr_obs.Metrics.counter ~help:"Jobs rejected by backpressure." "lbr_jobs_rejected_total")
let m_done = lazy (Lbr_obs.Metrics.counter ~help:"Jobs completed successfully." "lbr_jobs_done_total")
let m_failed = lazy (Lbr_obs.Metrics.counter ~help:"Jobs that failed." "lbr_jobs_failed_total")
let m_cancelled = lazy (Lbr_obs.Metrics.counter ~help:"Jobs cancelled." "lbr_jobs_cancelled_total")
let m_queue_depth = lazy (Lbr_obs.Metrics.gauge ~help:"Jobs waiting in the queue." "lbr_queue_depth")
let m_running = lazy (Lbr_obs.Metrics.gauge ~help:"Jobs currently running." "lbr_running_jobs")

let m_queue_wait =
  lazy (Lbr_obs.Metrics.histogram ~help:"Seconds between admission and dispatch." "lbr_queue_wait_seconds")

let m_job_bytes =
  lazy
    (Lbr_obs.Metrics.histogram ~help:"Submitted pool size in bytes." ~lo:64. ~growth:4.0
       ~buckets:16 "lbr_job_pool_bytes")

let create ~runner ~jobs ~queue_depth ?journal () =
  if jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  if queue_depth < 1 then invalid_arg "Scheduler.create: queue_depth must be >= 1";
  let next_id =
    match journal with Some j -> Journal.max_job_number j + 1 | None -> 1
  in
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    pool = Pool.create ~jobs ();
    runner;
    journal;
    queue_depth;
    high = Queue.create ();
    normal = Queue.create ();
    table = Hashtbl.create 64;
    next_id;
    queued_count = 0;
    running_count = 0;
    draining = false;
    shut = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Journal marker, terminal event, then state change + wake-up.  The
   event is delivered while the job still counts as running and before
   [await]/[drain] can observe the terminal state — so a drain returning
   means every Result/Job_failed frame has already been handed to its
   connection.  The event runs outside the scheduler lock (handlers write
   to sockets) and its exceptions are contained. *)
let finalize t job status =
  (match t.journal with
  | None -> ()
  | Some j -> (
      match status with
      | Done _ -> Journal.mark_done j ~id:job.id
      | Cancelled -> Journal.mark_cancelled j ~id:job.id
      | Failed reason -> Journal.mark_failed j ~id:job.id ~reason
      | Queued | Running -> ()));
  Lbr_obs.Flight.transition ~job:job.id
    ~state:
      (match status with
      | Done _ -> "done"
      | Failed _ -> "failed"
      | Cancelled -> "cancelled"
      | Queued -> "queued"
      | Running -> "running");
  (try job.on_event (Finished status) with _ -> ());
  (match status with
  | Done _ -> Lbr_obs.Metrics.incr (Lazy.force m_done)
  | Failed _ -> Lbr_obs.Metrics.incr (Lazy.force m_failed)
  | Cancelled -> Lbr_obs.Metrics.incr (Lazy.force m_cancelled)
  | Queued | Running -> ());
  locked t (fun () ->
      job.state <- status;
      t.running_count <- t.running_count - 1;
      Lbr_obs.Metrics.set_gauge (Lazy.force m_running) (float_of_int t.running_count);
      Condition.broadcast t.cond)

let run_job t job =
  job.on_event Started;
  let ctx =
    {
      job_id = job.id;
      should_stop = (fun () -> Atomic.get job.cancel_requested);
      progress =
        (fun sim_time classes bytes ->
          (* Mirror the improvement for Stats snapshots before forwarding
             it — introspection rides the existing event stream, nothing
             polls the job. *)
          locked t (fun () -> job.best <- Some (sim_time, classes, bytes));
          job.on_event (Progress { sim_time; classes; bytes }));
      replay = job.replay_table;
      record =
        (fun ~key ~ok ~latency ~retries ->
          (* WAL first, then stream: a Verdict frame must never name an
             evaluation the journal could still lose. *)
          (match t.journal with
          | Some j -> Journal.append_pred j ~id:job.id ~key ~latency ~retries ok
          | None -> ());
          try job.on_event (Evaluated { key; ok; ctx = job.spec.Wire.trace_ctx })
          with _ -> ());
    }
  in
  (* A job runs as one pool task on one domain, so the domain-local counter
     delta is exactly this job's phase timing. *)
  let counters_before = Lbr_harness.Counters.snapshot_local () in
  let status =
    (* The job's trace context is installed for the whole run: every span
       the runner (and anything it calls — oracle, frontends, speculative
       workers) records on this domain carries the job's trace id and the
       admitting node's job span as parent. *)
    Lbr_obs.Trace.with_context job.spec.Wire.trace_ctx @@ fun () ->
    Lbr_obs.Trace.with_span "scheduler.job"
      ~args:(fun () -> [ ("job", Lbr_obs.Trace.Str job.id) ])
    @@ fun () ->
    match t.runner ctx job.spec with
    | Ok (stats, pool_bytes) -> Done (stats, pool_bytes)
    | Error reason -> Failed reason
    | exception Lbr_harness.Experiment.Cancelled -> Cancelled
    | exception exn -> Failed (Printexc.to_string exn)
  in
  (match t.journal with
  | None -> ()
  | Some j ->
      let rows =
        Lbr_harness.Counters.since ~before:counters_before
          ~after:(Lbr_harness.Counters.snapshot_local ())
      in
      Journal.record_counters j ~id:job.id
        ~contents:(Lbr_harness.Counters.serialize rows));
  finalize t job status

(* One dispatch token is pool-submitted per admission; each token claims
   the best-priority job waiting at execution time.  Jobs cancelled while
   queued are finalized here (cheaply, without running), and the token
   moves on — token count stays equal to admission count, so every queued
   job is eventually claimed and no token is ever short a job. *)
let rec dispatch t () =
  let claim () =
    let q =
      if not (Queue.is_empty t.high) then Some t.high
      else if not (Queue.is_empty t.normal) then Some t.normal
      else None
    in
    match q with
    | None -> None
    | Some q ->
        let job = Queue.pop q in
        t.queued_count <- t.queued_count - 1;
        t.running_count <- t.running_count + 1;
        Lbr_obs.Metrics.set_gauge (Lazy.force m_queue_depth) (float_of_int t.queued_count);
        Lbr_obs.Metrics.set_gauge (Lazy.force m_running) (float_of_int t.running_count);
        if Atomic.get job.cancel_requested then Some (job, `Discard)
        else begin
          job.state <- Running;
          Some (job, `Run)
        end
  in
  match locked t claim with
  | None -> ()
  | Some (job, `Discard) ->
      finalize t job Cancelled;
      dispatch t ()
  | Some (job, `Run) ->
      let claimed_at = Lbr_obs.Trace.now () in
      Lbr_obs.Flight.transition ~job:job.id ~state:"running";
      Lbr_obs.Metrics.observe (Lazy.force m_queue_wait) (claimed_at -. job.submitted_at);
      Lbr_obs.Trace.span_between "scheduler.queue-wait" ~start:job.submitted_at
        ~finish:claimed_at
        ~args:(fun () -> [ ("job", Lbr_obs.Trace.Str job.id) ]);
      run_job t job

let enqueue_locked t job =
  Hashtbl.replace t.table job.id job;
  Queue.push job (match job.spec.Wire.priority with High -> t.high | Normal -> t.normal);
  t.queued_count <- t.queued_count + 1;
  Lbr_obs.Metrics.set_gauge (Lazy.force m_queue_depth) (float_of_int t.queued_count)

let retry_after t = 1.0 +. (float_of_int t.queued_count /. float_of_int (Pool.jobs t.pool))

let submit t ?(on_event = fun (_ : string) (_ : event) -> ()) ?(seeds = []) spec =
  (* First admitting node mints the job's trace context (the coordinator
     did it already for delegated jobs).  Only when tracing is live: the
     context is journaled with the spec, and untraced daemons must keep
     producing byte-identical journals to v4. *)
  let spec =
    if spec.Wire.trace_ctx = None && Lbr_obs.Trace.enabled () then
      { spec with Wire.trace_ctx = Some (Lbr_obs.Trace.Context.mint ()) }
    else spec
  in
  let admitted =
    locked t (fun () ->
        if t.draining || t.shut then Error `Draining
        else if t.queued_count >= t.queue_depth then begin
          Lbr_obs.Metrics.incr (Lazy.force m_rejected);
          Error (`Queue_full (retry_after t))
        end
        else begin
          let id = Printf.sprintf "job-%06d" t.next_id in
          t.next_id <- t.next_id + 1;
          (* Seeds land in the same replay table journal recovery fills:
             the runner cannot tell a journal-replayed verdict from a
             cluster-cache one, which is exactly the point. *)
          let replay_table = Hashtbl.create (max 16 (List.length seeds)) in
          List.iter (fun (key, ok) -> Hashtbl.replace replay_table key ok) seeds;
          let job =
            {
              id;
              spec;
              on_event = (fun ev -> on_event id ev);
              replay_table;
              cancel_requested = Atomic.make false;
              submitted_at = Lbr_obs.Trace.now ();
              state = Queued;
              best = None;
            }
          in
          Lbr_obs.Metrics.incr (Lazy.force m_submitted);
          Lbr_obs.Metrics.observe (Lazy.force m_job_bytes)
            (float_of_int (String.length spec.Wire.pool_bytes));
          (* WAL before the job becomes claimable: the spec must be on
             disk (and its journal directory exist, for [append_pred])
             before any dispatch token can start running it. *)
          (match t.journal with
          | Some j -> Journal.record_job j ~id ~spec:(Wire.spec_to_string spec)
          | None -> ());
          Lbr_obs.Flight.transition ~job:id ~state:"queued";
          enqueue_locked t job;
          Ok id
        end)
  in
  match admitted with
  | Error _ as e -> e
  | Ok id ->
      ignore (Pool.submit t.pool (dispatch t) : unit Pool.future);
      Ok id

let cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table id with
      | None -> false
      | Some job -> (
          match job.state with
          | Queued | Running ->
              Atomic.set job.cancel_requested true;
              true
          | Done _ | Failed _ | Cancelled -> false))

let status t id = locked t (fun () -> Option.map (fun j -> j.state) (Hashtbl.find_opt t.table id))

let await t id =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let rec loop () =
        match Hashtbl.find_opt t.table id with
        | None -> invalid_arg ("Scheduler.await: unknown job " ^ id)
        | Some job -> (
            match job.state with
            | Queued | Running ->
                Condition.wait t.cond t.mutex;
                loop ()
            | (Done _ | Failed _ | Cancelled) as s -> s)
      in
      loop ())

let recover t =
  match t.journal with
  | None -> 0
  | Some j ->
      let resumed =
        List.filter_map
          (fun (id, spec_bytes) ->
            match Wire.spec_of_string spec_bytes with
            | Error reason ->
                Journal.mark_failed j ~id ~reason:("corrupt journaled spec: " ^ reason);
                None
            | Ok spec ->
                let replay_table = Journal.replay j ~id in
                let job =
                  {
                    id;
                    spec;
                    on_event = (fun _ -> ());
                    replay_table;
                    cancel_requested = Atomic.make false;
                    submitted_at = Lbr_obs.Trace.now ();
                    state = Queued;
                    best = None;
                  }
                in
                Some job)
          (Journal.pending j)
      in
      locked t (fun () -> List.iter (enqueue_locked t) resumed);
      List.iter (fun _ -> ignore (Pool.submit t.pool (dispatch t) : unit Pool.future)) resumed;
      List.length resumed

let queued t = locked t (fun () -> t.queued_count)
let running t = locked t (fun () -> t.running_count)

(* Every non-terminal job, in id order.  Consistent under the scheduler
   lock: a job is either here or has delivered its terminal event. *)
let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ job acc ->
          match job.state with
          | Queued | Running ->
              {
                info_id = job.id;
                info_running = (job.state = Running);
                info_best = job.best;
              }
              :: acc
          | Done _ | Failed _ | Cancelled -> acc)
        t.table [])
  |> List.sort (fun a b -> String.compare a.info_id b.info_id)

let drain t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.draining <- true;
      while t.queued_count + t.running_count > 0 do
        Condition.wait t.cond t.mutex
      done)

let shutdown t =
  drain t;
  let already = locked t (fun () -> let s = t.shut in t.shut <- true; s) in
  if not already then Pool.shutdown t.pool
