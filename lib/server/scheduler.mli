(** Bounded, journaled job scheduler for the reduction service.

    Layered on [Lbr_runtime.Pool]: admitted jobs wait in a two-level
    (high/normal) FIFO; every admission enqueues one dispatch token on the
    pool, and each token — executed by whichever worker domain frees up
    first — pops the highest-priority job waiting {e at that moment}.  So
    priority is decided at dispatch time, results never reorder (each job
    completes independently), and the pool stays a plain FIFO of thunks.

    Backpressure: at most [queue_depth] jobs may be waiting (running jobs
    do not count); past that {!submit} rejects with a retry-after hint
    instead of queueing unboundedly — the caller (the wire layer) turns
    that into a [Rejected] frame.

    Journal: when created with one, every admission is WAL-ed before
    {!submit} returns, every completed predicate evaluation is appended by
    the runner via the context's [record], and terminal states write
    markers.  {!recover} re-admits journaled jobs that never reached a
    terminal state, handing the runner their replay table so already-paid
    predicate executions are not paid again. *)

type status =
  | Queued
  | Running
  | Done of Wire.stats * string  (** stats + reduced LBRC pool bytes *)
  | Failed of string
  | Cancelled

type event =
  | Started
  | Progress of { sim_time : float; classes : int; bytes : int }
  | Evaluated of { key : string; ok : bool; ctx : Lbr_obs.Trace.Context.t option }
      (** one fresh predicate evaluation completed (and, when a journal is
          configured, already WAL-ed) — the feed for the cluster-wide
          verdict cache.  Replayed verdicts do not re-emit.  [ctx] is the
          job's trace context (minted at admission when tracing is live),
          echoed so the wire layer can stamp v5 [Verdict] frames. *)
  | Finished of status

type runner_ctx = {
  job_id : string;
  should_stop : unit -> bool;  (** true once the job is cancelled *)
  progress : float -> int -> int -> unit;  (** (sim_time, classes, bytes) *)
  replay : (string, bool) Hashtbl.t;  (** journal replay memo; empty when cold *)
  record : key:string -> ok:bool -> latency:float -> retries:int -> unit;
      (** WAL a completed predicate evaluation: digest, verdict, wall
          latency (seconds) and extra oracle attempts it took *)
}

type runner = runner_ctx -> Wire.spec -> (Wire.stats * string, string) result
(** Executes one job; [Ok (stats, reduced_pool_bytes)] or [Error reason].
    Raising [Lbr_harness.Experiment.Cancelled] ends the job as
    {!Cancelled}; any other exception as {!Failed}.  The production runner
    is {!Runner.reduce}; tests inject stubs. *)

type t

val create :
  runner:runner -> jobs:int -> queue_depth:int -> ?journal:Journal.t -> unit -> t
(** [jobs >= 1] worker domains, [queue_depth >= 1] waiting slots
    ([Invalid_argument] otherwise). *)

val submit :
  t ->
  ?on_event:(string -> event -> unit) ->
  ?seeds:(string * bool) list ->
  Wire.spec ->
  (string, [ `Queue_full of float | `Draining ]) result
(** Admit a job; returns its id.  When tracing is enabled and the spec
    carries no trace context yet, one is minted here and journaled with
    the spec, so the job's identity survives recovery.  [on_event] is
    registered atomically with admission (no events can be missed; it
    also receives the job id, which is not yet known when the callback is
    built) and is invoked from worker domains — it must be thread-safe.  The terminal [Finished]
    event is delivered {e before} the job's state becomes observable via
    {!await}/{!drain}, so a completed drain implies every handler ran.
    [`Queue_full retry_after] is the backpressure path.  [seeds] pre-fills
    the job's replay table with already-paid verdicts (digest key →
    outcome) — the coordinator's shared-cache/failover path; they count as
    replayed runs, exactly like journal recovery. *)

val cancel : t -> string -> bool
(** Request cancellation.  [true] if the job was queued or running; a
    queued job is discarded before it starts, a running job stops at its
    next predicate-run boundary. *)

val status : t -> string -> status option
val await : t -> string -> status
(** Block until the job reaches a terminal state. *)

val recover : t -> int
(** Re-admit journaled jobs with no terminal marker (in admission order,
    exempt from the queue-depth bound — they were admitted once already).
    Returns how many were resumed.  No-op without a journal. *)

val queued : t -> int
val running : t -> int

type job_info = {
  info_id : string;
  info_running : bool;  (** [false] = queued *)
  info_best : (float * int * int) option;
      (** last improvement's (sim_time, classes, bytes), mirrored from the
          job's event stream — nothing is polled from inside the job *)
}

val snapshot : t -> job_info list
(** Every non-terminal job in id order — one consistent view taken under
    the scheduler lock, for the wire layer's [Stats_reply]. *)

val drain : t -> unit
(** Stop admitting and block until every accepted job has reached a
    terminal state. *)

val shutdown : t -> unit
(** {!drain}, then join the worker domains.  Idempotent. *)
