type t = Unix_path of string | Tcp of string * int

(* Port 0 is legal: it asks the kernel for a free port at bind time,
   recovered afterwards with [bound_port]. *)
let port_ok p = p >= 0 && p <= 65535

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (s ^ ": expected host:port")
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Printf.sprintf "%s: port %S is not an integer" s port_s)
      | Some p when not (port_ok p) ->
          Error (Printf.sprintf "%s: port %d out of range [0, 65535]" s p)
      | Some p ->
          if host = "" then Error (s ^ ": empty host")
          else Ok (Tcp (host, p)))

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let strip_prefix ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let parse s =
  if s = "" then Error "empty address"
  else if has_prefix ~prefix:"unix:" s then
    let p = strip_prefix ~prefix:"unix:" s in
    if p = "" then Error (s ^ ": empty socket path") else Ok (Unix_path p)
  else if has_prefix ~prefix:"tcp:" s then parse_hostport (strip_prefix ~prefix:"tcp:" s)
  else if String.contains s ':' then
    (* A colon suggests host:port; fall back to a path when the tail is
       not a port (e.g. a weird filename) only if it looks like a path. *)
    match parse_hostport s with
    | Ok _ as ok -> ok
    | Error _ when String.contains s '/' -> Ok (Unix_path s)
    | Error _ as e -> e
  else Ok (Unix_path s)

let to_string = function
  | Unix_path p -> if String.contains p ':' then "unix:" ^ p else p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr; _ } :: _ -> ai_addr
      | [] -> (
          (* no IPv4 binding; try any family before giving up *)
          match
            Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr; _ } :: _ -> ai_addr
          | [] -> failwith (Printf.sprintf "%s: host does not resolve" host)))

let domain_of = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* A Unix socket file can be a live daemon or the corpse of a crashed
   one: a probe connect tells them apart.  Only ECONNREFUSED licenses
   the unlink — any other failure (EACCES, ELOOP, ...) means we cannot
   even classify the file and must not delete it. *)
let claim_unix_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (e, _, _) -> `Unprobeable e
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    match verdict with
    | `Live -> failwith (path ^ ": socket is in use by a running daemon")
    | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Unprobeable e ->
        failwith
          (Printf.sprintf "%s: cannot probe existing socket (%s); not removing it" path
             (Unix.error_message e))
  end

let listen ?(backlog = 16) addr =
  (match addr with Unix_path p -> claim_unix_path p | Tcp _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.set_close_on_exec fd;
     (match addr with
     | Tcp _ ->
         (* a drained daemon's TIME_WAIT must not block its successor *)
         Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_path _ -> ());
     (try Unix.bind fd (sockaddr addr)
      with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
        (* TCP only (the Unix path was claimed above): a live listener
           owns the port; there is nothing to unlink, so this is final. *)
        failwith (to_string addr ^ ": address is in use by a running daemon"));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> failwith "Addr.bound_port: not an inet socket"

let connect addr =
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  match
    Unix.set_close_on_exec fd;
    Unix.connect fd (sockaddr addr)
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (to_string addr ^ ": " ^ Unix.error_message e)
  | exception Failure m ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error m
