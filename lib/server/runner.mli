(** The production job runner: executes one wire-submitted reduction.

    Decodes the LBRC pool, resolves the tool, and drives
    [Lbr_harness.Experiment.run_with] with hooks wired to the scheduler
    context: [should_stop] polls the job's cancel flag, [on_improvement]
    streams progress, and [evaluate] routes every predicate run through

    - the journal replay table first (a resumed job answers already-paid
      evaluations without touching the tool, counted as [replayed_runs]),
    - then a per-job [Lbr_runtime.Oracle] carrying the spec's crash policy
      and retry budget, whose thread-safe memo/retry/crash-classification
      machinery is reused verbatim by keying it on the candidate's digest
      (the 128-bit digest maps collision-free onto an assignment over
      variables 0..127),

    and records each fresh result in the WAL before it is used.

    Invariant: the simulated clock is charged before [evaluate], so a
    replayed run produces the same [sim_time] — and hence byte-identical
    reduced pools and identical non-wall-time stats — as a cold run. *)

val key_assignment : string -> Lbr_logic.Assignment.t
(** The collision-free digest → assignment mapping described above: hex
    char [i] of the 32-char digest contributes its 4 bits at variables
    [4i .. 4i+3].  Exposed so other oracle-backed predicate adapters
    (e.g. [lbr-reduce reduce --trace]) key their memo the same way.
    Raises [Invalid_argument] on a non-hex character. *)

val reduce : Scheduler.runner_ctx -> Wire.spec -> (Wire.stats * string, string) result
(** [Error _] on an undecodable pool, unknown tool, or a pool the tool is
    not buggy on.  Raises [Lbr_harness.Experiment.Cancelled] when the
    context's [should_stop] fires, and [Lbr_runtime.Oracle.Crashed] under
    the [Crash_raises] policy — the scheduler maps both to terminal job
    states.

    Specs whose [frontend] is not ["jvm"] (or [""]) dispatch through
    {!Lbr_frontend.Registry} and the generic {!Lbr_frontend.Run} driver
    instead: [pool_bytes] is the frontend's own text format, [tool] is
    its predicate spec, and only the [Gbr] strategy is accepted.  These
    jobs have no out-of-process oracle, so retry/crash counters are
    zero, [tool_executions] equals the fresh predicate runs, and the
    result's [classes0]/[classes1] slots carry the frontend's item
    counts.  Journal replay, progress streaming and cancellation behave
    identically to the JVM path. *)
