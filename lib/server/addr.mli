(** Service addresses: Unix domain socket paths and TCP [host:port]
    endpoints, parsed from one string syntax shared by every CLI flag
    that names a daemon.

    A string containing a colon whose last segment parses as a port
    number is TCP ([host:port]); everything else is a Unix socket path.
    [127.0.0.1:7421] and [localhost:7421] are TCP; [/tmp/lbr.sock] and
    [./relative.sock] are Unix.  An explicit [tcp:] or [unix:] prefix
    disambiguates the pathological cases (a file literally named
    [a:1]). *)

type t =
  | Unix_path of string
  | Tcp of string * int
      (** host, port in [0, 65535]; port 0 means "kernel picks" at
          {!listen} time (see {!bound_port}) *)

val parse : string -> (t, string) result
(** Total: never raises.  Rejects empty strings, out-of-range ports and
    empty hosts with a human-readable reason. *)

val to_string : t -> string
(** Round-trips through {!parse} (modulo an explicit [unix:] prefix on
    paths that would otherwise parse as TCP). *)

val sockaddr : t -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr].  For TCP the host is resolved via
    [getaddrinfo] (IPv4 preferred); raises [Failure] if it does not
    resolve. *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind and listen.

    Stale-endpoint handling is transport-specific — the Unix-path trick
    (unlink the socket file and rebind) is wrong for TCP, where there is
    no file to unlink and the name is owned by the kernel:

    - [Unix_path p]: if [p] exists, a probe connect classifies it.  A
      successful connect means a live daemon — [Failure].  [ECONNREFUSED]
      means the corpse of a crashed daemon — unlinked and replaced.  Any
      other error (e.g. [EACCES]) is re-raised as [Failure] rather than
      blindly unlinking a file we cannot even probe.
    - [Tcp _]: [SO_REUSEADDR] is set (a drained daemon's TIME_WAIT must
      not block its successor); a bind failing with [EADDRINUSE] means a
      live listener and becomes [Failure] — nothing is ever unlinked.

    The returned descriptor has [close-on-exec] set. *)

val bound_port : Unix.file_descr -> int
(** The actual local port of a bound TCP socket — the way to recover the
    kernel-chosen port after listening on port 0.  Raises [Failure] on a
    non-inet socket. *)

val connect : t -> (Unix.file_descr, string) result
(** Create the right kind of socket and connect.  [Error] carries a
    message naming the address. *)
