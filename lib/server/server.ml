(* The daemon front end is split from what it fronts: a [backend] is
   anything that can admit, cancel and introspect jobs — the scheduler
   (lbr-serve) or the cluster coordinator (lbr-reduce coordinate).  The
   accept loop, per-connection protocol, version gating and lifecycle
   are identical for both. *)

type backend = {
  b_submit :
    on_event:(string -> Scheduler.event -> unit) ->
    seeds:(string * bool) list ->
    Wire.spec ->
    (string, [ `Queue_full of float | `Draining ]) result;
  b_cancel : string -> bool;
  b_stats : unit -> Wire.daemon_stats;
  b_drain : unit -> unit;
}

type config = {
  listen : Addr.t;
  jobs : int;
  queue_depth : int;
  journal_dir : string option;
}

type t = {
  listen_addr : Addr.t;
  backend : backend;
  scheduler : Scheduler.t option;  (* Some for scheduler-backed daemons *)
  journal : Journal.t option;
  listen_fd : Unix.file_descr;
  recovered : int;
  started_at : float;
  stop_flag : bool Atomic.t;
  stopped : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;  (* live connection fds *)
  mutable accept_thread : Thread.t option;
}

let scheduler t =
  match t.scheduler with
  | Some s -> s
  | None -> invalid_arg "Server.scheduler: backend-served daemon has no scheduler"

let recovered t = t.recovered

(* The address the kernel actually bound — differs from the configured
   one only for TCP port 0, where it carries the chosen port. *)
let bound_addr t =
  match t.listen_addr with
  | Addr.Unix_path _ as a -> a
  | Addr.Tcp (host, _) -> Addr.Tcp (host, Addr.bound_port t.listen_fd)

(* One consistent introspection snapshot: scheduler view under its lock,
   process-wide oracle counters and the full metric registry rendered as
   Prometheus text.  Built entirely from state the event stream already
   maintains — nothing reaches into running jobs. *)
let scheduler_stats scheduler started_at () =
  let jobs = Scheduler.snapshot scheduler in
  let value name = Option.value ~default:0 (Lbr_obs.Metrics.find_counter_value name) in
  {
    Wire.queued_jobs = List.length (List.filter (fun j -> not j.Scheduler.info_running) jobs);
    running_jobs = List.length (List.filter (fun j -> j.Scheduler.info_running) jobs);
    job_stats =
      List.map
        (fun (j : Scheduler.job_info) ->
          { Wire.js_id = j.info_id; js_running = j.info_running; js_best = j.info_best })
        jobs;
    oracle_queries = value "lbr_oracle_queries_total";
    oracle_memo_hits = value "lbr_oracle_memo_hits_total";
    uptime = Unix.gettimeofday () -. started_at;
    metrics_text = Lbr_obs.Metrics.render_prometheus ();
  }

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping                                              *)

let register_conn t fd =
  Mutex.lock t.conns_mutex;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_mutex

(* Whoever removes the fd from the registry closes it — exactly once,
   whether that is the handler thread (peer closed / protocol error) or
   {!stop} sweeping all live connections. *)
let forget_conn t fd =
  Mutex.lock t.conns_mutex;
  let present = List.memq fd t.conns in
  if present then t.conns <- List.filter (fun fd' -> fd' != fd) t.conns;
  Mutex.unlock t.conns_mutex;
  if present then begin
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Per-connection protocol                                             *)

(* All frames on one connection — synchronous replies from this thread,
   streamed job events from worker domains — go through [send], serialized
   by a per-connection mutex.  A write failure (peer gone) is swallowed;
   the read loop will see the close. *)
let handle_connection t fd =
  let write_mutex = Mutex.create () in
  let send msg =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> try Wire.write_message fd msg with Unix.Unix_error _ | Sys_error _ -> ())
  in
  let fatal reason =
    send (Wire.Protocol_error reason);
    forget_conn t fd
  in
  (* Version negotiation first: anything else is a protocol error. *)
  match Wire.read_message fd with
  | Error `Closed -> forget_conn t fd
  | Error (`Malformed m) -> fatal ("malformed hello: " ^ m)
  | Ok (Wire.Hello v) when v >= 1 ->
      let version = min v Wire.protocol_version in
      send (Wire.Hello_ok version);
      (* Frames a peer of this vintage cannot decode must never reach it:
         Verdict is v3-only, so on older connections it is dropped here,
         not at the call sites. *)
      let on_event job_id (ev : Scheduler.event) =
        match ev with
        | Scheduler.Started -> ()
        | Scheduler.Progress { sim_time; classes; bytes } ->
            send (Wire.Progress { job_id; sim_time; classes; bytes })
        | Scheduler.Evaluated { key; ok; ctx } ->
            (* The trace context rides the verdict only on v5 peers; older
               ones get the exact v3/v4 bytes. *)
            if version >= 3 then
              send
                (Wire.Verdict
                   { job_id; key; ok; ctx = (if version >= 5 then ctx else None) })
        | Scheduler.Finished (Scheduler.Done (stats, pool_bytes)) ->
            send (Wire.Result { job_id; stats; pool_bytes })
        | Scheduler.Finished (Scheduler.Failed reason) ->
            send (Wire.Job_failed { job_id; reason })
        | Scheduler.Finished Scheduler.Cancelled ->
            send (Wire.Job_failed { job_id; reason = "cancelled" })
        | Scheduler.Finished (Scheduler.Queued | Scheduler.Running) -> ()
      in
      let admit spec seeds =
        (* The admission reply must reach the wire before any event
           frame for the new job: a worker can run a small job to
           completion before this thread regains the CPU, and its
           [Result] would otherwise overtake [Accepted].  Events for
           the new job are therefore parked behind a per-admission gate
           that opens only once the reply is written.  The write lock
           is deliberately NOT held across [b_submit]: backends deliver
           events under their own locks, so holding it here orders the
           two locks against each other — and a backend that finalizes
           synchronously from submission (the coordinator with no live
           workers) would relock [write_mutex] on this very thread.
           Such same-thread deliveries are buffered and flushed, in
           order, right after the reply. *)
        let gate = Mutex.create () in
        let gate_cond = Condition.create () in
        let replied = ref false in
        let parked = ref [] in  (* same-thread events, reversed *)
        let submitter = Thread.id (Thread.self ()) in
        let gated_on_event job_id ev =
          let deliver =
            Mutex.lock gate;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock gate)
              (fun () ->
                if !replied then true
                else if Thread.id (Thread.self ()) = submitter then begin
                  parked := (job_id, ev) :: !parked;
                  false
                end
                else begin
                  while not !replied do
                    Condition.wait gate_cond gate
                  done;
                  true
                end)
          in
          if deliver then on_event job_id ev
        in
        Fun.protect
          ~finally:(fun () ->
            (* Flush while holding the gate so a concurrent waiter
               cannot overtake a parked (necessarily terminal) event;
               open it even if [b_submit] raised, or waiters leak. *)
            Mutex.lock gate;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock gate)
              (fun () ->
                List.iter (fun (job_id, ev) -> on_event job_id ev) (List.rev !parked);
                parked := [];
                replied := true;
                Condition.broadcast gate_cond))
          (fun () ->
            let reply =
              match t.backend.b_submit ~on_event:gated_on_event ~seeds spec with
              | Ok id -> Wire.Accepted id
              | Error (`Queue_full retry_after) ->
                  Wire.Rejected { reason = "queue full"; retry_after }
              | Error `Draining -> Wire.Rejected { reason = "draining"; retry_after = 0. }
            in
            send reply)
      in
      let rec loop () =
        match Wire.read_message fd with
        | Error `Closed -> forget_conn t fd
        | Error (`Malformed m) -> fatal ("malformed frame: " ^ m)
        | Ok ((Wire.Submit spec | Wire.Submit_seeded { spec; _ }))
          when spec.Wire.frontend <> "jvm" && version < 4 ->
            fatal "non-jvm frontends require protocol version 4"
        | Ok (Wire.Submit spec) ->
            admit spec [];
            loop ()
        | Ok (Wire.Submit_seeded _) when version < 3 ->
            fatal "Submit_seeded requires protocol version 3"
        | Ok (Wire.Submit_seeded { spec; seeds }) ->
            admit spec seeds;
            loop ()
        | Ok (Wire.Cancel job_id) ->
            send (Wire.Cancel_ok { job_id; found = t.backend.b_cancel job_id });
            loop ()
        | Ok Wire.Stats_request ->
            send (Wire.Stats_reply (t.backend.b_stats ()));
            loop ()
        | Ok (Wire.Trace_dump_request | Wire.Metrics_dump_request) when version < 5 ->
            fatal "observability dumps require protocol version 5"
        | Ok Wire.Trace_dump_request ->
            send
              (Wire.Trace_dump_reply
                 {
                   node = Addr.to_string (bound_addr t);
                   epoch = Lbr_obs.Trace.epoch_seconds ();
                   server_now = Unix.gettimeofday ();
                   dropped = Lbr_obs.Trace.dropped ();
                   events = Lbr_obs.Trace.events ();
                 });
            loop ()
        | Ok Wire.Metrics_dump_request ->
            send
              (Wire.Metrics_dump_reply
                 {
                   node = Addr.to_string (bound_addr t);
                   dump = Lbr_obs.Metrics.dump ();
                 });
            loop ()
        | Ok (Wire.Hello _) -> fatal "duplicate hello"
        | Ok _ -> fatal "unexpected server-side message kind"
      in
      loop ()
  | Ok (Wire.Hello v) ->
      fatal (Printf.sprintf "unsupported protocol version %d" v)
  | Ok _ -> fatal "expected hello"

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              register_conn t fd;
              ignore
                (Thread.create
                   (fun () ->
                     try handle_connection t fd with _ -> forget_conn t fd)
                   ()
                  : Thread.t)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)

let start_backend ?scheduler ?journal ?(recovered = 0) ~listen backend =
  (* A client closing mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd = Addr.listen listen in
  let t =
    {
      listen_addr = listen;
      backend;
      scheduler;
      journal;
      listen_fd;
      recovered;
      started_at = Unix.gettimeofday ();
      stop_flag = Atomic.make false;
      stopped = Atomic.make false;
      conns_mutex = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let start config =
  let journal = Option.map Journal.open_dir config.journal_dir in
  let scheduler =
    Scheduler.create ~runner:Runner.reduce ~jobs:config.jobs
      ~queue_depth:config.queue_depth ?journal ()
  in
  let recovered = Scheduler.recover scheduler in
  let started_at = Unix.gettimeofday () in
  let backend =
    {
      b_submit =
        (fun ~on_event ~seeds spec -> Scheduler.submit scheduler ~on_event ~seeds spec);
      b_cancel = Scheduler.cancel scheduler;
      b_stats = scheduler_stats scheduler started_at;
      b_drain = (fun () -> Scheduler.shutdown scheduler);
    }
  in
  match start_backend ~scheduler ?journal ~recovered ~listen:config.listen backend with
  | t -> t
  | exception e ->
      Scheduler.shutdown scheduler;
      (match journal with Some j -> Journal.close j | None -> ());
      raise e

let close_all_conns t =
  Mutex.lock t.conns_mutex;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    conns

let unlink_unix_path t =
  match t.listen_addr with
  | Addr.Unix_path p -> (
      try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Addr.Tcp _ -> ()

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stop_flag true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    unlink_unix_path t;
    (* Every in-flight job finishes and its terminal frame is written
       (finalize delivers events before drain can observe completion). *)
    t.backend.b_drain ();
    close_all_conns t;
    match t.journal with Some j -> Journal.close j | None -> ()
  end

(* The opposite of a graceful [stop]: drop everything on the floor, the
   way kill -9 would.  Jobs already running on worker domains keep
   running detached (domains cannot be killed from OCaml) — their event
   frames land on closed sockets and are swallowed — but no new frame
   leaves this daemon and no drain happens.  Tests use this to exercise
   the coordinator's failover without forking a process to kill. *)
let abort t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stop_flag true;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    unlink_unix_path t;
    close_all_conns t
  end

let run ?shutdown config =
  let shutdown = match shutdown with Some s -> s | None -> Shutdown.install () in
  let t = start config in
  Shutdown.on_drain shutdown (fun () -> stop t);
  while not (Shutdown.requested shutdown) do
    Thread.delay 0.1
  done;
  Shutdown.run_drain shutdown
