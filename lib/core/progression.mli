(** The [PROGRESSION] subroutine of Generalized Binary Reduction.

    [PROGRESSION_{R_I}(𝓛, J)] produces a non-empty list of disjoint subsets
    of [J] whose union is [J], such that every prefix union is a valid
    sub-input ([R_I] restricted to [J] holds on it) that overlaps every
    learned set in [𝓛] (invariant INV-PRO):

    {ul
    {- [R⁺ = R_I ∧ ⋀_{L∈𝓛}(⋁L)], with variables outside [J] set to false;}
    {- [D₀ = MSA_<(R⁺)];}
    {- [D_{k+1} = MSA_<(R⁺ ∧ x | D^∪_k = 1) ∖ D^∪_k] where
       [x = min_< (J ∖ D^∪_k)], until the union reaches [J].}} *)

open Lbr_logic
open Lbr_sat

val build :
  cnf:Cnf.t ->
  order:Order.t ->
  learned:Assignment.t list ->
  universe:Assignment.t ->
  (Assignment.t list, [ `Unsat ]) result
(** The progression for [R⁺] over [universe] ([J]).  [`Unsat] when even the
    fallback solver cannot satisfy [R⁺] within [J] — which contradicts
    GBR's invariants if the caller maintained them, so GBR surfaces it as an
    error rather than an impossible state. *)

val build_incremental :
  ?sorted:Var.t array ->
  engine:Msa.Engine.t ->
  order:Order.t ->
  universe:Assignment.t ->
  unit ->
  (Assignment.t list, [ `Conflict ]) result
(** The progression over a persistent engine the caller has already brought
    up to date (fresh from {!Msa.Engine.create}, or after
    {!Msa.Engine.add_clause} of the newly learned set and
    {!Msa.Engine.narrow} to [universe]) — no [r_plus] copy, no re-indexing.
    [sorted], when given, must be exactly [universe] in [order]-ascending
    order; the caller can maintain it across iterations by filtering the
    previous iteration's array (the shrunk universe is a subsequence), which
    replaces the per-iteration sort.
    Produces entries byte-identical to {!build} on the rebuilt formula;
    [`Conflict] exactly when {!build}'s fast path would conflict (the caller
    falls back to {!build}, whose slow path handles formulas outside the
    implication fragment).  The engine is left unusable on [`Conflict]. *)

val prefix_unions : Assignment.t list -> Assignment.t array
(** [prefix_unions d] is the array [D^∪] with
    [D^∪_r = D₀ ∪ … ∪ D_r]. *)

(** Lazy view of {!prefix_unions}: prefixes are materialized (and memoized)
    on first access, so a caller probing only O(log n) of the n prefixes —
    GBR's binary search — skips the other snapshots entirely.  [get] returns
    values equal to the corresponding {!prefix_unions} entries. *)
module Prefixes : sig
  type t

  val of_entries : Assignment.t list -> t
  val length : t -> int

  val get : t -> int -> Assignment.t
  (** [get t r] is [D^∪_r]; raises [Invalid_argument] outside
      [0 .. length t - 1]. *)

  val to_array : t -> Assignment.t array
  (** All prefixes, equal to [prefix_unions] of the original entries. *)
end
