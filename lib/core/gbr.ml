open Lbr_logic
open Lbr_sat

type stats = {
  iterations : int;
  predicate_runs : int;
  predicate_queries : int;
  learned : Assignment.t list;
  progression_lengths : int list;
}

type error = [ `Unsat | `Predicate_inconsistent | `Invariant_violation of string ]

(* Lemma 4.3's checkable invariants for a freshly built progression. *)
let progression_violation ~cnf ~learned ~universe entries prefixes =
  let n = Array.length prefixes in
  if n = 0 then Some "empty progression"
  else if not (Assignment.equal prefixes.(n - 1) universe) then
    Some "prefix union does not cover the search space"
  else begin
    let entries = Array.of_list entries in
    let ne = Array.length entries in
    (* Early-exit on the first overlapping pair instead of scanning the
       rest of the O(n²) pair space. *)
    let rec overlap i j =
      if i >= ne then None
      else if j >= ne then overlap (i + 1) (i + 2)
      else if not (Assignment.disjoint entries.(i) entries.(j)) then
        Some (Printf.sprintf "entries %d and %d overlap" i j)
      else overlap i (j + 1)
    in
    match overlap 0 1 with
    | Some _ as v -> v
    | None ->
        let restricted = Cnf.restrict cnf ~keep:universe in
        let bad = ref None in
        Array.iteri
          (fun r prefix ->
            if !bad = None then
              if not (Cnf.holds restricted prefix) then
                bad := Some (Printf.sprintf "prefix %d violates R+ (INV-PRO)" r)
              else
                List.iteri
                  (fun k l ->
                    if Assignment.disjoint l prefix then
                      bad :=
                        Some
                          (Printf.sprintf "prefix %d misses learned set %d (INV-PRO)" r k))
                  learned)
          prefixes;
        !bad
  end

(* Smallest r in (lo, hi] such that P(prefix.(r)), given ¬P(prefix.(lo)) and
   P(prefix.(hi)) — the latter by INV-PRO: the full prefix union equals the
   current search space J, which satisfied the predicate. *)
let binary_search predicate prefixes ~lo ~hi =
  let rec go lo hi =
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if Predicate.run predicate (Progression.Prefixes.get prefixes mid) then
        go lo mid
      else go mid hi
  in
  go lo hi

let reduce ?(check_invariants = false) ?(incremental = true) ?arena
    (problem : Problem.t) ~order =
  let predicate = problem.predicate in
  let runs0 = Predicate.runs predicate and queries0 = Predicate.queries predicate in
  let max_iterations = Assignment.cardinal problem.universe + 1 in
  let arena = match arena with Some a -> a | None -> Msa.Arena.default () in
  (* The persistent engine threaded through every iteration.  [None] means
     the per-iteration rebuild path (r_plus + Engine.create) — by request
     ([~incremental:false], the reference oracle), or permanently after any
     conflict: the rebuild's fast path meets the same conflict and hands
     over to the slow path for formulas outside the implication fragment,
     so the fallback is byte-identical to never having had an engine. *)
  let engine =
    ref
      (if incremental then
         match
           Msa.Engine.create ~arena problem.constraints ~order
             ~universe:problem.universe
         with
         | Ok e -> Some e
         | Error `Conflict -> None
       else None)
  in
  (* Retiring the engine — permanently (conflict fallback) or at the end —
     returns its storage to the arena for the next reduction. *)
  let retire_engine () =
    match !engine with
    | Some e ->
        engine := None;
        Msa.Arena.release arena e
    | None -> ()
  in
  (* The current search space in [order]-ascending order, maintained by
     filtering the previous iteration's array — the shrunk universe is a
     subsequence of it, so re-sorting per iteration is redundant. *)
  let sorted_cache = ref None in
  let sorted_universe j =
    let sorted =
      match !sorted_cache with
      | Some prev ->
          let out = Array.make (Assignment.cardinal j) 0 in
          let k = ref 0 in
          Array.iter
            (fun v ->
              if Assignment.mem v j then begin
                out.(!k) <- v;
                incr k
              end)
            prev;
          out
      | None -> Assignment.to_list j |> Order.sort order |> Array.of_list
    in
    sorted_cache := Some sorted;
    sorted
  in
  let build_entries ~fresh learned j =
    let fallback () =
      Progression.build ~cnf:problem.constraints ~order ~learned ~universe:j
    in
    match !engine with
    | None -> fallback ()
    | Some e -> (
        let prepared =
          match fresh with
          | None -> Ok ()  (* first iteration: the engine is freshly created *)
          | Some l -> (
              (* Append the just-learned set, then shrink the search space —
                 the whole inter-iteration update, replacing the full-CNF
                 copy and re-index. *)
              match Msa.Engine.add_clause e ~pos:(Assignment.to_list l) with
              | Error `Conflict -> Error `Conflict
              | Ok () -> Msa.Engine.narrow e ~keep:j)
        in
        match prepared with
        | Error `Conflict ->
            retire_engine ();
            fallback ()
        | Ok () -> (
            match
              Progression.build_incremental ~sorted:(sorted_universe j) ~engine:e
                ~order ~universe:j ()
            with
            | Ok entries -> Ok entries
            | Error `Conflict ->
                retire_engine ();
                fallback ()))
  in
  (* One iteration, factored out of [loop] so the [gbr.iteration] trace
     span covers exactly this iteration's work — recursing inside the span
     would nest every later iteration under the first. *)
  let iterate ~fresh learned j iterations prog_lengths =
      match build_entries ~fresh learned j with
      | Error `Unsat -> `Done (Error `Unsat)
      | Ok entries -> (
          (* Prefix snapshots are materialized lazily: each iteration reads
             only the head plus the O(log n) probes of the binary search. *)
          let prefixes = Progression.Prefixes.of_entries entries in
          match
            if check_invariants then
              progression_violation ~cnf:problem.constraints ~learned ~universe:j entries
                (Progression.Prefixes.to_array prefixes)
            else None
          with
          | Some message -> `Done (Error (`Invariant_violation message))
          | None ->
          let n = Progression.Prefixes.length prefixes in
          let prog_lengths = n :: prog_lengths in
          let head = Progression.Prefixes.get prefixes 0 in
          if Predicate.run predicate head then
            let stats =
              {
                iterations;
                predicate_runs = Predicate.runs predicate - runs0;
                predicate_queries = Predicate.queries predicate - queries0;
                learned = List.rev learned;
                progression_lengths = List.rev prog_lengths;
              }
            in
            `Done (Ok (head, stats))
          else if n = 1 then
            (* The head is the whole search space J, which satisfied the
               predicate when it became the search space: the predicate is
               not behaving like a function of its input. *)
            `Done (Error `Predicate_inconsistent)
          else begin
            let r = binary_search predicate prefixes ~lo:0 ~hi:(n - 1) in
            let entries = Array.of_list entries in
            let learned = entries.(r) :: learned in
            `Continue
              (entries.(r), learned, Progression.Prefixes.get prefixes r,
               iterations + 1, prog_lengths)
          end)
  in
  let rec loop ~fresh learned j iterations prog_lengths =
    if iterations > max_iterations then Error `Predicate_inconsistent
    else
      let step =
        Lbr_obs.Trace.with_span "gbr.iteration"
          ~args:(fun () ->
            [
              ("iteration", Lbr_obs.Trace.Int iterations);
              ("universe", Lbr_obs.Trace.Int (Assignment.cardinal j));
              ("learned", Lbr_obs.Trace.Int (List.length learned));
            ])
          (fun () -> iterate ~fresh learned j iterations prog_lengths)
      in
      match step with
      | `Done result -> result
      | `Continue (entry, learned, j, iterations, prog_lengths) ->
          loop ~fresh:(Some entry) learned j iterations prog_lengths
  in
  let result = loop ~fresh:None [] problem.universe 1 [] in
  retire_engine ();
  result
