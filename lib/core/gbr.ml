open Lbr_logic
open Lbr_sat

type stats = {
  iterations : int;
  predicate_runs : int;
  predicate_queries : int;
  learned : Assignment.t list;
  progression_lengths : int list;
}

type error = [ `Unsat | `Predicate_inconsistent | `Invariant_violation of string ]

(* Lemma 4.3's checkable invariants for a freshly built progression. *)
let progression_violation ~cnf ~learned ~universe entries prefixes =
  let n = Array.length prefixes in
  if n = 0 then Some "empty progression"
  else if not (Assignment.equal prefixes.(n - 1) universe) then
    Some "prefix union does not cover the search space"
  else begin
    let entries = Array.of_list entries in
    let ne = Array.length entries in
    (* Early-exit on the first overlapping pair instead of scanning the
       rest of the O(n²) pair space. *)
    let rec overlap i j =
      if i >= ne then None
      else if j >= ne then overlap (i + 1) (i + 2)
      else if not (Assignment.disjoint entries.(i) entries.(j)) then
        Some (Printf.sprintf "entries %d and %d overlap" i j)
      else overlap i (j + 1)
    in
    match overlap 0 1 with
    | Some _ as v -> v
    | None ->
        let restricted = Cnf.restrict cnf ~keep:universe in
        let bad = ref None in
        Array.iteri
          (fun r prefix ->
            if !bad = None then
              if not (Cnf.holds restricted prefix) then
                bad := Some (Printf.sprintf "prefix %d violates R+ (INV-PRO)" r)
              else
                List.iteri
                  (fun k l ->
                    if Assignment.disjoint l prefix then
                      bad :=
                        Some
                          (Printf.sprintf "prefix %d misses learned set %d (INV-PRO)" r k))
                  learned)
          prefixes;
        !bad
  end

(* Smallest r in (lo, hi] such that P(prefix.(r)), given ¬P(prefix.(lo)) and
   P(prefix.(hi)) — the latter by INV-PRO: the full prefix union equals the
   current search space J, which satisfied the predicate. *)
let binary_search predicate prefixes ~lo ~hi =
  let rec go lo hi =
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if Predicate.run predicate (Progression.Prefixes.get prefixes mid) then
        go lo mid
      else go mid hi
  in
  go lo hi

(* A speculatively prepared next iteration: the entries the winning
   boundary's build would produce, plus the branch engine (forked, learned
   clause added, narrowed, progression built) to adopt as the main engine.
   [pb_engine = None] means the fork met a conflict and the entries come
   from the rebuild fallback — adopting it retires the main engine, exactly
   as the sequential conflict path would.  [pb_sorted] is the filtered
   order-sorted universe the build used, to install in the sort cache on
   adoption. *)
type prebuilt = {
  pb_entries : Assignment.t list;
  pb_engine : Msa.Engine.t option;
  pb_sorted : Var.t array option;
}

let reduce ?(check_invariants = false) ?(incremental = true) ?arena ?speculate
    (problem : Problem.t) ~order =
  let predicate = problem.predicate in
  let runs0 = Predicate.runs predicate and queries0 = Predicate.queries predicate in
  let max_iterations = Assignment.cardinal problem.universe + 1 in
  let arena = match arena with Some a -> a | None -> Msa.Arena.default () in
  (* The persistent engine threaded through every iteration.  [None] means
     the per-iteration rebuild path (r_plus + Engine.create) — by request
     ([~incremental:false], the reference oracle), or permanently after any
     conflict: the rebuild's fast path meets the same conflict and hands
     over to the slow path for formulas outside the implication fragment,
     so the fallback is byte-identical to never having had an engine. *)
  let engine =
    ref
      (if incremental then
         match
           Msa.Engine.create ~arena problem.constraints ~order
             ~universe:problem.universe
         with
         | Ok e -> Some e
         | Error `Conflict -> None
       else None)
  in
  (* Retiring the engine — permanently (conflict fallback) or at the end —
     returns its storage to the arena for the next reduction. *)
  let retire_engine () =
    match !engine with
    | Some e ->
        engine := None;
        Msa.Arena.release arena e
    | None -> ()
  in
  (* The current search space in [order]-ascending order, maintained by
     filtering the previous iteration's array — the shrunk universe is a
     subsequence of it, so re-sorting per iteration is redundant. *)
  let sorted_cache = ref None in
  let sorted_universe j =
    let sorted =
      match !sorted_cache with
      | Some prev ->
          let out = Array.make (Assignment.cardinal j) 0 in
          let k = ref 0 in
          Array.iter
            (fun v ->
              if Assignment.mem v j then begin
                out.(!k) <- v;
                incr k
              end)
            prev;
          out
      | None -> Assignment.to_list j |> Order.sort order |> Array.of_list
    in
    sorted_cache := Some sorted;
    sorted
  in
  let build_entries ~fresh learned j =
    let fallback () =
      Progression.build ~cnf:problem.constraints ~order ~learned ~universe:j
    in
    match !engine with
    | None -> fallback ()
    | Some e -> (
        let prepared =
          match fresh with
          | None -> Ok ()  (* first iteration: the engine is freshly created *)
          | Some l -> (
              (* Append the just-learned set, then shrink the search space —
                 the whole inter-iteration update, replacing the full-CNF
                 copy and re-index. *)
              match Msa.Engine.add_clause e ~pos:(Assignment.to_list l) with
              | Error `Conflict -> Error `Conflict
              | Ok () -> Msa.Engine.narrow e ~keep:j)
        in
        match prepared with
        | Error `Conflict ->
            retire_engine ();
            fallback ()
        | Ok () -> (
            match
              Progression.build_incremental ~sorted:(sorted_universe j) ~engine:e
                ~order ~universe:j ()
            with
            | Ok entries -> Ok entries
            | Error `Conflict ->
                retire_engine ();
                fallback ()))
  in
  (* --- Speculation ------------------------------------------------------
     With a {!Speculate} table, the sequential loop above stays the
     authority for every verdict; speculation only prepares work the loop
     is about to demand.  Two kinds of preparation:

     - probe prefetch: before running the probe at [mid], hand both
       branches' next probes to idle workers, and cancel the loser once
       the real verdict lands;
     - boundary builds: when a branch pins the search result [r], fork the
       engine, apply the learned clause and narrow, and build the next
       iteration's progression now — the winning build is adopted wholesale
       (the fork becomes the main engine), the losing one is released.

     Both are pure with respect to the loop's observable state: builds run
     on forks, never the main engine, and every predicate verdict is still
     consumed on the demand path in the sequential order. *)
  let boundaries = ref [] in
  let release_prebuilt pb =
    match pb.pb_engine with
    | Some f -> Msa.Arena.release arena f
    | None -> ()
  in
  (* Release every cached boundary except [keep]'s, returning that one. *)
  let flush_boundaries ?keep () =
    let kept = ref None in
    List.iter
      (fun (r, pb) ->
        if keep = Some r then kept := Some pb else release_prebuilt pb)
      !boundaries;
    boundaries := [];
    !kept
  in
  (* Build iteration [k+1]'s progression under the assumption that the
     current search lands on [r] — on a fork, leaving the main engine and
     the sort cache untouched.  Mirrors [build_entries] branch for branch
     so the adopted state is exactly what the inline path would compute. *)
  let build_boundary entries prefixes learned r =
    let entry = entries.(r) in
    let j' = Progression.Prefixes.get prefixes r in
    let learned' = entry :: learned in
    let fallback () =
      match
        Progression.build ~cnf:problem.constraints ~order ~learned:learned'
          ~universe:j'
      with
      | Error `Unsat ->
          (* Don't cache: the demand path reproduces the [`Unsat] inline. *)
          None
      | Ok es -> Some { pb_entries = es; pb_engine = None; pb_sorted = None }
    in
    match !engine with
    | None -> fallback ()
    | Some e -> (
        let f = Msa.Engine.fork ~arena e in
        let prepared =
          match Msa.Engine.add_clause f ~pos:(Assignment.to_list entry) with
          | Error `Conflict -> Error `Conflict
          | Ok () -> Msa.Engine.narrow f ~keep:j'
        in
        match prepared with
        | Error `Conflict ->
            Msa.Arena.release arena f;
            fallback ()
        | Ok () -> (
            let sorted' =
              match !sorted_cache with
              | Some prev ->
                  let out = Array.make (Assignment.cardinal j') 0 in
                  let k = ref 0 in
                  Array.iter
                    (fun v ->
                      if Assignment.mem v j' then begin
                        out.(!k) <- v;
                        incr k
                      end)
                    prev;
                  out
              | None -> Assignment.to_list j' |> Order.sort order |> Array.of_list
            in
            match
              Progression.build_incremental ~sorted:sorted' ~engine:f ~order
                ~universe:j' ()
            with
            | Ok es ->
                Some { pb_entries = es; pb_engine = Some f; pb_sorted = Some sorted' }
            | Error `Conflict ->
                Msa.Arena.release arena f;
                fallback ()))
  in
  (* The next demand inside the half-open search interval (lo, hi]: a probe
     while the interval is wide, the next iteration's head once it pins
     [r = hi].  Prefetching a boundary also builds and caches its
     progression (see above). *)
  let next_branch sp entries prefixes learned ~lo ~hi =
    if hi - lo <= 1 then begin
      if not (List.mem_assoc hi !boundaries) then begin
        match build_boundary entries prefixes learned hi with
        | Some pb ->
            boundaries := (hi, pb) :: !boundaries;
            Speculate.prefetch sp (List.hd pb.pb_entries)
        | None -> ()
      end;
      `Boundary hi
    end
    else begin
      let mid = (lo + hi) / 2 in
      Speculate.prefetch sp (Progression.Prefixes.get prefixes mid);
      `Probe mid
    end
  in
  let cancel_branch sp prefixes = function
    | `Probe mid -> Speculate.cancel sp (Progression.Prefixes.get prefixes mid)
    | `Boundary r -> (
        match List.assoc_opt r !boundaries with
        | Some pb ->
            boundaries := List.remove_assoc r !boundaries;
            Speculate.cancel sp (List.hd pb.pb_entries);
            release_prebuilt pb
        | None -> ())
  in
  (* [binary_search] with branch prefetching: same probes in the same
     order, but before each verdict both possible next demands are already
     on their way.  A verdict hint (a replay journal that already knows
     this probe) prunes the prefetch to the branch that will be taken;
     the hint is advisory — the authoritative verdict still comes from
     [Predicate.run], and a wrong hint only forfeits a prefetch. *)
  let search_speculative sp entries prefixes learned ~lo ~hi =
    let rec go lo hi =
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        let phi = Progression.Prefixes.get prefixes mid in
        let h = Speculate.hint sp phi in
        let on_pass =
          if h = Some false then None
          else Some (next_branch sp entries prefixes learned ~lo ~hi:mid)
        in
        let on_fail =
          if h = Some true then None
          else Some (next_branch sp entries prefixes learned ~lo:mid ~hi)
        in
        if Predicate.run predicate phi then begin
          Option.iter (cancel_branch sp prefixes) on_fail;
          go lo mid
        end
        else begin
          Option.iter (cancel_branch sp prefixes) on_pass;
          go mid hi
        end
      end
    in
    go lo hi
  in
  (* One iteration, factored out of [loop] so the [gbr.iteration] trace
     span covers exactly this iteration's work — recursing inside the span
     would nest every later iteration under the first.  [prebuilt] is the
     adopted speculative build for this iteration, when the previous
     search's winning boundary had one. *)
  let iterate ~fresh ~prebuilt learned j iterations prog_lengths =
      let built =
        match prebuilt with
        | Some pb ->
            (* Adopt the branch state wholesale: the fork (or the fallback's
               [None]) replaces the main engine, and the filtered sorted
               universe lands in the cache exactly as [sorted_universe]
               would have left it. *)
            (match !engine with
            | Some e -> Msa.Arena.release arena e
            | None -> ());
            engine := pb.pb_engine;
            (match pb.pb_sorted with
            | Some sorted -> sorted_cache := Some sorted
            | None -> ());
            Ok pb.pb_entries
        | None -> build_entries ~fresh learned j
      in
      match built with
      | Error `Unsat -> `Done (Error `Unsat)
      | Ok entries -> (
          (* Prefix snapshots are materialized lazily: each iteration reads
             only the head plus the O(log n) probes of the binary search. *)
          let prefixes = Progression.Prefixes.of_entries entries in
          match
            if check_invariants then
              progression_violation ~cnf:problem.constraints ~learned ~universe:j entries
                (Progression.Prefixes.to_array prefixes)
            else None
          with
          | Some message -> `Done (Error (`Invariant_violation message))
          | None ->
          let n = Progression.Prefixes.length prefixes in
          let prog_lengths = n :: prog_lengths in
          let entries = Array.of_list entries in
          let head = Progression.Prefixes.get prefixes 0 in
          (* The head verdict's fail branch opens the search over
             (0, n-1]: start it before the head runs.  A passing head ends
             the reduction, so that branch has nothing to prefetch — and a
             hint that the head passes prunes the fail prefetch too. *)
          let head_fail =
            match speculate with
            | Some sp when n > 1 && Speculate.hint sp head <> Some true ->
                Some (next_branch sp entries prefixes learned ~lo:0 ~hi:(n - 1))
            | _ -> None
          in
          if Predicate.run predicate head then begin
            (match (speculate, head_fail) with
            | Some sp, Some branch -> cancel_branch sp prefixes branch
            | _ -> ());
            let stats =
              {
                iterations;
                predicate_runs = Predicate.runs predicate - runs0;
                predicate_queries = Predicate.queries predicate - queries0;
                learned = List.rev learned;
                progression_lengths = List.rev prog_lengths;
              }
            in
            `Done (Ok (head, stats))
          end
          else if n = 1 then
            (* The head is the whole search space J, which satisfied the
               predicate when it became the search space: the predicate is
               not behaving like a function of its input. *)
            `Done (Error `Predicate_inconsistent)
          else begin
            let r =
              match speculate with
              | Some sp ->
                  search_speculative sp entries prefixes learned ~lo:0 ~hi:(n - 1)
              | None -> binary_search predicate prefixes ~lo:0 ~hi:(n - 1)
            in
            let prebuilt = flush_boundaries ~keep:r () in
            let learned = entries.(r) :: learned in
            `Continue
              (entries.(r), learned, Progression.Prefixes.get prefixes r,
               iterations + 1, prog_lengths, prebuilt)
          end)
  in
  let rec loop ~fresh ~prebuilt learned j iterations prog_lengths =
    if iterations > max_iterations then begin
      (match prebuilt with Some pb -> release_prebuilt pb | None -> ());
      Error `Predicate_inconsistent
    end
    else
      let step =
        Lbr_obs.Trace.with_span "gbr.iteration"
          ~args:(fun () ->
            [
              ("iteration", Lbr_obs.Trace.Int iterations);
              ("universe", Lbr_obs.Trace.Int (Assignment.cardinal j));
              ("learned", Lbr_obs.Trace.Int (List.length learned));
            ])
          (fun () -> iterate ~fresh ~prebuilt learned j iterations prog_lengths)
      in
      match step with
      | `Done result -> result
      | `Continue (entry, learned, j, iterations, prog_lengths, prebuilt) ->
          loop ~fresh:(Some entry) ~prebuilt learned j iterations prog_lengths
  in
  let result = loop ~fresh:None ~prebuilt:None [] problem.universe 1 [] in
  ignore (flush_boundaries () : prebuilt option);
  retire_engine ();
  result
