open Lbr_logic

(* A digest-keyed table of speculative predicate executions.

   The reduction loop (the demand path) stays sequential and authoritative:
   it prefetches the assignments its own branches may ask for next, workers
   compute the pure check off-thread, and when the demand path actually
   needs a verdict it either claims a not-yet-started cell back (computing
   inline, exactly as without speculation) or waits for the in-flight one.
   All bookkeeping that observable behaviour depends on — predicate run
   counts, clocks, evaluation journals — happens on the demand path when
   the verdict is consumed, never when it is computed, which is what makes
   speculative and sequential runs byte-identical.

   Prefetch, cancel, demand and drain are all demand-path (single-thread)
   operations; only the worker body runs concurrently.  The in-flight
   budget counts Queued + Running cells, and exactly one party retires each
   cell from the budget: the worker that moved it Queued→Running retires it
   at Done/Poisoned, while cancel and demand retire only cells they move
   Queued→Cancelled (a worker finding its cell already cancelled just
   walks away). *)

type 'a state = Queued | Running | Done of 'a | Poisoned | Cancelled

type 'a cell = { phi : Assignment.t; mutable state : 'a state; mutable taken : bool }

type stats = {
  launched : int;
  committed : int;
  cancelled : int;
  wasted : int;  (** computed to completion but never demanded *)
  failed : int;  (** worker raised; the demand path recomputed inline *)
}

type 'a t = {
  spawn : (unit -> unit) -> unit;
  compute : Assignment.t -> 'a;
  should_launch : (Assignment.t -> bool) option;
  verdict_hint : (Assignment.t -> bool option) option;
  max_inflight : int;
  mutex : Mutex.t;
  cond : Condition.t;
  cells : (string, 'a cell) Hashtbl.t;
  mutable inflight : int;
  mutable s_launched : int;
  mutable s_committed : int;
  mutable s_cancelled : int;
  mutable s_wasted : int;
  mutable s_failed : int;
  mutable finalized : bool;
}

let m_launched =
  lazy (Lbr_obs.Metrics.counter "lbr_spec_launched_total" ~help:"Speculative predicate launches")

let m_committed =
  lazy (Lbr_obs.Metrics.counter "lbr_spec_committed_total" ~help:"Speculative verdicts consumed by the demand path")

let m_cancelled =
  lazy (Lbr_obs.Metrics.counter "lbr_spec_cancelled_total" ~help:"Speculative launches cancelled before running")

let create ~spawn ?should_launch ?verdict_hint ?(max_inflight = 4) compute =
  if max_inflight < 1 then invalid_arg "Speculate.create: max_inflight < 1";
  {
    spawn;
    compute;
    should_launch;
    verdict_hint;
    max_inflight;
    mutex = Mutex.create ();
    cond = Condition.create ();
    cells = Hashtbl.create 64;
    inflight = 0;
    s_launched = 0;
    s_committed = 0;
    s_cancelled = 0;
    s_wasted = 0;
    s_failed = 0;
    finalized = false;
  }

let hint t phi = match t.verdict_hint with None -> None | Some h -> h phi

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* [ctx] is the trace context of the domain that launched the
   speculation, re-installed here so the speculative predicate's spans
   parent under the same job as the demand path that (maybe) consumes
   the verdict — a speculation pool runs on its own domains, which
   otherwise have no context. *)
let worker t ctx cell () =
  let claimed =
    locked t (fun () ->
        match cell.state with
        | Queued ->
            cell.state <- Running;
            true
        | _ -> false)
  in
  if claimed then begin
    let outcome =
      Lbr_obs.Trace.with_context ctx @@ fun () ->
      match t.compute cell.phi with v -> Done v | exception _ -> Poisoned
    in
    Mutex.lock t.mutex;
    cell.state <- outcome;
    (match outcome with Poisoned -> t.s_failed <- t.s_failed + 1 | _ -> ());
    t.inflight <- t.inflight - 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let prefetch t phi =
  if match t.should_launch with None -> true | Some ok -> ok phi then begin
    let key = Assignment.digest_hex phi in
    let launched =
      locked t (fun () ->
          if Hashtbl.mem t.cells key || t.inflight >= t.max_inflight then None
          else begin
            let cell = { phi; state = Queued; taken = false } in
            Hashtbl.replace t.cells key cell;
            t.inflight <- t.inflight + 1;
            t.s_launched <- t.s_launched + 1;
            Some cell
          end)
    in
    match launched with
    | None -> ()
    | Some cell ->
        Perf.add "spec.launched" 1;
        Lbr_obs.Metrics.incr (Lazy.force m_launched);
        Lbr_obs.Trace.instant "spec.launch";
        t.spawn (worker t (Lbr_obs.Trace.current_context ()) cell)
  end

(* Cancel a cell on the demand path; caller holds the lock.  Returns
   whether this call retired the cell from the in-flight budget. *)
let cancel_locked t cell =
  match cell.state with
  | Queued ->
      cell.state <- Cancelled;
      t.inflight <- t.inflight - 1;
      t.s_cancelled <- t.s_cancelled + 1;
      true
  | _ -> false

let note_cancelled n =
  if n > 0 then begin
    Perf.add "spec.cancelled" n;
    for _ = 1 to n do
      Lbr_obs.Metrics.incr (Lazy.force m_cancelled)
    done
  end

let cancel t phi =
  let key = Assignment.digest_hex phi in
  let did =
    locked t (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some cell -> cancel_locked t cell
        | None -> false)
  in
  if did then note_cancelled 1

let demand t phi =
  let key = Assignment.digest_hex phi in
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.cells key with
    | None -> None
    | Some cell ->
        let rec settle () =
          match cell.state with
          | Queued ->
              (* No worker got to it: claim it back and compute inline,
                 exactly as the sequential path would. *)
              ignore (cancel_locked t cell);
              `Missed
          | Running ->
              Condition.wait t.cond t.mutex;
              settle ()
          | Done v ->
              cell.taken <- true;
              t.s_committed <- t.s_committed + 1;
              `Hit v
          | Poisoned | Cancelled -> `Fallback
        in
        (match settle () with
        | `Hit v -> Some (`Hit v)
        | `Missed -> Some `Missed
        | `Fallback -> None)
  in
  Mutex.unlock t.mutex;
  match result with
  | Some (`Hit v) ->
      Perf.add "spec.committed" 1;
      Lbr_obs.Metrics.incr (Lazy.force m_committed);
      Lbr_obs.Trace.instant "spec.commit";
      Some v
  | Some `Missed ->
      note_cancelled 1;
      None
  | None -> None

let drain t =
  let newly =
    locked t (fun () ->
        let n = ref 0 in
        Hashtbl.iter
          (fun _ cell -> if cancel_locked t cell then incr n)
          t.cells;
        !n)
  in
  note_cancelled newly;
  Mutex.lock t.mutex;
  while t.inflight > 0 do
    Condition.wait t.cond t.mutex
  done;
  if not t.finalized then begin
    t.finalized <- true;
    Hashtbl.iter
      (fun _ cell ->
        match cell.state with
        | Done _ when not cell.taken -> t.s_wasted <- t.s_wasted + 1
        | _ -> ())
      t.cells
  end;
  Mutex.unlock t.mutex

let stats t =
  locked t (fun () ->
      {
        launched = t.s_launched;
        committed = t.s_committed;
        cancelled = t.s_cancelled;
        wasted = t.s_wasted;
        failed = t.s_failed;
      })
