open Lbr_logic
open Lbr_sat

let r_plus cnf learned =
  Cnf.add_clauses cnf
    (List.map (fun l -> Clause.of_disjunction ~pos:(Assignment.to_list l)) learned)

(* Entry construction over a prepared engine (fresh from [create], or a
   persistent engine after [add_clause] + [narrow]); each variable of the
   universe is propagated at most once in total.  The next excluded variable
   is found by a pointer scan over the [<]-sorted universe — the covered set
   only grows, so the pointer never moves back and the whole scan is
   O(|universe|) across all entries, where recomputing [universe \ covered]
   and its minimum per entry was quadratic.  Entries come from the
   propagation trail ([delta_since]) instead of diffing two closure copies,
   cutting the per-entry allocation from two universe-sized sets and a diff
   to one delta-sized set. *)
let entries_on_engine ?sorted engine ~order ~universe =
  Lbr_obs.Trace.with_span "sat.engine-propagate"
    ~args:(fun () -> [ ("universe", Lbr_obs.Trace.Int (Assignment.cardinal universe)) ])
  @@ fun () ->
  Perf.time "sat.engine-propagate" @@ fun () ->
  let sorted =
    match sorted with
    | Some s -> s
    | None -> Assignment.to_list universe |> Order.sort order |> Array.of_list
  in
  let n = Array.length sorted in
  let rec entries acc i =
    if i >= n then Ok (List.rev acc)
    else if Msa.Engine.is_true engine sorted.(i) then entries acc (i + 1)
    else
      let m = Msa.Engine.mark engine in
      match Msa.Engine.assume engine sorted.(i) with
      | Error `Conflict -> Error `Conflict
      | Ok () -> entries (Msa.Engine.delta_since engine m :: acc) (i + 1)
  in
  (* D₀ may be empty when nothing is required; the progression is still
     well-defined (its first prefix is the empty, valid sub-input). *)
  let result = entries [ Msa.Engine.true_set engine ] 0 in
  Msa.Engine.flush_counters engine;
  result

(* Fast path: an arena-recycled engine per progression. *)
let build_fast ~cnf ~order ~universe =
  let arena = Msa.Arena.default () in
  match Msa.Engine.create ~arena cnf ~order ~universe with
  | Error `Conflict -> Error `Conflict
  | Ok engine ->
      let result = entries_on_engine engine ~order ~universe in
      Msa.Arena.release arena engine;
      result

(* Slow path for formulas outside the implication fragment.  One engine is
   created and snapshotted at its post-[create] quiescent point; each entry
   re-assumes [covered ∪ {x}] in ascending order and rolls back, which
   reproduces a fresh engine run on the same required set (same state, same
   closure, same conflicts) without re-indexing the formula per entry.
   Entries whose fixpoint conflicts fall back to DPLL search plus greedy
   minimization, exactly as {!Msa.compute} would. *)
let build_slow ~cnf ~order ~universe =
  let restricted = lazy (Cnf.restrict cnf ~keep:universe) in
  let general_msa ~required =
    match Solver.solve_with (Lazy.force restricted) ~required with
    | None -> None
    | Some model -> Some (Solver.minimize (Lazy.force restricted) ~order ~required ~model)
  in
  let entry_closure ~engine ~required =
    match engine with
    | None -> general_msa ~required
    | Some (engine, base) -> (
        match Msa.Engine.assume_all engine (Assignment.to_list required) with
        | Ok () ->
            let closure = Msa.Engine.true_set engine in
            Msa.Engine.rollback engine base;
            Some closure
        | Error `Conflict ->
            Msa.Engine.rollback engine base;
            general_msa ~required)
  in
  let arena = Msa.Arena.default () in
  let engine =
    match Msa.Engine.create ~arena cnf ~order ~universe with
    | Error `Conflict -> None
    | Ok e -> Some (e, Msa.Engine.snapshot e)
  in
  let d0 =
    match engine with
    | None -> general_msa ~required:Assignment.empty
    | Some (e, _) -> Some (Msa.Engine.true_set e)
  in
  let result =
    match d0 with
    | None -> Error `Unsat
    | Some d0 ->
        let rec entries acc covered =
          let remaining = Assignment.diff universe covered in
          match Order.min_of order remaining with
          | None -> Ok (List.rev acc)
          | Some x -> (
              match entry_closure ~engine ~required:(Assignment.add x covered) with
              | None -> Error `Unsat
              | Some closure ->
                  let entry = Assignment.diff closure covered in
                  entries (entry :: acc) (Assignment.union covered closure))
        in
        entries [ d0 ] d0
  in
  (match engine with Some (e, _) -> Msa.Arena.release arena e | None -> ());
  result

let build ~cnf ~order ~learned ~universe =
  let cnf = r_plus cnf learned in
  match build_fast ~cnf ~order ~universe with
  | Ok entries -> Ok entries
  | Error `Conflict -> build_slow ~cnf ~order ~universe

let build_incremental ?sorted ~engine ~order ~universe () =
  entries_on_engine ?sorted engine ~order ~universe

let prefix_unions entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let width =
    Array.fold_left (fun w d -> max w (Assignment.word_width d)) 0 arr
  in
  (* One scratch buffer accumulates the running union; each prefix is a
     single snapshot of it, instead of a fresh union re-reading the previous
     prefix per step. *)
  let scratch = Array.make width 0 in
  let unions = Array.make n Assignment.empty in
  Array.iteri
    (fun i d ->
      Assignment.or_into d scratch;
      unions.(i) <- Assignment.of_words scratch)
    arr;
  unions

(* Lazy counterpart of [prefix_unions]: GBR's binary search reads only
   O(log n) of the n prefixes per iteration (plus the head), so snapshotting
   all of them is mostly wasted allocation.  The view materializes a prefix
   on first access by advancing a running-union scratch buffer, memoizes it,
   and restarts from the nearest memoized prefix when asked for an earlier
   index.  Materialized values are exactly [prefix_unions]'s. *)
module Prefixes = struct
  type t = {
    entries : Assignment.t array;
    memo : Assignment.t option array;
    scratch : int array;
    mutable cursor : int;  (* scratch = union of entries.(0 .. cursor) *)
  }

  let of_entries entries =
    let entries = Array.of_list entries in
    let width =
      Array.fold_left (fun w d -> max w (Assignment.word_width d)) 0 entries
    in
    {
      entries;
      memo = Array.make (max (Array.length entries) 1) None;
      scratch = Array.make (max width 1) 0;
      cursor = -1;
    }

  let length t = Array.length t.entries

  let get t r =
    match t.memo.(r) with
    | Some p -> p
    | None ->
        if r < t.cursor then begin
          (* Rewind: restart the scratch union from the nearest memoized
             prefix at or below r (or from empty). *)
          let j = ref r in
          while !j >= 0 && (match t.memo.(!j) with None -> true | Some _ -> false) do
            decr j
          done;
          Array.fill t.scratch 0 (Array.length t.scratch) 0;
          (if !j >= 0 then
             match t.memo.(!j) with
             | Some p -> Assignment.or_into p t.scratch
             | None -> assert false);
          t.cursor <- !j
        end;
        for i = t.cursor + 1 to r do
          Assignment.or_into t.entries.(i) t.scratch
        done;
        t.cursor <- r;
        let p = Assignment.of_words t.scratch in
        t.memo.(r) <- Some p;
        p

  let to_array t = Array.init (length t) (get t)
end
