(** Speculative predicate execution for the GBR loop.

    GBR's search tree is binary, and both children of a pending predicate
    are computable before its verdict arrives — so idle workers can run
    the next probes speculatively while the demand path waits on the
    current one.  This module is the digest-keyed table mediating that:
    the (sequential, authoritative) demand path {!prefetch}es the
    assignments its branches may need, workers compute the pure check
    off-thread, and {!demand} consumes a finished verdict or reclaims an
    unstarted cell to compute inline.  {!cancel} aborts the losing branch
    after each real verdict; a cell already running is left to finish (the
    pool has no preemption) and merely counts as wasted work.

    Determinism contract: with a [compute] that is pure and agrees with the
    demand path's own check, a reduction using this table is byte-identical
    to the sequential one — verdicts are identical wherever they were
    computed, and every observable side effect (run counts, clocks,
    evaluation journaling) happens on the demand path at consumption time.
    A worker that raises poisons its cell; {!demand} then reports a miss
    and the caller recomputes inline, preserving the contract even under
    fault injection.

    Thread-safety: {!prefetch}, {!cancel}, {!demand}, {!drain} and
    {!stats} are demand-path operations (call them from the reduction
    thread); only the worker closures passed to [spawn] run concurrently. *)

open Lbr_logic

type 'a t

type stats = {
  launched : int;  (** cells handed to [spawn] *)
  committed : int;  (** verdicts consumed by {!demand} *)
  cancelled : int;  (** cells aborted before a worker started them *)
  wasted : int;  (** computed to completion but never demanded *)
  failed : int;  (** worker raised; the demand path recomputed inline *)
}

val create :
  spawn:((unit -> unit) -> unit) ->
  ?should_launch:(Assignment.t -> bool) ->
  ?verdict_hint:(Assignment.t -> bool option) ->
  ?max_inflight:int ->
  (Assignment.t -> 'a) ->
  'a t
(** [create ~spawn compute] builds a speculation table whose workers run
    [compute] via [spawn] (typically [Lbr_runtime.Pool.submit]).
    [should_launch] gates {!prefetch} — e.g. to skip assignments whose
    verdict a replay journal already holds; [verdict_hint] is an advisory
    oracle over the {e current} demand (e.g. a replay journal's recorded
    verdict) letting the search prefetch only the branch that will be
    taken — a wrong or absent hint costs speed, never correctness;
    [max_inflight] (default 4) bounds the width of the speculation
    frontier: prefetches beyond the budget are dropped, not queued. *)

val hint : 'a t -> Assignment.t -> bool option
(** The [verdict_hint] for [phi], if one was configured.  [Some v] means
    the demand path is expected (not guaranteed) to observe verdict [v]. *)

val prefetch : 'a t -> Assignment.t -> unit
(** Launch [compute phi] speculatively.  No-op if the digest is already
    tabled, the width budget is exhausted, or [should_launch] declines. *)

val cancel : 'a t -> Assignment.t -> unit
(** Abort the cell for [phi] if no worker has started it; a running cell
    is left to finish and its result kept (a later {!demand} may still
    use it). *)

val demand : 'a t -> Assignment.t -> 'a option
(** Consume the speculative verdict for [phi].  [Some v] if a worker
    finished (or, after blocking, finishes) computing it; [None] if the
    digest was never prefetched, was cancelled, or its worker raised — or
    if the cell was still unstarted, in which case it is reclaimed so the
    caller's inline computation is the only one. *)

val drain : 'a t -> unit
(** Cancel every unstarted cell and block until the running ones finish.
    Call before tearing down the pool or reading final {!stats}. *)

val stats : 'a t -> stats
