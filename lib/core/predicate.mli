(** Instrumented black-box predicates.

    The paper's [𝒫] can only be invoked, never inspected; everything the
    algorithms learn about it comes from running it.  This wrapper counts
    executions (the evaluation's main cost metric), optionally memoizes them
    (re-running a decompiler on an input already tried is wasted work), and
    lets observers tap each check — which is how the harness reconstructs
    the reduction-over-time curves of Figure 8b.

    {2 Thread-safety contract}

    All operations may be called concurrently from multiple domains.  The
    memo table, counters, and observer list are guarded by one mutex per
    predicate; counters are exact (no lost updates).  The black box itself
    runs {e outside} the lock, so concurrent runs proceed in parallel —
    with the consequence that two domains racing on the same uncached
    input may both execute the black box (both executions are counted by
    {!runs}; the memo keeps one of the identical results).  Observers are
    invoked outside the lock, after the execution, on the executing
    domain; an observer shared between domains must do its own locking. *)

open Lbr_logic

type t

val make : ?name:string -> ?memoize:bool -> (Assignment.t -> bool) -> t
(** [make f] wraps the black box [f].  [memoize] defaults to [true]. *)

val name : t -> string

val run : t -> Assignment.t -> bool
(** Evaluate the predicate on a sub-input (given as its true-variable set). *)

val runs : t -> int
(** Number of underlying executions (cache misses). *)

val queries : t -> int
(** Number of {!run} calls, including memoized hits. *)

val reset : t -> unit
(** Clear counters and memo table. *)

val on_check : t -> (Assignment.t -> bool -> unit) -> unit
(** Register an observer invoked after every underlying execution (not on
    memo hits) with the tested set and the outcome. *)
