open Lbr_logic

module AMap = Map.Make (struct
  type t = Assignment.t

  let compare = Assignment.compare
end)

type t = {
  name : string;
  black_box : Assignment.t -> bool;
  memoize : bool;
  mutex : Mutex.t;
  mutable memo : bool AMap.t;
  mutable runs : int;
  mutable queries : int;
  mutable observers : (Assignment.t -> bool -> unit) list;
}

let make ?(name = "predicate") ?(memoize = true) black_box =
  {
    name;
    black_box;
    memoize;
    mutex = Mutex.create ();
    memo = AMap.empty;
    runs = 0;
    queries = 0;
    observers = [];
  }

let name t = t.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let latency_hist =
  lazy
    (Lbr_obs.Metrics.histogram ~help:"Black-box predicate execution latency."
       "lbr_predicate_latency_seconds")

(* The black box runs outside the lock: holding it would serialize every
   concurrent caller on the slowest predicate execution. *)
let execute t input =
  locked t (fun () -> t.runs <- t.runs + 1);
  let t0 = Lbr_obs.Trace.now () in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        let t1 = Lbr_obs.Trace.now () in
        Lbr_obs.Trace.span_between "core.predicate" ~start:t0 ~finish:t1;
        Lbr_obs.Metrics.observe (Lazy.force latency_hist) (t1 -. t0))
      (fun () -> Perf.time "core.predicate" (fun () -> t.black_box input))
  in
  let observers = locked t (fun () -> t.observers) in
  List.iter (fun observe -> observe input outcome) observers;
  outcome

let run t input =
  let cached =
    locked t (fun () ->
        t.queries <- t.queries + 1;
        if not t.memoize then None
        else
          match AMap.find_opt input t.memo with
          | Some outcome -> Some outcome
          | None -> None)
  in
  match cached with
  | Some outcome -> outcome
  | None ->
      let outcome = execute t input in
      if t.memoize then locked t (fun () -> t.memo <- AMap.add input outcome t.memo);
      outcome

let runs t = locked t (fun () -> t.runs)

let queries t = locked t (fun () -> t.queries)

let reset t =
  locked t (fun () ->
      t.memo <- AMap.empty;
      t.runs <- 0;
      t.queries <- 0)

let on_check t observe = locked t (fun () -> t.observers <- observe :: t.observers)
