(** Generalized Binary Reduction (Algorithm 1).

    Given an Input Reduction Problem instance, GBR finds a valid
    failure-inducing sub-input by interleaving black-box predicate runs with
    progression construction.  Each main-loop iteration either returns (the
    head of the progression already fails) or learns one new set — the last
    set of the minimal failing prefix, found by binary search — so the loop
    terminates after at most [|I|] iterations, and every predicate run is on
    a valid sub-input.

    On instances whose constraints are all graph constraints the result is
    locally minimal (Theorem 4.5); in general it is a small — not necessarily
    minimal — solution (see the [(a∧b⇒c)∧(c⇒b)] example in §4.4). *)

open Lbr_logic
open Lbr_sat

type stats = {
  iterations : int;  (** main-loop iterations (learned sets + final check) *)
  predicate_runs : int;  (** underlying predicate executions during reduction *)
  predicate_queries : int;  (** including memoized hits *)
  learned : Assignment.t list;  (** the sets added to 𝓛, oldest first *)
  progression_lengths : int list;  (** length of each progression built *)
}

type error =
  [ `Unsat  (** the constraints admit no sub-input within the search space *)
  | `Predicate_inconsistent
    (** the predicate violated the monotonicity assumption in a detectable
        way: the full prefix of a progression — equal to a set that
        previously satisfied the predicate — no longer does *)
  | `Invariant_violation of string
    (** only with [~check_invariants:true]: an internal invariant (INV-D /
        INV-PRO) failed, indicating a bug in the progression machinery *) ]

val reduce :
  ?check_invariants:bool ->
  ?incremental:bool ->
  ?arena:Msa.Arena.t ->
  ?speculate:'a Speculate.t ->
  Problem.t ->
  order:Order.t ->
  (Assignment.t * stats, error) result
(** Run GBR.  The caller is responsible for the instance assumptions
    ([𝒫(I)], [R_I(I)], monotonicity) — use {!Problem.validate} first when in
    doubt.  The returned assignment satisfies both the constraints and the
    predicate.

    [~speculate] pipelines the otherwise-sequential loop: before each
    predicate verdict lands, the assignments both branches would demand
    next are {!Speculate.prefetch}ed onto idle workers (and the next
    iteration's progression pre-built on an {!Msa.Engine.fork} when a
    branch pins the search result), with the losing branch cancelled once
    the real verdict arrives.  The demand sequence, results and statistics
    are byte-identical to the sequential run — speculation only moves pure
    predicate computation off-thread; the caller's predicate is expected
    to consult the same table via {!Speculate.demand} (see
    [Lbr_frontend.Run]).

    [~arena] (default: the domain's shared {!Msa.Arena.default}) supplies
    recycled engine storage; the persistent engine is acquired from it and
    released back when the reduction finishes or falls back, so reducing
    many instances in sequence reallocates no solver state.

    [~incremental:true] (the default) threads one persistent
    {!Msa.Engine} through every iteration — learned sets are appended with
    {!Msa.Engine.add_clause} and the search space shrunk with
    {!Msa.Engine.narrow}, eliminating the per-iteration [r_plus] formula
    copy and engine re-index.  [~incremental:false] rebuilds from scratch
    every iteration (the reference oracle); both paths produce byte-identical
    results and statistics — on any engine conflict (formulas outside the
    implication fragment) the incremental path permanently falls back to the
    rebuild path, which meets the same conflict and dispatches to the slow
    progression.

    [~check_invariants:true] (default [false]) validates Lemma 4.3's
    invariants on every progression: the entries are non-empty, pairwise
    disjoint and cover the search space (INV-D), and every prefix union is
    a valid sub-input overlapping every learned set (INV-PRO).  Intended
    for tests and debugging — it adds a quadratic pass per iteration. *)
