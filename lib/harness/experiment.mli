(** Running the four reduction strategies on corpus instances.

    Time is reported on a documented simulated clock: every underlying
    predicate execution (decompile + recompile of the candidate sub-pool)
    costs [base + rate × bytes] simulated seconds, mimicking the paper's
    setup where each cycle took tens of seconds on real decompilers.  Wall
    clock is recorded separately (our simulated tools are fast; the paper's
    were the bottleneck). *)

open Lbr_jvm

type strategy = Jreduce | Lossy_first | Lossy_last | Gbr

val strategy_name : strategy -> string
val all_strategies : strategy list

type outcome = {
  instance_id : string;
  strategy : strategy;
  ok : bool;  (** the final sub-input still produces the full error set *)
  sim_time : float;  (** simulated seconds spent in predicate runs *)
  wall_time : float;
  predicate_runs : int;
  replayed_runs : int;
      (** predicate runs answered by [hooks.evaluate] returning [Replayed]
          (e.g. the server's journal replay); always 0 without hooks *)
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
  items0 : int;
  items1 : int;
  lines0 : int;
  lines1 : int;
  timeline : (float * int * int) list;
      (** (simulated time, best classes, best bytes) at each improvement,
          oldest first; implicitly starts at (0, classes0, bytes0) *)
}

val default_cost : Classpool.t -> float
(** [1.0 + 4e-4 × bytes] simulated seconds per decompile+recompile. *)

exception Cancelled
(** Raised out of a run when [hooks.should_stop] returns [true]. *)

type evaluation = Fresh of bool | Replayed of bool
(** How a hooked predicate evaluation was answered: by actually running the
    tool ([Fresh]) or from a replayed/memoized source ([Replayed]). *)

type hooks = {
  on_improvement : (float -> int -> int -> unit) option;
      (** called with (simulated time, classes, bytes) at every timeline
          improvement — how the server streams progress *)
  should_stop : (unit -> bool) option;
      (** polled before every predicate run; [true] raises {!Cancelled} *)
  evaluate : (key:string -> (unit -> bool) -> evaluation) option;
      (** full interception of the tool run.  [key] is the hex digest of the
          candidate sub-pool's serialized bytes (stable across processes, so
          it can key a write-ahead journal); the thunk performs the real
          decompile+recompile check.  The simulated clock has already been
          charged when this is called, so replaying a memoized result keeps
          [sim_time] — and hence the whole outcome — identical to a cold
          run. *)
  peek : (key:string -> bool option) option;
      (** non-executing verdict lookup (e.g. into a replay journal), used
          to gate speculative launches: an assignment whose verdict is
          already known is never executed speculatively, so speculation
          adds no fresh executions to a replayed workload *)
}

val default_hooks : hooks
(** All fields [None]: exactly the unhooked behaviour. *)

val run : ?cost:(Classpool.t -> float) -> strategy -> Corpus.instance -> outcome

val run_with :
  ?cost:(Classpool.t -> float) ->
  ?hooks:hooks ->
  ?speculate:Lbr_runtime.Pool.t ->
  strategy ->
  Corpus.instance ->
  outcome * Classpool.t
(** Like {!run} but also returns the final reduced pool (what the server
    serializes back to the client), and threads [hooks] through the
    driver.  [run] is [fst ∘ run_with ~hooks:default_hooks].

    [~speculate] (GBR only; the baselines ignore it) pipelines the
    reduction loop over the given worker pool via {!Lbr.Speculate}: probes
    and next-iteration builds for both branches of each pending verdict
    run speculatively, with the losing branch cancelled when the verdict
    lands.  Every outcome field except [wall_time] is byte-identical to
    the sequential run.  Requires a deterministic [cost] function and a
    fault-free tool (speculative workers execute the tool directly; with
    {!Lbr_decompiler.Tool.Faults} injection the shared fault schedule's
    draw order — hence byte-identity — is no longer guaranteed). *)

val run_corpus :
  ?cost:(Classpool.t -> float) ->
  ?jobs:int ->
  strategy ->
  Corpus.instance list ->
  outcome list
(** Run one strategy over a list of instances, fanning them across a
    [Lbr_runtime.Pool] of [jobs] worker domains ([jobs] defaults to [1],
    which is exactly the sequential [List.map] over {!run}).  Outcomes come
    back in instance order, and every field except [wall_time] is
    deterministic — identical for any [jobs] — because instances share no
    mutable state (the global pattern memo caches are mutex-guarded and
    pure in their keys). *)

val run_corpus_full :
  ?cost:(Classpool.t -> float) ->
  ?jobs:int ->
  ?hooks:(Corpus.instance -> hooks) ->
  ?speculate:Lbr_runtime.Pool.t ->
  strategy ->
  Corpus.instance list ->
  (outcome * Classpool.t) list
(** [run_corpus] that also returns each instance's final reduced pool and
    lets the caller attach per-instance hooks (the CLI uses [should_stop]
    for graceful SIGINT/SIGTERM drain).  A {!Cancelled} raised by any
    instance propagates after in-flight instances finish.  [~speculate]
    is threaded to {!run_with} per instance — pair it with [jobs = 1]
    (intra-instance parallelism from the speculation pool replaces
    cross-instance fan-out). *)
