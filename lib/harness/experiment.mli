(** Running the four reduction strategies on corpus instances.

    Time is reported on a documented simulated clock: every underlying
    predicate execution (decompile + recompile of the candidate sub-pool)
    costs [base + rate × bytes] simulated seconds, mimicking the paper's
    setup where each cycle took tens of seconds on real decompilers.  Wall
    clock is recorded separately (our simulated tools are fast; the paper's
    were the bottleneck). *)

open Lbr_jvm

type strategy = Jreduce | Lossy_first | Lossy_last | Gbr

val strategy_name : strategy -> string
val all_strategies : strategy list

type outcome = {
  instance_id : string;
  strategy : strategy;
  ok : bool;  (** the final sub-input still produces the full error set *)
  sim_time : float;  (** simulated seconds spent in predicate runs *)
  wall_time : float;
  predicate_runs : int;
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
  items0 : int;
  items1 : int;
  lines0 : int;
  lines1 : int;
  timeline : (float * int * int) list;
      (** (simulated time, best classes, best bytes) at each improvement,
          oldest first; implicitly starts at (0, classes0, bytes0) *)
}

val default_cost : Classpool.t -> float
(** [1.0 + 4e-4 × bytes] simulated seconds per decompile+recompile. *)

val run : ?cost:(Classpool.t -> float) -> strategy -> Corpus.instance -> outcome

val run_corpus :
  ?cost:(Classpool.t -> float) ->
  ?jobs:int ->
  strategy ->
  Corpus.instance list ->
  outcome list
(** Run one strategy over a list of instances, fanning them across a
    [Lbr_runtime.Pool] of [jobs] worker domains ([jobs] defaults to [1],
    which is exactly the sequential [List.map] over {!run}).  Outcomes come
    back in instance order, and every field except [wall_time] is
    deterministic — identical for any [jobs] — because instances share no
    mutable state (the global pattern memo caches are mutex-guarded and
    pure in their keys). *)
