open Lbr_logic
open Lbr_jvm

type strategy = Jreduce | Lossy_first | Lossy_last | Gbr

let strategy_name = function
  | Jreduce -> "j-reduce"
  | Lossy_first -> "lossy-first"
  | Lossy_last -> "lossy-last"
  | Gbr -> "gbr"

let all_strategies = [ Jreduce; Lossy_first; Lossy_last; Gbr ]

type outcome = {
  instance_id : string;
  strategy : strategy;
  ok : bool;
  sim_time : float;
  wall_time : float;
  predicate_runs : int;
  replayed_runs : int;
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
  items0 : int;
  items1 : int;
  lines0 : int;
  lines1 : int;
  timeline : (float * int * int) list;
}

let default_cost pool = 1.0 +. (4e-4 *. float_of_int (Size.bytes pool))

exception Cancelled

type evaluation = Fresh of bool | Replayed of bool

type hooks = {
  on_improvement : (float -> int -> int -> unit) option;
  should_stop : (unit -> bool) option;
  evaluate : (key:string -> (unit -> bool) -> evaluation) option;
  peek : (key:string -> bool option) option;
}

let default_hooks =
  { on_improvement = None; should_stop = None; evaluate = None; peek = None }

(* Sorted-list inclusion: is every baseline message present?  Shared with
   the frontend subsystem's JVM predicate bridge. *)
let includes_sorted = Lbr_frontend.Jvm.includes_sorted

(* Shared instrumentation: a simulated clock, an improvement timeline, and a
   predicate body evaluating a candidate sub-pool. *)
(* Everything the demand path charges and journals about one predicate
   run, precomputed by a speculative worker: verdict, cost, and the sizes
   the improvement timeline needs.  [cost]/[Size] are deterministic, so
   the payload equals what the inline computation would have produced. *)
type spec_payload = {
  sp_ok : bool;
  sp_cost : float;
  sp_classes : int;
  sp_bytes : int;
}

type driver = {
  clock : float ref;
  improvements : (float * int * int) list ref;
  best : (int * int) ref;
  replayed : int ref;
  check_pool : ?phi:Assignment.t -> Classpool.t -> bool;
  check_payload : phi:Assignment.t -> spec_payload -> bool;
}

let make_driver (instance : Corpus.instance) ~cost ~hooks =
  let tool = instance.tool and baseline = instance.baseline_errors in
  let clock = ref 0.0 in
  let best = ref (max_int, max_int) in
  let improvements = ref [] in
  let replayed = ref 0 in
  (* All observable accounting for one predicate run, on the demand path —
     identical whether the verdict/sizes were computed inline or arrive in
     a speculative payload. *)
  let account ?phi ~key_of ~charge ~eval ~size () =
    Lbr_logic.Perf.time "core.check-pool" @@ fun () ->
    (match hooks.should_stop with Some stop when stop () -> raise Cancelled | _ -> ());
    clock := !clock +. charge;
    let ok =
      match hooks.evaluate with
      | None -> eval ()
      | Some evaluate -> (
          (* The key must be stable across processes (it names journal
             entries, which are scoped to one job).  The assignment that
             produced the sub-pool determines it, so digesting the
             assignment's words gives the same memoization as digesting the
             serialized sub-pool without serializing anything; serialization
             remains the fallback for callers with no assignment. *)
          let key =
            match phi with
            | Some phi -> Assignment.digest_hex phi
            | None -> key_of ()
          in
          match evaluate ~key eval with
          | Fresh ok -> ok
          | Replayed ok ->
              incr replayed;
              ok)
    in
    if ok then begin
      let c, b = size () in
      let bc, bb = !best in
      if b < bb || (b = bb && c < bc) then begin
        best := (min bc c, min bb b);
        improvements := (!clock, c, b) :: !improvements;
        match hooks.on_improvement with Some f -> f !clock c b | None -> ()
      end
    end;
    ok
  in
  let check_pool ?phi sub =
    account ?phi
      ~key_of:(fun () -> Digest.to_hex (Digest.string (Serialize.to_bytes sub)))
      ~charge:(cost sub)
      ~eval:(fun () -> includes_sorted ~baseline (Lbr_decompiler.Tool.errors tool sub))
      ~size:(fun () -> (Size.classes sub, Size.bytes sub))
      ()
  in
  let check_payload ~phi p =
    account ~phi
      ~key_of:(fun () -> assert false)
      ~charge:p.sp_cost
      ~eval:(fun () -> p.sp_ok)
      ~size:(fun () -> (p.sp_classes, p.sp_bytes))
      ()
  in
  { clock; improvements; best; replayed; check_pool; check_payload }

let finish (instance : Corpus.instance) strategy driver ~runs ~ok ~final ~wall_time =
  let pool = instance.benchmark.pool in
  {
    instance_id = instance.instance_id;
    strategy;
    ok;
    sim_time = !(driver.clock);
    wall_time;
    predicate_runs = runs;
    replayed_runs = !(driver.replayed);
    classes0 = Size.classes pool;
    classes1 = Size.classes final;
    bytes0 = Size.bytes pool;
    bytes1 = Size.bytes final;
    items0 = Size.items pool;
    items1 = Size.items final;
    lines0 = Lbr_decompiler.Source.line_count pool;
    lines1 = Lbr_decompiler.Source.line_count final;
    timeline = List.rev !(driver.improvements);
  }

(* ------------------------------------------------------------------ *)
(* J-Reduce: class-granularity dependency graph + binary reduction.   *)

let class_references pool (c : Classfile.cls) =
  let open Classfile in
  let acc = ref [] in
  let add name = if Classpool.mem pool name && name <> c.name then acc := name :: !acc in
  let add_ty ty = match Jtype.ref_name ty with Some n -> add n | None -> () in
  add c.super;
  List.iter add c.interfaces;
  List.iter (fun (f : field) -> add_ty f.f_type) c.fields;
  let add_insn = function
    | Invoke_virtual { owner; _ } | Invoke_interface { owner; _ } | Invoke_static { owner; _ } ->
        add owner
    | New_instance { cls; _ } -> add cls
    | Get_field { owner; _ } | Put_field { owner; _ } -> add owner
    | Check_cast t | Instance_of t | Load_const_class t -> add t
    | Upcast { from_; to_ } -> add from_; add to_
    | Arith | Load_store | Return_insn -> ()
  in
  List.iter
    (fun (m : meth) ->
      List.iter add_ty (m.m_ret :: m.m_params);
      List.iter add_insn m.m_body)
    c.methods;
  List.iter
    (fun (k : ctor) ->
      List.iter add_ty k.k_params;
      List.iter add_insn k.k_body)
    c.ctors;
  List.iter add c.annotations;
  List.iter add c.inner_classes;
  List.sort_uniq String.compare !acc

let restrict_classes pool keep_names =
  Classpool.classes pool
  |> List.filter (fun (c : Classfile.cls) -> List.mem c.Classfile.name keep_names)
  |> Classpool.of_classes

let run_jreduce instance ~cost ~hooks =
  let pool = instance.Corpus.benchmark.pool in
  let names = Array.of_list (Classpool.names pool) in
  let index_of =
    let tbl = Hashtbl.create (Array.length names) in
    Array.iteri (fun i n -> Hashtbl.add tbl n i) names;
    Hashtbl.find tbl
  in
  let edges =
    Classpool.classes pool
    |> List.concat_map (fun (c : Classfile.cls) ->
           List.map
             (fun target -> (index_of c.Classfile.name, index_of target))
             (class_references pool c))
  in
  let base, closures =
    Lbr_baselines.Binary_reduction.Graph_encoding.closures ~num_vars:(Array.length names)
      ~edges ~required:[]
  in
  let driver = make_driver instance ~cost ~hooks in
  let sub_pool_of assignment =
    Lbr_logic.Perf.time "jvm.restrict-classes" @@ fun () ->
    restrict_classes pool (List.map (fun i -> names.(i)) (Assignment.to_list assignment))
  in
  let predicate =
    Lbr.Predicate.make ~name:"jreduce" (fun a -> driver.check_pool ~phi:a (sub_pool_of a))
  in
  let t0 = Unix.gettimeofday () in
  let result, runs, ok =
    match Lbr_baselines.Binary_reduction.reduce ~closures ~base ~predicate with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error `Predicate_inconsistent -> (Assignment.of_list (List.init (Array.length names) Fun.id), Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  let final = sub_pool_of result in
  (finish instance Jreduce driver ~runs ~ok ~final ~wall_time, final)

(* ------------------------------------------------------------------ *)
(* Item-granularity strategies.                                       *)

(* The JVM path is just the [Frontend_jvm] instance of the frontend
   signature: item inventory and constraint generation are delegated so the
   harness exercises exactly the code the generic runner dispatches to.
   [derive]/[constraints] only fail on pools that violate [Classpool]'s own
   invariants, which [Corpus] never produces. *)
let item_context instance =
  let pool = instance.Corpus.benchmark.pool in
  let vpool = Var.Pool.create () in
  let jv =
    match Lbr_frontend.Jvm.derive vpool pool with
    | Ok jv -> jv
    | Error m -> invalid_arg ("Experiment.item_context: " ^ m)
  in
  let cnf =
    match Lbr_frontend.Jvm.constraints jv pool with
    | Ok cnf -> cnf
    | Error m -> invalid_arg ("Experiment.item_context: " ^ m)
  in
  (pool, vpool, jv, cnf)

let run_lossy instance ~pick ~strategy ~cost ~hooks =
  let pool, vpool, jv, cnf = item_context instance in
  let encoded = Lbr.Lossy.encode cnf ~pick in
  let edges, required = Lbr.Lossy.to_graph encoded in
  let base, closures =
    Lbr_baselines.Binary_reduction.Graph_encoding.closures ~num_vars:(Var.Pool.size vpool)
      ~edges ~required
  in
  let driver = make_driver instance ~cost ~hooks in
  let sub_pool_of = Reducer.prepare jv pool in
  let predicate =
    Lbr.Predicate.make ~name:"lossy" (fun phi -> driver.check_pool ~phi (sub_pool_of phi))
  in
  let t0 = Unix.gettimeofday () in
  let result, runs, ok =
    match Lbr_baselines.Binary_reduction.reduce ~closures ~base ~predicate with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error `Predicate_inconsistent -> (Jvars.all jv, Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  let final = sub_pool_of result in
  (finish instance strategy driver ~runs ~ok ~final ~wall_time, final)

let run_gbr ?speculate instance ~cost ~hooks =
  let pool, vpool, jv, cnf = item_context instance in
  let driver = make_driver instance ~cost ~hooks in
  let sub_pool_of = Reducer.prepare jv pool in
  let speculation =
    match speculate with
    | None -> None
    | Some worker_pool ->
        let tool = instance.Corpus.tool and baseline = instance.baseline_errors in
        (* Workers each prepare their own applier ([Reducer.prepare]'s
           result is domain-local state) via DLS; cost/Size/[Tool.errors]
           on a fault-free tool are pure. *)
        let applier = Domain.DLS.new_key (fun () -> Reducer.prepare jv pool) in
        let compute phi =
          let sub = (Domain.DLS.get applier) phi in
          {
            sp_ok = includes_sorted ~baseline (Lbr_decompiler.Tool.errors tool sub);
            sp_cost = cost sub;
            sp_classes = Size.classes sub;
            sp_bytes = Size.bytes sub;
          }
        in
        let should_launch =
          (* Never launch what a replay journal already knows: speculation
             must not add fresh executions to a replayed workload. *)
          match hooks.peek with
          | None -> None
          | Some peek -> Some (fun phi -> peek ~key:(Assignment.digest_hex phi) = None)
        in
        Some
          (Lbr.Speculate.create
             ~spawn:(fun job ->
               ignore (Lbr_runtime.Pool.submit worker_pool job : unit Lbr_runtime.Pool.future))
             ?should_launch
             ~max_inflight:(2 * Lbr_runtime.Pool.jobs worker_pool)
             compute)
  in
  let predicate =
    Lbr.Predicate.make ~name:"gbr" (fun phi ->
        match
          match speculation with
          | Some sp -> Lbr.Speculate.demand sp phi
          | None -> None
        with
        | Some payload -> driver.check_payload ~phi payload
        | None -> driver.check_pool ~phi (sub_pool_of phi))
  in
  let problem =
    Lbr.Problem.make ~pool:vpool ~universe:(Jvars.all jv) ~constraints:cnf ~predicate
  in
  let order = Lbr_sat.Order.by_creation vpool in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      match speculation with Some sp -> Lbr.Speculate.drain sp | None -> ())
  @@ fun () ->
  let result, runs, ok =
    match Lbr.Gbr.reduce ?speculate:speculation problem ~order with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error (`Unsat | `Predicate_inconsistent | `Invariant_violation _) ->
        (Jvars.all jv, Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  let final = sub_pool_of result in
  (finish instance Gbr driver ~runs ~ok ~final ~wall_time, final)

let run_with ?(cost = default_cost) ?(hooks = default_hooks) ?speculate strategy
    instance =
  Lbr_obs.Trace.with_span "harness.instance"
    ~args:(fun () ->
      [
        ("instance", Lbr_obs.Trace.Str instance.Corpus.instance_id);
        ("strategy", Lbr_obs.Trace.Str (strategy_name strategy));
      ])
  @@ fun () ->
  match strategy with
  | Jreduce -> run_jreduce instance ~cost ~hooks
  | Lossy_first ->
      run_lossy instance ~pick:Lbr.Lossy.First_first ~strategy:Lossy_first ~cost ~hooks
  | Lossy_last -> run_lossy instance ~pick:Lbr.Lossy.Last_last ~strategy:Lossy_last ~cost ~hooks
  | Gbr -> run_gbr ?speculate instance ~cost ~hooks

let run ?(cost = default_cost) strategy instance = fst (run_with ~cost strategy instance)

(* Instances are independent — each run builds its own variable pool,
   constraints, predicate, and driver — so fanning them across a domain
   pool changes nothing but wall clock.  [jobs = 1] deliberately bypasses
   the pool: it is byte-for-byte the sequential path above. *)
let run_corpus_full ?(cost = default_cost) ?(jobs = 1)
    ?(hooks = fun (_ : Corpus.instance) -> default_hooks) ?speculate strategy
    instance_list =
  if jobs < 1 then invalid_arg "Experiment.run_corpus: jobs must be >= 1";
  let run_one instance =
    run_with ~cost ~hooks:(hooks instance) ?speculate strategy instance
  in
  if jobs = 1 then List.map run_one instance_list
  else
    Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
        Lbr_runtime.Pool.map_list pool run_one instance_list)

let run_corpus ?(cost = default_cost) ?(jobs = 1) strategy instance_list =
  List.map fst (run_corpus_full ~cost ~jobs strategy instance_list)
