open Lbr_logic
open Lbr_jvm

type strategy = Jreduce | Lossy_first | Lossy_last | Gbr

let strategy_name = function
  | Jreduce -> "j-reduce"
  | Lossy_first -> "lossy-first"
  | Lossy_last -> "lossy-last"
  | Gbr -> "gbr"

let all_strategies = [ Jreduce; Lossy_first; Lossy_last; Gbr ]

type outcome = {
  instance_id : string;
  strategy : strategy;
  ok : bool;
  sim_time : float;
  wall_time : float;
  predicate_runs : int;
  classes0 : int;
  classes1 : int;
  bytes0 : int;
  bytes1 : int;
  items0 : int;
  items1 : int;
  lines0 : int;
  lines1 : int;
  timeline : (float * int * int) list;
}

let default_cost pool = 1.0 +. (4e-4 *. float_of_int (Size.bytes pool))

(* Sorted-list inclusion: is every baseline message present? *)
let rec includes_sorted ~baseline messages =
  match baseline, messages with
  | [], _ -> true
  | _ :: _, [] -> false
  | b :: bs, m :: ms ->
      let c = String.compare b m in
      if c = 0 then includes_sorted ~baseline:bs ms
      else if c > 0 then includes_sorted ~baseline ms
      else false

(* Shared instrumentation: a simulated clock, an improvement timeline, and a
   predicate body evaluating a candidate sub-pool. *)
type driver = {
  clock : float ref;
  improvements : (float * int * int) list ref;
  best : (int * int) ref;
  check_pool : Classpool.t -> bool;
}

let make_driver (instance : Corpus.instance) ~cost =
  let tool = instance.tool and baseline = instance.baseline_errors in
  let clock = ref 0.0 in
  let best = ref (max_int, max_int) in
  let improvements = ref [] in
  let check_pool sub =
    clock := !clock +. cost sub;
    let ok = includes_sorted ~baseline (Lbr_decompiler.Tool.errors tool sub) in
    if ok then begin
      let c = Size.classes sub and b = Size.bytes sub in
      let bc, bb = !best in
      if b < bb || (b = bb && c < bc) then begin
        best := (min bc c, min bb b);
        improvements := (!clock, c, b) :: !improvements
      end
    end;
    ok
  in
  { clock; improvements; best; check_pool }

let finish (instance : Corpus.instance) strategy driver ~runs ~ok ~final ~wall_time =
  let pool = instance.benchmark.pool in
  {
    instance_id = instance.instance_id;
    strategy;
    ok;
    sim_time = !(driver.clock);
    wall_time;
    predicate_runs = runs;
    classes0 = Size.classes pool;
    classes1 = Size.classes final;
    bytes0 = Size.bytes pool;
    bytes1 = Size.bytes final;
    items0 = Size.items pool;
    items1 = Size.items final;
    lines0 = Lbr_decompiler.Source.line_count pool;
    lines1 = Lbr_decompiler.Source.line_count final;
    timeline = List.rev !(driver.improvements);
  }

(* ------------------------------------------------------------------ *)
(* J-Reduce: class-granularity dependency graph + binary reduction.   *)

let class_references pool (c : Classfile.cls) =
  let open Classfile in
  let acc = ref [] in
  let add name = if Classpool.mem pool name && name <> c.name then acc := name :: !acc in
  let add_ty ty = match Jtype.ref_name ty with Some n -> add n | None -> () in
  add c.super;
  List.iter add c.interfaces;
  List.iter (fun (f : field) -> add_ty f.f_type) c.fields;
  let add_insn = function
    | Invoke_virtual { owner; _ } | Invoke_interface { owner; _ } | Invoke_static { owner; _ } ->
        add owner
    | New_instance { cls; _ } -> add cls
    | Get_field { owner; _ } | Put_field { owner; _ } -> add owner
    | Check_cast t | Instance_of t | Load_const_class t -> add t
    | Upcast { from_; to_ } -> add from_; add to_
    | Arith | Load_store | Return_insn -> ()
  in
  List.iter
    (fun (m : meth) ->
      List.iter add_ty (m.m_ret :: m.m_params);
      List.iter add_insn m.m_body)
    c.methods;
  List.iter
    (fun (k : ctor) ->
      List.iter add_ty k.k_params;
      List.iter add_insn k.k_body)
    c.ctors;
  List.iter add c.annotations;
  List.iter add c.inner_classes;
  List.sort_uniq String.compare !acc

let restrict_classes pool keep_names =
  Classpool.classes pool
  |> List.filter (fun (c : Classfile.cls) -> List.mem c.Classfile.name keep_names)
  |> Classpool.of_classes

let run_jreduce instance ~cost =
  let pool = instance.Corpus.benchmark.pool in
  let names = Array.of_list (Classpool.names pool) in
  let index_of =
    let tbl = Hashtbl.create (Array.length names) in
    Array.iteri (fun i n -> Hashtbl.add tbl n i) names;
    Hashtbl.find tbl
  in
  let edges =
    Classpool.classes pool
    |> List.concat_map (fun (c : Classfile.cls) ->
           List.map
             (fun target -> (index_of c.Classfile.name, index_of target))
             (class_references pool c))
  in
  let base, closures =
    Lbr_baselines.Binary_reduction.Graph_encoding.closures ~num_vars:(Array.length names)
      ~edges ~required:[]
  in
  let driver = make_driver instance ~cost in
  let sub_pool_of assignment =
    restrict_classes pool (List.map (fun i -> names.(i)) (Assignment.to_list assignment))
  in
  let predicate =
    Lbr.Predicate.make ~name:"jreduce" (fun a -> driver.check_pool (sub_pool_of a))
  in
  let t0 = Unix.gettimeofday () in
  let result, runs, ok =
    match Lbr_baselines.Binary_reduction.reduce ~closures ~base ~predicate with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error `Predicate_inconsistent -> (Assignment.of_list (List.init (Array.length names) Fun.id), Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  finish instance Jreduce driver ~runs ~ok ~final:(sub_pool_of result) ~wall_time

(* ------------------------------------------------------------------ *)
(* Item-granularity strategies.                                       *)

let item_context instance =
  let pool = instance.Corpus.benchmark.pool in
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  let cnf = Constraints.generate jv pool in
  (pool, vpool, jv, cnf)

let run_lossy instance ~pick ~strategy ~cost =
  let pool, vpool, jv, cnf = item_context instance in
  let encoded = Lbr.Lossy.encode cnf ~pick in
  let edges, required = Lbr.Lossy.to_graph encoded in
  let base, closures =
    Lbr_baselines.Binary_reduction.Graph_encoding.closures ~num_vars:(Var.Pool.size vpool)
      ~edges ~required
  in
  let driver = make_driver instance ~cost in
  let sub_pool_of = Reducer.prepare jv pool in
  let predicate =
    Lbr.Predicate.make ~name:"lossy" (fun phi -> driver.check_pool (sub_pool_of phi))
  in
  let t0 = Unix.gettimeofday () in
  let result, runs, ok =
    match Lbr_baselines.Binary_reduction.reduce ~closures ~base ~predicate with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error `Predicate_inconsistent -> (Jvars.all jv, Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  finish instance strategy driver ~runs ~ok ~final:(sub_pool_of result) ~wall_time

let run_gbr instance ~cost =
  let pool, vpool, jv, cnf = item_context instance in
  let driver = make_driver instance ~cost in
  let sub_pool_of = Reducer.prepare jv pool in
  let predicate =
    Lbr.Predicate.make ~name:"gbr" (fun phi -> driver.check_pool (sub_pool_of phi))
  in
  let problem =
    Lbr.Problem.make ~pool:vpool ~universe:(Jvars.all jv) ~constraints:cnf ~predicate
  in
  let order = Lbr_sat.Order.by_creation vpool in
  let t0 = Unix.gettimeofday () in
  let result, runs, ok =
    match Lbr.Gbr.reduce problem ~order with
    | Ok (result, stats) -> (result, stats.predicate_runs, true)
    | Error (`Unsat | `Predicate_inconsistent | `Invariant_violation _) ->
        (Jvars.all jv, Lbr.Predicate.runs predicate, false)
  in
  let wall_time = Unix.gettimeofday () -. t0 in
  finish instance Gbr driver ~runs ~ok ~final:(sub_pool_of result) ~wall_time

let run ?(cost = default_cost) strategy instance =
  match strategy with
  | Jreduce -> run_jreduce instance ~cost
  | Lossy_first -> run_lossy instance ~pick:Lbr.Lossy.First_first ~strategy:Lossy_first ~cost
  | Lossy_last -> run_lossy instance ~pick:Lbr.Lossy.Last_last ~strategy:Lossy_last ~cost
  | Gbr -> run_gbr instance ~cost

(* Instances are independent — each run builds its own variable pool,
   constraints, predicate, and driver — so fanning them across a domain
   pool changes nothing but wall clock.  [jobs = 1] deliberately bypasses
   the pool: it is byte-for-byte the sequential path above. *)
let run_corpus ?(cost = default_cost) ?(jobs = 1) strategy instance_list =
  if jobs < 1 then invalid_arg "Experiment.run_corpus: jobs must be >= 1";
  if jobs = 1 then List.map (fun instance -> run ~cost strategy instance) instance_list
  else
    Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
        Lbr_runtime.Pool.map_list pool (fun instance -> run ~cost strategy instance)
          instance_list)
