(** Reporting layer over {!Lbr_logic.Perf}: the reduction core's phase
    timing counters (engine create/propagate/narrow/add-clause, predicate
    execution), formatted for the bench output, [bench --json], and the
    serve journal. *)

type row = Lbr_logic.Perf.row = {
  name : string;
  calls : int;
  seconds : float;
  minor_words : float;
}

val aggregate : unit -> row list
(** Process-wide totals across all domains (see {!Lbr_logic.Perf.aggregate}). *)

val snapshot_local : unit -> row list
(** The calling domain's counters; pair two with {!since} for an exact
    per-task delta (a scheduler job runs entirely on one domain). *)

val since : before:row list -> after:row list -> row list
val reset : unit -> unit

val report : row list -> string
(** Human-readable table (phase, calls, seconds, minor words). *)

val serialize : row list -> string
(** One [name calls seconds minor_words] line per phase, for journals. *)
