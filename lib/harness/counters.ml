type row = Lbr_logic.Perf.row = {
  name : string;
  calls : int;
  seconds : float;
  minor_words : float;
}

let aggregate = Lbr_logic.Perf.aggregate
let snapshot_local = Lbr_logic.Perf.snapshot_local
let since = Lbr_logic.Perf.since
let reset = Lbr_logic.Perf.reset

let report rows =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %10s %12s %16s\n" "phase" "calls" "seconds" "minor words");
  List.iter
    (fun (r : row) ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %10d %12.4f %16.0f\n" r.name r.calls r.seconds
           r.minor_words))
    rows;
  Buffer.contents b

(* One phase per line, space-separated: grep/awk-friendly and stable, for
   the serve journal. *)
let serialize rows =
  String.concat ""
    (List.map
       (fun (r : row) ->
         Printf.sprintf "%s %d %.6f %.0f\n" r.name r.calls r.seconds r.minor_words)
       rows)
