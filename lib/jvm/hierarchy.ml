type edge =
  | Eext of string
  | Eimpl of string * string
  | Eiext of string * string

type path = edge list

(* All queries below are pure functions of the pool, and one constraint
   generation (or validity check) asks the same questions about the same
   hierarchy hundreds of times — every distinct call site resolves against
   the supertype graph of its owner, every obligation re-walks the same
   reachable set.  [Ctx] carries the pool together with lazy memo tables so
   adjacency lists, reachability bits, and enumerated paths are computed
   once per pool instead of once per query.  The tables only ever cache
   final results of the same recursions the un-cached code ran, so a
   context answers byte-for-byte what the one-shot functions answer. *)
module Ctx = struct
  type t = {
    pool : Classpool.t;
    edges : (string, (edge * string) list) Hashtbl.t;
    reach : (string, string list) Hashtbl.t;
    (* Per-destination "can this node reach dst" bits, shared across every
       path enumeration targeting dst. *)
    reaches : (string, (string, bool) Hashtbl.t) Hashtbl.t;
    paths : (string * string * int, path list) Hashtbl.t;
    meths : (string * string * bool, (string * path) list) Hashtbl.t;
    fields : (string * string, (string * path) list) Hashtbl.t;
  }

  let create pool =
    {
      pool;
      edges = Hashtbl.create 64;
      reach = Hashtbl.create 64;
      reaches = Hashtbl.create 16;
      paths = Hashtbl.create 64;
      meths = Hashtbl.create 64;
      fields = Hashtbl.create 16;
    }

  (* Outgoing supertype edges of a node: (edge, target) pairs.  External
     classes are opaque: no out-edges. *)
  let out_edges t name =
    try Hashtbl.find t.edges name
    with Not_found ->
      let es =
        match Classpool.find t.pool name with
        | None -> []
        | Some (c : Classfile.cls) ->
            if c.is_interface then List.map (fun j -> (Eiext (name, j), j)) c.interfaces
            else
              let ext =
                if Classfile.is_external c.super then [] else [ (Eext name, c.super) ]
              in
              ext @ List.map (fun i -> (Eimpl (name, i), i)) c.interfaces
      in
      Hashtbl.add t.edges name es;
      es

  (* Supertype nodes reachable from [start] (excluding [start] itself), in
     visit order, each visited once. *)
  let reachable_supertypes t start =
    try Hashtbl.find t.reach start
    with Not_found ->
      let seen = Hashtbl.create 16 in
      let acc = ref [] in
      let rec dfs name =
        List.iter
          (fun (_, target) ->
            if not (Hashtbl.mem seen target) then begin
              Hashtbl.add seen target ();
              acc := target :: !acc;
              dfs target
            end)
          (out_edges t name)
      in
      Hashtbl.add seen start ();
      dfs start;
      let r = List.rev !acc in
      Hashtbl.add t.reach start r;
      r

  (* The supertype DAG can contain exponentially many paths (diamonds stack
     multiplicatively), so path enumeration is pruned by a memoized
     can-reach-destination test — dead branches are never entered — and
     capped at [max_paths] results.  Dropping paths only strengthens the
     generated constraints (fewer witnesses in a disjunction), which
     preserves soundness. *)
  let paths_to t ~src ~dst ~max_paths =
    try Hashtbl.find t.paths (src, dst, max_paths)
    with Not_found ->
      let memo =
        try Hashtbl.find t.reaches dst
        with Not_found ->
          let m = Hashtbl.create 16 in
          Hashtbl.add t.reaches dst m;
          m
      in
      let rec reaches n =
        match Hashtbl.find_opt memo n with
        | Some b -> b
        | None ->
            Hashtbl.add memo n false;
            let b = n = dst || List.exists (fun (_, tg) -> reaches tg) (out_edges t n) in
            Hashtbl.replace memo n b;
            b
      in
      let result =
        if not (reaches src) then []
        else begin
          let acc = ref [] in
          let count = ref 0 in
          let rec dfs n rev_path =
            if !count < max_paths then begin
              if n = dst then begin
                incr count;
                acc := List.rev rev_path :: !acc
              end
              else
                List.iter
                  (fun (e, tg) -> if reaches tg then dfs tg (e :: rev_path))
                  (out_edges t n)
            end
          in
          dfs src [];
          List.rev !acc
        end
      in
      Hashtbl.add t.paths (src, dst, max_paths) result;
      result

  let method_matches ~static (m : Classfile.meth) name =
    m.m_name = name && m.m_static = static

  (* Per-destination path budget for resolution witnesses. *)
  let candidate_paths = 2

  let method_candidates t ~owner ~meth ~static =
    try Hashtbl.find t.meths (owner, meth, static)
    with Not_found ->
      let result =
        if Classfile.is_external owner || not (Classpool.mem t.pool owner) then
          [ ("", []) ]
        else begin
          let defines name =
            match Classpool.find t.pool name with
            | None -> false
            | Some c -> (
                match Classfile.find_method c meth with
                | Some m -> method_matches ~static m meth
                | None -> false)
          in
          let targets = owner :: reachable_supertypes t owner in
          List.concat_map
            (fun d ->
              if not (defines d) then []
              else
                paths_to t ~src:owner ~dst:d ~max_paths:candidate_paths
                |> List.map (fun p -> (d, p)))
            targets
        end
      in
      Hashtbl.add t.meths (owner, meth, static) result;
      result

  let field_candidates t ~owner ~field =
    try Hashtbl.find t.fields (owner, field)
    with Not_found ->
      let result =
        if Classfile.is_external owner || not (Classpool.mem t.pool owner) then
          [ ("", []) ]
        else begin
          (* Fields resolve on the class chain only, which is a simple path. *)
          let acc = ref [] in
          let rec go name rev_path =
            match Classpool.find t.pool name with
            | None -> ()
            | Some c ->
                (match Classfile.find_field c field with
                | Some _ -> acc := (name, List.rev rev_path) :: !acc
                | None -> ());
                if (not c.is_interface) && not (Classfile.is_external c.super) then
                  go c.super (Eext name :: rev_path)
          in
          go owner [];
          List.rev !acc
        end
      in
      Hashtbl.add t.fields (owner, field) result;
      result

  let interfaces_of t start =
    reachable_supertypes t start
    |> List.concat_map (fun name ->
           match Classpool.find t.pool name with
           | Some c when c.Classfile.is_interface ->
               paths_to t ~src:start ~dst:name ~max_paths:candidate_paths
               |> List.map (fun p -> (name, p))
           | Some _ | None -> [])

  let subtype_paths t ~sub ~sup = paths_to t ~src:sub ~dst:sup ~max_paths:3

  let abstract_obligations t (cls : Classfile.cls) =
    let start = cls.Classfile.name in
    reachable_supertypes t start
    |> List.concat_map (fun name ->
           match Classpool.find t.pool name with
           | Some c when c.Classfile.is_interface || c.Classfile.is_abstract ->
               List.filter_map
                 (fun (m : Classfile.meth) ->
                   if m.m_abstract then Some (name, m.m_name) else None)
                 c.Classfile.methods
           | Some _ | None -> [])
end

(* One-shot forms: a fresh context per call, exactly the pre-context
   behavior (fresh memo tables each time). *)

let out_edges pool name = Ctx.out_edges (Ctx.create pool) name

let check_acyclic pool =
  (* Colour-marking DFS over the supertype graph. *)
  let ctx = Ctx.create pool in
  let state = Hashtbl.create 64 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> Ok ()
    | Some `Active -> Error (Printf.sprintf "cyclic hierarchy through %s" name)
    | None ->
        Hashtbl.add state name `Active;
        let rec all = function
          | [] -> Ok ()
          | (_, target) :: rest -> (
              match visit target with Ok () -> all rest | Error _ as e -> e)
        in
        let result = all (Ctx.out_edges ctx name) in
        Hashtbl.replace state name `Done;
        result
  in
  List.fold_left
    (fun acc name -> match acc with Error _ -> acc | Ok () -> visit name)
    (Ok ()) (Classpool.names pool)

let super_chain pool start =
  let rec go acc name =
    match Classpool.find pool name with
    | None -> List.rev (name :: acc)
    | Some c -> go (name :: acc) c.Classfile.super
  in
  go [] start

let paths_between pool ~src ~dst ~max_paths =
  Ctx.paths_to (Ctx.create pool) ~src ~dst ~max_paths

let subtype_paths pool ~sub ~sup = Ctx.subtype_paths (Ctx.create pool) ~sub ~sup

let method_candidates pool ~owner ~meth ~static =
  Ctx.method_candidates (Ctx.create pool) ~owner ~meth ~static

let field_candidates pool ~owner ~field =
  Ctx.field_candidates (Ctx.create pool) ~owner ~field

let interfaces_of pool start = Ctx.interfaces_of (Ctx.create pool) start

let abstract_obligations pool cls = Ctx.abstract_obligations (Ctx.create pool) cls
