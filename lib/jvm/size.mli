(** Size metrics for class pools — the two axes of Figure 8a. *)

val classes : Classpool.t -> int
(** Number of internal classes. *)

val bytes : Classpool.t -> int
(** Estimated serialized size: constant-pool-ish overhead per class plus
    per-member and per-instruction costs.  The absolute scale is arbitrary;
    only ratios (final/original) are reported. *)

val items : Classpool.t -> int
(** Number of reducible items (the paper's "2.9k reducible items"
    statistic). *)

(** The cost model, exposed so {!Reducer} can compute a sub-pool's byte size
    arithmetically while filtering (instead of re-walking every body per
    predicate call).  [bytes pool = class_header_bytes + weighted member
    counts + meth_bytes/ctor_bytes sums] for every class. *)

val class_header_bytes : Classfile.cls -> int
val iface_bytes : int
val field_bytes : int
val annotation_bytes : int
val inner_bytes : int

val meth_bytes : Classfile.meth -> int
val ctor_bytes : Classfile.ctor -> int
