open Classfile

let classes = Classpool.size

let insn_bytes = function
  | Invoke_virtual _ | Invoke_interface _ | Invoke_static _ -> 3
  | New_instance _ -> 7 (* new + dup + invokespecial *)
  | Get_field _ | Put_field _ -> 3
  | Check_cast _ | Instance_of _ -> 3
  | Upcast _ -> 0 (* a verification fact, not an instruction *)
  | Load_const_class _ -> 2
  | Arith -> 1
  | Load_store -> 2
  | Return_insn -> 1

let meth_bytes (m : meth) =
  (* method_info + name/descriptor constants + Code attribute header *)
  48 + (8 * List.length m.m_params)
  + if m.m_abstract then 0 else 24 + List.fold_left (fun a i -> a + insn_bytes i) 0 m.m_body

let ctor_bytes (k : ctor) =
  48 + (8 * List.length k.k_params) + 24
  + List.fold_left (fun a i -> a + insn_bytes i) 0 k.k_body

let class_header_bytes (c : cls) =
  200 (* header, constant pool base, this/super entries *)
  + (2 * String.length c.name)

let iface_bytes = 16
let field_bytes = 40
let annotation_bytes = 24
let inner_bytes = 16

let class_bytes (c : cls) =
  class_header_bytes c
  + (iface_bytes * List.length c.interfaces)
  + List.fold_left (fun a (_ : field) -> a + field_bytes) 0 c.fields
  + List.fold_left (fun a m -> a + meth_bytes m) 0 c.methods
  + List.fold_left (fun a k -> a + ctor_bytes k) 0 c.ctors
  + (annotation_bytes * List.length c.annotations)
  + (inner_bytes * List.length c.inner_classes)

let bytes pool =
  Classpool.memo_bytes pool (fun p -> Classpool.fold (fun c acc -> acc + class_bytes c) p 0)

let items pool = List.length (Jvars.items_of_pool pool)
