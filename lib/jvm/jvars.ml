open Lbr_logic

let items_of_class (c : Classfile.cls) =
  let name = c.name in
  let class_item = [ Item.Class name ] in
  let extends =
    if c.is_interface || Classfile.is_external c.super then []
    else [ Item.Extends name ]
  in
  let relations =
    List.map
      (fun i ->
        if c.is_interface then Item.Iface_extends { iface = name; super = i }
        else Item.Implements { cls = name; iface = i })
      c.interfaces
  in
  let fields = List.map (fun (f : Classfile.field) -> Item.Field { cls = name; field = f.f_name }) c.fields in
  let methods =
    List.concat_map
      (fun (m : Classfile.meth) ->
        let head = Item.Method { cls = name; meth = m.m_name } in
        if m.m_abstract then [ head ] else [ head; Item.Code { cls = name; meth = m.m_name } ])
      c.methods
  in
  let ctors =
    List.concat (List.mapi
      (fun index (_ : Classfile.ctor) ->
        [ Item.Ctor { cls = name; index }; Item.Ctor_code { cls = name; index } ])
      c.ctors)
  in
  let annotations = List.mapi (fun index _ -> Item.Annotation { cls = name; index }) c.annotations in
  let inner = List.mapi (fun index _ -> Item.Inner_class { cls = name; index }) c.inner_classes in
  class_item @ extends @ relations @ fields @ methods @ ctors @ annotations @ inner

let items_of_pool pool = List.concat_map items_of_class (Classpool.classes pool)

type t = {
  item_list : Item.t list;
  vars_of_items : (Item.t, Var.t) Hashtbl.t;
  items_of_vars : (Var.t, Item.t) Hashtbl.t;
  all : Assignment.t;
}

let derive pool_vars pool =
  let item_list = items_of_pool pool in
  let vars_of_items = Hashtbl.create 256 in
  let items_of_vars = Hashtbl.create 256 in
  let all =
    List.map
      (fun item ->
        let v = Var.Pool.fresh pool_vars (Item.to_string item) in
        Hashtbl.add vars_of_items item v;
        Hashtbl.add items_of_vars v item;
        v)
      item_list
    |> Assignment.of_list
  in
  { item_list; vars_of_items; items_of_vars; all }

let all t = t.all

let items t = t.item_list

let var_opt t item = Hashtbl.find_opt t.vars_of_items item

let var t item =
  match var_opt t item with Some v -> v | None -> raise Not_found

let formula t item =
  match var_opt t item with
  | Some v -> Formula.var v
  | None ->
      (* Items on external classes are permanent. *)
      if Classfile.is_external (Item.owner item) then Formula.True
      else raise Not_found

let item_of t v = Hashtbl.find t.items_of_vars v

let mem t v = Hashtbl.mem t.items_of_vars v
