(** Pools of classes — the unit of input the tools under test consume.

    External classes (JDK stand-ins) are not in the pool; references to them
    always resolve and they are never reduced. *)

type t

val of_classes : Classfile.cls list -> t
(** Raises [Invalid_argument] on duplicate class names. *)

val find : t -> string -> Classfile.cls option
(** Internal classes only; [None] for external names. *)

val mem : t -> string -> bool
val classes : t -> Classfile.cls list
(** In name order (deterministic). *)

val names : t -> string list
val size : t -> int
(** Number of internal classes. *)

val fold : (Classfile.cls -> 'a -> 'a) -> t -> 'a -> 'a

val memo_bytes : t -> (t -> int) -> int
(** Memoization slot for {!Size.bytes}: runs [compute] on the first call
    and caches the (non-negative) result on the pool. *)

val empty : t

val set : t -> Classfile.cls -> t
(** Functional add-or-replace by the class's own name. *)

val unset : t -> string -> t
(** Functional removal; identity when the name is absent. *)

val with_bytes : t -> int -> t
(** The pool with its byte size already memoized — for builders that
    accumulate the size while assembling the map. *)
