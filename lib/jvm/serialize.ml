open Classfile

let magic = "LBRC"
let version = 1

(* ------------------------------------------------------------------ *)
(* Writer primitives                                                   *)

type writer = { buf : Buffer.t }

let w_u8 w n =
  assert (n >= 0 && n < 0x100);
  Buffer.add_char w.buf (Char.chr n)

let w_u16 w n =
  if n < 0 || n > 0xFFFF then invalid_arg "Serialize: u16 overflow";
  Buffer.add_char w.buf (Char.chr (n lsr 8));
  Buffer.add_char w.buf (Char.chr (n land 0xFF))

let w_list w f xs =
  w_u16 w (List.length xs);
  List.iter f xs

(* ------------------------------------------------------------------ *)
(* Reader primitives                                                   *)

type reader = { data : string; mutable pos : int }

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let r_u8 r =
  if r.pos >= String.length r.data then fail "truncated (u8 at %d)" r.pos;
  let n = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  n

let r_u16 r =
  let hi = r_u8 r in
  let lo = r_u8 r in
  (hi lsl 8) lor lo

let r_bytes r n =
  if r.pos + n > String.length r.data then fail "truncated (%d bytes at %d)" n r.pos;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_u16 r in
  List.init n (fun _ -> f r)

(* ------------------------------------------------------------------ *)
(* Per-class string table                                              *)

module Strtab = struct
  type t = { index : (string, int) Hashtbl.t; mutable entries : string list; mutable next : int }

  let create () = { index = Hashtbl.create 32; entries = []; next = 0 }

  let intern t s =
    match Hashtbl.find_opt t.index s with
    | Some i -> i
    | None ->
        let i = t.next in
        Hashtbl.add t.index s i;
        t.entries <- s :: t.entries;
        t.next <- i + 1;
        i

  let to_list t = List.rev t.entries
end

(* ------------------------------------------------------------------ *)
(* Type and instruction tags                                           *)

let rec collect_jtype_strings tab = function
  | Jtype.Int | Jtype.Long | Jtype.Double | Jtype.Bool | Jtype.Void -> ()
  | Jtype.Ref n -> ignore (Strtab.intern tab n)
  | Jtype.Array t -> collect_jtype_strings tab t

let rec w_jtype w tab = function
  | Jtype.Int -> w_u8 w 0
  | Jtype.Long -> w_u8 w 1
  | Jtype.Double -> w_u8 w 2
  | Jtype.Bool -> w_u8 w 3
  | Jtype.Void -> w_u8 w 4
  | Jtype.Ref n ->
      w_u8 w 5;
      w_u16 w (Strtab.intern tab n)
  | Jtype.Array t ->
      w_u8 w 6;
      w_jtype w tab t

(* The server feeds this reader attacker-shaped bytes straight off a
   socket, so every access must fail with [Malformed], never raise
   anything else: string indices are bounds-checked and array-type
   nesting is depth-capped (the writer never emits anywhere near this
   depth; unchecked recursion would let a tag-6 run overflow the stack). *)
let max_array_depth = 64

let r_string r strings =
  let i = r_u16 r in
  if i >= Array.length strings then fail "string index %d out of range" i;
  strings.(i)

let rec r_jtype ?(depth = 0) r strings =
  if depth > max_array_depth then fail "array type nested deeper than %d" max_array_depth;
  match r_u8 r with
  | 0 -> Jtype.Int
  | 1 -> Jtype.Long
  | 2 -> Jtype.Double
  | 3 -> Jtype.Bool
  | 4 -> Jtype.Void
  | 5 -> Jtype.Ref (r_string r strings)
  | 6 -> Jtype.Array (r_jtype ~depth:(depth + 1) r strings)
  | t -> fail "unknown type tag %d" t

let collect_insn_strings tab = function
  | Invoke_virtual { owner; meth } | Invoke_interface { owner; meth }
  | Invoke_static { owner; meth } ->
      ignore (Strtab.intern tab owner);
      ignore (Strtab.intern tab meth)
  | New_instance { cls; _ } -> ignore (Strtab.intern tab cls)
  | Get_field { owner; field } | Put_field { owner; field } ->
      ignore (Strtab.intern tab owner);
      ignore (Strtab.intern tab field)
  | Check_cast t | Instance_of t | Load_const_class t -> ignore (Strtab.intern tab t)
  | Upcast { from_; to_ } ->
      ignore (Strtab.intern tab from_);
      ignore (Strtab.intern tab to_)
  | Arith | Load_store | Return_insn -> ()

let w_insn w tab insn =
  let s x = w_u16 w (Strtab.intern tab x) in
  match insn with
  | Invoke_virtual { owner; meth } -> w_u8 w 0; s owner; s meth
  | Invoke_interface { owner; meth } -> w_u8 w 1; s owner; s meth
  | Invoke_static { owner; meth } -> w_u8 w 2; s owner; s meth
  | New_instance { cls; ctor } -> w_u8 w 3; s cls; w_u16 w ctor
  | Get_field { owner; field } -> w_u8 w 4; s owner; s field
  | Put_field { owner; field } -> w_u8 w 5; s owner; s field
  | Check_cast t -> w_u8 w 6; s t
  | Instance_of t -> w_u8 w 7; s t
  | Upcast { from_; to_ } -> w_u8 w 8; s from_; s to_
  | Load_const_class t -> w_u8 w 9; s t
  | Arith -> w_u8 w 10
  | Load_store -> w_u8 w 11
  | Return_insn -> w_u8 w 12

let r_insn r strings =
  let s () = r_string r strings in
  match r_u8 r with
  | 0 -> let owner = s () in Invoke_virtual { owner; meth = s () }
  | 1 -> let owner = s () in Invoke_interface { owner; meth = s () }
  | 2 -> let owner = s () in Invoke_static { owner; meth = s () }
  | 3 -> let cls = s () in New_instance { cls; ctor = r_u16 r }
  | 4 -> let owner = s () in Get_field { owner; field = s () }
  | 5 -> let owner = s () in Put_field { owner; field = s () }
  | 6 -> Check_cast (s ())
  | 7 -> Instance_of (s ())
  | 8 -> let from_ = s () in Upcast { from_; to_ = s () }
  | 9 -> Load_const_class (s ())
  | 10 -> Arith
  | 11 -> Load_store
  | 12 -> Return_insn
  | t -> fail "unknown instruction tag %d" t

(* ------------------------------------------------------------------ *)
(* Class bodies                                                        *)

let collect_class_strings tab (c : cls) =
  ignore (Strtab.intern tab c.name);
  ignore (Strtab.intern tab c.super);
  List.iter (fun i -> ignore (Strtab.intern tab i)) c.interfaces;
  List.iter
    (fun (f : field) ->
      ignore (Strtab.intern tab f.f_name);
      collect_jtype_strings tab f.f_type)
    c.fields;
  List.iter
    (fun (m : meth) ->
      ignore (Strtab.intern tab m.m_name);
      List.iter (collect_jtype_strings tab) (m.m_ret :: m.m_params);
      List.iter (collect_insn_strings tab) m.m_body)
    c.methods;
  List.iter
    (fun (k : ctor) ->
      List.iter (collect_jtype_strings tab) k.k_params;
      List.iter (collect_insn_strings tab) k.k_body)
    c.ctors;
  List.iter (fun a -> ignore (Strtab.intern tab a)) c.annotations;
  List.iter (fun i -> ignore (Strtab.intern tab i)) c.inner_classes

let flags_of c =
  (if c.is_interface then 1 else 0) lor if c.is_abstract then 2 else 0

let w_class w (c : cls) =
  let tab = Strtab.create () in
  collect_class_strings tab c;
  (* string table *)
  w_list w
    (fun s ->
      w_u16 w (String.length s);
      Buffer.add_string w.buf s)
    (Strtab.to_list tab);
  let str x = w_u16 w (Strtab.intern tab x) in
  str c.name;
  str c.super;
  w_u8 w (flags_of c);
  w_list w str c.interfaces;
  w_list w
    (fun (f : field) ->
      str f.f_name;
      w_jtype w tab f.f_type;
      w_u8 w (if f.f_static then 1 else 0))
    c.fields;
  w_list w
    (fun (m : meth) ->
      str m.m_name;
      w_jtype w tab m.m_ret;
      w_list w (w_jtype w tab) m.m_params;
      w_u8 w ((if m.m_static then 1 else 0) lor if m.m_abstract then 2 else 0);
      w_list w (w_insn w tab) m.m_body)
    c.methods;
  w_list w
    (fun (k : ctor) ->
      w_list w (w_jtype w tab) k.k_params;
      w_list w (w_insn w tab) k.k_body)
    c.ctors;
  w_list w str c.annotations;
  w_list w str c.inner_classes

let r_class r =
  let strings =
    r_list r (fun r ->
        let len = r_u16 r in
        r_bytes r len)
    |> Array.of_list
  in
  let str () = r_string r strings in
  let name = str () in
  let super = str () in
  let flags = r_u8 r in
  let interfaces = r_list r (fun _ -> str ()) in
  let fields =
    r_list r (fun r ->
        let f_name = str () in
        let f_type = r_jtype r strings in
        let f_static = r_u8 r = 1 in
        { f_name; f_type; f_static })
  in
  let methods =
    r_list r (fun r ->
        let m_name = str () in
        let m_ret = r_jtype r strings in
        let m_params = r_list r (fun r -> r_jtype r strings) in
        let mflags = r_u8 r in
        let m_body = r_list r (fun r -> r_insn r strings) in
        {
          m_name;
          m_ret;
          m_params;
          m_static = mflags land 1 <> 0;
          m_abstract = mflags land 2 <> 0;
          m_body;
        })
  in
  let ctors =
    r_list r (fun r ->
        let k_params = r_list r (fun r -> r_jtype r strings) in
        let k_body = r_list r (fun r -> r_insn r strings) in
        { k_params; k_body })
  in
  let annotations = r_list r (fun _ -> str ()) in
  let inner_classes = r_list r (fun _ -> str ()) in
  {
    name;
    super;
    interfaces;
    is_interface = flags land 1 <> 0;
    is_abstract = flags land 2 <> 0;
    fields;
    methods;
    ctors;
    annotations;
    inner_classes;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let class_to_bytes c =
  let w = { buf = Buffer.create 512 } in
  w_class w c;
  Buffer.contents w.buf

let class_of_bytes data =
  match r_class { data; pos = 0 } with
  | c -> Ok c
  | exception Malformed m -> Error m
  | exception Invalid_argument m -> Error m

let to_bytes pool =
  let w = { buf = Buffer.create 4096 } in
  Buffer.add_string w.buf magic;
  w_u16 w version;
  let classes = Classpool.classes pool in
  w_u16 w (List.length classes);
  List.iter (w_class w) classes;
  Buffer.contents w.buf

let of_bytes data =
  let r = { data; pos = 0 } in
  match
    let m = r_bytes r 4 in
    if m <> magic then fail "bad magic %S" m;
    let v = r_u16 r in
    if v <> version then fail "unsupported version %d" v;
    let count = r_u16 r in
    let classes = List.init count (fun _ -> r_class r) in
    if r.pos <> String.length data then fail "trailing garbage at %d" r.pos;
    Classpool.of_classes classes
  with
  | pool -> Ok pool
  | exception Malformed m -> Error m
  | exception Invalid_argument m -> Error m

let serialized_size pool = String.length (to_bytes pool)

let write_file path pool =
  let oc = open_out_bin path in
  output_string oc (to_bytes pool);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  of_bytes data
