module SMap = Map.Make (String)

(* The size metric is consulted several times per predicate call (cost
   function, improvement tracking); the memo makes those after the first
   free.  [-1] means "not computed yet". *)
type t = { map : Classfile.cls SMap.t; mutable bytes_memo : int }

let of_classes classes =
  let map =
    List.fold_left
      (fun pool (c : Classfile.cls) ->
        if SMap.mem c.name pool then
          invalid_arg (Printf.sprintf "Classpool.of_classes: duplicate class %s" c.name)
        else SMap.add c.name c pool)
      SMap.empty classes
  in
  { map; bytes_memo = -1 }

let find pool name = SMap.find_opt name pool.map

let mem pool name = SMap.mem name pool.map

let classes pool = SMap.bindings pool.map |> List.map snd

let names pool = SMap.bindings pool.map |> List.map fst

let size pool = SMap.cardinal pool.map

let fold f pool acc = SMap.fold (fun _ c acc -> f c acc) pool.map acc

let memo_bytes pool compute =
  if pool.bytes_memo < 0 then pool.bytes_memo <- compute pool;
  pool.bytes_memo

let empty = { map = SMap.empty; bytes_memo = -1 }

let set pool (c : Classfile.cls) = { map = SMap.add c.name c pool.map; bytes_memo = -1 }

let unset pool name =
  if SMap.mem name pool.map then { map = SMap.remove name pool.map; bytes_memo = -1 }
  else pool

let with_bytes pool bytes = { pool with bytes_memo = bytes }
