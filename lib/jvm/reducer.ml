open Lbr_logic
open Classfile

(* One reduction instance applies thousands of candidate assignments to the
   same pool, so the item → variable resolution (string-keyed hash lookups
   on freshly built items) is hoisted into a prepared pass: every item's
   variable id is resolved once, and each application is then pure integer
   membership tests on the assignment.  [-1] marks itemless (permanent)
   positions, e.g. extends of an external super. *)

type prep_class = {
  pc : cls;
  cls_var : int;
  ext_var : int;
  base_bytes : int;  (* class header + name, per {!Size.class_bytes} *)
  full_bytes : int;  (* byte size with every member kept *)
  (* Per-member-list all-kept byte sums, so a rebuild that leaves one list
     untouched shares the original list and adds its weight in one step. *)
  ifaces_bytes : int;
  fields_bytes : int;
  meths_bytes : int;
  ctors_bytes : int;
  annots_bytes : int;
  inners_bytes : int;
  iface_vars : (string * int) list;
  field_vars : (field * int) list;
  meth_vars : (meth * int * int * int * int * bool) list;
      (* method item, code item, bytes if body kept, bytes if stubbed,
         body instantiates a pool class (may need ctor-index remapping) *)
  ctor_vars : (ctor * int * int * int * int * bool) array;
      (* ctor item, ctor-code item, bytes if body kept, bytes if stubbed,
         body instantiates a pool class *)
  annot_vars : (string * int) list;
  inner_vars : (string * int) list;
}

(* Last-application memory for one prepared class: which phi-bits its
   reduced form was computed from, and what came out.  The applier returned
   by {!prepare} owns one of these per class and mutates it in place, so a
   prepared applier must not be shared between domains (each reduction run
   builds its own, which is how every caller already works). *)
type class_cache = {
  sig_words : int array;  (* assignment-word indices covering the class's variables *)
  sig_masks : int array;  (* per word, the bits belonging to those variables *)
  sig_vals : int array;   (* their masked values at the previous application *)
  mutable seen : bool;    (* false until the first application *)
  mutable present : bool;
  mutable ccls : cls;     (* cached reduced class, meaningful when present *)
  mutable cbytes : int;   (* its byte size, 0 when absent *)
  (* Every signature ever reduced, so revisiting one — binary probing hops
     between prefix assignments whose restriction to one class cycles
     through a few values — reuses the very same class structure instead of
     rebuilding it.  Buckets are keyed by a mixed hash of the signature
     words and resolved by exact comparison. *)
  results : (int, sig_entry list) Hashtbl.t;
}

and sig_entry = {
  e_sig : int array;  (* masked signature words this result was built from *)
  e_present : bool;
  e_cls : cls;
  e_bytes : int;
}

let sig_hash vals =
  let h = ref 0 in
  for i = 0 to Array.length vals - 1 do
    h := (!h * 486187739) + Array.unsafe_get vals i
  done;
  !h land max_int

let sig_equal a b =
  let n = Array.length a in
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

(* @raise Not_found — so the hit path allocates nothing. *)
let rec find_entry vals = function
  | [] -> raise Not_found
  | e :: rest -> if sig_equal e.e_sig vals then e else find_entry vals rest

(* Compare-and-refresh the cached signature words against [phi]; returns
   whether they were all unchanged.  Top-level with every datum an argument
   so the per-class call allocates nothing. *)
let rec sweep_words words masks vals phi i n hit =
  if i >= n then hit
  else
    let w = Assignment.word_at phi (Array.unsafe_get words i) land Array.unsafe_get masks i in
    if Array.unsafe_get vals i = w then sweep_words words masks vals phi (i + 1) n hit
    else begin
      Array.unsafe_set vals i w;
      sweep_words words masks vals phi (i + 1) n false
    end

let sweep_sig cache phi =
  sweep_words cache.sig_words cache.sig_masks cache.sig_vals phi 0
    (Array.length cache.sig_words) cache.seen

let prepare jv pool =
  let var_of item = match Jvars.var_opt jv item with Some v -> v | None -> -1 in
  (* Only [New_instance] sites on pool classes are ever renumbered; bodies
     without one can be shared untouched between the original and every
     sub-pool, which skips the per-application body rebuild entirely. *)
  let references_pool_ctor body =
    List.exists
      (function New_instance { cls; _ } -> Classpool.mem pool cls | _ -> false)
      body
  in
  let prep =
    Classpool.fold
      (fun (c : cls) acc ->
        let name = c.name in
        {
          pc = c;
          cls_var = var_of (Item.Class name);
          ext_var =
            (if c.is_interface || Classfile.is_external c.super then -1
             else var_of (Item.Extends name));
          base_bytes = Size.class_header_bytes c;
          full_bytes =
            (* The all-members-kept size, so an application that keeps the
               class whole never re-accumulates it. *)
            Size.class_header_bytes c
            + (List.length c.interfaces * Size.iface_bytes)
            + (List.length c.fields * Size.field_bytes)
            + List.fold_left (fun s m -> s + Size.meth_bytes m) 0 c.methods
            + List.fold_left (fun s k -> s + Size.ctor_bytes k) 0 c.ctors
            + (List.length c.annotations * Size.annotation_bytes)
            + (List.length c.inner_classes * Size.inner_bytes);
          ifaces_bytes = List.length c.interfaces * Size.iface_bytes;
          fields_bytes = List.length c.fields * Size.field_bytes;
          meths_bytes = List.fold_left (fun s m -> s + Size.meth_bytes m) 0 c.methods;
          ctors_bytes = List.fold_left (fun s k -> s + Size.ctor_bytes k) 0 c.ctors;
          annots_bytes = List.length c.annotations * Size.annotation_bytes;
          inners_bytes = List.length c.inner_classes * Size.inner_bytes;
          iface_vars =
            List.map
              (fun i ->
                ( i,
                  var_of
                    (if c.is_interface then Item.Iface_extends { iface = name; super = i }
                     else Item.Implements { cls = name; iface = i }) ))
              c.interfaces;
          field_vars =
            List.map (fun (f : field) -> (f, var_of (Item.Field { cls = name; field = f.f_name }))) c.fields;
          meth_vars =
            List.map
              (fun (m : meth) ->
                ( m,
                  var_of (Item.Method { cls = name; meth = m.m_name }),
                  (if m.m_abstract then -1 else var_of (Item.Code { cls = name; meth = m.m_name })),
                  Size.meth_bytes m,
                  (* remapping preserves per-instruction sizes, so the kept
                     and stubbed byte counts can both be fixed in advance *)
                  (if m.m_abstract then Size.meth_bytes m
                   else Size.meth_bytes { m with m_body = [ Return_insn ] }),
                  references_pool_ctor m.m_body ))
              c.methods;
          ctor_vars =
            Array.of_list
              (List.mapi
                 (fun index k ->
                   ( k,
                     var_of (Item.Ctor { cls = name; index }),
                     var_of (Item.Ctor_code { cls = name; index }),
                     Size.ctor_bytes k,
                     Size.ctor_bytes { k with k_body = [ Return_insn ] },
                     references_pool_ctor k.k_body ))
                 c.ctors);
          annot_vars = List.mapi (fun index a -> (a, var_of (Item.Annotation { cls = name; index }))) c.annotations;
          inner_vars =
            List.mapi (fun index i -> (i, var_of (Item.Inner_class { cls = name; index }))) c.inner_classes;
        }
        :: acc)
      pool []
  in
  let preps = Array.of_list prep in
  let prep_tbl = Hashtbl.create (Array.length preps) in
  Array.iter (fun p -> Hashtbl.add prep_tbl p.pc.name p) preps;
  (* A class's reduced form is a function of the phi-bits of [sig_vars]
     alone: its own item variables, plus the constructor variables of every
     pool class its bodies instantiate (their kept-set drives New_instance
     renumbering).  [sig_bits] remembers the bits of the previous
     application; while they are unchanged the cached class — including its
     byte count and its entry in the incrementally maintained pool map — is
     reused without touching a single member list. *)
  let caches =
    Array.map
      (fun p ->
        let vars = ref [] in
        let add v = if v >= 0 then vars := v :: !vars in
        add p.cls_var;
        add p.ext_var;
        List.iter (fun (_, v) -> add v) p.iface_vars;
        List.iter (fun (_, v) -> add v) p.field_vars;
        List.iter (fun (_, mv, cv, _, _, _) -> add mv; add cv) p.meth_vars;
        Array.iter (fun (_, kv, cv, _, _, _) -> add kv; add cv) p.ctor_vars;
        List.iter (fun (_, v) -> add v) p.annot_vars;
        List.iter (fun (_, v) -> add v) p.inner_vars;
        let add_refs body =
          List.iter
            (function
              | New_instance { cls; _ } -> (
                  match Hashtbl.find_opt prep_tbl cls with
                  | Some b -> Array.iter (fun (_, kv, _, _, _, _) -> add kv) b.ctor_vars
                  | None -> ())
              | _ -> ())
            body
        in
        List.iter
          (fun ((m : meth), _, _, _, _, may_remap) -> if may_remap then add_refs m.m_body)
          p.meth_vars;
        Array.iter
          (fun ((k : ctor), _, _, _, _, may_remap) -> if may_remap then add_refs k.k_body)
          p.ctor_vars;
        let sig_words, sig_masks = Assignment.masks_of (List.filter (fun v -> v >= 0) !vars) in
        {
          sig_words;
          sig_masks;
          sig_vals = Array.make (Array.length sig_words) 0;
          seen = false;
          present = false;
          ccls = p.pc;
          cbytes = 0;
          results = Hashtbl.create 16;
        })
      preps
  in
  (* Constructor-renumbering mappings, computed on demand for the classes a
     rebuilt body instantiates and memoized for the current application
     only.  [Some mapping] iff dropping constructors shifts a kept index —
     an absent or [None] entry is the identity, exactly as before. *)
  let mapping_memo : (string, int array option) Hashtbl.t = Hashtbl.create 8 in
  let last_pool = ref Classpool.empty in
  let last_total = ref 0 in
  fun phi ->
    let keep v = v < 0 || Assignment.mem v phi in
    if Hashtbl.length mapping_memo > 0 then Hashtbl.reset mapping_memo;
    let mapping_of name =
      match Hashtbl.find_opt mapping_memo name with
      | Some m -> m
      | None ->
          let m =
            match Hashtbl.find_opt prep_tbl name with
            | None -> None
            | Some b ->
                let shifted = ref false in
                let next = ref 0 in
                Array.iteri
                  (fun i (_, kv, _, _, _, _) ->
                    if keep kv then begin
                      if !next <> i then shifted := true;
                      incr next
                    end)
                  b.ctor_vars;
                if not !shifted then None
                else begin
                  let mapping = Array.make (Array.length b.ctor_vars) (-1) in
                  let next = ref 0 in
                  Array.iteri
                    (fun i (_, kv, _, _, _, _) ->
                      if keep kv then begin
                        mapping.(i) <- !next;
                        incr next
                      end)
                    b.ctor_vars;
                  Some mapping
                end
          in
          Hashtbl.add mapping_memo name m;
          m
    in
    let remap_insn insn =
      match insn with
      | New_instance { cls; ctor } -> (
          match mapping_of cls with
          | Some mapping
            when ctor < Array.length mapping
                 && mapping.(ctor) >= 0
                 && mapping.(ctor) <> ctor ->
              New_instance { cls; ctor = mapping.(ctor) }
          | Some _ | None -> insn)
      | Invoke_virtual _ | Invoke_interface _ | Invoke_static _ | Get_field _ | Put_field _
      | Check_cast _ | Instance_of _ | Upcast _ | Load_const_class _ | Arith | Load_store
      | Return_insn -> insn
    in
    let insn_changes insn =
      match insn with
      | New_instance { cls; ctor } -> (
          match mapping_of cls with
          | Some mapping ->
              ctor < Array.length mapping && mapping.(ctor) >= 0 && mapping.(ctor) <> ctor
          | None -> false)
      | _ -> false
    in
    (* Rebuild a body only when some instruction in it actually changes;
       otherwise the original list is shared into the sub-pool. *)
    let remap_body ~may_remap body =
      if not may_remap then body
      else if List.exists insn_changes body then List.map remap_insn body
      else body
    in
    let body_unchanged ~may_remap body =
      (not may_remap) || not (List.exists insn_changes body)
    in
    (* The byte size of the sub-pool is accumulated arithmetically during
       filtering — member weights were fixed at preparation time — so the
       driver's cost function never has to re-walk the bodies.  Each member
       list is tested for being untouched first: an untouched list is shared
       into the rebuilt class (its all-kept weight was fixed at preparation
       time), and a class with every list untouched is shared whole. *)
    let rebuild p =
      let c = p.pc in
      if not (keep p.cls_var) then None
      else begin
        let ifaces_ok = List.for_all (fun (_, v) -> keep v) p.iface_vars in
        let fields_ok = List.for_all (fun (_, v) -> keep v) p.field_vars in
        let meths_ok =
          List.for_all
            (fun ((m : meth), mv, cv, _, _, may_remap) ->
              keep mv
              && (m.m_abstract || (keep cv && body_unchanged ~may_remap m.m_body)))
            p.meth_vars
        in
        let ctors_ok =
          Array.for_all
            (fun ((k : ctor), kv, cv, _, _, may_remap) ->
              keep kv && keep cv && body_unchanged ~may_remap k.k_body)
            p.ctor_vars
        in
        let annots_ok = List.for_all (fun (_, v) -> keep v) p.annot_vars in
        let inners_ok = List.for_all (fun (_, v) -> keep v) p.inner_vars in
        if
          keep p.ext_var && ifaces_ok && fields_ok && meths_ok && ctors_ok && annots_ok
          && inners_ok
        then Some (c, p.full_bytes)
        else begin
          let bytes = ref p.base_bytes in
          let super = if keep p.ext_var then c.super else object_name in
          let interfaces =
            if ifaces_ok then begin bytes := !bytes + p.ifaces_bytes; c.interfaces end
            else
              List.filter_map
                (fun (i, v) ->
                  if keep v then begin bytes := !bytes + Size.iface_bytes; Some i end else None)
                p.iface_vars
          in
          let fields =
            if fields_ok then begin bytes := !bytes + p.fields_bytes; c.fields end
            else
              List.filter_map
                (fun (f, v) ->
                  if keep v then begin bytes := !bytes + Size.field_bytes; Some f end else None)
                p.field_vars
          in
          let methods =
            if meths_ok then begin bytes := !bytes + p.meths_bytes; c.methods end
            else
              List.filter_map
                (fun ((m : meth), mv, cv, full, stub, may_remap) ->
                  if not (keep mv) then None
                  else if m.m_abstract then begin bytes := !bytes + full; Some m end
                  else if keep cv then begin
                    bytes := !bytes + full;
                    let body = remap_body ~may_remap m.m_body in
                    Some (if body == m.m_body then m else { m with m_body = body })
                  end
                  else begin bytes := !bytes + stub; Some { m with m_body = [ Return_insn ] } end)
                p.meth_vars
          in
          (* Indices shift after filtering: stub removed bodies first, then
             drop removed constructors.  New_instance sites referencing a
             removed constructor are ruled out by the constraints; sites
             referencing kept ones are renumbered. *)
          let ctors =
            if ctors_ok then begin bytes := !bytes + p.ctors_bytes; c.ctors end
            else
              Array.to_list p.ctor_vars
              |> List.filter_map (fun ((k : ctor), kv, cv, full, stub, may_remap) ->
                     if not (keep kv) then None
                     else if keep cv then begin
                       bytes := !bytes + full;
                       let body = remap_body ~may_remap k.k_body in
                       Some (if body == k.k_body then k else { k with k_body = body })
                     end
                     else begin bytes := !bytes + stub; Some { k with k_body = [ Return_insn ] } end)
          in
          let annotations =
            if annots_ok then begin bytes := !bytes + p.annots_bytes; c.annotations end
            else
              List.filter_map
                (fun (a, v) ->
                  if keep v then begin bytes := !bytes + Size.annotation_bytes; Some a end
                  else None)
                p.annot_vars
          in
          let inner_classes =
            if inners_ok then begin bytes := !bytes + p.inners_bytes; c.inner_classes end
            else
              List.filter_map
                (fun (i, v) ->
                  if keep v then begin bytes := !bytes + Size.inner_bytes; Some i end else None)
                p.inner_vars
          in
          Some
            ( { c with super; interfaces; fields; methods; ctors; annotations; inner_classes },
              !bytes )
        end
      end
    in
    let pool_acc = ref !last_pool in
    let total = ref !last_total in
    Array.iteri
      (fun idx p ->
        let cache = caches.(idx) in
        let hit = sweep_sig cache phi in
        cache.seen <- true;
        if not hit then begin
          let vals = cache.sig_vals in
          let old_present = cache.present in
          let old_cls = cache.ccls in
          let old_bytes = cache.cbytes in
          let h = sig_hash vals in
          let bucket = try Hashtbl.find cache.results h with Not_found -> [] in
          let entry =
            try find_entry vals bucket
            with Not_found ->
              let e =
                match rebuild p with
                | None ->
                    { e_sig = Array.copy vals; e_present = false; e_cls = p.pc; e_bytes = 0 }
                | Some (c, b) ->
                    { e_sig = Array.copy vals; e_present = true; e_cls = c; e_bytes = b }
              in
              Hashtbl.replace cache.results h (e :: bucket);
              e
          in
          cache.present <- entry.e_present;
          cache.ccls <- entry.e_cls;
          cache.cbytes <- entry.e_bytes;
          if not entry.e_present then begin
            if old_present then begin
              pool_acc := Classpool.unset !pool_acc p.pc.name;
              total := !total - old_bytes
            end
          end
          else begin
            if (not old_present) || not (entry.e_cls == old_cls) then
              pool_acc := Classpool.set !pool_acc entry.e_cls;
            total := !total + entry.e_bytes - (if old_present then old_bytes else 0)
          end
        end)
      preps;
    last_pool := !pool_acc;
    last_total := !total;
    Classpool.with_bytes !pool_acc !total

let prepare jv pool =
  let app = prepare jv pool in
  fun phi -> Perf.time "jvm.reducer-apply" (fun () -> app phi)

let apply jv pool phi = prepare jv pool phi
