open Lbr_logic
open Classfile

(* One reduction instance applies thousands of candidate assignments to the
   same pool, so the item → variable resolution (string-keyed hash lookups
   on freshly built items) is hoisted into a prepared pass: every item's
   variable id is resolved once, and each application is then pure integer
   membership tests on the assignment.  [-1] marks itemless (permanent)
   positions, e.g. extends of an external super. *)

type prep_class = {
  pc : cls;
  cls_var : int;
  ext_var : int;
  base_bytes : int;  (* class header + name, per {!Size.class_bytes} *)
  iface_vars : (string * int) list;
  field_vars : (field * int) list;
  meth_vars : (meth * int * int * int * int * bool) list;
      (* method item, code item, bytes if body kept, bytes if stubbed,
         body instantiates a pool class (may need ctor-index remapping) *)
  ctor_vars : (ctor * int * int * int * int * bool) array;
      (* ctor item, ctor-code item, bytes if body kept, bytes if stubbed,
         body instantiates a pool class *)
  annot_vars : (string * int) list;
  inner_vars : (string * int) list;
}

let prepare jv pool =
  let var_of item = match Jvars.var_opt jv item with Some v -> v | None -> -1 in
  (* Only [New_instance] sites on pool classes are ever renumbered; bodies
     without one can be shared untouched between the original and every
     sub-pool, which skips the per-application body rebuild entirely. *)
  let references_pool_ctor body =
    List.exists
      (function New_instance { cls; _ } -> Classpool.mem pool cls | _ -> false)
      body
  in
  let prep =
    Classpool.fold
      (fun (c : cls) acc ->
        let name = c.name in
        {
          pc = c;
          cls_var = var_of (Item.Class name);
          ext_var =
            (if c.is_interface || Classfile.is_external c.super then -1
             else var_of (Item.Extends name));
          base_bytes = Size.class_header_bytes c;
          iface_vars =
            List.map
              (fun i ->
                ( i,
                  var_of
                    (if c.is_interface then Item.Iface_extends { iface = name; super = i }
                     else Item.Implements { cls = name; iface = i }) ))
              c.interfaces;
          field_vars =
            List.map (fun (f : field) -> (f, var_of (Item.Field { cls = name; field = f.f_name }))) c.fields;
          meth_vars =
            List.map
              (fun (m : meth) ->
                ( m,
                  var_of (Item.Method { cls = name; meth = m.m_name }),
                  (if m.m_abstract then -1 else var_of (Item.Code { cls = name; meth = m.m_name })),
                  Size.meth_bytes m,
                  (* remapping preserves per-instruction sizes, so the kept
                     and stubbed byte counts can both be fixed in advance *)
                  (if m.m_abstract then Size.meth_bytes m
                   else Size.meth_bytes { m with m_body = [ Return_insn ] }),
                  references_pool_ctor m.m_body ))
              c.methods;
          ctor_vars =
            Array.of_list
              (List.mapi
                 (fun index k ->
                   ( k,
                     var_of (Item.Ctor { cls = name; index }),
                     var_of (Item.Ctor_code { cls = name; index }),
                     Size.ctor_bytes k,
                     Size.ctor_bytes { k with k_body = [ Return_insn ] },
                     references_pool_ctor k.k_body ))
                 c.ctors);
          annot_vars = List.mapi (fun index a -> (a, var_of (Item.Annotation { cls = name; index }))) c.annotations;
          inner_vars =
            List.mapi (fun index i -> (i, var_of (Item.Inner_class { cls = name; index }))) c.inner_classes;
        }
        :: acc)
      pool []
  in
  fun phi ->
    let keep v = v < 0 || Assignment.mem v phi in
    (* Constructor indices in New_instance must follow the renumbering that
       dropping constructors induces. *)
    let ctor_index_map : (string, int array) Hashtbl.t = Hashtbl.create 16 in
    (* When no class drops a constructor ahead of a kept one, every mapping
       is the identity and body remapping is a global no-op. *)
    let all_identity = ref true in
    List.iter
      (fun p ->
        let mapping = Array.make (Array.length p.ctor_vars) (-1) in
        let next = ref 0 in
        Array.iteri
          (fun i (_, kv, _, _, _, _) ->
            if keep kv then begin
              mapping.(i) <- !next;
              if !next <> i then all_identity := false;
              incr next
            end)
          p.ctor_vars;
        Hashtbl.add ctor_index_map p.pc.name mapping)
      prep;
    let remap_insn insn =
      match insn with
      | New_instance { cls; ctor } -> (
          match Hashtbl.find_opt ctor_index_map cls with
          | Some mapping when ctor < Array.length mapping && mapping.(ctor) >= 0 ->
              New_instance { cls; ctor = mapping.(ctor) }
          | Some _ | None -> insn)
      | Invoke_virtual _ | Invoke_interface _ | Invoke_static _ | Get_field _ | Put_field _
      | Check_cast _ | Instance_of _ | Upcast _ | Load_const_class _ | Arith | Load_store
      | Return_insn -> insn
    in
    let remap_body ~may_remap body =
      if (not may_remap) || !all_identity then body else List.map remap_insn body
    in
    (* The byte size of the sub-pool is accumulated arithmetically during
       filtering — member weights were fixed at preparation time — so the
       driver's cost function never has to re-walk the bodies. *)
    let reduce_class p ((acc, total) as unchanged) =
      let c = p.pc in
      if not (keep p.cls_var) then unchanged
      else begin
        let bytes = ref p.base_bytes in
        let super = if keep p.ext_var then c.super else object_name in
        let interfaces =
          List.filter_map
            (fun (i, v) ->
              if keep v then begin bytes := !bytes + Size.iface_bytes; Some i end else None)
            p.iface_vars
        in
        let fields =
          List.filter_map
            (fun (f, v) ->
              if keep v then begin bytes := !bytes + Size.field_bytes; Some f end else None)
            p.field_vars
        in
        let methods =
          List.filter_map
            (fun ((m : meth), mv, cv, full, stub, may_remap) ->
              if not (keep mv) then None
              else if m.m_abstract then begin bytes := !bytes + full; Some m end
              else if keep cv then begin
                bytes := !bytes + full;
                let body = remap_body ~may_remap m.m_body in
                Some (if body == m.m_body then m else { m with m_body = body })
              end
              else begin bytes := !bytes + stub; Some { m with m_body = [ Return_insn ] } end)
            p.meth_vars
        in
        (* Indices shift after filtering: stub removed bodies first, then drop
           removed constructors.  New_instance sites referencing a removed
           constructor are ruled out by the constraints; sites referencing
           kept ones are renumbered. *)
        let ctors =
          Array.to_list p.ctor_vars
          |> List.filter_map (fun ((k : ctor), kv, cv, full, stub, may_remap) ->
                 if not (keep kv) then None
                 else if keep cv then begin
                   bytes := !bytes + full;
                   let body = remap_body ~may_remap k.k_body in
                   Some (if body == k.k_body then k else { k with k_body = body })
                 end
                 else begin bytes := !bytes + stub; Some { k with k_body = [ Return_insn ] } end)
        in
        let annotations =
          List.filter_map
            (fun (a, v) ->
              if keep v then begin bytes := !bytes + Size.annotation_bytes; Some a end else None)
            p.annot_vars
        in
        let inner_classes =
          List.filter_map
            (fun (i, v) ->
              if keep v then begin bytes := !bytes + Size.inner_bytes; Some i end else None)
            p.inner_vars
        in
        ( { c with super; interfaces; fields; methods; ctors; annotations; inner_classes } :: acc,
          total + !bytes )
      end
    in
    let classes, total = List.fold_left (fun acc p -> reduce_class p acc) ([], 0) prep in
    let sub = Classpool.of_classes classes in
    ignore (Classpool.memo_bytes sub (fun _ -> total));
    sub

let apply jv pool phi = prepare jv pool phi
