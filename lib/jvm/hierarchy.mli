(** Class-hierarchy queries shared by the checker and the constraint
    generator.

    Resolution results are reported together with the {e relation path} that
    makes them hold — the extends / implements / interface-extends edges a
    reduced pool must preserve for the resolution to keep succeeding.  The
    constraint generator maps each edge to its item variable; the checker
    only cares that some path exists. *)

type edge =
  | Eext of string  (** the extends edge of class [c] *)
  | Eimpl of string * string  (** class [c] implements interface [i] *)
  | Eiext of string * string  (** interface [i] extends interface [j] *)

type path = edge list

(** A query context over one fixed pool: the same queries as the one-shot
    functions below, backed by lazy memo tables (adjacency, reachability
    bits, enumerated paths, resolution results) so repeated questions about
    one hierarchy — a constraint generation asks hundreds — are answered
    once.  Answers are byte-for-byte those of the one-shot functions.  A
    context must not outlive mutations of the hierarchy it was created on
    (pools are immutable values, so in practice: don't reuse a context for
    a different pool), and is not thread-safe. *)
module Ctx : sig
  type t

  val create : Classpool.t -> t
  val out_edges : t -> string -> (edge * string) list
  val paths_to : t -> src:string -> dst:string -> max_paths:int -> path list
  val subtype_paths : t -> sub:string -> sup:string -> path list

  val method_candidates :
    t -> owner:string -> meth:string -> static:bool -> (string * path) list

  val field_candidates : t -> owner:string -> field:string -> (string * path) list
  val interfaces_of : t -> string -> (string * path) list
  val abstract_obligations : t -> Classfile.cls -> (string * string) list
end

val out_edges : Classpool.t -> string -> (edge * string) list
(** Outgoing supertype edges of a class or interface (external names have
    none): the extends edge when the superclass is internal, and one edge
    per listed interface. *)

val check_acyclic : Classpool.t -> (unit, string) result
(** No class or interface may be its own (transitive) supertype. *)

val super_chain : Classpool.t -> string -> string list
(** [super_chain pool c] lists [c] and its superclasses, innermost first,
    ending with the first external class (usually [Object]).  Assumes
    acyclicity. *)

val paths_between : Classpool.t -> src:string -> dst:string -> max_paths:int -> path list
(** All relation paths from [src] to [dst], pruned by memoized reachability
    and capped at [max_paths] results (so [length result = max_paths] can
    mean the enumeration overflowed). *)

val subtype_paths : Classpool.t -> sub:string -> sup:string -> path list
(** All relation paths witnessing [sub ≤ sup]; empty when [sub ≤ sup] does
    not hold in the original pool.  External classes have no out-edges.
    The trivial path is returned as [[]] when [sub = sup]. *)

val method_candidates :
  Classpool.t -> owner:string -> meth:string -> static:bool -> (string * path) list
(** Classes or interfaces on [owner]'s supertype graph that define [meth]
    (with matching staticness), each with the relation path from [owner] to
    it.  If [owner] is external the call trivially resolves and the list is
    [[("", [])]]. *)

val field_candidates :
  Classpool.t -> owner:string -> field:string -> (string * path) list
(** Like {!method_candidates} but for fields (searched on the class chain
    only). *)

val interfaces_of : Classpool.t -> string -> (string * path) list
(** All internal interfaces transitively implemented/extended by the given
    class or interface, with one entry per distinct relation path. *)

val abstract_obligations : Classpool.t -> Classfile.cls -> (string * string) list
(** For a concrete class: every abstract method [m] declared by a reachable
    supertype [t] (interface or abstract class), as [(t, m)] — the
    obligations the class must satisfy with a concrete implementation.
    Premise paths are enumerated separately with {!paths_between}, because
    dropping paths from obligation premises would weaken the model. *)
