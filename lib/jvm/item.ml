type t =
  | Class of string
  | Extends of string
  | Implements of { cls : string; iface : string }
  | Iface_extends of { iface : string; super : string }
  | Field of { cls : string; field : string }
  | Method of { cls : string; meth : string }
  | Code of { cls : string; meth : string }
  | Ctor of { cls : string; index : int }
  | Ctor_code of { cls : string; index : int }
  | Annotation of { cls : string; index : int }
  | Inner_class of { cls : string; index : int }

(* Direct concatenation: [to_string] runs once per item on every variable
   derivation, and format interpretation costs several times the append
   itself. *)
let to_string = function
  | Class c -> c
  | Extends c -> c ^ "!extends"
  | Implements { cls; iface } -> cls ^ "<" ^ iface
  | Iface_extends { iface; super } -> iface ^ "<:" ^ super
  | Field { cls; field } -> cls ^ "#" ^ field
  | Method { cls; meth } -> cls ^ "." ^ meth ^ "()"
  | Code { cls; meth } -> cls ^ "." ^ meth ^ "()!code"
  | Ctor { cls; index } -> cls ^ ".<init>#" ^ string_of_int index
  | Ctor_code { cls; index } -> cls ^ ".<init>#" ^ string_of_int index ^ "!code"
  | Annotation { cls; index } -> cls ^ "@" ^ string_of_int index
  | Inner_class { cls; index } -> cls ^ "$" ^ string_of_int index

let owner = function
  | Class c | Extends c -> c
  | Implements { cls; _ }
  | Field { cls; _ }
  | Method { cls; _ }
  | Code { cls; _ }
  | Ctor { cls; _ }
  | Ctor_code { cls; _ }
  | Annotation { cls; _ }
  | Inner_class { cls; _ } -> cls
  | Iface_extends { iface; _ } -> iface

let compare = Stdlib.compare
let equal = Stdlib.( = )
let pp ppf t = Format.fprintf ppf "[%s]" (to_string t)
