open Lbr_logic
open Classfile

(* Disjunctions of conjunctions explode multiplicatively when lowered to CNF
   without auxiliary variables (k disjuncts of m conjuncts give m^k
   clauses).  [bounded_disj] keeps the cheapest disjuncts while the estimated
   clause product stays small.  Dropping disjuncts only strengthens the
   formula, so soundness (Theorem 3.1's analogue) is preserved; the model
   merely rules out a few valid sub-inputs, like the paper's own
   approximations for generics. *)
let max_clause_product = 64

let bounded_disj disjuncts =
  (* Weights are computed once up front — [Formula.size] is a full tree
     walk, so recomputing it inside the sort comparator is O(n log n)
     traversals for no benefit.  The sort is stable, so the decorated sort
     keeps exactly the order the undecorated one produced. *)
  let weighted = List.map (fun f -> (max 1 (Formula.size f), f)) disjuncts in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) weighted in
  let rec keep acc product = function
    | [] -> List.rev acc
    | (w, f) :: rest ->
        let product = product * w in
        if acc <> [] && product > max_clause_product then List.rev acc
        else keep (f :: acc) product rest
  in
  match sorted with
  | [] -> Formula.False
  | (w0, first) :: rest -> Formula.disj (keep [ first ] w0 rest)

let edge_formula jv = function
  | Hierarchy.Eext c -> Jvars.formula jv (Item.Extends c)
  | Hierarchy.Eimpl (c, i) -> Jvars.formula jv (Item.Implements { cls = c; iface = i })
  | Hierarchy.Eiext (i, j) -> Jvars.formula jv (Item.Iface_extends { iface = i; super = j })

let path_formula jv path = Formula.conj (List.map (edge_formula jv) path)

let subtype_formula jv hx ~sub ~sup =
  if sub = sup || Classfile.is_external sub || (sup = object_name) then Formula.True
  else
    match Hierarchy.Ctx.subtype_paths hx ~sub ~sup with
    | [] -> Formula.False
    | paths -> bounded_disj (List.map (path_formula jv) paths)

(* The class variable of [name], ⊤ for external classes. *)
let cls_formula jv name =
  if Classfile.is_external name then Formula.True else Jvars.formula jv (Item.Class name)

let type_ref_formula jv ty =
  match Jtype.ref_name ty with None -> Formula.True | Some n -> cls_formula jv n

(* mAny over resolution candidates: keeping the call site valid requires
   some defining class to survive with both the relation path to it and the
   method item itself. *)
let resolution_formula jv candidates ~member =
  match candidates with
  | [] -> Formula.False
  | _ ->
      bounded_disj
        (List.map
           (fun (owner, path) ->
             if owner = "" then Formula.True (* external resolution *)
             else Formula.conj [ path_formula jv path; member owner ])
           candidates)

let generate jv pool =
  let formulas = ref [] in
  let emit f = formulas := f :: !formulas in
  (* One memoizing hierarchy context for the whole generation: resolution
     and obligation queries repeat the same reachability walks and path
     enumerations heavily across call sites. *)
  let hx = Hierarchy.Ctx.create pool in
  (* An instruction's validity formula depends only on the instruction and
     the (fixed) pool, and call sites repeat heavily across bodies, so the
     whole resolution — hierarchy search included — is shared per distinct
     instruction. *)
  let insn_memo : (insn, Formula.t) Hashtbl.t = Hashtbl.create 1024 in
  let insn_formula_uncached insn =
    match insn with
    | Invoke_virtual { owner; meth } | Invoke_interface { owner; meth } ->
        Formula.conj
          [
            cls_formula jv owner;
            resolution_formula jv
              (Hierarchy.Ctx.method_candidates hx ~owner ~meth ~static:false)
              ~member:(fun d -> Jvars.formula jv (Item.Method { cls = d; meth }));
          ]
    | Invoke_static { owner; meth } ->
        Formula.conj
          [
            cls_formula jv owner;
            resolution_formula jv
              (Hierarchy.Ctx.method_candidates hx ~owner ~meth ~static:true)
              ~member:(fun d -> Jvars.formula jv (Item.Method { cls = d; meth }));
          ]
    | New_instance { cls; ctor } ->
        if Classfile.is_external cls then Formula.True
        else
          Formula.conj
            [ cls_formula jv cls; Jvars.formula jv (Item.Ctor { cls; index = ctor }) ]
    | Get_field { owner; field } | Put_field { owner; field } ->
        Formula.conj
          [
            cls_formula jv owner;
            resolution_formula jv
              (Hierarchy.Ctx.field_candidates hx ~owner ~field)
              ~member:(fun d -> Jvars.formula jv (Item.Field { cls = d; field }));
          ]
    | Check_cast t | Instance_of t -> cls_formula jv t
    | Upcast { from_; to_ } ->
        Formula.conj
          [ cls_formula jv from_; cls_formula jv to_;
            subtype_formula jv hx ~sub:from_ ~sup:to_ ]
    | Load_const_class c ->
        (* Generics/reflection approximation (§3): reflection on [c] makes
           this body depend on [c] keeping all its supertype relations. *)
        if Classfile.is_external c then Formula.True
        else
          let edges = ref [] in
          let visited = Hashtbl.create 8 in
          let rec collect name =
            if not (Hashtbl.mem visited name) then begin
              Hashtbl.add visited name ();
              List.iter
                (fun (edge, target) ->
                  edges := edge_formula jv edge :: !edges;
                  collect target)
                (Hierarchy.Ctx.out_edges hx name)
            end
          in
          collect c;
          Formula.conj (cls_formula jv c :: !edges)
    | Arith | Load_store | Return_insn -> Formula.True
  in
  let insn_formula insn =
    match Hashtbl.find_opt insn_memo insn with
    | Some f -> f
    | None ->
        let f = insn_formula_uncached insn in
        Hashtbl.add insn_memo insn f;
        f
  in
  let body_formula insns = Formula.conj (List.map insn_formula insns) in
  let gen_class (c : cls) =
    let vc = Jvars.formula jv (Item.Class c.name) in
    (* Relations. *)
    (if (not c.is_interface) && not (Classfile.is_external c.super) then
       emit
         (Formula.imply
            (Jvars.formula jv (Item.Extends c.name))
            (Formula.conj [ vc; cls_formula jv c.super ])));
    List.iter
      (fun i ->
        let rel =
          if c.is_interface then Jvars.formula jv (Item.Iface_extends { iface = c.name; super = i })
          else Jvars.formula jv (Item.Implements { cls = c.name; iface = i })
        in
        emit (Formula.imply rel (Formula.conj [ vc; cls_formula jv i ])))
      c.interfaces;
    (* Fields. *)
    List.iter
      (fun (f : field) ->
        emit
          (Formula.imply
             (Jvars.formula jv (Item.Field { cls = c.name; field = f.f_name }))
             (Formula.conj [ vc; type_ref_formula jv f.f_type ])))
      c.fields;
    (* Methods. *)
    List.iter
      (fun (m : meth) ->
        let vm = Jvars.formula jv (Item.Method { cls = c.name; meth = m.m_name }) in
        let decl_types = List.map (type_ref_formula jv) (m.m_ret :: m.m_params) in
        emit (Formula.imply vm (Formula.conj (vc :: decl_types)));
        if not m.m_abstract then
          let vcode = Jvars.formula jv (Item.Code { cls = c.name; meth = m.m_name }) in
          emit (Formula.imply vcode (Formula.conj [ vm; body_formula m.m_body ])))
      c.methods;
    (* Constructors, with the implicit super-constructor call: if the body
       is kept and the extends relation is kept, some super constructor must
       survive. *)
    List.iteri
      (fun index (k : ctor) ->
        let vk = Jvars.formula jv (Item.Ctor { cls = c.name; index }) in
        let vkcode = Jvars.formula jv (Item.Ctor_code { cls = c.name; index }) in
        let decl_types = List.map (type_ref_formula jv) k.k_params in
        emit (Formula.imply vk (Formula.conj (vc :: decl_types)));
        emit (Formula.imply vkcode (Formula.conj [ vk; body_formula k.k_body ]));
        if not (Classfile.is_external c.super) then
          match Classpool.find pool c.super with
          | None -> ()
          | Some super_cls ->
              let super_ctors =
                List.mapi
                  (fun j _ -> Jvars.formula jv (Item.Ctor { cls = c.super; index = j }))
                  super_cls.ctors
              in
              emit
                (Formula.imply
                   (Formula.conj [ vkcode; Jvars.formula jv (Item.Extends c.name) ])
                   (Formula.disj super_ctors)))
      c.ctors;
    (* Attributes. *)
    List.iteri
      (fun index a ->
        emit
          (Formula.imply
             (Jvars.formula jv (Item.Annotation { cls = c.name; index }))
             (Formula.conj [ vc; cls_formula jv a ])))
      c.annotations;
    List.iteri
      (fun index inner ->
        emit
          (Formula.imply
             (Jvars.formula jv (Item.Inner_class { cls = c.name; index }))
             (Formula.conj [ vc; cls_formula jv inner ])))
      c.inner_classes;
    (* Interface-implementation obligations (the FJI "signature typing
       relative to a class", generalised to interface hierarchies and
       abstract classes): if a relation path to the abstract declaration and
       the declaration itself survive, a concrete implementation must
       survive reachable from C.  One constraint per premise path — dropping
       premise paths would WEAKEN the model (premises sit in negative
       position), so when there are too many paths to enumerate we emit the
       sound over-approximation with no path premise at all. *)
    if (not c.is_abstract) && not c.is_interface then
      List.iter
        (fun (t, m) ->
          let concrete_candidates =
            Hierarchy.Ctx.method_candidates hx ~owner:c.name ~meth:m ~static:false
            |> List.filter (fun (d, _) ->
                   match Classpool.find pool d with
                   | None -> false
                   | Some dc -> (
                       match Classfile.find_method dc m with
                       | Some dm -> not dm.m_abstract
                       | None -> false))
          in
          let conclusion =
            resolution_formula jv concrete_candidates ~member:(fun d ->
                Jvars.formula jv (Item.Method { cls = d; meth = m }))
          in
          let decl = Jvars.formula jv (Item.Method { cls = t; meth = m }) in
          let max_premise_paths = 48 in
          let paths =
            Hierarchy.Ctx.paths_to hx ~src:c.name ~dst:t ~max_paths:max_premise_paths
          in
          if List.length paths >= max_premise_paths then
            emit (Formula.imply (Formula.conj [ vc; decl ]) conclusion)
          else
            List.iter
              (fun path ->
                emit
                  (Formula.imply
                     (Formula.conj [ vc; path_formula jv path; decl ])
                     conclusion))
              paths)
        (List.sort_uniq compare (Hierarchy.Ctx.abstract_obligations hx c))
  in
  List.iter gen_class (Classpool.classes pool);
  let formula = Formula.conj (List.rev !formulas) in
  let cnf = Formula.to_cnf formula in
  if Cnf.is_unsat cnf then invalid_arg "Constraints.generate: unsatisfiable model (invalid pool?)";
  cnf
