(** Constraint generation for class pools.

    Extends the FJI model of Section 3 to the bytecode substrate's "full
    Java" features: abstract classes, multiple interfaces, interfaces
    extending interfaces, super-class relations as removable items, fields,
    overloaded constructors (with the implicit super-constructor call), type
    casts, and the reflection/generics approximation (a body doing
    reflection on a class depends on that class keeping all its supertype
    relations).

    The generated formula is sound in the sense of Theorem 3.1: any
    satisfying assignment, applied by {!Reducer.apply}, yields a pool that
    {!Checker.check} accepts (property-tested in the test suite). *)

open Lbr_logic

val generate : Jvars.t -> Classpool.t -> Cnf.t
(** The dependency model of the pool.  The pool must be valid
    ({!Checker.is_valid}); resolution failures raise [Invalid_argument]. *)

val path_formula : Jvars.t -> Hierarchy.path -> Formula.t
(** Conjunction of the relation variables along a hierarchy path. *)

val subtype_formula :
  Jvars.t -> Hierarchy.Ctx.t -> sub:string -> sup:string -> Formula.t
(** Disjunction over all relation paths witnessing [sub ≤ sup]; [⊤] when
    trivial, [⊥] when the relation does not hold in the original pool. *)
