(** Applying a truth assignment to a class pool — the bytecode counterpart
    of the FJI reducer (Figure 5). *)

open Lbr_logic

val apply : Jvars.t -> Classpool.t -> Assignment.t -> Classpool.t
(** Keep exactly the items whose variables are set: classes disappear
    entirely; a removed extends relation re-parents onto [Object]; removed
    implements / interface-extends relations are dropped from the interface
    list; a method kept without its code gets an empty (stub) body; likewise
    constructors; fields, annotations and inner-class attributes are
    filtered. *)

val prepare : Jvars.t -> Classpool.t -> Assignment.t -> Classpool.t
(** Partial application of {!apply}: resolves every item's variable once so
    that repeated applications to the same pool (one per predicate query)
    cost only integer membership tests instead of per-item hash lookups. *)
