open Lbr_logic
open Lbr

type stats = {
  iterations : int;
  predicate_runs : int;
  predicate_queries : int;
}

let reduce ~closures ~base ~predicate =
  let runs0 = Predicate.runs predicate and queries0 = Predicate.queries predicate in
  let stats_now iterations =
    {
      iterations;
      predicate_runs = Predicate.runs predicate - runs0;
      predicate_queries = Predicate.queries predicate - queries0;
    }
  in
  (* Smallest-first gives the binary search the best chance of cutting off
     large closures. *)
  let sorted =
    List.sort (fun a b -> Int.compare (Assignment.cardinal a) (Assignment.cardinal b)) closures
  in
  let rec loop required candidates iterations =
    if Predicate.run predicate required then Ok (required, stats_now iterations)
    else
      match candidates with
      | [] -> Error `Predicate_inconsistent
      | _ ->
          let arr = Array.of_list candidates in
          let n = Array.length arr in
          let prefixes = Array.make n Assignment.empty in
          Array.iteri
            (fun i c ->
              prefixes.(i) <-
                (if i = 0 then Assignment.union required c
                 else Assignment.union prefixes.(i - 1) c))
            arr;
          (* P(required) is false and P(required ∪ all candidates) is true by
             assumption; find the smallest satisfying prefix. *)
          let rec search lo hi =
            (* invariant: ¬P at lo (lo = -1 stands for the empty prefix,
               i.e. [required] alone), P at hi *)
            if hi - lo <= 1 then hi
            else
              let mid = (lo + hi) / 2 in
              if Predicate.run predicate prefixes.(mid) then search lo mid else search mid hi
          in
          let r = search (-1) (n - 1) in
          let required = Assignment.union required arr.(r) in
          let remaining = List.filteri (fun i _ -> i < r) candidates in
          loop required remaining (iterations + 1)
  in
  loop base sorted 1

module Graph_encoding = struct
  let closures ~num_vars ~edges ~required =
    let graph = Lbr_graph.Digraph.make ~n:num_vars ~edges in
    let base_bits = Lbr_graph.Digraph.reachable_from_set graph required in
    let base = Lbr_graph.Bitset.to_assignment base_bits in
    (* Nodes of one SCC share their closure, and closures of distinct SCCs
       differ (each contains its own members), so deduplicating per
       component — word-level, before any conversion to assignments — yields
       the same distinct set as deduplicating the per-node table. *)
    let _, per_comp = Lbr_graph.Scc.component_closures graph in
    let module ASet = Set.Make (struct
      type t = Assignment.t

      let compare = Assignment.compare
    end) in
    let distinct =
      Array.fold_left
        (fun acc bits ->
          if Lbr_graph.Bitset.subset bits base_bits then acc
          else ASet.add (Lbr_graph.Bitset.to_assignment bits) acc)
        ASet.empty per_comp
    in
    let sorted =
      ASet.elements distinct
      |> List.sort (fun a b -> Int.compare (Assignment.cardinal a) (Assignment.cardinal b))
    in
    (base, sorted)
end
