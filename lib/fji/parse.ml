open Syntax

(* ------------------------------------------------------------------ *)
(* Tokenizer.  [// main] on a line of its own separates declarations
   from the program's main expression; every other [//] comment is
   dropped.  Tokens carry their line for error messages. *)

type token =
  | Ident of string
  | Kw of string  (* class interface extends implements new return *)
  | Punct of char  (* { } ( ) ; , . *)
  | Main_marker

type tok = { tk : token; line : int }

exception Parse_error of string

let fail line fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" line m))) fmt

let keywords = [ "class"; "interface"; "extends"; "implements"; "new"; "return" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize text =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let push tk = toks := { tk; line = !line } :: !toks in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      let eol = match String.index_from_opt text !i '\n' with Some e -> e | None -> n in
      let body = String.trim (String.sub text (!i + 2) (eol - !i - 2)) in
      if body = "main" then push Main_marker;
      i := eol
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char text.[!j] do
        incr j
      done;
      let word = String.sub text !i (!j - !i) in
      push (if List.mem word keywords then Kw word else Ident word);
      i := !j
    end
    else
      match c with
      | '{' | '}' | '(' | ')' | ';' | ',' | '.' ->
          push (Punct c);
          incr i
      | c -> fail !line "unexpected character %C" c
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser over the token list.                       *)

type state = { mutable toks : tok list; mutable last_line : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail st.last_line "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      st.last_line <- t.line;
      t

let expect_punct st c =
  let t = next st in
  match t.tk with
  | Punct p when p = c -> ()
  | _ -> fail t.line "expected %C" c

let expect_ident st =
  let t = next st in
  match t.tk with
  | Ident x -> x
  | Kw k -> fail t.line "keyword %S used as a name" k
  | _ -> fail t.line "expected an identifier"

let looking_at st tk = match peek st with Some t -> t.tk = tk | None -> false

let eat st tk = if looking_at st tk then ignore (next st)

(* expr := primary ('.' ident [args])*
   primary := 'new' T args | '(' T ')' expr | ident *)
let rec parse_expr st =
  let primary =
    let t = next st in
    match t.tk with
    | Kw "new" ->
        let ty = expect_ident st in
        New (ty, parse_args st)
    | Punct '(' ->
        let ty = expect_ident st in
        expect_punct st ')';
        Cast (ty, parse_expr st)
    | Ident x -> Var x
    | _ -> fail t.line "expected an expression"
  in
  parse_suffixes st primary

and parse_suffixes st e =
  if looking_at st (Punct '.') then begin
    ignore (next st);
    let name = expect_ident st in
    if looking_at st (Punct '(') then parse_suffixes st (Call (e, name, parse_args st))
    else parse_suffixes st (Field (e, name))
  end
  else e

and parse_args st =
  expect_punct st '(';
  if looking_at st (Punct ')') then begin
    ignore (next st);
    []
  end
  else
    let rec more acc =
      let acc = parse_expr st :: acc in
      let t = next st in
      match t.tk with
      | Punct ',' -> more acc
      | Punct ')' -> List.rev acc
      | _ -> fail t.line "expected ',' or ')' in an argument list"
    in
    more []

let parse_params st =
  expect_punct st '(';
  if looking_at st (Punct ')') then begin
    ignore (next st);
    []
  end
  else
    let rec more acc =
      let ty = expect_ident st in
      let x = expect_ident st in
      let acc = (ty, x) :: acc in
      let t = next st in
      match t.tk with
      | Punct ',' -> more acc
      | Punct ')' -> List.rev acc
      | _ -> fail t.line "expected ',' or ')' in a parameter list"
    in
    more []

(* Inside a class body, [T name] is followed by [;] (a field) or [(]
   (a method). *)
let parse_member st =
  let ty = expect_ident st in
  let name = expect_ident st in
  if looking_at st (Punct '(') then begin
    let params = parse_params st in
    expect_punct st '{';
    (let t = next st in
     match t.tk with Kw "return" -> () | _ -> fail t.line "expected 'return'");
    let body = parse_expr st in
    expect_punct st ';';
    expect_punct st '}';
    `Method { m_ret = ty; m_name = name; m_params = params; m_body = body }
  end
  else begin
    expect_punct st ';';
    `Field (ty, name)
  end

let parse_class st =
  let name = expect_ident st in
  let super = if looking_at st (Kw "extends") then (eat st (Kw "extends"); expect_ident st) else object_name in
  let iface =
    if looking_at st (Kw "implements") then (eat st (Kw "implements"); expect_ident st)
    else empty_interface_name
  in
  expect_punct st '{';
  let fields = ref [] and methods = ref [] in
  while not (looking_at st (Punct '}')) do
    match parse_member st with
    | `Field f ->
        if !methods <> [] then
          fail st.last_line "field %S declared after a method" (snd f);
        fields := f :: !fields
    | `Method m -> methods := m :: !methods
  done;
  expect_punct st '}';
  Class
    {
      c_name = name;
      c_super = super;
      c_iface = iface;
      c_fields = List.rev !fields;
      c_methods = List.rev !methods;
    }

let parse_iface st =
  let name = expect_ident st in
  expect_punct st '{';
  let sigs = ref [] in
  while not (looking_at st (Punct '}')) do
    let ty = expect_ident st in
    let m = expect_ident st in
    let params = parse_params st in
    expect_punct st ';';
    sigs := { s_ret = ty; s_name = m; s_params = params } :: !sigs
  done;
  expect_punct st '}';
  Interface { i_name = name; i_sigs = List.rev !sigs }

let parse_program st =
  let decls = ref [] in
  let main = ref None in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some { tk = Kw "class"; _ } ->
        ignore (next st);
        decls := parse_class st :: !decls;
        loop ()
    | Some { tk = Kw "interface"; _ } ->
        ignore (next st);
        decls := parse_iface st :: !decls;
        loop ()
    | Some { tk = Main_marker; _ } -> (
        ignore (next st);
        main := Some (parse_expr st);
        match peek st with
        | None -> ()
        | Some t -> fail t.line "trailing input after the main expression")
    | Some t -> fail t.line "expected 'class', 'interface' or '// main'"
  in
  loop ();
  { decls = List.rev !decls; main = !main }

let program_of_string text =
  match
    let st = { toks = tokenize text; last_line = 1 } in
    let program = parse_program st in
    (match wf_names program with Ok () -> () | Error m -> raise (Parse_error m));
    program
  with
  | program -> Ok program
  | exception Parse_error m -> Error m

let program_of_file path =
  match
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | text -> program_of_string text
  | exception Sys_error m -> Error m
