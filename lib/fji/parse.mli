(** Parsing FJI programs from their concrete syntax.

    The accepted grammar is exactly what {!Pretty} prints: a sequence of
    [class]/[interface] declarations followed by an optional main expression
    introduced by a [// main] comment line.  All other [//] comments are
    skipped, so files produced by {!Pretty.program_to_string} round-trip:
    [program_of_string (program_to_string p)] succeeds and re-prints to the
    same string (the AST itself may differ from [p] only where the concrete
    syntax is ambiguous, e.g. a cast under a field access).

    Parsing is total — malformed input returns [Error] with a line-numbered
    message, never an exception. *)

val program_of_string : string -> (Syntax.program, string) result

val program_of_file : string -> (Syntax.program, string) result
(** [Error] also covers unreadable files ([Sys_error] text). *)
