exception Transient_failure of string

exception Tool_crash of string

module Faults = struct
  type t = {
    flaky_rate : float;
    crash_rate : float;
    mutex : Mutex.t;
    rng : Random.State.t;
    mutable draws : int;
    mutable injected_flaky : int;
    mutable injected_crashes : int;
  }

  let make ?(flaky_rate = 0.0) ?(crash_rate = 0.0) ~seed () =
    if flaky_rate < 0.0 || crash_rate < 0.0 || flaky_rate +. crash_rate > 1.0 then
      invalid_arg "Faults.make: rates must be >= 0 and sum to <= 1";
    {
      flaky_rate;
      crash_rate;
      mutex = Mutex.create ();
      rng = Random.State.make [| seed; 0xfa; 0x17 |];
      draws = 0;
      injected_flaky = 0;
      injected_crashes = 0;
    }

  (* The decision is made under the lock (the RNG and counters are shared
     state); the raise happens after releasing it. *)
  let draw faults tool_name =
    Mutex.lock faults.mutex;
    let x = Random.State.float faults.rng 1.0 in
    faults.draws <- faults.draws + 1;
    let verdict =
      if x < faults.crash_rate then begin
        faults.injected_crashes <- faults.injected_crashes + 1;
        `Crash
      end
      else if x < faults.crash_rate +. faults.flaky_rate then begin
        faults.injected_flaky <- faults.injected_flaky + 1;
        `Flaky
      end
      else `Clean
    in
    Mutex.unlock faults.mutex;
    match verdict with
    | `Clean -> ()
    | `Crash ->
        raise
          (Tool_crash (Printf.sprintf "%s: simulated decompiler crash (segfault)" tool_name))
    | `Flaky ->
        raise
          (Transient_failure
             (Printf.sprintf "%s: simulated transient failure (tool timed out under load)"
                tool_name))

  let draws t =
    Mutex.lock t.mutex;
    let v = t.draws in
    Mutex.unlock t.mutex;
    v

  let injected_flaky t =
    Mutex.lock t.mutex;
    let v = t.injected_flaky in
    Mutex.unlock t.mutex;
    v

  let injected_crashes t =
    Mutex.lock t.mutex;
    let v = t.injected_crashes in
    Mutex.unlock t.mutex;
    v
end

type t = { name : string; patterns : Pattern.t list; faults : Faults.t option }

let pattern = Pattern.find

let cfr_sim =
  {
    name = "cfr-sim";
    patterns = [ pattern "iface-cast"; pattern "diamond"; pattern "ctor-overload" ];
    faults = None;
  }

let fernflower_sim =
  {
    name = "fernflower-sim";
    patterns = [ pattern "reflective-ldc"; pattern "inner-annot"; pattern "static-super" ];
    faults = None;
  }

let procyon_sim =
  {
    name = "procyon-sim";
    patterns = [ pattern "abstract-super"; pattern "upcast-iface"; pattern "iface-cast" ];
    faults = None;
  }

let all = [ cfr_sim; fernflower_sim; procyon_sim ]

let with_faults faults t = { t with faults = Some faults }

let instances t pool = List.concat_map (fun (p : Pattern.t) -> p.detect pool) t.patterns

let errors t pool =
  (match t.faults with None -> () | Some faults -> Faults.draw faults t.name);
  Lbr_logic.Perf.time "tool.errors" (fun () ->
      instances t pool
      |> List.map (fun (i : Pattern.instance) -> i.message)
      |> List.sort_uniq String.compare)

let is_buggy_on t pool = errors t pool <> []
