(** Simulated decompilers — the buggy tools whose failures we reduce.

    A tool is a named set of bug patterns (the paper evaluates three real
    decompilers; we ship three simulated ones with different bug profiles).
    Running the tool on a pool "decompiles" it and "re-compiles" the output:
    the result is the sorted set of compiler error messages.  A tool is
    buggy on an input iff that set is non-empty.

    Real decompiler+compiler pipelines also fail for reasons unrelated to
    the input — transient load, crashes, hangs.  {!Faults} injects such
    failures on a seeded schedule so the resilient oracle's retry and
    crash-classification paths ([Lbr_runtime.Oracle]) are testable and
    deterministic. *)

open Lbr_jvm

exception Transient_failure of string
(** A flaky run: retrying the same input may succeed. *)

exception Tool_crash of string
(** A hard crash of this invocation. *)

(** Seeded fault injection.  Each {!val:errors} call on a faulty tool first
    draws from a seeded RNG: with probability [crash_rate] it raises
    {!Tool_crash}, with probability [flaky_rate] it raises
    {!Transient_failure}, otherwise the run proceeds normally.  Draws are
    mutex-guarded, so a schedule shared between domains stays valid
    (though the interleaving of draws then depends on scheduling; tests
    wanting exact determinism should drive a faulty tool from one
    domain). *)
module Faults : sig
  type t

  val make : ?flaky_rate:float -> ?crash_rate:float -> seed:int -> unit -> t
  (** Rates default to [0.]; raises [Invalid_argument] if either is
      negative or they sum above [1.]. *)

  val draws : t -> int
  (** Total fault-schedule draws (one per {!val:errors} call). *)

  val injected_flaky : t -> int

  val injected_crashes : t -> int
end

type t = { name : string; patterns : Pattern.t list; faults : Faults.t option }

val cfr_sim : t
val fernflower_sim : t
val procyon_sim : t

val all : t list
(** The three fault-free tools. *)

val with_faults : Faults.t -> t -> t
(** A copy of the tool that consults the fault schedule on every run. *)

val errors : t -> Classpool.t -> string list
(** Sorted, deduplicated error messages from decompile-and-recompile.
    On a tool built by {!with_faults}, may raise {!Transient_failure} or
    {!Tool_crash} according to the schedule. *)

val instances : t -> Classpool.t -> Pattern.instance list

val is_buggy_on : t -> Classpool.t -> bool
