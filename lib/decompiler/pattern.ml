open Lbr_jvm
open Lbr_jvm.Classfile

type instance = {
  pattern : string;
  message : string;
  requires : Item.t list;
}

type t = {
  name : string;
  detect : Classpool.t -> instance list;
}

let mk pattern message requires = { pattern; message; requires }

(* Real decompiler bugs fire on specific code shapes, not on every
   occurrence of a feature, and the triggering idiom tends to cluster in a
   package written in one style.  Two stable hashes — one on the package,
   one on the precise location — keep each pattern rare and clustered while
   staying deterministic across runs and identical between the original
   pool and its sub-pools. *)
let package_of where =
  match String.index_opt where '/' with
  | Some i -> String.sub where 0 i
  | None -> where

let package_modulus = 4

(* A location is kept structured so the pretty [where] string — used in
   error messages — is only built for the rare bodies that actually fire. *)
type loc = Cls of string | Meth of string * string | Ctor of string * int

let where_of = function
  | Cls name -> name
  | Meth (cls, meth) -> cls ^ "." ^ meth
  | Ctor (cls, index) -> cls ^ ".<init>#" ^ string_of_int index

(* The gate value: depends only on the pattern and the location — never on
   the pool — so each decision is shared across the thousands of sub-pools
   a reduction probes the tool with. *)
let gate_value pattern loc modulus =
  let where = where_of loc in
  Hashtbl.hash (pattern ^ "@" ^ package_of where) mod package_modulus = 0
  && Hashtbl.hash (pattern ^ "/" ^ where) mod modulus = 0

(* Gate memos.  They sit on the hot path of every predicate run: one
   lookup per (class × pattern) plus one per surviving member, so the
   tables are nested by class name — the probe key is always a string (or
   int) the caller already holds, never a freshly built tuple, and the
   hit path allocates nothing.  A parallel corpus run probes tools from
   several domains at once and Hashtbl is not safe under concurrent
   mutation, so each domain gets its own tables via [Domain.DLS] — no
   locking, at the cost of each domain re-deriving the (pure,
   deterministic) gate values it needs. *)
type gates = {
  g_pkg : (string, bool) Hashtbl.t;  (* class-level package prefilter *)
  g_cls : (string, bool) Hashtbl.t;  (* full gate for [Cls] locations *)
  g_meth : (string, (string, bool) Hashtbl.t) Hashtbl.t;  (* cls -> meth *)
  g_ctor : (string, (int, bool) Hashtbl.t) Hashtbl.t;  (* cls -> ctor index *)
}

let gates_key : (string, gates) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let gates_for pattern =
  let tbl = Domain.DLS.get gates_key in
  try Hashtbl.find tbl pattern
  with Not_found ->
    let g =
      {
        g_pkg = Hashtbl.create 1024;
        g_cls = Hashtbl.create 1024;
        g_meth = Hashtbl.create 1024;
        g_ctor = Hashtbl.create 64;
      }
    in
    Hashtbl.add tbl pattern g;
    g

(* Class-level prefilter.  When the class name carries a package prefix
   (always, for generated pools), every member location shares the class's
   package, so a failed package gate rules out the whole class — one memo
   lookup instead of one per body. *)
let class_may_fire g pattern cls_name =
  try Hashtbl.find g.g_pkg cls_name
  with Not_found ->
    let v =
      match String.index_opt cls_name '/' with
      | None -> true (* no package: member wheres hash independently *)
      | Some i ->
          Hashtbl.hash (pattern ^ "@" ^ String.sub cls_name 0 i) mod package_modulus = 0
    in
    Hashtbl.add g.g_pkg cls_name v;
    v

let cls_gate g pattern cls_name modulus =
  try Hashtbl.find g.g_cls cls_name
  with Not_found ->
    let v = gate_value pattern (Cls cls_name) modulus in
    Hashtbl.add g.g_cls cls_name v;
    v

let inner_table outer cls_name create =
  try Hashtbl.find outer cls_name
  with Not_found ->
    let t = Hashtbl.create create in
    Hashtbl.add outer cls_name t;
    t

let meth_gate g pattern cls_name meth_name modulus =
  let mg = inner_table g.g_meth cls_name 8 in
  try Hashtbl.find mg meth_name
  with Not_found ->
    let v = gate_value pattern (Meth (cls_name, meth_name)) modulus in
    Hashtbl.add mg meth_name v;
    v

let ctor_gate g pattern cls_name index modulus =
  let cg = inner_table g.g_ctor cls_name 4 in
  try Hashtbl.find cg index
  with Not_found ->
    let v = gate_value pattern (Ctor (cls_name, index)) modulus in
    Hashtbl.add cg index v;
    v

(* Iterate over every gated (class, method-or-ctor context, body): [f] only
   sees bodies whose location passes the [gate_value pattern _ modulus]
   gate. *)
let fold_gated_bodies pool pattern modulus f acc =
  let g = gates_for pattern in
  Classpool.fold
    (fun (c : cls) acc ->
      if not (class_may_fire g pattern c.name) then acc
      else
        let rec meths acc = function
          | [] -> acc
          | (m : meth) :: rest ->
              let acc =
                if m.m_abstract || not (meth_gate g pattern c.name m.m_name modulus) then acc
                else
                  f acc c
                    (Item.Code { cls = c.name; meth = m.m_name })
                    (Meth (c.name, m.m_name))
                    m.m_body
              in
              meths acc rest
        in
        let rec ctors acc index = function
          | [] -> acc
          | (k : ctor) :: rest ->
              let acc =
                if not (ctor_gate g pattern c.name index modulus) then acc
                else
                  f acc c
                    (Item.Ctor_code { cls = c.name; index })
                    (Ctor (c.name, index))
                    k.k_body
              in
              ctors acc (index + 1) rest
        in
        ctors (meths acc c.methods) 0 c.ctors)
    pool acc

(* Class-level gate for patterns that fire on the class itself. *)
let selective pattern cls_name modulus = cls_gate (gates_for pattern) pattern cls_name modulus

let is_internal_interface pool name =
  match Classpool.find pool name with Some c -> c.is_interface | None -> false

(* Pattern: a checkcast to an internal interface inside a body confuses the
   decompiler's type reconstruction. *)
let rec first_iface_cast pool = function
  | [] -> None
  | Check_cast t :: _ when is_internal_interface pool t -> Some t
  | _ :: rest -> first_iface_cast pool rest

let iface_cast =
  {
    name = "iface-cast";
    detect =
      (fun pool ->
        fold_gated_bodies pool "iface-cast" 6
          (fun acc _c code_item loc body ->
              (* Only the first hit matters, so stop at it instead of
                 collecting every occurrence. *)
              match first_iface_cast pool body with
              | None -> acc
              | Some t ->
                  mk "iface-cast"
                    ("error: incompatible types: required " ^ t ^ " (in " ^ where_of loc ^ ")")
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: reflective class constants are decompiled into raw types that
   no longer compile. *)
let rec first_pool_ldc pool = function
  | [] -> None
  | Load_const_class t :: _ when Classpool.mem pool t -> Some t
  | _ :: rest -> first_pool_ldc pool rest

let reflective_ldc =
  {
    name = "reflective-ldc";
    detect =
      (fun pool ->
        fold_gated_bodies pool "reflective-ldc" 3
          (fun acc _c code_item loc body ->
              match first_pool_ldc pool body with
              | None -> acc
              | Some t ->
                  mk "reflective-ldc"
                    ("error: unchecked class literal " ^ t ^ ".class (in " ^ where_of loc ^ ")")
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: a class implementing two or more interfaces while one of its
   bodies makes an interface call — the decompiler picks the wrong bound. *)
let rec body_has_icall = function
  | [] -> false
  | Invoke_interface _ :: _ -> true
  | _ :: rest -> body_has_icall rest

let rec has_icall = function
  | [] -> false
  | (m : meth) :: rest -> body_has_icall m.m_body || has_icall rest

let rec first_two_internal pool = function
  | [] -> None
  | i1 :: rest -> (
      if not (Classpool.mem pool i1) then first_two_internal pool rest
      else
        let rec second = function
          | [] -> None
          | i2 :: rest -> if Classpool.mem pool i2 then Some (i1, i2) else second rest
        in
        second rest)

let diamond =
  {
    name = "diamond";
    detect =
      (fun pool ->
        (* Class-level: one instance per class that keeps >= 2 interfaces
           while any of its bodies makes an interface call. *)
        Classpool.fold
          (fun (c : cls) acc ->
            if c.is_interface || not (selective "diamond" c.name 2) then acc
            else
              match first_two_internal pool c.interfaces with
              | Some (i1, i2) when has_icall c.methods ->
                  mk "diamond"
                    ("error: ambiguous supertype bound (class " ^ c.name ^ ")")
                    [
                      Item.Implements { cls = c.name; iface = i1 };
                      Item.Implements { cls = c.name; iface = i2 };
                    ]
                  :: acc
              | Some _ | None -> acc)
          pool []);
  }

(* Pattern: the InnerClasses attribute together with an annotation makes the
   decompiler emit a malformed nested declaration. *)
let inner_annot =
  {
    name = "inner-annot";
    detect =
      (fun pool ->
        Classpool.fold
          (fun (c : cls) acc ->
            if c.annotations <> [] && c.inner_classes <> [] && selective "inner-annot" c.name 2
            then
              mk "inner-annot"
                ("error: illegal start of type (class " ^ c.name ^ ")")
                [
                  Item.Annotation { cls = c.name; index = 0 };
                  Item.Inner_class { cls = c.name; index = 0 };
                ]
              :: acc
            else acc)
          pool []);
  }

(* Pattern: a static call that resolves through a superclass is decompiled
   as an instance call. *)
let rec has_super_static pool = function
  | [] -> false
  | Invoke_static { owner; meth } :: rest -> (
      (match Classpool.find pool owner with
      | Some oc -> (
          match Classfile.find_method oc meth with
          | Some _ -> false (* defined directly: decompiles fine *)
          | None -> Hierarchy.method_candidates pool ~owner ~meth ~static:true <> [])
      | None -> false)
      || has_super_static pool rest)
  | _ :: rest -> has_super_static pool rest

let static_through_super =
  {
    name = "static-super";
    detect =
      (fun pool ->
        fold_gated_bodies pool "static-super" 5
          (fun acc _c code_item loc body ->
              if has_super_static pool body then
                mk "static-super"
                  ("error: non-static method referenced from static context (in " ^ where_of loc ^ ")")
                  [ code_item ]
                :: acc
              else acc)
          []);
  }

(* Pattern: a concrete class extending an internal abstract class — the
   decompiler drops the concrete override's covariance. *)
let abstract_super =
  {
    name = "abstract-super";
    detect =
      (fun pool ->
        Classpool.fold
          (fun (c : cls) acc ->
            if c.is_interface || c.is_abstract then acc
            else
              match Classpool.find pool c.super with
              | Some s
                when s.is_abstract && (not s.is_interface)
                     && selective "abstract-super" c.name 3 ->
                  mk "abstract-super"
                    ("error: " ^ c.name ^ " is not abstract and does not override (" ^ c.super ^ ")")
                    [ Item.Extends c.name; Item.Class c.super ]
                  :: acc
              | Some _ | None -> acc)
          pool []);
  }

(* Pattern: an upcast whose target is an interface — the decompiler inserts
   a spurious cast that breaks generics inference. *)
let rec first_upcast_iface pool = function
  | [] -> None
  | Upcast { to_; _ } :: _ when is_internal_interface pool to_ -> Some to_
  | _ :: rest -> first_upcast_iface pool rest

let upcast_iface =
  {
    name = "upcast-iface";
    detect =
      (fun pool ->
        fold_gated_bodies pool "upcast-iface" 8
          (fun acc _c code_item loc body ->
              match first_upcast_iface pool body with
              | None -> acc
              | Some t ->
                  mk "upcast-iface"
                    ("error: inference variable " ^ t ^ " has incompatible bounds (in " ^ where_of loc ^ ")")
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: use of a non-zero-argument constructor overload. *)
let rec first_ctor_overload pool = function
  | [] -> None
  | New_instance { cls; ctor } :: _ when ctor > 0 && Classpool.mem pool cls -> Some (cls, ctor)
  | _ :: rest -> first_ctor_overload pool rest

let ctor_overload =
  {
    name = "ctor-overload";
    detect =
      (fun pool ->
        fold_gated_bodies pool "ctor-overload" 8
          (fun acc _c code_item loc body ->
              match first_ctor_overload pool body with
              | None -> acc
              | Some (cls, ctor) ->
                  mk "ctor-overload"
                    ("error: constructor " ^ cls ^ " cannot be applied (in " ^ where_of loc ^ ")")
                    [ code_item; Item.Ctor { cls; index = ctor } ]
                  :: acc)
          []);
  }

let all =
  [
    iface_cast;
    reflective_ldc;
    diamond;
    inner_annot;
    static_through_super;
    abstract_super;
    upcast_iface;
    ctor_overload;
  ]

let find name = List.find (fun p -> p.name = name) all
