open Lbr_jvm
open Lbr_jvm.Classfile

type instance = {
  pattern : string;
  message : string;
  requires : Item.t list;
}

type t = {
  name : string;
  detect : Classpool.t -> instance list;
}

let mk pattern message requires = { pattern; message; requires }

(* Real decompiler bugs fire on specific code shapes, not on every
   occurrence of a feature, and the triggering idiom tends to cluster in a
   package written in one style.  Two stable hashes — one on the package,
   one on the precise location — keep each pattern rare and clustered while
   staying deterministic across runs and identical between the original
   pool and its sub-pools. *)
let package_of where =
  match String.index_opt where '/' with
  | Some i -> String.sub where 0 i
  | None -> where

let package_modulus = 4

(* A location is kept structured so the pretty [where] string — used in
   error messages — is only built for the rare bodies that actually fire. *)
type loc = Cls of string | Meth of string * string | Ctor of string * int

let where_of = function
  | Cls name -> name
  | Meth (cls, meth) -> cls ^ "." ^ meth
  | Ctor (cls, index) -> Printf.sprintf "%s.<init>#%d" cls index

(* The gate depends only on the pattern and the location — never on the
   pool — so each decision is shared across the thousands of sub-pools a
   reduction probes the tool with.  The memos sit on the hot path of every
   predicate run, and a parallel corpus run probes tools from several
   domains at once; Hashtbl is not safe under concurrent mutation (a
   resize can corrupt the table), so each domain gets its own table via
   [Domain.DLS] — no locking on the hot path, at the cost of each domain
   re-deriving the (pure, deterministic) gate values it needs. *)
let selective_memo_key : (string * loc, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let selective pattern loc modulus =
  let memo = Domain.DLS.get selective_memo_key in
  let key = (pattern, loc) in
  match Hashtbl.find_opt memo key with
  | Some gate -> gate
  | None ->
      let where = where_of loc in
      let gate =
        Hashtbl.hash (pattern ^ "@" ^ package_of where) mod package_modulus = 0
        && Hashtbl.hash (pattern ^ "/" ^ where) mod modulus = 0
      in
      Hashtbl.add memo key gate;
      gate

(* Class-level prefilter.  When the class name carries a package prefix
   (always, for generated pools), every member location shares the class's
   package, so a failed package gate rules out the whole class — one memo
   lookup instead of one per body. *)
let class_gate_memo_key : (string * string, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let class_may_fire pattern cls_name =
  let memo = Domain.DLS.get class_gate_memo_key in
  let key = (pattern, cls_name) in
  match Hashtbl.find_opt memo key with
  | Some g -> g
  | None ->
      let g =
        match String.index_opt cls_name '/' with
        | None -> true (* no package: member wheres hash independently *)
        | Some i ->
            Hashtbl.hash (pattern ^ "@" ^ String.sub cls_name 0 i) mod package_modulus = 0
      in
      Hashtbl.add memo key g;
      g

(* Iterate over every gated (class, method-or-ctor context, body): [f] only
   sees bodies whose location passes [selective pattern _ modulus]. *)
let fold_gated_bodies pool pattern modulus f acc =
  Classpool.fold
    (fun (c : cls) acc ->
      if not (class_may_fire pattern c.name) then acc
      else
        let acc =
          List.fold_left
            (fun acc (m : meth) ->
              if m.m_abstract then acc
              else
                let loc = Meth (c.name, m.m_name) in
                if not (selective pattern loc modulus) then acc
                else f acc c (Item.Code { cls = c.name; meth = m.m_name }) loc m.m_body)
            acc c.methods
        in
        List.fold_left
          (fun (acc, index) (k : ctor) ->
            let loc = Ctor (c.name, index) in
            ( (if selective pattern loc modulus then
                 f acc c (Item.Ctor_code { cls = c.name; index }) loc k.k_body
               else acc),
              index + 1 ))
          (acc, 0) c.ctors
        |> fst)
    pool acc

let is_internal_interface pool name =
  match Classpool.find pool name with Some c -> c.is_interface | None -> false

(* Pattern: a checkcast to an internal interface inside a body confuses the
   decompiler's type reconstruction. *)
let iface_cast =
  {
    name = "iface-cast";
    detect =
      (fun pool ->
        fold_gated_bodies pool "iface-cast" 6
          (fun acc _c code_item loc body ->
              let hits =
                List.filter_map
                  (function
                    | Check_cast t when is_internal_interface pool t -> Some t
                    | _ -> None)
                  body
              in
              match hits with
              | [] -> acc
              | t :: _ ->
                  mk "iface-cast"
                    (Printf.sprintf "error: incompatible types: required %s (in %s)" t
                       (where_of loc))
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: reflective class constants are decompiled into raw types that
   no longer compile. *)
let reflective_ldc =
  {
    name = "reflective-ldc";
    detect =
      (fun pool ->
        fold_gated_bodies pool "reflective-ldc" 3
          (fun acc _c code_item loc body ->
              let hits =
                List.filter_map
                  (function Load_const_class t when Classpool.mem pool t -> Some t | _ -> None)
                  body
              in
              match hits with
              | [] -> acc
              | t :: _ ->
                  mk "reflective-ldc"
                    (Printf.sprintf "error: unchecked class literal %s.class (in %s)" t
                       (where_of loc))
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: a class implementing two or more interfaces while one of its
   bodies makes an interface call — the decompiler picks the wrong bound. *)
let diamond =
  {
    name = "diamond";
    detect =
      (fun pool ->
        (* Class-level: one instance per class that keeps >= 2 interfaces
           while any of its bodies makes an interface call. *)
        Classpool.fold
          (fun (c : cls) acc ->
            if c.is_interface || not (selective "diamond" (Cls c.name) 2) then acc
            else
            let internal_ifaces = List.filter (Classpool.mem pool) c.interfaces in
            let has_icall () =
              List.exists
                (fun (m : meth) ->
                  List.exists (function Invoke_interface _ -> true | _ -> false) m.m_body)
                c.methods
            in
            match internal_ifaces with
            | i1 :: i2 :: _ when has_icall () ->
                mk "diamond"
                  (Printf.sprintf "error: ambiguous supertype bound (class %s)" c.name)
                  [
                    Item.Implements { cls = c.name; iface = i1 };
                    Item.Implements { cls = c.name; iface = i2 };
                  ]
                :: acc
            | _ -> acc)
          pool []);
  }

(* Pattern: the InnerClasses attribute together with an annotation makes the
   decompiler emit a malformed nested declaration. *)
let inner_annot =
  {
    name = "inner-annot";
    detect =
      (fun pool ->
        Classpool.fold
          (fun (c : cls) acc ->
            if c.annotations <> [] && c.inner_classes <> [] && selective "inner-annot" (Cls c.name) 2
            then
              mk "inner-annot"
                (Printf.sprintf "error: illegal start of type (class %s)" c.name)
                [
                  Item.Annotation { cls = c.name; index = 0 };
                  Item.Inner_class { cls = c.name; index = 0 };
                ]
              :: acc
            else acc)
          pool []);
  }

(* Pattern: a static call that resolves through a superclass is decompiled
   as an instance call. *)
let static_through_super =
  {
    name = "static-super";
    detect =
      (fun pool ->
        fold_gated_bodies pool "static-super" 5
          (fun acc _c code_item loc body ->
              let hit =
                List.exists
                  (function
                    | Invoke_static { owner; meth } -> (
                        match Classpool.find pool owner with
                        | Some oc -> (
                            match Classfile.find_method oc meth with
                            | Some _ -> false (* defined directly: decompiles fine *)
                            | None ->
                                Hierarchy.method_candidates pool ~owner ~meth ~static:true <> [])
                        | None -> false)
                    | _ -> false)
                  body
              in
              if hit then
                mk "static-super"
                  (Printf.sprintf "error: non-static method referenced from static context (in %s)"
                     (where_of loc))
                  [ code_item ]
                :: acc
              else acc)
          []);
  }

(* Pattern: a concrete class extending an internal abstract class — the
   decompiler drops the concrete override's covariance. *)
let abstract_super =
  {
    name = "abstract-super";
    detect =
      (fun pool ->
        Classpool.fold
          (fun (c : cls) acc ->
            if c.is_interface || c.is_abstract then acc
            else
              match Classpool.find pool c.super with
              | Some s
                when s.is_abstract && (not s.is_interface)
                     && selective "abstract-super" (Cls c.name) 3 ->
                  mk "abstract-super"
                    (Printf.sprintf "error: %s is not abstract and does not override (%s)" c.name
                       c.super)
                    [ Item.Extends c.name; Item.Class c.super ]
                  :: acc
              | Some _ | None -> acc)
          pool []);
  }

(* Pattern: an upcast whose target is an interface — the decompiler inserts
   a spurious cast that breaks generics inference. *)
let upcast_iface =
  {
    name = "upcast-iface";
    detect =
      (fun pool ->
        fold_gated_bodies pool "upcast-iface" 8
          (fun acc _c code_item loc body ->
              let hits =
                List.filter_map
                  (function
                    | Upcast { from_; to_ } when is_internal_interface pool to_ -> Some (from_, to_)
                    | _ -> None)
                  body
              in
              match hits with
              | [] -> acc
              | (_, t) :: _ ->
                  mk "upcast-iface"
                    (Printf.sprintf "error: inference variable %s has incompatible bounds (in %s)"
                       t (where_of loc))
                    [ code_item; Item.Class t ]
                  :: acc)
          []);
  }

(* Pattern: use of a non-zero-argument constructor overload. *)
let ctor_overload =
  {
    name = "ctor-overload";
    detect =
      (fun pool ->
        fold_gated_bodies pool "ctor-overload" 8
          (fun acc _c code_item loc body ->
              let hits =
                List.filter_map
                  (function
                    | New_instance { cls; ctor } when ctor > 0 && Classpool.mem pool cls ->
                        Some (cls, ctor)
                    | _ -> None)
                  body
              in
              match hits with
              | [] -> acc
              | (cls, ctor) :: _ ->
                  mk "ctor-overload"
                    (Printf.sprintf "error: constructor %s cannot be applied (in %s)" cls
                       (where_of loc))
                    [ code_item; Item.Ctor { cls; index = ctor } ]
                  :: acc)
          []);
  }

let all =
  [
    iface_cast;
    reflective_ldc;
    diamond;
    inner_annot;
    static_through_super;
    abstract_super;
    upcast_iface;
    ctor_overload;
  ]

let find name = List.find (fun p -> p.name = name) all
