(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated corpus, and times the core
   components with Bechamel.

   Usage:
     dune exec bench/main.exe                     # default scale (a few minutes)
     dune exec bench/main.exe -- --full           # paper scale (94 programs)
     dune exec bench/main.exe -- --programs 20 --mean-classes 80
     dune exec bench/main.exe -- --skip-micro | --skip-tables

   Absolute times are on a simulated clock (see Experiment.default_cost);
   the paper's shapes — who wins, by what factor, where the curves sit —
   are the reproduction target.  EXPERIMENTS.md records paper-vs-measured
   for every entry printed here. *)

open Lbr_logic
open Lbr_harness

type options = {
  programs : int;
  mean_classes : int;
  seed : int;
  jobs : int;
  run_tables : bool;
  run_micro : bool;
  json_path : string option;
  trace_path : string option;
  prometheus_path : string option;
}

let parse_options () =
  let options =
    ref
      {
        programs = 30;
        mean_classes = 60;
        seed = 42;
        jobs = 1;
        run_tables = true;
        run_micro = true;
        json_path = None;
        trace_path = None;
        prometheus_path = None;
      }
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        options := { !options with programs = 94; mean_classes = 150 };
        go rest
    | "--programs" :: n :: rest ->
        options := { !options with programs = int_of_string n };
        go rest
    | "--mean-classes" :: n :: rest ->
        options := { !options with mean_classes = int_of_string n };
        go rest
    | "--seed" :: n :: rest ->
        options := { !options with seed = int_of_string n };
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | None -> failwith (Printf.sprintf "--jobs: %S is not an integer" n)
        | Some jobs when jobs < 1 ->
            failwith (Printf.sprintf "--jobs: %d is not a positive integer (expected >= 1)" jobs)
        | Some jobs -> options := { !options with jobs });
        go rest
    | "--skip-micro" :: rest ->
        options := { !options with run_micro = false };
        go rest
    | "--skip-tables" :: rest ->
        options := { !options with run_tables = false };
        go rest
    | "--json" :: path :: rest ->
        (* fail before the (possibly long) run, not at write time *)
        (try close_out (open_out path) with Sys_error msg -> failwith msg);
        options := { !options with json_path = Some path };
        go rest
    | "--trace" :: path :: rest ->
        (try close_out (open_out path) with Sys_error msg -> failwith msg);
        options := { !options with trace_path = Some path };
        go rest
    | "--prometheus" :: path :: rest ->
        (try close_out (open_out path) with Sys_error msg -> failwith msg);
        options := { !options with prometheus_path = Some path };
        go rest
    | [ (("--programs" | "--mean-classes" | "--seed" | "--jobs" | "--json" | "--trace"
         | "--prometheus") as flag) ] ->
        failwith (flag ^ " requires a value")
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  (* a clean one-line usage error, not an uncaught-exception backtrace *)
  (try go (List.tl (Array.to_list Sys.argv))
   with Failure msg ->
     prerr_endline ("bench: " ^ msg);
     exit 2);
  !options

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

(* ================================================================== *)
(* E1: the running example (§2, §4.5, Figures 1 and 2)                 *)

let table_e1 () =
  header "E1: Running example (Figures 1-2, §4.5)";
  let model = Lbr_fji.Example.model () in
  let universe = Lbr_fji.Vars.all model.vars in
  let over = Assignment.to_list universe in
  Printf.printf "variables |V(P)|:            %d   (paper: 20)\n" (Assignment.cardinal universe);
  let no_req =
    Cnf.make
      (List.filter (fun c -> Clause.kind c <> Clause.Unit_pos) (Cnf.clauses model.constraints))
  in
  Printf.printf "valid sub-inputs (no req):   %d (paper: 6,766 via sharpSAT)\n"
    (Model_count.count no_req ~over);
  Printf.printf "valid sub-inputs (with req): %d\n"
    (Model_count.count model.constraints ~over);
  let predicate = Lbr.Predicate.make (Lbr_fji.Example.buggy model.vars) in
  let problem =
    Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
  in
  match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool) with
  | Error _ -> print_endline "GBR FAILED"
  | Ok (result, stats) ->
      Printf.printf "GBR predicate runs:          %d   (paper: 11; order-dependent)\n"
        stats.predicate_runs;
      Printf.printf "GBR result size:             %d variables (paper: 11, optimal)\n"
        (Assignment.cardinal result);
      Printf.printf "matches the optimum:         %b\n"
        (Assignment.equal result (Lbr_fji.Example.optimal model.vars));
      let reduced = Lbr_fji.Reduce.reduce model.vars model.program result in
      print_endline "reduced program (Figure 1b):";
      print_endline (Lbr_fji.Pretty.program_to_string reduced)

(* ================================================================== *)
(* Corpus + outcomes shared by E2/E3/E5                                *)

(* Effective parallelism of one strategy sweep: process CPU seconds (all
   domains) over elapsed wall clock.  Sequentially this sits just below 1;
   with N workers on >= N free cores it approaches N.  The true cross-run
   speedup is elapsed(jobs=1) / elapsed(jobs=N) over two invocations —
   this per-run figure tracks it without double-counting wait time when
   cores are oversubscribed.

   The ratio is only meaningful when parallelism was requested AND the
   host can deliver it: with jobs=1, or on a single-core host, CPU/wall
   sits just below 1.0 (~0.97 of scheduler noise) and reporting it as a
   "speedup" pollutes trend dashboards with a phantom slowdown.  Those
   runs report no speedup (null in --json); host_cores in the dump lets
   the reader see why. *)
let cpu_seconds () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

let speedup_measurable jobs = jobs > 1 && Domain.recommended_domain_count () > 1

let run_corpus options =
  let t0 = Unix.gettimeofday () in
  let benchmarks =
    Corpus.build ~seed:options.seed ~programs:options.programs
      ~mean_classes:options.mean_classes
  in
  let instances = Corpus.instances benchmarks in
  Printf.printf "\n[corpus] %d programs, %d reduction instances (%.1fs to build)\n"
    (List.length benchmarks) (List.length instances)
    (Unix.gettimeofday () -. t0);
  (* Corpus generation exercises the same instrumented phases as the runs
     (baseline error computation, sanity reductions), so the counter window
     for the strategy tables opens here, after the corpus is built. *)
  let counters_before = Counters.aggregate () in
  let outcomes =
    List.map
      (fun strategy ->
        let t1 = Unix.gettimeofday () in
        let c1 = cpu_seconds () in
        let outcomes = Experiment.run_corpus ~jobs:options.jobs strategy instances in
        let wall = Unix.gettimeofday () -. t1 in
        let speedup =
          if speedup_measurable options.jobs && wall > 0.0 then
            (cpu_seconds () -. c1) /. wall
          else nan
        in
        if options.jobs = 1 then
          Printf.printf "[run] %-12s done in %.1fs wall\n%!"
            (Experiment.strategy_name strategy)
            wall
        else if Float.is_nan speedup then
          Printf.printf "[run] %-12s done in %.1fs wall (jobs=%d, speedup n/a on 1 core)\n%!"
            (Experiment.strategy_name strategy)
            wall options.jobs
        else
          Printf.printf "[run] %-12s done in %.1fs wall (jobs=%d, speedup x%.1f)\n%!"
            (Experiment.strategy_name strategy)
            wall options.jobs speedup;
        (strategy, (wall, speedup, outcomes)))
      Experiment.all_strategies
  in
  (* Intra-instance speedup: the same GBR sweep run sequentially and with
     speculative predicate pipelining ([--jobs] worker domains inside each
     reduction, instances processed one at a time).  The two sweeps must
     be byte-identical outcome-for-outcome and pool-for-pool — that gate
     runs whenever [--jobs > 1], even on one core, so CI exercises the
     speculation path; the wall-clock ratio is only reported when the
     host can actually run domains in parallel (the PR 6 honesty
     convention: a 1-core "speedup" is scheduler noise, not signal). *)
  let intra =
    if options.jobs <= 1 then nan
    else begin
      let strip (o : Experiment.outcome) = { o with Experiment.wall_time = 0.0 } in
      let t_seq = Unix.gettimeofday () in
      let seq = Experiment.run_corpus_full Experiment.Gbr instances in
      let seq_wall = Unix.gettimeofday () -. t_seq in
      let t_spec = Unix.gettimeofday () in
      let spec =
        Lbr_runtime.Pool.with_pool ~jobs:options.jobs @@ fun pool ->
        Experiment.run_corpus_full ~speculate:pool Experiment.Gbr instances
      in
      let spec_wall = Unix.gettimeofday () -. t_spec in
      let identical =
        List.length seq = List.length spec
        && List.for_all2
             (fun (o1, p1) (o2, p2) ->
               strip o1 = strip o2
               && String.equal (Lbr_jvm.Serialize.to_bytes p1) (Lbr_jvm.Serialize.to_bytes p2))
             seq spec
      in
      if not identical then begin
        prerr_endline
          "[run] FATAL: speculative GBR diverged from sequential GBR on the corpus";
        exit 1
      end;
      if speedup_measurable options.jobs && spec_wall > 0.0 then begin
        let intra = seq_wall /. spec_wall in
        Printf.printf "[run] %-12s intra-instance speculation x%.2f (%.1fs -> %.1fs, jobs=%d)\n%!"
          "gbr" intra seq_wall spec_wall options.jobs;
        intra
      end
      else begin
        Printf.printf
          "[run] %-12s speculative sweep byte-identical (%.1fs seq -> %.1fs spec, jobs=%d, \
           intra speedup n/a on 1 core)\n%!"
          "gbr" seq_wall spec_wall options.jobs;
        nan
      end
    end
  in
  (benchmarks, instances, outcomes, intra, counters_before)

let outcomes_of strategy outcomes =
  let _, _, os = List.assoc strategy outcomes in
  os

(* ================================================================== *)
(* E4: corpus statistics (§5 "Statistics")                             *)

let table_e4 benchmarks instances =
  header "E4: Corpus statistics (geometric means; §5 'Statistics')";
  let stats = Corpus.stats benchmarks instances in
  Printf.printf "%-28s %12s %12s\n" "metric" "measured" "paper";
  Printf.printf "%-28s %12d %12d\n" "programs" stats.programs 94;
  Printf.printf "%-28s %12d %12d\n" "reduction instances" stats.instance_count 227;
  Printf.printf "%-28s %12.0f %12d\n" "classes" stats.geo_classes 184;
  Printf.printf "%-28s %11.0fK %11s" "size (bytes)" (stats.geo_bytes /. 1024.) "285K";
  print_newline ();
  Printf.printf "%-28s %12.1f %12.1f\n" "compiler errors" stats.geo_errors 9.2;
  Printf.printf "%-28s %11.1fk %11.1fk\n" "reducible items" (stats.geo_items /. 1000.) 2.9;
  Printf.printf "%-28s %11.1fk %11.1fk\n" "model clauses" (stats.geo_clauses /. 1000.) 8.7;
  Printf.printf "%-28s %11.1f%% %11.1f%%\n" "graph-edge clauses"
    (100. *. stats.mean_graph_fraction) 97.5

(* ================================================================== *)
(* E2: Figure 8a — CDFs of time and final relative size + geo-means    *)

let cdf_row values thresholds =
  List.map (fun t -> Stats.fraction_below values t) thresholds

let print_cdf name thresholds fmt rows =
  subheader name;
  Printf.printf "%-12s" "reducer";
  List.iter (fun t -> Printf.printf " %8s" (fmt t)) thresholds;
  print_newline ();
  List.iter
    (fun (label, fractions) ->
      Printf.printf "%-12s" label;
      List.iter (fun f -> Printf.printf " %7.0f%%" (100. *. f)) fractions;
      print_newline ())
    rows

let table_e2 outcomes =
  header "E2: Figure 8a — cumulative frequencies and geometric means";
  let our = outcomes_of Experiment.Gbr outcomes in
  let jreduce = outcomes_of Experiment.Jreduce outcomes in
  let times os = List.map (fun (o : Experiment.outcome) -> o.sim_time) os in
  let class_ratios os =
    List.map
      (fun (o : Experiment.outcome) -> float_of_int o.classes1 /. float_of_int o.classes0)
      os
  in
  let byte_ratios os =
    List.map (fun (o : Experiment.outcome) -> float_of_int o.bytes1 /. float_of_int o.bytes0) os
  in
  let time_grid = [ 60.; 300.; 900.; 1800.; 3600.; 7200.; 36000. ] in
  print_cdf "time spent (simulated s)" time_grid
    (fun t -> Printf.sprintf "<=%.0fm" (t /. 60.))
    [
      ("our reducer", cdf_row (times our) time_grid);
      ("j-reduce", cdf_row (times jreduce) time_grid);
    ];
  let size_grid = [ 0.025; 0.05; 0.10; 0.20; 0.40; 0.60; 1.0 ] in
  print_cdf "final relative size (classes)" size_grid
    (fun s -> Printf.sprintf "<=%.0f%%" (100. *. s))
    [
      ("our reducer", cdf_row (class_ratios our) size_grid);
      ("j-reduce", cdf_row (class_ratios jreduce) size_grid);
    ];
  print_cdf "final relative size (bytes)" size_grid
    (fun s -> Printf.sprintf "<=%.0f%%" (100. *. s))
    [
      ("our reducer", cdf_row (byte_ratios our) size_grid);
      ("j-reduce", cdf_row (byte_ratios jreduce) size_grid);
    ];
  subheader "geometric means (the dots of Figure 8a)";
  let our_s = Stats.summarize our and jr_s = Stats.summarize jreduce in
  Printf.printf "%-22s %14s %14s %22s\n" "metric" "our reducer" "j-reduce" "paper (ours/JR)";
  Printf.printf "%-22s %13.1fs %13.1fs %22s\n" "time (simulated)" our_s.geo_time jr_s.geo_time
    "680.7s / 218.6s";
  Printf.printf "%-22s %13.1f%% %13.1f%% %22s\n" "classes left"
    (100. *. our_s.geo_class_ratio)
    (100. *. jr_s.geo_class_ratio)
    "8.4% / 22.8%";
  Printf.printf "%-22s %13.1f%% %13.1f%% %22s\n" "bytes left"
    (100. *. our_s.geo_byte_ratio)
    (100. *. jr_s.geo_byte_ratio)
    "4.6% / 24.3%";
  Printf.printf "%-22s %13.1f%% %13.1f%% %22s\n" "decompiled lines left"
    (100. *. our_s.geo_line_ratio)
    (100. *. jr_s.geo_line_ratio)
    "(order-of-magnitude)";
  Printf.printf "\nheadline: our reducer leaves %.1fx less bytes than J-Reduce (paper: 5.3x)\n"
    (jr_s.geo_byte_ratio /. our_s.geo_byte_ratio);
  Printf.printf "          and is %.1fx slower (paper: 3.1x)\n"
    (our_s.geo_time /. jr_s.geo_time)

(* ================================================================== *)
(* E3: Figure 8b — mean reduction factor over time                     *)

let table_e3 outcomes =
  header "E3: Figure 8b — reduction over time (mean 'times smaller')";
  let our = outcomes_of Experiment.Gbr outcomes in
  let jreduce = outcomes_of Experiment.Jreduce outcomes in
  let grid = [ 0.; 120.; 300.; 600.; 1200.; 2400.; 3600.; 5400.; 7200. ] in
  List.iter
    (fun (metric, label) ->
      subheader label;
      Printf.printf "%-12s" "time";
      List.iter (fun t -> Printf.printf " %7.0fm" (t /. 60.)) grid;
      print_newline ();
      List.iter
        (fun (name, os) ->
          Printf.printf "%-12s" name;
          List.iter
            (fun t -> Printf.printf " x%7.1f" (Timeline.mean_factor_at os t ~metric))
            grid;
          print_newline ())
        [ ("our reducer", our); ("j-reduce", jreduce) ])
    [
      (`Classes, "number of classes (paper at 2h: JR ~x4.4, ours ~x11.9)");
      (`Bytes, "number of bytes (paper at 2h: JR ~x4.1, ours ~x21.7)");
    ]

(* ================================================================== *)
(* E5: the two lossy encodings (§4.3 / §5)                             *)

let graph_fraction_of_instance (instance : Corpus.instance) =
  let vpool = Var.Pool.create () in
  let jv = Lbr_jvm.Jvars.derive vpool instance.benchmark.pool in
  let cnf = Lbr_jvm.Constraints.generate jv instance.benchmark.pool in
  Cnf.graph_fraction cnf

let table_e5 instances outcomes =
  header "E5: Lossy encodings vs GBR (§5)";
  let our = outcomes_of Experiment.Gbr outcomes in
  let first = outcomes_of Experiment.Lossy_first outcomes in
  let last = outcomes_of Experiment.Lossy_last outcomes in
  let our_s = Stats.summarize our in
  let report name lossy paper_bytes paper_time =
    let s = Stats.summarize lossy in
    Printf.printf "%-14s bytes %+.0f%% vs GBR (paper: %s)   lines %+.0f%%   time %+.0f%% (paper: %s)\n"
      name
      (100. *. (s.geo_byte_ratio /. our_s.geo_byte_ratio -. 1.))
      paper_bytes
      (100. *. (s.geo_line_ratio /. our_s.geo_line_ratio -. 1.))
      (100. *. (s.geo_time /. our_s.geo_time -. 1.))
      paper_time
  in
  report "lossy-first" first "+5% bytes" "-4% time";
  report "lossy-last" last "+8% bytes" "+2% time";
  (* strictly-better percentages *)
  let strictly_better lossy ~subset =
    let pairs = List.combine our lossy in
    let pairs =
      List.filter (fun ((o : Experiment.outcome), _) -> subset o.instance_id) pairs
    in
    match pairs with
    | [] -> nan
    | _ ->
        let better =
          List.length
            (List.filter
               (fun ((o : Experiment.outcome), (l : Experiment.outcome)) ->
                 o.bytes1 < l.bytes1)
               pairs)
        in
        100. *. float_of_int better /. float_of_int (List.length pairs)
  in
  let everything _ = true in
  Printf.printf "\nGBR strictly better than lossy-first: %5.0f%% of instances (paper: 48%%)\n"
    (strictly_better first ~subset:everything);
  Printf.printf "GBR strictly better than lossy-last:  %5.0f%% of instances (paper: 51%%)\n"
    (strictly_better last ~subset:everything);
  (* the >= 5% non-graph subset *)
  let fractions =
    List.map (fun i -> (i.Corpus.instance_id, graph_fraction_of_instance i)) instances
  in
  let non_graph_heavy id =
    match List.assoc_opt id fractions with Some f -> f <= 0.95 | None -> false
  in
  Printf.printf "on instances with >=5%% non-graph clauses (%d of %d):\n"
    (List.length (List.filter (fun (_, f) -> f <= 0.95) fractions))
    (List.length fractions);
  Printf.printf "  strictly better than lossy-first:   %5.0f%% (paper: 79%%)\n"
    (strictly_better first ~subset:non_graph_heavy);
  Printf.printf "  strictly better than lossy-last:    %5.0f%% (paper: 84%%)\n"
    (strictly_better last ~subset:non_graph_heavy)

(* ================================================================== *)
(* E6: ablation — variable orders and ddmin (beyond the paper's table) *)

let table_e6 instances =
  header "E6 (ablation): variable order and a ddmin baseline";
  (* GBR with creation order vs closure order on a few instances *)
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let sample = take 6 instances in
  subheader "GBR: creation order vs closure-size order (Thm 4.5's 'pick < well')";
  List.iter
    (fun (instance : Corpus.instance) ->
      let pool = instance.benchmark.pool in
      let run_with order_of =
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool pool in
        let cnf = Lbr_jvm.Constraints.generate jv pool in
        let universe = Lbr_jvm.Jvars.all jv in
        let baseline = instance.baseline_errors in
        let sub_pool_of = Lbr_jvm.Reducer.prepare jv pool in
        let predicate =
          Lbr.Predicate.make (fun phi ->
              let errors = Lbr_decompiler.Tool.errors instance.tool (sub_pool_of phi) in
              List.for_all (fun m -> List.mem m errors) baseline)
        in
        let problem = Lbr.Problem.make ~pool:vpool ~universe ~constraints:cnf ~predicate in
        match Lbr.Gbr.reduce problem ~order:(order_of vpool cnf universe) with
        | Error _ -> (nan, 0)
        | Ok (result, stats) ->
            let final = sub_pool_of result in
            ( 100.
              *. float_of_int (Lbr_jvm.Size.bytes final)
              /. float_of_int (Lbr_jvm.Size.bytes pool),
              stats.predicate_runs )
      in
      let creation_pct, creation_runs =
        run_with (fun vpool _ _ -> Lbr_sat.Order.by_creation vpool)
      in
      let closure_pct, closure_runs =
        run_with (fun _ cnf universe -> Lbr.Order_heuristics.closure_order cnf ~universe)
      in
      Printf.printf "%-24s creation: %5.1f%% (%3d runs)   closure-order: %5.1f%% (%3d runs)\n"
        instance.instance_id creation_pct creation_runs closure_pct closure_runs)
    sample;
  subheader "ddmin at class granularity (the pre-J-Reduce baseline)";
  List.iter
    (fun (instance : Corpus.instance) ->
      let pool = instance.benchmark.pool in
      let names = Lbr_jvm.Classpool.names pool in
      let baseline = instance.baseline_errors in
      let tests = ref 0 in
      let test subset =
        incr tests;
        let sub =
          Lbr_jvm.Classpool.classes pool
          |> List.filter (fun (c : Lbr_jvm.Classfile.cls) ->
                 List.mem c.Lbr_jvm.Classfile.name subset)
          |> Lbr_jvm.Classpool.of_classes
        in
        if not (Lbr_jvm.Checker.is_valid sub) then Lbr_baselines.Ddmin.Unresolved
        else
          let errors = Lbr_decompiler.Tool.errors instance.tool sub in
          if List.for_all (fun m -> List.mem m errors) baseline then Lbr_baselines.Ddmin.Fail
          else Lbr_baselines.Ddmin.Pass
      in
      let result, stats = Lbr_baselines.Ddmin.run ~items:names ~test in
      Printf.printf "%-24s ddmin: %3d of %3d classes left (%d tests)\n" instance.instance_id
        (List.length result) (List.length names) stats.tests)
    (take 3 instances)

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)

(* Direct GBR on one corpus instance, bypassing the experiment wrapper, to
   contrast the incremental and rebuild reduction cores head to head.  The
   model derivation runs once (setup); each timed run gets a fresh
   predicate and a fresh prepared applier so no memoization — predicate
   or reducer-cache — can leak between runs. *)
let gbr_direct_setup (instance : Corpus.instance) =
  let pool = instance.benchmark.pool in
  let vpool = Var.Pool.create () in
  let jv = Lbr_jvm.Jvars.derive vpool pool in
  let cnf = Lbr_jvm.Constraints.generate jv pool in
  let universe = Lbr_jvm.Jvars.all jv in
  let order = Lbr_sat.Order.by_creation vpool in
  fun ~incremental ->
    let sub_pool_of = Lbr_jvm.Reducer.prepare jv pool in
    let predicate =
      Lbr.Predicate.make (fun phi ->
          let errors = Lbr_decompiler.Tool.errors instance.tool (sub_pool_of phi) in
          List.for_all (fun m -> List.mem m errors) instance.baseline_errors)
    in
    let problem = Lbr.Problem.make ~pool:vpool ~universe ~constraints:cnf ~predicate in
    Lbr.Gbr.reduce problem ~order ~incremental

let micro () =
  header "Micro-benchmarks (Bechamel; ns per run)";
  let open Bechamel in
  let model = Lbr_fji.Example.model () in
  let universe = Lbr_fji.Vars.all model.vars in
  let over = Assignment.to_list universe in
  let pool40 =
    Lbr_workload.Generator.generate ~seed:7 (Lbr_workload.Generator.njr_profile ~classes:40)
  in
  let vpool = Var.Pool.create () in
  let jv = Lbr_jvm.Jvars.derive vpool pool40 in
  let cnf40 = Lbr_jvm.Constraints.generate jv pool40 in
  let order40 = Lbr_sat.Order.by_creation vpool in
  let universe40 = Lbr_jvm.Jvars.all jv in
  let instance40 =
    let benchmarks = Corpus.build ~seed:7 ~programs:1 ~mean_classes:40 in
    List.nth_opt (Corpus.instances benchmarks) 0
  in
  let tests =
    [
      Test.make ~name:"e1:model-count-6766"
        (Staged.stage (fun () ->
             Model_count.count
               (Cnf.make
                  (List.filter
                     (fun c -> Clause.kind c <> Clause.Unit_pos)
                     (Cnf.clauses model.constraints)))
               ~over));
      Test.make ~name:"e1:gbr-example"
        (Staged.stage (fun () ->
             let predicate = Lbr.Predicate.make (Lbr_fji.Example.buggy model.vars) in
             let problem =
               Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints
                 ~predicate
             in
             Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool)));
      Test.make ~name:"jvm:constraint-gen-40cls"
        (Staged.stage (fun () -> Lbr_jvm.Constraints.generate jv pool40));
      Test.make ~name:"sat:msa-closure-40cls"
        (Staged.stage (fun () ->
             Lbr_sat.Msa.compute cnf40 ~order:order40 ~universe:universe40
               ~required:Assignment.empty ()));
      Test.make ~name:"core:progression-40cls"
        (Staged.stage (fun () ->
             Lbr.Progression.build ~cnf:cnf40 ~order:order40 ~learned:[] ~universe:universe40));
      (Test.make ~name:"sat:engine-add-clause"
         (* One learned-set append + structural rollback on a warm engine:
            the per-iteration cost add_clause replaces r_plus with. *)
         (let engine =
            match Lbr_sat.Msa.Engine.create cnf40 ~order:order40 ~universe:universe40 with
            | Ok e -> e
            | Error `Conflict -> failwith "sat:engine-add-clause: unexpected conflict"
          in
          let disj =
            Assignment.to_list universe40 |> List.filteri (fun i _ -> i mod 50 = 0)
          in
          Staged.stage (fun () ->
              let snap = Lbr_sat.Msa.Engine.snapshot engine in
              (match Lbr_sat.Msa.Engine.add_clause engine ~pos:disj with
              | Ok () -> ()
              | Error `Conflict -> failwith "sat:engine-add-clause: conflict");
              Lbr_sat.Msa.Engine.rollback engine snap)));
      (Test.make ~name:"sat:propagate-watched-40cls"
         (* Pure watched propagation on a warm engine: assume a spread of
            universe variables under a snapshot, roll back.  No engine
            construction in the timed loop — this isolates the per-drain
            watcher-list walk. *)
         (let engine =
            match Lbr_sat.Msa.Engine.create cnf40 ~order:order40 ~universe:universe40 with
            | Ok e -> e
            | Error `Conflict -> failwith "sat:propagate-watched-40cls: unexpected conflict"
          in
          let vars =
            Assignment.to_list universe40 |> List.filteri (fun i _ -> i mod 7 = 0)
          in
          Staged.stage (fun () ->
              let snap = Lbr_sat.Msa.Engine.snapshot engine in
              (match Lbr_sat.Msa.Engine.assume_all engine vars with
              | Ok () | Error `Conflict -> ());
              Lbr_sat.Msa.Engine.rollback engine snap)));
      (Test.make ~name:"sat:engine-reset"
         (* One create-or-reset + release cycle against a private arena:
            the amortized cost of engine acquisition once the pool is
            warm (the second iteration onward reuses the shell). *)
         (let arena = Lbr_sat.Msa.Arena.create () in
          Staged.stage (fun () ->
              match Lbr_sat.Msa.Engine.create ~arena cnf40 ~order:order40 ~universe:universe40 with
              | Ok e -> Lbr_sat.Msa.Arena.release arena e
              | Error `Conflict -> failwith "sat:engine-reset: unexpected conflict")));
      Test.make ~name:"sat:trace-disabled-overhead"
        (* The cost contract of Lbr_obs.Trace: a span at a disabled call
           site is one atomic load and a branch (budget: 50ns/run).  Under
           bench --trace this instead measures the enabled recording path. *)
        (Staged.stage (fun () -> Lbr_obs.Trace.with_span "noop" (fun () -> ())));
      Test.make ~name:"graph:closure-table-40cls"
        (Staged.stage (fun () ->
             let edges =
               Cnf.clauses cnf40
               |> List.filter_map (fun (c : Clause.t) ->
                      match Clause.kind c with
                      | Clause.Edge -> Some (c.neg.(0), c.pos.(0))
                      | _ -> None)
             in
             Lbr_graph.Scc.all_closures
               (Lbr_graph.Digraph.make ~n:(Var.Pool.size vpool) ~edges)));
    ]
    @
    match instance40 with
    | None -> []
    | Some instance ->
        let run_gbr_direct = gbr_direct_setup instance in
        [
          Test.make ~name:"fig8a:gbr-one-instance"
            (Staged.stage (fun () -> Experiment.run Experiment.Gbr instance));
          Test.make ~name:"fig8a:jreduce-one-instance"
            (Staged.stage (fun () -> Experiment.run Experiment.Jreduce instance));
          Test.make ~name:"core:gbr-incremental-one-instance"
            (Staged.stage (fun () -> run_gbr_direct ~incremental:true));
          Test.make ~name:"core:gbr-rebuild-one-instance"
            (Staged.stage (fun () -> run_gbr_direct ~incremental:false));
        ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let samples = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let estimate = Analyze.one ols Toolkit.Instance.monotonic_clock samples in
          let ns =
            match Analyze.OLS.estimates estimate with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          Printf.printf "%-32s %12.0f ns/run  (%.3f ms)\n%!" (Test.Elt.name elt) ns
            (ns /. 1e6);
          (Test.Elt.name elt, ns))
        (Test.elements test))
    tests

(* ================================================================== *)
(* Non-JVM frontends: one deterministic reduction per frontend over a
   fixed input, so `--json` rows are labelled by frontend and the dump
   tracks every workload the service can reduce, not just class pools.
   The inputs mirror the checked-in examples (examples/data/): the
   PHP(3,2) pigeonhole CNF with its reduction directives, and the
   Figure 1 FJ program with "class A" as the failure marker.          *)

let frontend_php_cnf =
  String.concat "\n"
    [ "c lbr keep 1"; "c lbr implies 3 2"; "p cnf 8 11";
      "1 2 0"; "3 4 0"; "5 6 0"; "-1 -3 0"; "-1 -5 0"; "-3 -5 0";
      "-2 -4 0"; "-2 -6 0"; "-4 -6 0"; "7 8 0"; "-7 8 0"; "" ]

let run_frontends () =
  header "Frontend reductions (DIMACS core extraction, FJ tree reduction)";
  let fj_text =
    Lbr_fji.Pretty.program_to_string (Lbr_fji.Example.model ()).Lbr_fji.Example.program
  in
  List.filter_map
    (fun (id, text, spec) ->
      match Lbr_frontend.Registry.find id with
      | Error m ->
          Printf.printf "%-8s SKIPPED: %s\n" id m;
          None
      | Ok packed -> (
          match Lbr_frontend.Run.reduce_text packed ~text ~spec with
          | Error m ->
              Printf.printf "%-8s FAILED: %s\n" id m;
              None
          | Ok (o, _) ->
              Printf.printf
                "%-8s %4d -> %4d items  %6d -> %6d bytes  %3d predicate runs  %7.1f s simulated\n"
                id o.Lbr_frontend.Run.items0 o.items1 o.bytes0 o.bytes1
                o.predicate_runs o.sim_time;
              Some (id, o)))
    [ ("dimacs", frontend_php_cnf, ""); ("fj", fj_text, "class A") ]

(* ================================================================== *)
(* --json: machine-readable dump of the headline numbers               *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

(* Attribution for trajectory points: which commit produced this dump, on
   how many cores.  Best effort — outside a git checkout the commit is
   "unknown". *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let write_json path options strategies frontend_rows micro_rows counter_rows metric_rows =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"programs\": %d,\n" options.programs;
  p "  \"mean_classes\": %d,\n" options.mean_classes;
  p "  \"seed\": %d,\n" options.seed;
  p "  \"jobs\": %d,\n" options.jobs;
  p "  \"git_commit\": \"%s\",\n" (json_escape (git_commit ()));
  p "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"strategies\": [";
  List.iteri
    (fun i (name, wall, speedup, intra, (s : Stats.summary)) ->
      p
        "%s\n    { \"name\": \"%s\", \"frontend\": \"jvm\", \"wall_seconds\": %s, \
         \"speedup\": %s, \"intra_speedup\": %s, \"geo_sim_time_seconds\": %s, \
         \"geo_class_ratio\": %s, \"geo_byte_ratio\": %s, \"geo_line_ratio\": %s, \
         \"geo_predicate_runs\": %s }"
        (if i > 0 then "," else "")
        (json_escape name) (json_num wall) (json_num speedup) (json_num intra)
        (json_num s.geo_time) (json_num s.geo_class_ratio) (json_num s.geo_byte_ratio)
        (json_num s.geo_line_ratio) (json_num s.geo_runs))
    strategies;
  p "\n  ],\n";
  (* One row per non-JVM frontend over its fixed input; everything but
     wall_seconds is deterministic.  The frontend label keys trajectory
     tracking the same way "name" does for strategies. *)
  p "  \"frontends\": [";
  List.iteri
    (fun i (id, (o : Lbr_frontend.Run.outcome)) ->
      p
        "%s\n    { \"frontend\": \"%s\", \"items0\": %d, \"items1\": %d, \
         \"bytes0\": %d, \"bytes1\": %d, \"predicate_runs\": %d, \
         \"sim_time_seconds\": %s, \"wall_seconds\": %s }"
        (if i > 0 then "," else "")
        (json_escape id) o.items0 o.items1 o.bytes0 o.bytes1 o.predicate_runs
        (json_num o.sim_time) (json_num o.wall_time))
    frontend_rows;
  p "\n  ],\n";
  p "  \"micro\": [";
  List.iteri
    (fun i (name, ns) ->
      p "%s\n    { \"name\": \"%s\", \"ns_per_run\": %s }"
        (if i > 0 then "," else "")
        (json_escape name) (json_num ns))
    micro_rows;
  p "\n  ],\n";
  (* The Lbr_obs metric registry (oracle/scheduler/span aggregates).  Every
     row carries a "kind" field so the CI determinism diff can strip them
     wholesale — counts vary with timing and parallel interleaving. *)
  let p_metric_rows rows =
    List.iteri
      (fun i (r : Lbr_obs.Metrics.row) ->
        let sep = if i > 0 then "," else "" in
        match r with
        | Lbr_obs.Metrics.Counter_row { name; value } ->
            p "%s\n    { \"kind\": \"counter\", \"name\": \"%s\", \"value\": %d }" sep
              (json_escape name) value
        | Lbr_obs.Metrics.Gauge_row { name; value } ->
            p "%s\n    { \"kind\": \"gauge\", \"name\": \"%s\", \"value\": %s }" sep
              (json_escape name) (json_num value)
        | Lbr_obs.Metrics.Histogram_row { name; count; sum; p50; p90; p99 } ->
            p
              "%s\n    { \"kind\": \"histogram\", \"name\": \"%s\", \"count\": %d, \"sum\": \
               %s, \"p50\": %s, \"p90\": %s, \"p99\": %s }"
              sep (json_escape name) count (json_num sum) (json_num p50) (json_num p90)
              (json_num p99))
      rows
  in
  p "  \"metrics\": [";
  p_metric_rows metric_rows;
  p "\n  ],\n";
  (* Metrics federation round-trip: the same registry as a cluster
     coordinator would see it — snapshotted with Metrics.dump, pushed
     through the wire codec, and exact-merged with itself.  Counters and
     histogram counts come out at exactly 2x the "metrics" section (the
     merge-is-exact-sum invariant, visible in the artifact); rows are
     "kind"-tagged like "metrics" so determinism diffs strip them. *)
  p "  \"federated\": [";
  (let d = Lbr_obs.Metrics.dump () in
   match Lbr_obs.Metrics.decode_dump (Lbr_obs.Metrics.encode_dump d) with
   | Ok d' -> p_metric_rows (Lbr_obs.Metrics.rows_of_dump (Lbr_obs.Metrics.merge_dumps [ d; d' ]))
   | Error m -> failwith ("bench: metrics dump codec round-trip failed: " ^ m));
  p "\n  ],\n";
  (* Phase counters for the strategy-table runs (micro and corpus
     generation excluded — see the capture site in the main driver). *)
  p "  \"counters\": [";
  List.iteri
    (fun i (r : Counters.row) ->
      p
        "%s\n    { \"name\": \"%s\", \"calls\": %d, \"seconds\": %s, \
         \"minor_words\": %s }"
        (if i > 0 then "," else "")
        (json_escape r.name) r.calls (json_num r.seconds) (json_num r.minor_words))
    counter_rows;
  p "\n  ]\n}\n";
  close_out oc;
  Printf.printf "[json] wrote %s\n" path

(* ================================================================== *)

let () =
  let options = parse_options () in
  if options.trace_path <> None then Lbr_obs.Trace.start ();
  Printf.printf
    "Logical Bytecode Reduction — evaluation harness (programs=%d, mean-classes=%d, seed=%d)\n"
    options.programs options.mean_classes options.seed;
  let strategy_rows = ref [] in
  let counter_rows = ref [] in
  if options.run_tables then begin
    table_e1 ();
    let benchmarks, instances, outcomes, intra, counters_before = run_corpus options in
    strategy_rows :=
      List.map
        (fun (strategy, (wall, speedup, os)) ->
          let intra = if strategy = Experiment.Gbr then intra else nan in
          (Experiment.strategy_name strategy, wall, speedup, intra, Stats.summarize os))
        outcomes;
    table_e4 benchmarks instances;
    table_e2 outcomes;
    table_e3 outcomes;
    table_e5 instances outcomes;
    table_e6 instances;
    (* Counters are captured here, before the micro loops, and windowed to
       the strategy runs: Bechamel runs each micro under a time quota, so
       its counter contribution scales with host speed — folding it in
       would make the dump useless as a deterministic workload measure (and
       would hide improvements: faster code does more quota iterations,
       keeping phase seconds constant).  Corpus generation is excluded by
       the [since] delta for the same reason: it is setup, not workload. *)
    counter_rows := Counters.since ~before:counters_before ~after:(Counters.aggregate ())
  end;
  let frontend_rows = if options.run_tables then run_frontends () else [] in
  let micro_rows = if options.run_micro then micro () else [] in
  if not options.run_tables then counter_rows := Counters.aggregate ();
  let counter_rows = !counter_rows in
  header "Phase counters (tables phase, all domains)";
  print_string (Counters.report counter_rows);
  let metric_rows = Lbr_obs.Metrics.rows () in
  (match options.json_path with
  | Some path ->
      write_json path options !strategy_rows frontend_rows micro_rows counter_rows
        metric_rows
  | None -> ());
  (match options.prometheus_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Lbr_obs.Metrics.render_prometheus ());
      close_out oc;
      Printf.printf "[prometheus] wrote %s\n" path
  | None -> ());
  (match options.trace_path with
  | Some path ->
      Lbr_obs.Trace.stop ();
      Lbr_obs.Trace.write_file path;
      Printf.printf "[trace] wrote %s (%d events, %d dropped)\n" path
        (List.length (Lbr_obs.Trace.events ()))
        (Lbr_obs.Trace.dropped ())
  | None -> ());
  print_newline ()
