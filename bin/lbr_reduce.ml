(* lbr-reduce: command-line front end for logical bytecode reduction.

   Subcommands:
     example   — run the paper's Figure 1 example end to end
     reduce    — generate a benchmark, pick a buggy decompiler, reduce
     serve     — reduction-as-a-service daemon on a Unix socket
     submit    — send a pool to a running daemon and collect the result
     stats     — corpus statistics (the §5 'Statistics' table)
     export    — dump a benchmark's pool (binary), model (DIMACS) and source
     tools     — list the simulated decompilers and their bug patterns *)

open Cmdliner
open Lbr_logic

(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () =
    let model = Lbr_fji.Example.model () in
    let universe = Lbr_fji.Vars.all model.vars in
    print_endline "input (Figure 1a):";
    print_endline (Lbr_fji.Pretty.program_to_string model.program);
    let predicate = Lbr.Predicate.make (Lbr_fji.Example.buggy model.vars) in
    let problem =
      Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
    in
    match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool) with
    | Error _ -> prerr_endline "reduction failed"; exit 1
    | Ok (solution, stats) ->
        Printf.printf "\nreduced in %d tool runs; kept %d of %d items\n\n"
          stats.predicate_runs
          (Assignment.cardinal solution)
          (Assignment.cardinal universe);
        print_endline "output (Figure 1b):";
        print_endline
          (Lbr_fji.Pretty.program_to_string
             (Lbr_fji.Reduce.reduce model.vars model.program solution))
  in
  Cmd.v (Cmd.info "example" ~doc:"Run the paper's Figure 1 example end to end.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let classes_arg =
  Arg.(value & opt int 60 & info [ "classes" ] ~docv:"N" ~doc:"Classes in the generated program.")

let strategy_arg =
  let strategies =
    [
      ("gbr", Lbr_harness.Experiment.Gbr);
      ("jreduce", Lbr_harness.Experiment.Jreduce);
      ("lossy-first", Lbr_harness.Experiment.Lossy_first);
      ("lossy-last", Lbr_harness.Experiment.Lossy_last);
    ]
  in
  Arg.(
    value
    & opt (enum strategies) Lbr_harness.Experiment.Gbr
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"One of gbr, jreduce, lossy-first, lossy-last.")

let tool_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tool" ] ~docv:"TOOL"
        ~doc:"Decompiler to reduce against (default: first buggy one).")

(* Frontends are validated at argument-parse time: a typo'd --frontend
   should be a cmdliner error listing the known ones, not a failure after
   the workload is generated or read. *)
let frontend_conv =
  let parse s =
    match Lbr_frontend.Registry.find s with
    | Ok _ -> Ok s
    | Error m -> Error (`Msg m)
  in
  Arg.conv ~docv:"FRONTEND" (parse, Format.pp_print_string)

let frontend_arg =
  Arg.(
    value
    & opt (some frontend_conv) None
    & info [ "frontend" ] ~docv:"FRONTEND"
        ~doc:
          "Workload frontend: $(b,jvm) (generated benchmark class pools), $(b,dimacs) \
           (clause-level CNF reduction preserving unsatisfiability) or $(b,fj) \
           (Featherweight Java tree reduction).  Default: inferred from INPUT's \
           extension; jvm when there is no INPUT.")

let input_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"INPUT"
        ~doc:
          "Workload file for a non-jvm frontend (e.g. a .cnf or .fj file).  The jvm \
           frontend generates its workload from --seed/--classes instead.")

let require_arg =
  Arg.(
    value & opt string ""
    & info [ "require" ] ~docv:"SPEC"
        ~doc:
          "Frontend predicate spec.  For fj: a substring the reduced program must \
           still contain (the failure marker); empty preserves typechecking only.  \
           dimacs accepts no spec — the preserved property is unsatisfiability.  \
           jvm uses --tool instead.")

(* Resolve the effective frontend from the explicit flag and the input
   path's extension, rejecting mismatches before anything is read: a
   --frontend that contradicts what the extension says is almost always a
   wrong file, and the reduction would otherwise fail only after parsing
   (or worse, mis-parse). *)
let resolve_frontend ~frontend ~input =
  match (frontend, input) with
  | None, None -> Ok "jvm"
  | Some id, None -> Ok id
  | None, Some path -> (
      match Lbr_frontend.Registry.for_path path with
      | Ok p -> Ok (Lbr_frontend.Frontend.id_of p)
      | Error m -> Error m)
  | Some id, Some path -> (
      match Lbr_frontend.Registry.for_path path with
      | Ok p when Lbr_frontend.Frontend.id_of p <> id ->
          Error
            (Printf.sprintf
               "%s looks like a %s workload (extension %S) but --frontend %s was given; \
                pass a matching file or drop --frontend"
               path
               (Lbr_frontend.Frontend.id_of p)
               (Filename.extension path) id)
      | Ok _ | Error _ ->
          (* an unknown extension defers to the explicit flag *)
          Ok id)

let read_text_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error m -> Error m

(* Output paths are validated at argument-parse time, not at first write:
   a reduction can run for minutes before anything is written, and
   discovering a typo'd directory only then wastes the whole run.  The
   file may not exist yet — its parent directory must exist and be
   writable. *)
let writable_file =
  let parse s =
    if s = "" then Error (`Msg "output path is empty")
    else if Sys.file_exists s && Sys.is_directory s then
      Error (`Msg (s ^ ": is a directory"))
    else
      let dir = Filename.dirname s in
      if not (Sys.file_exists dir) then
        Error (`Msg (Printf.sprintf "%s: parent directory %s does not exist" s dir))
      else if not (Sys.is_directory dir) then
        Error (`Msg (Printf.sprintf "%s: %s is not a directory" s dir))
      else
        match Unix.access dir [ Unix.W_OK; Unix.X_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (`Msg (Printf.sprintf "%s: directory %s: %s" s dir (Unix.error_message e)))
  in
  Arg.conv ~docv:"FILE" (parse, Format.pp_print_string)

(* Same idea for directories the command will create (e.g. a fresh journal
   dir): walk up to the nearest existing ancestor and require it to be a
   writable directory. *)
let writable_dir =
  let parse s =
    if s = "" then Error (`Msg "directory path is empty")
    else
      let rec nearest d =
        if Sys.file_exists d then d
        else
          let parent = Filename.dirname d in
          if parent = d then d else nearest parent
      in
      let anc = nearest s in
      if not (Sys.file_exists anc) || not (Sys.is_directory anc) then
        Error (`Msg (Printf.sprintf "%s: %s is not a directory" s anc))
      else if Sys.file_exists s && not (Sys.is_directory s) then
        Error (`Msg (s ^ ": exists and is not a directory"))
      else
        match Unix.access anc [ Unix.W_OK; Unix.X_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error (`Msg (Printf.sprintf "%s: %s: %s" s anc (Unix.error_message e)))
  in
  Arg.conv ~docv:"DIR" (parse, Format.pp_print_string)

let trace_arg =
  Arg.(
    value
    & opt (some writable_file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event timeline of the run and write it to FILE on exit; \
           load it in chrome://tracing or ui.perfetto.dev.")

(* Flush the recorded timeline — shared by reduce (normal and interrupted
   exits) and serve's drain hook. *)
let write_trace = function
  | None -> ()
  | Some file ->
      Lbr_obs.Trace.stop ();
      Lbr_obs.Trace.write_file file;
      Printf.eprintf "trace (%d events%s) written to %s\n%!"
        (List.length (Lbr_obs.Trace.events ()))
        (match Lbr_obs.Trace.dropped () with
        | 0 -> ""
        | n -> Printf.sprintf ", %d dropped" n)
        file

let prometheus_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "prometheus-listen" ] ~docv:"PORT"
        ~doc:
          "Serve the metric registry as a Prometheus text endpoint on 127.0.0.1:PORT (0 lets \
           the kernel pick; the chosen port is printed).  On a coordinator the payload is the \
           federated view: local registry, per-worker dumps and the merged cluster totals.")

let output_arg =
  Arg.(
    value
    & opt (some writable_file) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the reduced decompiled source to FILE.")

(* A [--jobs 0] or [--jobs -3] should die in argument parsing with a
   cmdliner-formatted error, not reach the domain pool. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a positive integer (expected >= 1)" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt pos_int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains (a positive integer).  With N > 1, reduce against $(i,every) buggy \
           decompiler, fanning the instances across N domains; the default 1 keeps today's \
           sequential behaviour (first buggy decompiler only).  With $(b,--speculate), the N \
           domains instead pipeline a single reduction from within.")

let speculate_arg =
  Arg.(
    value & flag
    & info [ "speculate" ]
        ~doc:
          "Speculative predicate pipelining: while each predicate verdict is pending, run \
           the probes both branches would need next on the $(b,--jobs) worker domains, \
           cancelling the losing branch when the verdict lands.  The reduced output is \
           byte-identical to the sequential run; only wall clock changes.  Applies to the \
           first (sequentially-selected) instance; combine with $(b,--jobs) N >= 2.")

(* One-shot reduction of a non-jvm workload file: parse, reduce with GBR,
   print (or write) the reduced artifact in the frontend's own format.
   Shares the jvm path's graceful-shutdown behaviour: ^C stops at the next
   predicate-run boundary and exits 128+signal. *)
let reduce_via_frontend ~frontend_id ~path ~strategy ~require ~output ~trace ~jobs
    ~speculate =
  (match strategy with
  | Lbr_harness.Experiment.Gbr -> ()
  | _ ->
      Printf.eprintf "lbr-reduce: frontend %s only supports --strategy gbr\n" frontend_id;
      exit 2);
  let packed =
    match Lbr_frontend.Registry.find frontend_id with
    | Ok p -> p
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 2
  in
  let text =
    match read_text_file path with
    | Ok text -> text
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 1
  in
  if trace <> None then Lbr_obs.Trace.start ();
  let shutdown = Lbr_server.Shutdown.install () in
  let hooks =
    {
      Lbr_frontend.Run.default_hooks with
      should_stop = Some (fun () -> Lbr_server.Shutdown.requested shutdown);
    }
  in
  let reduce () =
    if speculate then
      Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
          Lbr_frontend.Run.reduce_text ~hooks ~pool ~speculate packed ~text ~spec:require)
    else Lbr_frontend.Run.reduce_text ~hooks packed ~text ~spec:require
  in
  match reduce () with
  | exception Lbr_frontend.Run.Cancelled ->
      Lbr_server.Shutdown.on_drain shutdown (fun () ->
          Printf.eprintf "interrupted by SIG%s\n"
            (Option.value ~default:"?" (Lbr_server.Shutdown.signal_name shutdown));
          write_trace trace);
      Lbr_server.Shutdown.run_drain shutdown;
      exit (match Lbr_server.Shutdown.signal_name shutdown with Some "TERM" -> 143 | _ -> 130)
  | Error m ->
      prerr_endline ("lbr-reduce: " ^ m);
      exit 1
  | Ok (o, printed) ->
      Printf.printf
        "gbr [%s %s]: %d -> %d items (%.1f%%), %d -> %d bytes (%.1f%%), %d predicate runs, \
         %.0fs simulated%s\n"
        frontend_id (Filename.basename path) o.items0 o.items1
        (100. *. float_of_int o.items1 /. float_of_int (max 1 o.items0))
        o.bytes0 o.bytes1
        (100. *. float_of_int o.bytes1 /. float_of_int (max 1 o.bytes0))
        o.predicate_runs o.sim_time
        (if o.ok then "" else " [NOT REPRODUCED]");
      (match output with
      | Some file ->
          let oc = open_out_bin file in
          output_string oc printed;
          close_out oc;
          Printf.printf "reduced %s workload written to %s\n" frontend_id file
      | None ->
          print_newline ();
          print_string printed);
      write_trace trace

let reduce_cmd =
  let run seed classes strategy tool jobs output output_pool trace frontend input require
      speculate =
    match resolve_frontend ~frontend ~input with
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 2
    | Ok "jvm" when input <> None ->
        prerr_endline
          "lbr-reduce: the jvm frontend reduces generated benchmarks (--seed/--classes); \
           submit an exported pool to a daemon with `lbr-reduce submit --pool' instead of \
           passing INPUT";
        exit 2
    | Ok id when id <> "jvm" ->
        let path =
          match input with
          | Some path -> path
          | None ->
              Printf.eprintf
                "lbr-reduce: frontend %s needs an INPUT file to reduce\n" id;
              exit 2
        in
        reduce_via_frontend ~frontend_id:id ~path ~strategy ~require ~output ~trace ~jobs
          ~speculate
    | Ok _jvm ->
    if require <> "" then begin
      prerr_endline "lbr-reduce: --require applies to non-jvm frontends; use --tool";
      exit 2
    end;
    if trace <> None then Lbr_obs.Trace.start ();
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    let tools =
      match tool with
      | None -> Lbr_decompiler.Tool.all
      | Some name -> (
          match
            List.find_opt
              (fun (t : Lbr_decompiler.Tool.t) -> t.name = name)
              Lbr_decompiler.Tool.all
          with
          | Some t -> [ t ]
          | None ->
              prerr_endline ("unknown tool " ^ name ^ "; see `lbr-reduce tools'");
              exit 2)
    in
    let buggy =
      List.filter_map
        (fun t ->
          match Lbr_decompiler.Tool.errors t pool with
          | [] -> None
          | errors -> Some (t, errors))
        tools
    in
    match buggy with
    | [] ->
        print_endline "no decompiler is buggy on this program; try another --seed";
        exit 0
    | (tool, baseline) :: _ ->
        (* --speculate spends the worker domains inside one reduction, so
           instance selection stays the sequential one (first buggy tool)
           and the output is comparable byte-for-byte. *)
        let selected =
          if jobs > 1 && not speculate then buggy else [ (tool, baseline) ]
        in
        let instances =
          List.map
            (fun ((t : Lbr_decompiler.Tool.t), errors) ->
              {
                Lbr_harness.Corpus.instance_id = Printf.sprintf "seed%d/%s" seed t.name;
                benchmark = { bench_id = Printf.sprintf "seed%d" seed; seed; pool };
                tool = t;
                baseline_errors = errors;
              })
            selected
        in
        List.iter
          (fun (instance : Lbr_harness.Corpus.instance) ->
            Printf.printf "program: %d classes, %d bytes; %s produces %d errors\n"
              (Lbr_jvm.Size.classes pool) (Lbr_jvm.Size.bytes pool)
              instance.tool.Lbr_decompiler.Tool.name
              (List.length instance.baseline_errors))
          instances;
        (* Graceful ^C / SIGTERM: stop at the next predicate-run boundary,
           flush whatever timeline the interrupted run accumulated, and
           exit with the conventional 128+signal status.  Shares the
           Shutdown drain plumbing with the serve daemon. *)
        let shutdown = Lbr_server.Shutdown.install () in
        let partial_mutex = Mutex.create () in
        let partial : (string * (float * int * int) list ref) list =
          List.map
            (fun (i : Lbr_harness.Corpus.instance) -> (i.instance_id, ref []))
            instances
        in
        let hooks (instance : Lbr_harness.Corpus.instance) =
          let improvements = List.assoc instance.instance_id partial in
          (* Under --trace, route predicate runs through a per-instance
             runtime oracle purely so the timeline shows oracle.attempt /
             oracle.memo events.  retries = 0 and Crash_raises make it
             behaviourally transparent — the predicate memo above this hook
             already deduplicates, so the oracle only ever sees fresh keys
             and the reduction stays byte-identical to the untraced run. *)
          let evaluate =
            match trace with
            | None -> None
            | Some _ ->
                let current : (unit -> bool) ref = ref (fun () -> false) in
                let oracle =
                  Lbr_runtime.Oracle.make
                    ~config:
                      {
                        Lbr_runtime.Oracle.default_config with
                        crash_policy = Lbr_runtime.Oracle.Crash_raises;
                        retries = 0;
                      }
                    ~name:instance.instance_id
                    (fun _ -> !current ())
                in
                Some
                  (fun ~key thunk ->
                    current := thunk;
                    Lbr_harness.Experiment.Fresh
                      (Lbr_runtime.Oracle.run oracle (Lbr_server.Runner.key_assignment key)))
          in
          {
            Lbr_harness.Experiment.should_stop =
              Some (fun () -> Lbr_server.Shutdown.requested shutdown);
            on_improvement =
              Some
                (fun sim_time cls bytes ->
                  Mutex.lock partial_mutex;
                  improvements := (sim_time, cls, bytes) :: !improvements;
                  Mutex.unlock partial_mutex);
            evaluate;
            peek = None;
          }
        in
        let run_corpus () =
          if speculate then
            Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
                Lbr_harness.Experiment.run_corpus_full ~jobs:1 ~hooks ~speculate:pool
                  strategy instances)
          else Lbr_harness.Experiment.run_corpus_full ~jobs ~hooks strategy instances
        in
        let results =
          match run_corpus () with
          | results -> results
          | exception Lbr_harness.Experiment.Cancelled ->
              Lbr_server.Shutdown.on_drain shutdown (fun () ->
                  Printf.eprintf "interrupted by SIG%s; partial progress:\n"
                    (Option.value ~default:"?" (Lbr_server.Shutdown.signal_name shutdown));
                  List.iter
                    (fun (id, improvements) ->
                      match !improvements with
                      | [] -> Printf.eprintf "  %s: no improvement reached yet\n" id
                      | (sim_time, cls, bytes) :: _ ->
                          Printf.eprintf "  %s: best so far %d classes, %d bytes at %.0fs\n" id
                            cls bytes sim_time)
                    partial;
                  write_trace trace);
              Lbr_server.Shutdown.run_drain shutdown;
              exit (match Lbr_server.Shutdown.signal_name shutdown with
                    | Some "TERM" -> 143
                    | _ -> 130)
        in
        List.iter
          (fun ((o : Lbr_harness.Experiment.outcome), _final) ->
            Printf.printf
              "%s%s: %d -> %d classes (%.1f%%), %d -> %d bytes (%.1f%%), %d tool runs, %.0fs \
               simulated\n"
              (Lbr_harness.Experiment.strategy_name strategy)
              (if jobs > 1 && not speculate then " [" ^ o.instance_id ^ "]" else "")
              o.classes0 o.classes1
              (100. *. float_of_int o.classes1 /. float_of_int o.classes0)
              o.bytes0 o.bytes1
              (100. *. float_of_int o.bytes1 /. float_of_int o.bytes0)
              o.predicate_runs o.sim_time)
          results;
        let first_final = match results with (_, final) :: _ -> Some final | [] -> None in
        (match (output, first_final) with
        | Some file, Some reduced ->
            let oc = open_out file in
            output_string oc (Lbr_decompiler.Source.decompile reduced);
            close_out oc;
            Printf.printf "reduced decompiled source written to %s\n" file
        | _ -> ());
        (match (output_pool, first_final) with
        | Some file, Some reduced ->
            Lbr_jvm.Serialize.write_file file reduced;
            Printf.printf "reduced pool written to %s\n" file
        | _ -> ());
        write_trace trace
  in
  let output_pool_arg =
    Arg.(
      value
      & opt (some writable_file) None
      & info [ "output-pool" ] ~docv:"FILE"
          ~doc:"Write the reduced class pool (LBRC binary) of the first instance to FILE.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Reduce a workload: generate a benchmark program and reduce it against a buggy \
          decompiler (jvm, the default), or reduce a DIMACS CNF / Featherweight Java file \
          passed as INPUT (--frontend dimacs|fj).")
    Term.(
      const run $ seed_arg $ classes_arg $ strategy_arg $ tool_arg $ jobs_arg $ output_arg
      $ output_pool_arg $ trace_arg $ frontend_arg $ input_arg $ require_arg
      $ speculate_arg)

(* ------------------------------------------------------------------ *)
(* Reduction as a service                                              *)

(* Cluster addresses are validated at parse time like output paths: a
   host:port with a port outside 0-65535 (or a bare ":8080") should be a
   cmdliner error, not a connect failure minutes into a run.  Accepts a
   Unix socket path, [unix:PATH], or [tcp:]HOST:PORT; port 0 asks the
   kernel for a free port when listening. *)
let cluster_addr =
  let parse s =
    match Lbr_server.Addr.parse s with Ok a -> Ok a | Error m -> Error (`Msg m)
  in
  let print ppf a = Format.pp_print_string ppf (Lbr_server.Addr.to_string a) in
  Arg.conv ~docv:"ADDR" (parse, print)

let socket_arg =
  Arg.(
    value
    & opt cluster_addr (Lbr_server.Addr.Unix_path "/tmp/lbr-serve.sock")
    & info [ "socket" ] ~docv:"ADDR"
        ~doc:"Daemon address: a Unix socket path (or unix:PATH) or a TCP host:port, \
              e.g. 127.0.0.1:7199 (port 0 lets the kernel pick when serving).")

let serve_cmd =
  let queue_depth_arg =
    Arg.(
      value & opt pos_int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Maximum jobs waiting for a worker; submissions past this are rejected with a \
                retry-after hint.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some writable_dir) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Write-ahead journal directory.  Accepted jobs and completed predicate \
                evaluations are logged there, and a restarted daemon resumes unfinished jobs, \
                replaying paid-for predicate results.")
  in
  let run socket jobs queue_depth journal_dir trace prometheus =
    if trace <> None then Lbr_obs.Trace.start ();
    (* The flight recorder needs somewhere durable to drop its dump; the
       journal directory is exactly that.  No journal, no recorder. *)
    (match journal_dir with
    | Some dir -> Lbr_obs.Flight.arm ~node:"serve" ~dir ()
    | None -> ());
    let shutdown = Lbr_server.Shutdown.install () in
    let server =
      try
        Lbr_server.Server.start
          { Lbr_server.Server.listen = socket; jobs; queue_depth; journal_dir }
      with Failure m | Sys_error m ->
        prerr_endline ("lbr-serve: " ^ m);
        exit 1
    in
    let exporter =
      match prometheus with
      | None -> None
      | Some port -> (
          match Lbr_obs.Exporter.start ~port Lbr_obs.Metrics.render_prometheus with
          | e ->
              Printf.printf "lbr-serve: metrics on http://127.0.0.1:%d/metrics\n%!"
                (Lbr_obs.Exporter.port e);
              Some e
          | exception (Failure m | Sys_error m) ->
              prerr_endline ("lbr-serve: --prometheus-listen: " ^ m);
              exit 1
          | exception Unix.Unix_error (e, _, _) ->
              prerr_endline ("lbr-serve: --prometheus-listen: " ^ Unix.error_message e);
              exit 1)
    in
    Printf.printf "lbr-serve: listening on %s (%d worker%s, queue depth %d%s)\n%!"
      (Lbr_server.Addr.to_string (Lbr_server.Server.bound_addr server))
      jobs
      (if jobs = 1 then "" else "s")
      queue_depth
      (match journal_dir with Some d -> ", journal " ^ d | None -> "");
    (match Lbr_server.Server.recovered server with
    | 0 -> ()
    | n -> Printf.printf "lbr-serve: resumed %d journaled job%s\n%!" n (if n = 1 then "" else "s"));
    Lbr_server.Shutdown.on_drain shutdown (fun () ->
        Printf.printf "lbr-serve: %s received, draining in-flight jobs...\n%!"
          (match Lbr_server.Shutdown.signal_name shutdown with
          | Some s -> "SIG" ^ s
          | None -> "stop request");
        Lbr_server.Server.stop server;
        Option.iter Lbr_obs.Exporter.stop exporter;
        write_trace trace;
        ignore (Lbr_obs.Flight.dump ~reason:"drain" : string option);
        print_endline "lbr-serve: drained, bye");
    while not (Lbr_server.Shutdown.requested shutdown) do
      Thread.delay 0.1
    done;
    Lbr_server.Shutdown.run_drain shutdown
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the reduction daemon: accept LBRC class pools over a Unix domain socket, reduce \
          them on a domain pool, stream progress, and journal for crash recovery.")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_depth_arg $ journal_arg $ trace_arg
      $ prometheus_arg)

let coordinate_cmd =
  let listen_arg =
    Arg.(
      value
      & opt cluster_addr (Lbr_server.Addr.Unix_path "/tmp/lbr-coordinate.sock")
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Address the coordinator serves on: a Unix socket path or a TCP host:port \
                (use port 0 to let the kernel pick).")
  in
  let workers_arg =
    Arg.(
      non_empty & opt_all cluster_addr []
      & info [ "worker" ] ~docv:"ADDR"
          ~doc:"Address of a worker daemon (repeatable).  Every worker is pinged at startup \
                and must speak protocol v3.")
  in
  let lanes_arg =
    Arg.(
      value & opt pos_int 1
      & info [ "lanes" ] ~docv:"N" ~doc:"Concurrent delegated jobs per worker.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt pos_int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Cluster-wide cap on queued jobs; submissions past this are rejected with a \
                retry-after hint.")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some writable_file) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"Persist the content-addressed verdict cache to FILE (append-only; reloaded \
                on restart).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some writable_dir) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Coordinator write-ahead journal: admitted jobs and mirrored worker verdicts. \
                A restarted coordinator resubmits unfinished jobs seeded with their paid \
                verdicts.")
  in
  let poll_interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "poll-interval" ] ~docv:"SECONDS"
          ~doc:
            "How often the federation thread pulls each worker's metric registry (heartbeat \
             ages, cluster totals).  0 disables polling.")
  in
  let run listen workers lanes queue_depth cache_path journal_dir poll_interval trace
      prometheus =
    if trace <> None then Lbr_obs.Trace.start ();
    (match journal_dir with
    | Some dir -> Lbr_obs.Flight.arm ~node:"coordinate" ~dir ()
    | None -> ());
    let shutdown = Lbr_server.Shutdown.install () in
    let coordinator =
      match
        Lbr_cluster.Coordinator.create
          {
            Lbr_cluster.Coordinator.workers;
            lanes;
            queue_depth;
            cache_path;
            journal_dir;
            poll_interval;
          }
      with
      | c -> c
      | exception (Failure m | Sys_error m) ->
          prerr_endline ("lbr-coordinate: " ^ m);
          exit 1
      | exception Unix.Unix_error (e, _, _) ->
          prerr_endline ("lbr-coordinate: " ^ Unix.error_message e);
          exit 1
    in
    let server =
      try
        Lbr_server.Server.start_backend ~listen
          (Lbr_cluster.Coordinator.backend coordinator)
      with Failure m | Sys_error m ->
        prerr_endline ("lbr-coordinate: " ^ m);
        exit 1
    in
    let exporter =
      match prometheus with
      | None -> None
      | Some port -> (
          let render () =
            let per_worker, merged = Lbr_cluster.Coordinator.federated coordinator in
            String.concat ""
              ((Lbr_obs.Metrics.render_prometheus ()
               :: List.map
                    (fun (lbl, d) ->
                      Lbr_obs.Metrics.render_prometheus_dump ~label:("worker", lbl) d)
                    per_worker)
              @ [
                  Lbr_obs.Metrics.render_prometheus_dump
                    ~label:("worker", "cluster") merged;
                ])
          in
          match Lbr_obs.Exporter.start ~port render with
          | e ->
              Printf.printf
                "lbr-coordinate: federated metrics on http://127.0.0.1:%d/metrics\n%!"
                (Lbr_obs.Exporter.port e);
              Some e
          | exception (Failure m | Sys_error m) ->
              prerr_endline ("lbr-coordinate: --prometheus-listen: " ^ m);
              exit 1
          | exception Unix.Unix_error (e, _, _) ->
              prerr_endline
                ("lbr-coordinate: --prometheus-listen: " ^ Unix.error_message e);
              exit 1)
    in
    Printf.printf "lbr-coordinate: listening on %s, %d worker%s (%s)\n%!"
      (Lbr_server.Addr.to_string (Lbr_server.Server.bound_addr server))
      (List.length workers)
      (if List.length workers = 1 then "" else "s")
      (String.concat ", " (List.map Lbr_server.Addr.to_string workers));
    (match Lbr_cluster.Coordinator.recovered coordinator with
    | 0 -> ()
    | n ->
        Printf.printf "lbr-coordinate: resubmitted %d journaled job%s\n%!" n
          (if n = 1 then "" else "s"));
    Lbr_server.Shutdown.on_drain shutdown (fun () ->
        Printf.printf "lbr-coordinate: %s received, draining delegated jobs...\n%!"
          (match Lbr_server.Shutdown.signal_name shutdown with
          | Some s -> "SIG" ^ s
          | None -> "stop request");
        Lbr_server.Server.stop server;
        Option.iter Lbr_obs.Exporter.stop exporter;
        write_trace trace;
        ignore (Lbr_obs.Flight.dump ~reason:"drain" : string option);
        print_endline "lbr-coordinate: drained, bye");
    while not (Lbr_server.Shutdown.requested shutdown) do
      Thread.delay 0.1
    done;
    Lbr_server.Shutdown.run_drain shutdown
  in
  Cmd.v
    (Cmd.info "coordinate"
       ~doc:
         "Run the cluster coordinator: front N `lbr-reduce serve' worker daemons behind one \
          service address, sharding submitted jobs with work stealing, sharing a \
          content-addressed verdict cache, and failing jobs over (seeded with their paid \
          verdicts) when a worker dies.")
    Term.(
      const run $ listen_arg $ workers_arg $ lanes_arg $ queue_depth_arg $ cache_arg
      $ journal_arg $ poll_interval_arg $ trace_arg $ prometheus_arg)

let submit_cmd =
  let pool_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pool" ] ~docv:"FILE"
          ~doc:"LBRC pool file to submit (e.g. from `lbr-reduce export --pool').  Without it, a \
                benchmark is generated from --seed/--classes.")
  in
  let priority_arg =
    Arg.(
      value
      & opt (enum [ ("normal", Lbr_server.Wire.Normal); ("high", Lbr_server.Wire.High) ])
          Lbr_server.Wire.Normal
      & info [ "priority" ] ~docv:"PRIORITY" ~doc:"Admission priority: normal or high.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Oracle retries for transient tool failures on the server.")
  in
  let run socket pool_file seed classes strategy tool priority retries output output_pool
      frontend input require =
    let frontend_id =
      match resolve_frontend ~frontend ~input with
      | Ok id -> id
      | Error m ->
          prerr_endline ("lbr-reduce submit: " ^ m);
          exit 2
    in
    (match (frontend_id, input, pool_file) with
    | "jvm", Some _, _ ->
        prerr_endline
          "lbr-reduce submit: jvm submissions take --pool (an LBRC file) or \
           --seed/--classes, not a positional INPUT";
        exit 2
    | "jvm", None, _ -> ()
    | id, None, _ ->
        Printf.eprintf "lbr-reduce submit: frontend %s needs an INPUT file to submit\n" id;
        exit 2
    | id, Some _, Some _ ->
        Printf.eprintf "lbr-reduce submit: --pool applies to the jvm frontend; pass the \
                        %s workload as INPUT only\n" id;
        exit 2
    | _, Some _, None -> ());
    (match (frontend_id, strategy) with
    | "jvm", _ | _, Lbr_harness.Experiment.Gbr -> ()
    | id, _ ->
        Printf.eprintf "lbr-reduce submit: frontend %s only supports --strategy gbr\n" id;
        exit 2);
    (match (frontend_id, tool, require) with
    | "jvm", _, "" -> ()
    | "jvm", _, _ ->
        prerr_endline "lbr-reduce submit: --require applies to non-jvm frontends; use --tool";
        exit 2
    | _, Some _, _ ->
        prerr_endline "lbr-reduce submit: --tool applies to the jvm frontend; use --require";
        exit 2
    | _, None, _ -> ());
    let pool_bytes =
      match frontend_id with
      | "jvm" -> (
          match pool_file with
          | Some file -> (
              match read_text_file file with
              | Ok data -> data
              | Error m ->
                  prerr_endline ("lbr-reduce submit: " ^ m);
                  exit 1)
          | None ->
              Lbr_jvm.Serialize.to_bytes
                (Lbr_workload.Generator.generate ~seed
                   (Lbr_workload.Generator.njr_profile ~classes)))
      | _ -> (
          match read_text_file (Option.get input) with
          | Ok data -> data
          | Error m ->
              prerr_endline ("lbr-reduce submit: " ^ m);
              exit 1)
    in
    let spec =
      {
        Lbr_server.Wire.tool =
          (if frontend_id = "jvm" then Option.value ~default:"" tool else require);
        strategy;
        priority;
        crash_policy = Lbr_runtime.Oracle.Crash_raises;
        retries;
        pool_bytes;
        frontend = frontend_id;
        trace_ctx = None;
      }
    in
    match Lbr_server.Client.connect (Lbr_server.Addr.to_string socket) with
    | Error m ->
        prerr_endline ("lbr-reduce submit: " ^ m);
        exit 1
    | Ok client -> (
        let on_progress (p : Lbr_server.Client.progress) =
          Printf.printf "progress: %d classes, %d bytes at %.0fs simulated\n%!" p.classes
            p.bytes p.sim_time
        in
        match Lbr_server.Client.submit client ~on_progress spec with
        | Error m ->
            Lbr_server.Client.close client;
            prerr_endline ("lbr-reduce submit: " ^ m);
            exit 1
        | Ok (job_id, stats, reduced_bytes) ->
            Lbr_server.Client.close client;
            Printf.printf
              "%s: %d -> %d %s, %d -> %d bytes, %d predicate runs (%d replayed), %.0fs \
               simulated%s\n"
              job_id stats.classes0 stats.classes1
              (if frontend_id = "jvm" then "classes" else "items")
              stats.bytes0 stats.bytes1
              stats.predicate_runs stats.replayed_runs stats.sim_time
              (if stats.ok then "" else " [NOT REPRODUCED]");
            (match output_pool with
            | None -> ()
            | Some file ->
                let oc = open_out_bin file in
                output_string oc reduced_bytes;
                close_out oc;
                Printf.printf "reduced %s written to %s\n"
                  (if frontend_id = "jvm" then "pool" else frontend_id ^ " workload")
                  file);
            (match output with
            | None -> ()
            | Some file when frontend_id <> "jvm" ->
                (* non-jvm results are already the frontend's own text *)
                let oc = open_out_bin file in
                output_string oc reduced_bytes;
                close_out oc;
                Printf.printf "reduced %s workload written to %s\n" frontend_id file
            | Some file -> (
                match Lbr_jvm.Serialize.of_bytes reduced_bytes with
                | Error m -> prerr_endline ("undecodable reduced pool: " ^ m)
                | Ok reduced ->
                    let oc = open_out file in
                    output_string oc (Lbr_decompiler.Source.decompile reduced);
                    close_out oc;
                    Printf.printf "reduced decompiled source written to %s\n" file)))
  in
  let output_pool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output-pool" ] ~docv:"FILE" ~doc:"Write the reduced pool (LBRC binary) to FILE.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a workload to a running `lbr-reduce serve' daemon and wait for the result: \
          a class pool (jvm, the default) or a DIMACS CNF / Featherweight Java file passed \
          as INPUT (--frontend dimacs|fj).")
    Term.(
      const run $ socket_arg $ pool_file_arg $ seed_arg $ classes_arg $ strategy_arg $ tool_arg
      $ priority_arg $ retries_arg $ output_arg $ output_pool_arg $ frontend_arg $ input_arg
      $ require_arg)

(* ------------------------------------------------------------------ *)
(* Live (and post-mortem) daemon introspection                          *)

let top_cmd =
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Post-mortem mode: instead of querying a live daemon, reconstruct per-job \
                predicate-latency statistics from a (possibly dead) daemon's journal \
                directory.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Also print the daemon's full Prometheus metrics snapshot.")
  in
  let prom_samples text =
    let sample line =
      if line = "" || line.[0] = '#' then None
      else
        match String.index_opt line ' ' with
        | None -> None
        | Some i ->
            let name = String.sub line 0 i in
            let v =
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            Option.map (fun v -> (name, v)) v
    in
    List.filter_map sample (String.split_on_char '\n' text)
  in
  (* Cluster health lives in the Prometheus text (per-worker queue-depth
     gauges, cache hit/miss counters); surface it without requiring
     --metrics when the daemon is a coordinator. *)
  let cluster_section text =
    let samples = prom_samples text in
    let value name = List.assoc_opt name samples in
    let depth_of (name, v) =
      let prefix = "lbr_cluster_w" and suffix = "_queue_depth" in
      if
        String.starts_with ~prefix name
        && String.ends_with ~suffix name
        && String.length name > String.length prefix + String.length suffix
      then
        Some
          ( String.sub name (String.length prefix)
              (String.length name - String.length prefix - String.length suffix),
            v )
      else None
    in
    let depths = List.filter_map depth_of samples in
    (match (value "lbr_cluster_workers_alive", depths) with
    | None, [] -> ()
    | alive, depths ->
        Printf.printf "cluster: %s worker(s) alive; queue depth %s\n"
          (match alive with Some a -> string_of_int (int_of_float a) | None -> "?")
          (match depths with
          | [] -> "-"
          | _ ->
              String.concat " "
                (List.map (fun (i, v) -> Printf.sprintf "w%s=%d" i (int_of_float v)) depths)));
    match (value "lbr_cluster_cache_hits_total", value "lbr_cluster_cache_misses_total") with
    | Some hits, Some misses ->
        let total = hits +. misses in
        Printf.printf "cluster cache: %d hits, %d misses (%.1f%% hit rate)\n"
          (int_of_float hits) (int_of_float misses)
          (if total = 0. then 0. else 100. *. hits /. total)
    | _ -> ()
  in
  (* Speculation counters: local on a worker, under the federated
     [worker="cluster"] label on a coordinator — prefer the cluster view
     when both exist. *)
  let spec_section text =
    let samples = prom_samples text in
    let value name =
      match List.assoc_opt (name ^ "{worker=\"cluster\"}") samples with
      | Some _ as v -> v
      | None -> List.assoc_opt name samples
    in
    match value "lbr_spec_launched_total" with
    | None -> ()
    | Some launched ->
        let count n = int_of_float (Option.value ~default:0. (value n)) in
        let committed = count "lbr_spec_committed_total" in
        let cancelled = count "lbr_spec_cancelled_total" in
        Printf.printf
          "speculation: %d launched, %d committed, %d cancelled (%.1f%% wasted)\n"
          (int_of_float launched) committed cancelled
          (if launched = 0. then 0.
           else 100. *. float_of_int cancelled /. launched)
  in
  let online socket metrics =
    match Lbr_server.Client.connect (Lbr_server.Addr.to_string socket) with
    | Error m ->
        prerr_endline ("lbr-reduce top: " ^ m);
        exit 1
    | Ok client -> (
        let result = Lbr_server.Client.stats client in
        Lbr_server.Client.close client;
        match result with
        | Error m ->
            prerr_endline ("lbr-reduce top: " ^ m);
            exit 1
        | Ok (s : Lbr_server.Wire.daemon_stats) ->
            Printf.printf "daemon: up %.0fs   queued: %d   running: %d\n" s.uptime
              s.queued_jobs s.running_jobs;
            let hit_rate =
              if s.oracle_queries = 0 then 0.
              else 100. *. float_of_int s.oracle_memo_hits /. float_of_int s.oracle_queries
            in
            Printf.printf "oracle: %d queries, %d memo hits (%.1f%% hit rate)\n"
              s.oracle_queries s.oracle_memo_hits hit_rate;
            cluster_section s.metrics_text;
            spec_section s.metrics_text;
            (match s.job_stats with
            | [] -> print_endline "no jobs in flight"
            | jobs ->
                List.iter
                  (fun (j : Lbr_server.Wire.job_stat) ->
                    let state = if j.js_running then "running" else "queued" in
                    match j.js_best with
                    | None -> Printf.printf "  %-16s %-8s best: -\n" j.js_id state
                    | Some (sim_time, classes, bytes) ->
                        Printf.printf "  %-16s %-8s best: %d classes, %d bytes at %.0fs\n"
                          j.js_id state classes bytes sim_time)
                  jobs);
            if metrics then (
              print_newline ();
              print_string s.metrics_text))
  in
  (* Rebuild what the live Stats reply derives from in-memory metrics out
     of the journal's v2 verdict lines instead. *)
  let offline dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      prerr_endline ("lbr-reduce top: " ^ dir ^ ": not a journal directory");
      exit 1
    end;
    let journal = Lbr_server.Journal.open_dir dir in
    Fun.protect
      ~finally:(fun () -> Lbr_server.Journal.close journal)
      (fun () ->
        match Lbr_server.Journal.jobs journal with
        | [] -> Printf.printf "journal %s: no jobs recorded\n" dir
        | jobs ->
            Printf.printf "journal %s: %d job%s\n" dir (List.length jobs)
              (if List.length jobs = 1 then "" else "s");
            let total = ref (Lbr_obs.Metrics.Histogram.create ()) in
            List.iter
              (fun id ->
                let verdicts = Lbr_server.Journal.verdicts journal ~id in
                let hist = Lbr_obs.Metrics.Histogram.create () in
                let fails = ref 0 and retries = ref 0 and timed = ref 0 in
                List.iter
                  (fun (v : Lbr_server.Journal.verdict) ->
                    if not v.v_ok then incr fails;
                    retries := !retries + Option.value ~default:0 v.v_retries;
                    match v.v_latency with
                    | Some l ->
                        incr timed;
                        Lbr_obs.Metrics.Histogram.observe hist l
                    | None -> ())
                  verdicts;
                Printf.printf "  %-16s %d verdicts (%d fail, %d oracle retries)" id
                  (List.length verdicts) !fails !retries;
                if !timed = 0 then
                  (* v1 journal lines carry no latency *)
                  print_endline "  latency: n/a"
                else
                  Printf.printf "  latency p50/p90/p99: %.3fs / %.3fs / %.3fs\n"
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.5)
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.9)
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.99);
                total := Lbr_obs.Metrics.Histogram.merge !total hist)
              jobs;
            if Lbr_obs.Metrics.Histogram.count !total > 0 then
              Printf.printf "overall latency: %d timed verdicts, p50 %.3fs, p99 %.3fs\n"
                (Lbr_obs.Metrics.Histogram.count !total)
                (Lbr_obs.Metrics.Histogram.quantile !total 0.5)
                (Lbr_obs.Metrics.Histogram.quantile !total 0.99))
  in
  let run socket journal metrics =
    match journal with None -> online socket metrics | Some dir -> offline dir
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Introspect a running `lbr-reduce serve' daemon: queue depth, running jobs with \
          best-so-far sizes, oracle memo hit rate and (with --metrics) the Prometheus \
          metric snapshot.  With --journal DIR, reconstruct predicate-latency statistics \
          from a dead daemon's journal instead.")
    Term.(const run $ socket_arg $ journal_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* Distributed trace capture and merging                               *)

let trace_dump_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some writable_file) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write the node's span rings as a binary .tdump capture to FILE.")
  in
  let run socket out =
    match Lbr_cluster.Trace_merge.fetch (Lbr_server.Addr.to_string socket) with
    | Error m ->
        prerr_endline ("lbr-reduce trace-dump: " ^ m);
        exit 1
    | Ok d ->
        Lbr_cluster.Trace_merge.write_file out d;
        Printf.printf "trace-dump: %d events from %s written to %s\n"
          (List.length d.Lbr_cluster.Trace_merge.nd_events)
          d.Lbr_cluster.Trace_merge.nd_node out
  in
  Cmd.v
    (Cmd.info "trace-dump"
       ~doc:
         "Capture a live daemon's span rings into a binary .tdump file — the e2e harness \
          dumps every worker before killing one, so the victim's spans survive into the \
          merged trace.  Requires a daemon with tracing enabled (--trace) and protocol v5.")
    Term.(const run $ socket_arg $ out_arg)

let trace_merge_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some writable_file) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the merged Chrome trace JSON to FILE.")
  in
  let sources_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"SOURCE"
          ~doc:
            "A trace source: a live daemon address (Unix socket path or host:port), a .tdump \
             file from trace-dump, or either prefixed with LABEL= to name its lane.  Sources \
             sharing a lane name are deduplicated into one lane.")
  in
  let load source =
    let label, src =
      (* A LABEL= prefix names the lane; addresses never contain '='. *)
      match String.index_opt source '=' with
      | Some i when i > 0 ->
          ( Some (String.sub source 0 i),
            String.sub source (i + 1) (String.length source - i - 1) )
      | _ -> (None, source)
    in
    let is_regular_file p =
      (* a Unix-socket daemon address also "exists" — only regular files
         are .tdump captures, everything else is dialed *)
      match (Unix.stat p).Unix.st_kind with
      | Unix.S_REG -> true
      | _ | (exception Unix.Unix_error _) -> false
    in
    let loaded =
      if is_regular_file src then Lbr_cluster.Trace_merge.read_file src
      else Lbr_cluster.Trace_merge.fetch src
    in
    Result.map
      (fun d ->
        match label with
        | None -> d
        | Some l -> { d with Lbr_cluster.Trace_merge.nd_node = l })
      loaded
  in
  let run out sources =
    let dumps, errors =
      List.fold_left
        (fun (ds, es) s ->
          match load s with Ok d -> (d :: ds, es) | Error m -> (ds, (s ^ ": " ^ m) :: es))
        ([], []) sources
    in
    List.iter (fun m -> prerr_endline ("lbr-reduce trace-merge: " ^ m)) (List.rev errors);
    match List.rev dumps with
    | [] ->
        prerr_endline "lbr-reduce trace-merge: no sources could be loaded";
        exit 1
    | dumps ->
        let json = Lbr_cluster.Trace_merge.merge dumps in
        let oc = open_out out in
        Fun.protect
          (fun () -> output_string oc json)
          ~finally:(fun () -> close_out oc);
        Printf.printf "trace-merge: %d lane%s (%s), %d events -> %s\n"
          (List.length dumps)
          (if List.length dumps = 1 then "" else "s")
          (String.concat ", "
             (List.map (fun d -> d.Lbr_cluster.Trace_merge.nd_node) dumps))
          (List.fold_left
             (fun n d -> n + List.length d.Lbr_cluster.Trace_merge.nd_events)
             0 dumps)
          out;
        if errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Merge trace dumps from several cluster nodes — live daemons and/or .tdump captures \
          — into one skew-corrected Chrome trace with a process lane per node and flow \
          arrows from each coordinator job span to its worker-side spans.")
    Term.(const run $ out_arg $ sources_arg)

(* ------------------------------------------------------------------ *)
(* Post-mortem flight-recorder reports                                 *)

let report_cmd =
  let journal_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"The dead daemon's journal directory: flight-recorder dumps plus per-job \
                verdict logs.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  (* The flight dump is machine-written JSON with one record per line in
     its spans/transitions/metrics arrays — extract fields line-wise
     rather than pulling in a JSON parser for one tool. *)
  let field line key =
    let marker = "\"" ^ key ^ "\":" in
    let rec find from =
      match String.index_from_opt line from '"' with
      | None -> None
      | Some i ->
          if
            i + String.length marker <= String.length line
            && String.sub line i (String.length marker) = marker
          then Some (i + String.length marker)
          else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        let depth = ref 0 in
        let in_str = ref false in
        (try
           while !stop < String.length line do
             (match line.[!stop] with
             | '"' when !stop = start || line.[!stop - 1] <> '\\' ->
                 in_str := not !in_str
             | ('{' | '[') when not !in_str -> incr depth
             | ('}' | ']') when not !in_str ->
                 if !depth = 0 then raise Exit else decr depth
             | ',' when (not !in_str) && !depth = 0 -> raise Exit
             | _ -> ());
             incr stop
           done
         with Exit -> ());
        Some (String.sub line start (!stop - start))
  in
  let strip_quotes s =
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
      String.sub s 1 (String.length s - 2)
    else s
  in
  let str_field line key = Option.map strip_quotes (field line key) in
  let float_field line key = Option.bind (field line key) float_of_string_opt in
  (* A spans/transitions/metrics line, shorn of indentation and its
     trailing record separator — a reusable JSON object literal. *)
  let clean_record l =
    let s = String.trim l in
    if String.length s > 0 && s.[String.length s - 1] = ',' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  let run dir json =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      prerr_endline ("lbr-reduce report: " ^ dir ^ ": not a journal directory");
      exit 1
    end;
    let flights =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.starts_with ~prefix:"flight-" f && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    (* Verdict latency quantiles and cache hit rates, from the journal's
       v2 verdict lines — the ground truth that survives any crash. *)
    let journal = Lbr_server.Journal.open_dir dir in
    let jobs, latency, verdict_count, fail_count =
      Fun.protect
        ~finally:(fun () -> Lbr_server.Journal.close journal)
        (fun () ->
          let jobs = Lbr_server.Journal.jobs journal in
          let hist = Lbr_obs.Metrics.Histogram.create () in
          let count = ref 0 and fails = ref 0 in
          List.iter
            (fun id ->
              List.iter
                (fun (v : Lbr_server.Journal.verdict) ->
                  incr count;
                  if not v.v_ok then incr fails;
                  Option.iter (Lbr_obs.Metrics.Histogram.observe hist) v.v_latency)
                (Lbr_server.Journal.verdicts journal ~id))
            jobs;
          (jobs, hist, !count, !fails))
    in
    (* Each flight dump: header + span/transition lines. *)
    let parse_dump file =
      let path = Filename.concat dir file in
      let ic = open_in path in
      let lines =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      in
      let node = ref "?" and reason = ref "?" and time = ref 0. in
      let spans = ref [] and transitions = ref [] and metric_lines = ref [] in
      let section = ref `Header in
      List.iter
        (fun line ->
          (match str_field line "node" with
          | Some n when !section = `Header -> node := n
          | _ -> ());
          (match str_field line "reason" with
          | Some r when !section = `Header -> reason := r
          | _ -> ());
          (match float_field line "time" with
          | Some t when !section = `Header -> time := t
          | _ -> ());
          if String.length line >= 9 && String.sub line 0 9 = "\"spans\":[" then
            section := `Spans
          else if
            String.length line >= 15 && String.sub line 0 15 = "\"transitions\":["
          then section := `Transitions
          else if String.length line >= 11 && String.sub line 0 11 = "\"metrics\":["
          then section := `Metrics
          else
            match !section with
            | `Spans ->
                if String.trim line <> "]," && String.trim line <> "" then
                  spans := line :: !spans
            | `Transitions ->
                if String.trim line <> "]," && String.trim line <> "" then
                  transitions := line :: !transitions
            | `Metrics ->
                if String.trim line <> "]}" && String.trim line <> "" then
                  metric_lines := line :: !metric_lines
            | `Header -> ())
        lines;
      (file, !node, !reason, !time, List.rev !spans, List.rev !transitions,
       List.rev !metric_lines)
    in
    let dumps = List.map parse_dump flights in
    let q p =
      let v = Lbr_obs.Metrics.Histogram.quantile latency p in
      if Float.is_finite v then v else 0.
    in
    if json then begin
      Printf.printf "{\"journal\":\"%s\",\"jobs\":%d,\"verdicts\":%d,\"failedVerdicts\":%d,"
        (Lbr_obs.Trace.json_escape dir) (List.length jobs) verdict_count fail_count;
      Printf.printf "\"latency\":{\"count\":%d,\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f},"
        (Lbr_obs.Metrics.Histogram.count latency)
        (q 0.5) (q 0.9) (q 0.99);
      Printf.printf "\"flights\":[";
      List.iteri
        (fun i (file, node, reason, time, spans, transitions, metric_lines) ->
          if i > 0 then print_char ',';
          Printf.printf
            "{\"file\":\"%s\",\"node\":\"%s\",\"reason\":\"%s\",\"time\":%.6f,\"spans\":[%s],\"transitions\":[%s],\"metrics\":[%s]}"
            (Lbr_obs.Trace.json_escape file)
            (Lbr_obs.Trace.json_escape node)
            (Lbr_obs.Trace.json_escape reason)
            time
            (String.concat "," (List.map clean_record spans))
            (String.concat "," (List.map clean_record transitions))
            (String.concat "," (List.map clean_record metric_lines)))
        dumps;
      print_string "]}\n"
    end
    else begin
      Printf.printf "journal %s: %d job%s, %d verdicts (%d failed)\n" dir
        (List.length jobs)
        (if List.length jobs = 1 then "" else "s")
        verdict_count fail_count;
      if Lbr_obs.Metrics.Histogram.count latency > 0 then
        Printf.printf "verdict latency p50/p90/p99: %.3fs / %.3fs / %.3fs\n" (q 0.5)
          (q 0.9) (q 0.99);
      if dumps = [] then print_endline "no flight-recorder dumps found"
      else
        List.iter
          (fun (file, node, reason, time, spans, transitions, metric_lines) ->
            Printf.printf "\nflight %s: node %s, reason %s, at %.3f\n" file node reason
              time;
            (* Cache and memo effectiveness straight from the recorded
               metric rows. *)
            let counter name =
              List.find_map
                (fun l ->
                  match (str_field l "name", field l "value") with
                  | Some n, Some v when n = name -> float_of_string_opt v
                  | _ -> None)
                metric_lines
            in
            (match (counter "lbr_oracle_queries_total", counter "lbr_oracle_memo_hits_total") with
            | Some q_, Some h when q_ > 0. ->
                Printf.printf "  oracle: %.0f queries, %.0f memo hits (%.1f%% hit rate)\n"
                  q_ h (100. *. h /. q_)
            | _ -> ());
            (match (counter "lbr_cluster_cache_hits_total", counter "lbr_cluster_cache_misses_total") with
            | Some h, Some m when h +. m > 0. ->
                Printf.printf "  cluster cache: %.0f hits, %.0f misses (%.1f%% hit rate)\n"
                  h m (100. *. h /. (h +. m))
            | _ -> ());
            (* Job state histories from the transition ring. *)
            let by_job = Hashtbl.create 8 in
            let job_order = ref [] in
            List.iter
              (fun l ->
                match (str_field l "job", str_field l "state", float_field l "ts") with
                | Some job, Some state, Some ts ->
                    if not (Hashtbl.mem by_job job) then job_order := job :: !job_order;
                    Hashtbl.replace by_job job
                      ((ts, state) :: (try Hashtbl.find by_job job with Not_found -> []))
                | _ -> ())
              transitions;
            List.iter
              (fun job ->
                let hist = List.rev (Hashtbl.find by_job job) in
                Printf.printf "  %-16s %s\n" job
                  (String.concat " -> "
                     (List.map (fun (_, s) -> s) hist)))
              (List.rev !job_order);
            (* The span tree: roots are spans with no ctx.parent (or whose
               parent is not a recorded span id here); children indent
               under the job they name. *)
            let span_info l =
              match (str_field l "name", float_field l "ts") with
              | Some name, Some ts ->
                  let dur = Option.value ~default:0. (float_field l "dur") in
                  let job = str_field l "job" in
                  let parent = str_field l "ctx.parent" in
                  Some (name, ts, dur, job, parent)
              | _ -> None
            in
            let spans = List.filter_map span_info spans in
            let parented, roots =
              List.partition (fun (_, _, _, _, parent) -> parent <> None) spans
            in
            let print_span indent (name, ts, dur, job, _) =
              Printf.printf "  %s%-28s %12.3fus  %10.0fus%s\n" indent name ts dur
                (match job with Some j -> "  " ^ j | None -> "")
            in
            List.iter
              (fun ((_, _, _, job, _) as root) ->
                print_span "" root;
                List.iter
                  (fun ((_, _, _, cjob, _) as child) ->
                    if cjob = job || job = None then print_span "  " child)
                  parented)
              (if roots = [] then parented else roots))
          dumps
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a post-mortem report from a daemon's journal directory: flight-recorder \
          dumps (last spans and job state transitions before death), verdict latency \
          quantiles from the journal, and cache/memo hit rates.")
    Term.(const run $ journal_arg $ json_arg)

(* ------------------------------------------------------------------ *)

let stats_cmd =
  let programs_arg =
    Arg.(value & opt int 20 & info [ "programs" ] ~docv:"N" ~doc:"Corpus size.")
  in
  let mean_arg =
    Arg.(value & opt int 60 & info [ "mean-classes" ] ~docv:"N" ~doc:"Geometric-mean classes.")
  in
  let run seed programs mean_classes =
    let benchmarks = Lbr_harness.Corpus.build ~seed ~programs ~mean_classes in
    let instances = Lbr_harness.Corpus.instances benchmarks in
    let s = Lbr_harness.Corpus.stats benchmarks instances in
    Printf.printf "programs: %d   instances: %d\n" s.programs s.instance_count;
    Printf.printf "geo classes: %.0f   geo bytes: %.0f   geo errors: %.1f\n" s.geo_classes
      s.geo_bytes s.geo_errors;
    Printf.printf "geo items: %.0f   geo clauses: %.0f   graph fraction: %.1f%%\n" s.geo_items
      s.geo_clauses
      (100. *. s.mean_graph_fraction)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics (the §5 'Statistics' measurements).")
    Term.(const run $ seed_arg $ programs_arg $ mean_arg)

(* ------------------------------------------------------------------ *)

let export_cmd =
  let cnf_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "cnf" ] ~docv:"FILE" ~doc:"Write the dependency model as DIMACS CNF to FILE.")
  in
  let pool_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "pool" ] ~docv:"FILE" ~doc:"Write the class pool in binary form to FILE.")
  in
  let source_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "source" ] ~docv:"FILE" ~doc:"Write the decompiled pseudo-Java to FILE.")
  in
  let run seed classes cnf_file pool_file source_file =
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    (match pool_file with
    | Some file ->
        Lbr_jvm.Serialize.write_file file pool;
        Printf.printf "pool (%d bytes serialized) -> %s\n"
          (Lbr_jvm.Serialize.serialized_size pool) file
    | None -> ());
    (match cnf_file with
    | Some file ->
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool pool in
        let cnf = Lbr_jvm.Constraints.generate jv pool in
        Dimacs.write_file file cnf;
        Printf.printf "model (%d vars, %d clauses) -> %s\n" (Var.Pool.size vpool)
          (Cnf.num_clauses cnf) file
    | None -> ());
    match source_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Lbr_decompiler.Source.decompile pool);
        close_out oc;
        Printf.printf "decompiled source (%d lines) -> %s\n"
          (Lbr_decompiler.Source.line_count pool) file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Generate a benchmark and export its pool (binary), dependency model (DIMACS, for \
          external SAT/#SAT tools) and decompiled source.")
    Term.(const run $ seed_arg $ classes_arg $ cnf_arg $ pool_arg $ source_arg)

let tools_cmd =
  let run () =
    List.iter
      (fun (t : Lbr_decompiler.Tool.t) ->
        Printf.printf "%s\n" t.name;
        List.iter
          (fun (p : Lbr_decompiler.Pattern.t) -> Printf.printf "  pattern: %s\n" p.name)
          t.patterns)
      Lbr_decompiler.Tool.all
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"List the simulated decompilers and their bug patterns.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lbr-reduce" ~version:"1.0.0"
      ~doc:"Logical bytecode reduction (PLDI 2021) — reference OCaml implementation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            example_cmd;
            reduce_cmd;
            serve_cmd;
            coordinate_cmd;
            submit_cmd;
            top_cmd;
            trace_dump_cmd;
            trace_merge_cmd;
            report_cmd;
            stats_cmd;
            export_cmd;
            tools_cmd;
          ]))
