(* lbr-reduce: command-line front end for logical bytecode reduction.

   Subcommands:
     example   — run the paper's Figure 1 example end to end
     reduce    — generate a benchmark, pick a buggy decompiler, reduce
     serve     — reduction-as-a-service daemon on a Unix socket
     submit    — send a pool to a running daemon and collect the result
     stats     — corpus statistics (the §5 'Statistics' table)
     export    — dump a benchmark's pool (binary), model (DIMACS) and source
     tools     — list the simulated decompilers and their bug patterns *)

open Cmdliner
open Lbr_logic

(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () =
    let model = Lbr_fji.Example.model () in
    let universe = Lbr_fji.Vars.all model.vars in
    print_endline "input (Figure 1a):";
    print_endline (Lbr_fji.Pretty.program_to_string model.program);
    let predicate = Lbr.Predicate.make (Lbr_fji.Example.buggy model.vars) in
    let problem =
      Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
    in
    match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool) with
    | Error _ -> prerr_endline "reduction failed"; exit 1
    | Ok (solution, stats) ->
        Printf.printf "\nreduced in %d tool runs; kept %d of %d items\n\n"
          stats.predicate_runs
          (Assignment.cardinal solution)
          (Assignment.cardinal universe);
        print_endline "output (Figure 1b):";
        print_endline
          (Lbr_fji.Pretty.program_to_string
             (Lbr_fji.Reduce.reduce model.vars model.program solution))
  in
  Cmd.v (Cmd.info "example" ~doc:"Run the paper's Figure 1 example end to end.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let classes_arg =
  Arg.(value & opt int 60 & info [ "classes" ] ~docv:"N" ~doc:"Classes in the generated program.")

let strategy_arg =
  let strategies =
    [
      ("gbr", Lbr_harness.Experiment.Gbr);
      ("jreduce", Lbr_harness.Experiment.Jreduce);
      ("lossy-first", Lbr_harness.Experiment.Lossy_first);
      ("lossy-last", Lbr_harness.Experiment.Lossy_last);
    ]
  in
  Arg.(
    value
    & opt (enum strategies) Lbr_harness.Experiment.Gbr
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"One of gbr, jreduce, lossy-first, lossy-last.")

let tool_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tool" ] ~docv:"TOOL"
        ~doc:"Decompiler to reduce against (default: first buggy one).")

(* Frontends are validated at argument-parse time: a typo'd --frontend
   should be a cmdliner error listing the known ones, not a failure after
   the workload is generated or read. *)
let frontend_conv =
  let parse s =
    match Lbr_frontend.Registry.find s with
    | Ok _ -> Ok s
    | Error m -> Error (`Msg m)
  in
  Arg.conv ~docv:"FRONTEND" (parse, Format.pp_print_string)

let frontend_arg =
  Arg.(
    value
    & opt (some frontend_conv) None
    & info [ "frontend" ] ~docv:"FRONTEND"
        ~doc:
          "Workload frontend: $(b,jvm) (generated benchmark class pools), $(b,dimacs) \
           (clause-level CNF reduction preserving unsatisfiability) or $(b,fj) \
           (Featherweight Java tree reduction).  Default: inferred from INPUT's \
           extension; jvm when there is no INPUT.")

let input_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"INPUT"
        ~doc:
          "Workload file for a non-jvm frontend (e.g. a .cnf or .fj file).  The jvm \
           frontend generates its workload from --seed/--classes instead.")

let require_arg =
  Arg.(
    value & opt string ""
    & info [ "require" ] ~docv:"SPEC"
        ~doc:
          "Frontend predicate spec.  For fj: a substring the reduced program must \
           still contain (the failure marker); empty preserves typechecking only.  \
           dimacs accepts no spec — the preserved property is unsatisfiability.  \
           jvm uses --tool instead.")

(* Resolve the effective frontend from the explicit flag and the input
   path's extension, rejecting mismatches before anything is read: a
   --frontend that contradicts what the extension says is almost always a
   wrong file, and the reduction would otherwise fail only after parsing
   (or worse, mis-parse). *)
let resolve_frontend ~frontend ~input =
  match (frontend, input) with
  | None, None -> Ok "jvm"
  | Some id, None -> Ok id
  | None, Some path -> (
      match Lbr_frontend.Registry.for_path path with
      | Ok p -> Ok (Lbr_frontend.Frontend.id_of p)
      | Error m -> Error m)
  | Some id, Some path -> (
      match Lbr_frontend.Registry.for_path path with
      | Ok p when Lbr_frontend.Frontend.id_of p <> id ->
          Error
            (Printf.sprintf
               "%s looks like a %s workload (extension %S) but --frontend %s was given; \
                pass a matching file or drop --frontend"
               path
               (Lbr_frontend.Frontend.id_of p)
               (Filename.extension path) id)
      | Ok _ | Error _ ->
          (* an unknown extension defers to the explicit flag *)
          Ok id)

let read_text_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error m -> Error m

(* Output paths are validated at argument-parse time, not at first write:
   a reduction can run for minutes before anything is written, and
   discovering a typo'd directory only then wastes the whole run.  The
   file may not exist yet — its parent directory must exist and be
   writable. *)
let writable_file =
  let parse s =
    if s = "" then Error (`Msg "output path is empty")
    else if Sys.file_exists s && Sys.is_directory s then
      Error (`Msg (s ^ ": is a directory"))
    else
      let dir = Filename.dirname s in
      if not (Sys.file_exists dir) then
        Error (`Msg (Printf.sprintf "%s: parent directory %s does not exist" s dir))
      else if not (Sys.is_directory dir) then
        Error (`Msg (Printf.sprintf "%s: %s is not a directory" s dir))
      else
        match Unix.access dir [ Unix.W_OK; Unix.X_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (`Msg (Printf.sprintf "%s: directory %s: %s" s dir (Unix.error_message e)))
  in
  Arg.conv ~docv:"FILE" (parse, Format.pp_print_string)

(* Same idea for directories the command will create (e.g. a fresh journal
   dir): walk up to the nearest existing ancestor and require it to be a
   writable directory. *)
let writable_dir =
  let parse s =
    if s = "" then Error (`Msg "directory path is empty")
    else
      let rec nearest d =
        if Sys.file_exists d then d
        else
          let parent = Filename.dirname d in
          if parent = d then d else nearest parent
      in
      let anc = nearest s in
      if not (Sys.file_exists anc) || not (Sys.is_directory anc) then
        Error (`Msg (Printf.sprintf "%s: %s is not a directory" s anc))
      else if Sys.file_exists s && not (Sys.is_directory s) then
        Error (`Msg (s ^ ": exists and is not a directory"))
      else
        match Unix.access anc [ Unix.W_OK; Unix.X_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error (`Msg (Printf.sprintf "%s: %s: %s" s anc (Unix.error_message e)))
  in
  Arg.conv ~docv:"DIR" (parse, Format.pp_print_string)

let trace_arg =
  Arg.(
    value
    & opt (some writable_file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event timeline of the run and write it to FILE on exit; \
           load it in chrome://tracing or ui.perfetto.dev.")

(* Flush the recorded timeline — shared by reduce (normal and interrupted
   exits) and serve's drain hook. *)
let write_trace = function
  | None -> ()
  | Some file ->
      Lbr_obs.Trace.stop ();
      Lbr_obs.Trace.write_file file;
      Printf.eprintf "trace (%d events%s) written to %s\n%!"
        (List.length (Lbr_obs.Trace.events ()))
        (match Lbr_obs.Trace.dropped () with
        | 0 -> ""
        | n -> Printf.sprintf ", %d dropped" n)
        file

let output_arg =
  Arg.(
    value
    & opt (some writable_file) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the reduced decompiled source to FILE.")

(* A [--jobs 0] or [--jobs -3] should die in argument parsing with a
   cmdliner-formatted error, not reach the domain pool. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a positive integer (expected >= 1)" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt pos_int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains (a positive integer).  With N > 1, reduce against $(i,every) buggy \
           decompiler, fanning the instances across N domains; the default 1 keeps today's \
           sequential behaviour (first buggy decompiler only).  With $(b,--speculate), the N \
           domains instead pipeline a single reduction from within.")

let speculate_arg =
  Arg.(
    value & flag
    & info [ "speculate" ]
        ~doc:
          "Speculative predicate pipelining: while each predicate verdict is pending, run \
           the probes both branches would need next on the $(b,--jobs) worker domains, \
           cancelling the losing branch when the verdict lands.  The reduced output is \
           byte-identical to the sequential run; only wall clock changes.  Applies to the \
           first (sequentially-selected) instance; combine with $(b,--jobs) N >= 2.")

(* One-shot reduction of a non-jvm workload file: parse, reduce with GBR,
   print (or write) the reduced artifact in the frontend's own format.
   Shares the jvm path's graceful-shutdown behaviour: ^C stops at the next
   predicate-run boundary and exits 128+signal. *)
let reduce_via_frontend ~frontend_id ~path ~strategy ~require ~output ~trace ~jobs
    ~speculate =
  (match strategy with
  | Lbr_harness.Experiment.Gbr -> ()
  | _ ->
      Printf.eprintf "lbr-reduce: frontend %s only supports --strategy gbr\n" frontend_id;
      exit 2);
  let packed =
    match Lbr_frontend.Registry.find frontend_id with
    | Ok p -> p
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 2
  in
  let text =
    match read_text_file path with
    | Ok text -> text
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 1
  in
  if trace <> None then Lbr_obs.Trace.start ();
  let shutdown = Lbr_server.Shutdown.install () in
  let hooks =
    {
      Lbr_frontend.Run.default_hooks with
      should_stop = Some (fun () -> Lbr_server.Shutdown.requested shutdown);
    }
  in
  let reduce () =
    if speculate then
      Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
          Lbr_frontend.Run.reduce_text ~hooks ~pool ~speculate packed ~text ~spec:require)
    else Lbr_frontend.Run.reduce_text ~hooks packed ~text ~spec:require
  in
  match reduce () with
  | exception Lbr_frontend.Run.Cancelled ->
      Lbr_server.Shutdown.on_drain shutdown (fun () ->
          Printf.eprintf "interrupted by SIG%s\n"
            (Option.value ~default:"?" (Lbr_server.Shutdown.signal_name shutdown));
          write_trace trace);
      Lbr_server.Shutdown.run_drain shutdown;
      exit (match Lbr_server.Shutdown.signal_name shutdown with Some "TERM" -> 143 | _ -> 130)
  | Error m ->
      prerr_endline ("lbr-reduce: " ^ m);
      exit 1
  | Ok (o, printed) ->
      Printf.printf
        "gbr [%s %s]: %d -> %d items (%.1f%%), %d -> %d bytes (%.1f%%), %d predicate runs, \
         %.0fs simulated%s\n"
        frontend_id (Filename.basename path) o.items0 o.items1
        (100. *. float_of_int o.items1 /. float_of_int (max 1 o.items0))
        o.bytes0 o.bytes1
        (100. *. float_of_int o.bytes1 /. float_of_int (max 1 o.bytes0))
        o.predicate_runs o.sim_time
        (if o.ok then "" else " [NOT REPRODUCED]");
      (match output with
      | Some file ->
          let oc = open_out_bin file in
          output_string oc printed;
          close_out oc;
          Printf.printf "reduced %s workload written to %s\n" frontend_id file
      | None ->
          print_newline ();
          print_string printed);
      write_trace trace

let reduce_cmd =
  let run seed classes strategy tool jobs output output_pool trace frontend input require
      speculate =
    match resolve_frontend ~frontend ~input with
    | Error m ->
        prerr_endline ("lbr-reduce: " ^ m);
        exit 2
    | Ok "jvm" when input <> None ->
        prerr_endline
          "lbr-reduce: the jvm frontend reduces generated benchmarks (--seed/--classes); \
           submit an exported pool to a daemon with `lbr-reduce submit --pool' instead of \
           passing INPUT";
        exit 2
    | Ok id when id <> "jvm" ->
        let path =
          match input with
          | Some path -> path
          | None ->
              Printf.eprintf
                "lbr-reduce: frontend %s needs an INPUT file to reduce\n" id;
              exit 2
        in
        reduce_via_frontend ~frontend_id:id ~path ~strategy ~require ~output ~trace ~jobs
          ~speculate
    | Ok _jvm ->
    if require <> "" then begin
      prerr_endline "lbr-reduce: --require applies to non-jvm frontends; use --tool";
      exit 2
    end;
    if trace <> None then Lbr_obs.Trace.start ();
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    let tools =
      match tool with
      | None -> Lbr_decompiler.Tool.all
      | Some name -> (
          match
            List.find_opt
              (fun (t : Lbr_decompiler.Tool.t) -> t.name = name)
              Lbr_decompiler.Tool.all
          with
          | Some t -> [ t ]
          | None ->
              prerr_endline ("unknown tool " ^ name ^ "; see `lbr-reduce tools'");
              exit 2)
    in
    let buggy =
      List.filter_map
        (fun t ->
          match Lbr_decompiler.Tool.errors t pool with
          | [] -> None
          | errors -> Some (t, errors))
        tools
    in
    match buggy with
    | [] ->
        print_endline "no decompiler is buggy on this program; try another --seed";
        exit 0
    | (tool, baseline) :: _ ->
        (* --speculate spends the worker domains inside one reduction, so
           instance selection stays the sequential one (first buggy tool)
           and the output is comparable byte-for-byte. *)
        let selected =
          if jobs > 1 && not speculate then buggy else [ (tool, baseline) ]
        in
        let instances =
          List.map
            (fun ((t : Lbr_decompiler.Tool.t), errors) ->
              {
                Lbr_harness.Corpus.instance_id = Printf.sprintf "seed%d/%s" seed t.name;
                benchmark = { bench_id = Printf.sprintf "seed%d" seed; seed; pool };
                tool = t;
                baseline_errors = errors;
              })
            selected
        in
        List.iter
          (fun (instance : Lbr_harness.Corpus.instance) ->
            Printf.printf "program: %d classes, %d bytes; %s produces %d errors\n"
              (Lbr_jvm.Size.classes pool) (Lbr_jvm.Size.bytes pool)
              instance.tool.Lbr_decompiler.Tool.name
              (List.length instance.baseline_errors))
          instances;
        (* Graceful ^C / SIGTERM: stop at the next predicate-run boundary,
           flush whatever timeline the interrupted run accumulated, and
           exit with the conventional 128+signal status.  Shares the
           Shutdown drain plumbing with the serve daemon. *)
        let shutdown = Lbr_server.Shutdown.install () in
        let partial_mutex = Mutex.create () in
        let partial : (string * (float * int * int) list ref) list =
          List.map
            (fun (i : Lbr_harness.Corpus.instance) -> (i.instance_id, ref []))
            instances
        in
        let hooks (instance : Lbr_harness.Corpus.instance) =
          let improvements = List.assoc instance.instance_id partial in
          (* Under --trace, route predicate runs through a per-instance
             runtime oracle purely so the timeline shows oracle.attempt /
             oracle.memo events.  retries = 0 and Crash_raises make it
             behaviourally transparent — the predicate memo above this hook
             already deduplicates, so the oracle only ever sees fresh keys
             and the reduction stays byte-identical to the untraced run. *)
          let evaluate =
            match trace with
            | None -> None
            | Some _ ->
                let current : (unit -> bool) ref = ref (fun () -> false) in
                let oracle =
                  Lbr_runtime.Oracle.make
                    ~config:
                      {
                        Lbr_runtime.Oracle.default_config with
                        crash_policy = Lbr_runtime.Oracle.Crash_raises;
                        retries = 0;
                      }
                    ~name:instance.instance_id
                    (fun _ -> !current ())
                in
                Some
                  (fun ~key thunk ->
                    current := thunk;
                    Lbr_harness.Experiment.Fresh
                      (Lbr_runtime.Oracle.run oracle (Lbr_server.Runner.key_assignment key)))
          in
          {
            Lbr_harness.Experiment.should_stop =
              Some (fun () -> Lbr_server.Shutdown.requested shutdown);
            on_improvement =
              Some
                (fun sim_time cls bytes ->
                  Mutex.lock partial_mutex;
                  improvements := (sim_time, cls, bytes) :: !improvements;
                  Mutex.unlock partial_mutex);
            evaluate;
            peek = None;
          }
        in
        let run_corpus () =
          if speculate then
            Lbr_runtime.Pool.with_pool ~jobs (fun pool ->
                Lbr_harness.Experiment.run_corpus_full ~jobs:1 ~hooks ~speculate:pool
                  strategy instances)
          else Lbr_harness.Experiment.run_corpus_full ~jobs ~hooks strategy instances
        in
        let results =
          match run_corpus () with
          | results -> results
          | exception Lbr_harness.Experiment.Cancelled ->
              Lbr_server.Shutdown.on_drain shutdown (fun () ->
                  Printf.eprintf "interrupted by SIG%s; partial progress:\n"
                    (Option.value ~default:"?" (Lbr_server.Shutdown.signal_name shutdown));
                  List.iter
                    (fun (id, improvements) ->
                      match !improvements with
                      | [] -> Printf.eprintf "  %s: no improvement reached yet\n" id
                      | (sim_time, cls, bytes) :: _ ->
                          Printf.eprintf "  %s: best so far %d classes, %d bytes at %.0fs\n" id
                            cls bytes sim_time)
                    partial;
                  write_trace trace);
              Lbr_server.Shutdown.run_drain shutdown;
              exit (match Lbr_server.Shutdown.signal_name shutdown with
                    | Some "TERM" -> 143
                    | _ -> 130)
        in
        List.iter
          (fun ((o : Lbr_harness.Experiment.outcome), _final) ->
            Printf.printf
              "%s%s: %d -> %d classes (%.1f%%), %d -> %d bytes (%.1f%%), %d tool runs, %.0fs \
               simulated\n"
              (Lbr_harness.Experiment.strategy_name strategy)
              (if jobs > 1 && not speculate then " [" ^ o.instance_id ^ "]" else "")
              o.classes0 o.classes1
              (100. *. float_of_int o.classes1 /. float_of_int o.classes0)
              o.bytes0 o.bytes1
              (100. *. float_of_int o.bytes1 /. float_of_int o.bytes0)
              o.predicate_runs o.sim_time)
          results;
        let first_final = match results with (_, final) :: _ -> Some final | [] -> None in
        (match (output, first_final) with
        | Some file, Some reduced ->
            let oc = open_out file in
            output_string oc (Lbr_decompiler.Source.decompile reduced);
            close_out oc;
            Printf.printf "reduced decompiled source written to %s\n" file
        | _ -> ());
        (match (output_pool, first_final) with
        | Some file, Some reduced ->
            Lbr_jvm.Serialize.write_file file reduced;
            Printf.printf "reduced pool written to %s\n" file
        | _ -> ());
        write_trace trace
  in
  let output_pool_arg =
    Arg.(
      value
      & opt (some writable_file) None
      & info [ "output-pool" ] ~docv:"FILE"
          ~doc:"Write the reduced class pool (LBRC binary) of the first instance to FILE.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Reduce a workload: generate a benchmark program and reduce it against a buggy \
          decompiler (jvm, the default), or reduce a DIMACS CNF / Featherweight Java file \
          passed as INPUT (--frontend dimacs|fj).")
    Term.(
      const run $ seed_arg $ classes_arg $ strategy_arg $ tool_arg $ jobs_arg $ output_arg
      $ output_pool_arg $ trace_arg $ frontend_arg $ input_arg $ require_arg
      $ speculate_arg)

(* ------------------------------------------------------------------ *)
(* Reduction as a service                                              *)

(* Cluster addresses are validated at parse time like output paths: a
   host:port with a port outside 0-65535 (or a bare ":8080") should be a
   cmdliner error, not a connect failure minutes into a run.  Accepts a
   Unix socket path, [unix:PATH], or [tcp:]HOST:PORT; port 0 asks the
   kernel for a free port when listening. *)
let cluster_addr =
  let parse s =
    match Lbr_server.Addr.parse s with Ok a -> Ok a | Error m -> Error (`Msg m)
  in
  let print ppf a = Format.pp_print_string ppf (Lbr_server.Addr.to_string a) in
  Arg.conv ~docv:"ADDR" (parse, print)

let socket_arg =
  Arg.(
    value
    & opt cluster_addr (Lbr_server.Addr.Unix_path "/tmp/lbr-serve.sock")
    & info [ "socket" ] ~docv:"ADDR"
        ~doc:"Daemon address: a Unix socket path (or unix:PATH) or a TCP host:port, \
              e.g. 127.0.0.1:7199 (port 0 lets the kernel pick when serving).")

let serve_cmd =
  let queue_depth_arg =
    Arg.(
      value & opt pos_int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Maximum jobs waiting for a worker; submissions past this are rejected with a \
                retry-after hint.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some writable_dir) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Write-ahead journal directory.  Accepted jobs and completed predicate \
                evaluations are logged there, and a restarted daemon resumes unfinished jobs, \
                replaying paid-for predicate results.")
  in
  let run socket jobs queue_depth journal_dir trace =
    if trace <> None then Lbr_obs.Trace.start ();
    let shutdown = Lbr_server.Shutdown.install () in
    let server =
      try
        Lbr_server.Server.start
          { Lbr_server.Server.listen = socket; jobs; queue_depth; journal_dir }
      with Failure m | Sys_error m ->
        prerr_endline ("lbr-serve: " ^ m);
        exit 1
    in
    Printf.printf "lbr-serve: listening on %s (%d worker%s, queue depth %d%s)\n%!"
      (Lbr_server.Addr.to_string (Lbr_server.Server.bound_addr server))
      jobs
      (if jobs = 1 then "" else "s")
      queue_depth
      (match journal_dir with Some d -> ", journal " ^ d | None -> "");
    (match Lbr_server.Server.recovered server with
    | 0 -> ()
    | n -> Printf.printf "lbr-serve: resumed %d journaled job%s\n%!" n (if n = 1 then "" else "s"));
    Lbr_server.Shutdown.on_drain shutdown (fun () ->
        Printf.printf "lbr-serve: %s received, draining in-flight jobs...\n%!"
          (match Lbr_server.Shutdown.signal_name shutdown with
          | Some s -> "SIG" ^ s
          | None -> "stop request");
        Lbr_server.Server.stop server;
        write_trace trace;
        print_endline "lbr-serve: drained, bye");
    while not (Lbr_server.Shutdown.requested shutdown) do
      Thread.delay 0.1
    done;
    Lbr_server.Shutdown.run_drain shutdown
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the reduction daemon: accept LBRC class pools over a Unix domain socket, reduce \
          them on a domain pool, stream progress, and journal for crash recovery.")
    Term.(const run $ socket_arg $ jobs_arg $ queue_depth_arg $ journal_arg $ trace_arg)

let coordinate_cmd =
  let listen_arg =
    Arg.(
      value
      & opt cluster_addr (Lbr_server.Addr.Unix_path "/tmp/lbr-coordinate.sock")
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Address the coordinator serves on: a Unix socket path or a TCP host:port \
                (use port 0 to let the kernel pick).")
  in
  let workers_arg =
    Arg.(
      non_empty & opt_all cluster_addr []
      & info [ "worker" ] ~docv:"ADDR"
          ~doc:"Address of a worker daemon (repeatable).  Every worker is pinged at startup \
                and must speak protocol v3.")
  in
  let lanes_arg =
    Arg.(
      value & opt pos_int 1
      & info [ "lanes" ] ~docv:"N" ~doc:"Concurrent delegated jobs per worker.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt pos_int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Cluster-wide cap on queued jobs; submissions past this are rejected with a \
                retry-after hint.")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some writable_file) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"Persist the content-addressed verdict cache to FILE (append-only; reloaded \
                on restart).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some writable_dir) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Coordinator write-ahead journal: admitted jobs and mirrored worker verdicts. \
                A restarted coordinator resubmits unfinished jobs seeded with their paid \
                verdicts.")
  in
  let run listen workers lanes queue_depth cache_path journal_dir =
    let shutdown = Lbr_server.Shutdown.install () in
    let coordinator =
      match
        Lbr_cluster.Coordinator.create
          { Lbr_cluster.Coordinator.workers; lanes; queue_depth; cache_path; journal_dir }
      with
      | c -> c
      | exception (Failure m | Sys_error m) ->
          prerr_endline ("lbr-coordinate: " ^ m);
          exit 1
      | exception Unix.Unix_error (e, _, _) ->
          prerr_endline ("lbr-coordinate: " ^ Unix.error_message e);
          exit 1
    in
    let server =
      try
        Lbr_server.Server.start_backend ~listen
          (Lbr_cluster.Coordinator.backend coordinator)
      with Failure m | Sys_error m ->
        prerr_endline ("lbr-coordinate: " ^ m);
        exit 1
    in
    Printf.printf "lbr-coordinate: listening on %s, %d worker%s (%s)\n%!"
      (Lbr_server.Addr.to_string (Lbr_server.Server.bound_addr server))
      (List.length workers)
      (if List.length workers = 1 then "" else "s")
      (String.concat ", " (List.map Lbr_server.Addr.to_string workers));
    (match Lbr_cluster.Coordinator.recovered coordinator with
    | 0 -> ()
    | n ->
        Printf.printf "lbr-coordinate: resubmitted %d journaled job%s\n%!" n
          (if n = 1 then "" else "s"));
    Lbr_server.Shutdown.on_drain shutdown (fun () ->
        Printf.printf "lbr-coordinate: %s received, draining delegated jobs...\n%!"
          (match Lbr_server.Shutdown.signal_name shutdown with
          | Some s -> "SIG" ^ s
          | None -> "stop request");
        Lbr_server.Server.stop server;
        print_endline "lbr-coordinate: drained, bye");
    while not (Lbr_server.Shutdown.requested shutdown) do
      Thread.delay 0.1
    done;
    Lbr_server.Shutdown.run_drain shutdown
  in
  Cmd.v
    (Cmd.info "coordinate"
       ~doc:
         "Run the cluster coordinator: front N `lbr-reduce serve' worker daemons behind one \
          service address, sharding submitted jobs with work stealing, sharing a \
          content-addressed verdict cache, and failing jobs over (seeded with their paid \
          verdicts) when a worker dies.")
    Term.(
      const run $ listen_arg $ workers_arg $ lanes_arg $ queue_depth_arg $ cache_arg
      $ journal_arg)

let submit_cmd =
  let pool_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pool" ] ~docv:"FILE"
          ~doc:"LBRC pool file to submit (e.g. from `lbr-reduce export --pool').  Without it, a \
                benchmark is generated from --seed/--classes.")
  in
  let priority_arg =
    Arg.(
      value
      & opt (enum [ ("normal", Lbr_server.Wire.Normal); ("high", Lbr_server.Wire.High) ])
          Lbr_server.Wire.Normal
      & info [ "priority" ] ~docv:"PRIORITY" ~doc:"Admission priority: normal or high.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Oracle retries for transient tool failures on the server.")
  in
  let run socket pool_file seed classes strategy tool priority retries output output_pool
      frontend input require =
    let frontend_id =
      match resolve_frontend ~frontend ~input with
      | Ok id -> id
      | Error m ->
          prerr_endline ("lbr-reduce submit: " ^ m);
          exit 2
    in
    (match (frontend_id, input, pool_file) with
    | "jvm", Some _, _ ->
        prerr_endline
          "lbr-reduce submit: jvm submissions take --pool (an LBRC file) or \
           --seed/--classes, not a positional INPUT";
        exit 2
    | "jvm", None, _ -> ()
    | id, None, _ ->
        Printf.eprintf "lbr-reduce submit: frontend %s needs an INPUT file to submit\n" id;
        exit 2
    | id, Some _, Some _ ->
        Printf.eprintf "lbr-reduce submit: --pool applies to the jvm frontend; pass the \
                        %s workload as INPUT only\n" id;
        exit 2
    | _, Some _, None -> ());
    (match (frontend_id, strategy) with
    | "jvm", _ | _, Lbr_harness.Experiment.Gbr -> ()
    | id, _ ->
        Printf.eprintf "lbr-reduce submit: frontend %s only supports --strategy gbr\n" id;
        exit 2);
    (match (frontend_id, tool, require) with
    | "jvm", _, "" -> ()
    | "jvm", _, _ ->
        prerr_endline "lbr-reduce submit: --require applies to non-jvm frontends; use --tool";
        exit 2
    | _, Some _, _ ->
        prerr_endline "lbr-reduce submit: --tool applies to the jvm frontend; use --require";
        exit 2
    | _, None, _ -> ());
    let pool_bytes =
      match frontend_id with
      | "jvm" -> (
          match pool_file with
          | Some file -> (
              match read_text_file file with
              | Ok data -> data
              | Error m ->
                  prerr_endline ("lbr-reduce submit: " ^ m);
                  exit 1)
          | None ->
              Lbr_jvm.Serialize.to_bytes
                (Lbr_workload.Generator.generate ~seed
                   (Lbr_workload.Generator.njr_profile ~classes)))
      | _ -> (
          match read_text_file (Option.get input) with
          | Ok data -> data
          | Error m ->
              prerr_endline ("lbr-reduce submit: " ^ m);
              exit 1)
    in
    let spec =
      {
        Lbr_server.Wire.tool =
          (if frontend_id = "jvm" then Option.value ~default:"" tool else require);
        strategy;
        priority;
        crash_policy = Lbr_runtime.Oracle.Crash_raises;
        retries;
        pool_bytes;
        frontend = frontend_id;
      }
    in
    match Lbr_server.Client.connect (Lbr_server.Addr.to_string socket) with
    | Error m ->
        prerr_endline ("lbr-reduce submit: " ^ m);
        exit 1
    | Ok client -> (
        let on_progress (p : Lbr_server.Client.progress) =
          Printf.printf "progress: %d classes, %d bytes at %.0fs simulated\n%!" p.classes
            p.bytes p.sim_time
        in
        match Lbr_server.Client.submit client ~on_progress spec with
        | Error m ->
            Lbr_server.Client.close client;
            prerr_endline ("lbr-reduce submit: " ^ m);
            exit 1
        | Ok (job_id, stats, reduced_bytes) ->
            Lbr_server.Client.close client;
            Printf.printf
              "%s: %d -> %d %s, %d -> %d bytes, %d predicate runs (%d replayed), %.0fs \
               simulated%s\n"
              job_id stats.classes0 stats.classes1
              (if frontend_id = "jvm" then "classes" else "items")
              stats.bytes0 stats.bytes1
              stats.predicate_runs stats.replayed_runs stats.sim_time
              (if stats.ok then "" else " [NOT REPRODUCED]");
            (match output_pool with
            | None -> ()
            | Some file ->
                let oc = open_out_bin file in
                output_string oc reduced_bytes;
                close_out oc;
                Printf.printf "reduced %s written to %s\n"
                  (if frontend_id = "jvm" then "pool" else frontend_id ^ " workload")
                  file);
            (match output with
            | None -> ()
            | Some file when frontend_id <> "jvm" ->
                (* non-jvm results are already the frontend's own text *)
                let oc = open_out_bin file in
                output_string oc reduced_bytes;
                close_out oc;
                Printf.printf "reduced %s workload written to %s\n" frontend_id file
            | Some file -> (
                match Lbr_jvm.Serialize.of_bytes reduced_bytes with
                | Error m -> prerr_endline ("undecodable reduced pool: " ^ m)
                | Ok reduced ->
                    let oc = open_out file in
                    output_string oc (Lbr_decompiler.Source.decompile reduced);
                    close_out oc;
                    Printf.printf "reduced decompiled source written to %s\n" file)))
  in
  let output_pool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output-pool" ] ~docv:"FILE" ~doc:"Write the reduced pool (LBRC binary) to FILE.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a workload to a running `lbr-reduce serve' daemon and wait for the result: \
          a class pool (jvm, the default) or a DIMACS CNF / Featherweight Java file passed \
          as INPUT (--frontend dimacs|fj).")
    Term.(
      const run $ socket_arg $ pool_file_arg $ seed_arg $ classes_arg $ strategy_arg $ tool_arg
      $ priority_arg $ retries_arg $ output_arg $ output_pool_arg $ frontend_arg $ input_arg
      $ require_arg)

(* ------------------------------------------------------------------ *)
(* Live (and post-mortem) daemon introspection                          *)

let top_cmd =
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Post-mortem mode: instead of querying a live daemon, reconstruct per-job \
                predicate-latency statistics from a (possibly dead) daemon's journal \
                directory.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Also print the daemon's full Prometheus metrics snapshot.")
  in
  (* Cluster health lives in the Prometheus text (per-worker queue-depth
     gauges, cache hit/miss counters); surface it without requiring
     --metrics when the daemon is a coordinator. *)
  let cluster_section text =
    let sample line =
      if line = "" || line.[0] = '#' then None
      else
        match String.index_opt line ' ' with
        | None -> None
        | Some i ->
            let name = String.sub line 0 i in
            let v =
              float_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            Option.map (fun v -> (name, v)) v
    in
    let samples = List.filter_map sample (String.split_on_char '\n' text) in
    let value name = List.assoc_opt name samples in
    let depth_of (name, v) =
      let prefix = "lbr_cluster_w" and suffix = "_queue_depth" in
      if
        String.starts_with ~prefix name
        && String.ends_with ~suffix name
        && String.length name > String.length prefix + String.length suffix
      then
        Some
          ( String.sub name (String.length prefix)
              (String.length name - String.length prefix - String.length suffix),
            v )
      else None
    in
    let depths = List.filter_map depth_of samples in
    (match (value "lbr_cluster_workers_alive", depths) with
    | None, [] -> ()
    | alive, depths ->
        Printf.printf "cluster: %s worker(s) alive; queue depth %s\n"
          (match alive with Some a -> string_of_int (int_of_float a) | None -> "?")
          (match depths with
          | [] -> "-"
          | _ ->
              String.concat " "
                (List.map (fun (i, v) -> Printf.sprintf "w%s=%d" i (int_of_float v)) depths)));
    match (value "lbr_cluster_cache_hits_total", value "lbr_cluster_cache_misses_total") with
    | Some hits, Some misses ->
        let total = hits +. misses in
        Printf.printf "cluster cache: %d hits, %d misses (%.1f%% hit rate)\n"
          (int_of_float hits) (int_of_float misses)
          (if total = 0. then 0. else 100. *. hits /. total)
    | _ -> ()
  in
  let online socket metrics =
    match Lbr_server.Client.connect (Lbr_server.Addr.to_string socket) with
    | Error m ->
        prerr_endline ("lbr-reduce top: " ^ m);
        exit 1
    | Ok client -> (
        let result = Lbr_server.Client.stats client in
        Lbr_server.Client.close client;
        match result with
        | Error m ->
            prerr_endline ("lbr-reduce top: " ^ m);
            exit 1
        | Ok (s : Lbr_server.Wire.daemon_stats) ->
            Printf.printf "daemon: up %.0fs   queued: %d   running: %d\n" s.uptime
              s.queued_jobs s.running_jobs;
            let hit_rate =
              if s.oracle_queries = 0 then 0.
              else 100. *. float_of_int s.oracle_memo_hits /. float_of_int s.oracle_queries
            in
            Printf.printf "oracle: %d queries, %d memo hits (%.1f%% hit rate)\n"
              s.oracle_queries s.oracle_memo_hits hit_rate;
            cluster_section s.metrics_text;
            (match s.job_stats with
            | [] -> print_endline "no jobs in flight"
            | jobs ->
                List.iter
                  (fun (j : Lbr_server.Wire.job_stat) ->
                    let state = if j.js_running then "running" else "queued" in
                    match j.js_best with
                    | None -> Printf.printf "  %-16s %-8s best: -\n" j.js_id state
                    | Some (sim_time, classes, bytes) ->
                        Printf.printf "  %-16s %-8s best: %d classes, %d bytes at %.0fs\n"
                          j.js_id state classes bytes sim_time)
                  jobs);
            if metrics then (
              print_newline ();
              print_string s.metrics_text))
  in
  (* Rebuild what the live Stats reply derives from in-memory metrics out
     of the journal's v2 verdict lines instead. *)
  let offline dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      prerr_endline ("lbr-reduce top: " ^ dir ^ ": not a journal directory");
      exit 1
    end;
    let journal = Lbr_server.Journal.open_dir dir in
    Fun.protect
      ~finally:(fun () -> Lbr_server.Journal.close journal)
      (fun () ->
        match Lbr_server.Journal.jobs journal with
        | [] -> Printf.printf "journal %s: no jobs recorded\n" dir
        | jobs ->
            Printf.printf "journal %s: %d job%s\n" dir (List.length jobs)
              (if List.length jobs = 1 then "" else "s");
            let total = ref (Lbr_obs.Metrics.Histogram.create ()) in
            List.iter
              (fun id ->
                let verdicts = Lbr_server.Journal.verdicts journal ~id in
                let hist = Lbr_obs.Metrics.Histogram.create () in
                let fails = ref 0 and retries = ref 0 and timed = ref 0 in
                List.iter
                  (fun (v : Lbr_server.Journal.verdict) ->
                    if not v.v_ok then incr fails;
                    retries := !retries + Option.value ~default:0 v.v_retries;
                    match v.v_latency with
                    | Some l ->
                        incr timed;
                        Lbr_obs.Metrics.Histogram.observe hist l
                    | None -> ())
                  verdicts;
                Printf.printf "  %-16s %d verdicts (%d fail, %d oracle retries)" id
                  (List.length verdicts) !fails !retries;
                if !timed = 0 then
                  (* v1 journal lines carry no latency *)
                  print_endline "  latency: n/a"
                else
                  Printf.printf "  latency p50/p90/p99: %.3fs / %.3fs / %.3fs\n"
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.5)
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.9)
                    (Lbr_obs.Metrics.Histogram.quantile hist 0.99);
                total := Lbr_obs.Metrics.Histogram.merge !total hist)
              jobs;
            if Lbr_obs.Metrics.Histogram.count !total > 0 then
              Printf.printf "overall latency: %d timed verdicts, p50 %.3fs, p99 %.3fs\n"
                (Lbr_obs.Metrics.Histogram.count !total)
                (Lbr_obs.Metrics.Histogram.quantile !total 0.5)
                (Lbr_obs.Metrics.Histogram.quantile !total 0.99))
  in
  let run socket journal metrics =
    match journal with None -> online socket metrics | Some dir -> offline dir
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Introspect a running `lbr-reduce serve' daemon: queue depth, running jobs with \
          best-so-far sizes, oracle memo hit rate and (with --metrics) the Prometheus \
          metric snapshot.  With --journal DIR, reconstruct predicate-latency statistics \
          from a dead daemon's journal instead.")
    Term.(const run $ socket_arg $ journal_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)

let stats_cmd =
  let programs_arg =
    Arg.(value & opt int 20 & info [ "programs" ] ~docv:"N" ~doc:"Corpus size.")
  in
  let mean_arg =
    Arg.(value & opt int 60 & info [ "mean-classes" ] ~docv:"N" ~doc:"Geometric-mean classes.")
  in
  let run seed programs mean_classes =
    let benchmarks = Lbr_harness.Corpus.build ~seed ~programs ~mean_classes in
    let instances = Lbr_harness.Corpus.instances benchmarks in
    let s = Lbr_harness.Corpus.stats benchmarks instances in
    Printf.printf "programs: %d   instances: %d\n" s.programs s.instance_count;
    Printf.printf "geo classes: %.0f   geo bytes: %.0f   geo errors: %.1f\n" s.geo_classes
      s.geo_bytes s.geo_errors;
    Printf.printf "geo items: %.0f   geo clauses: %.0f   graph fraction: %.1f%%\n" s.geo_items
      s.geo_clauses
      (100. *. s.mean_graph_fraction)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics (the §5 'Statistics' measurements).")
    Term.(const run $ seed_arg $ programs_arg $ mean_arg)

(* ------------------------------------------------------------------ *)

let export_cmd =
  let cnf_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "cnf" ] ~docv:"FILE" ~doc:"Write the dependency model as DIMACS CNF to FILE.")
  in
  let pool_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "pool" ] ~docv:"FILE" ~doc:"Write the class pool in binary form to FILE.")
  in
  let source_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "source" ] ~docv:"FILE" ~doc:"Write the decompiled pseudo-Java to FILE.")
  in
  let run seed classes cnf_file pool_file source_file =
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    (match pool_file with
    | Some file ->
        Lbr_jvm.Serialize.write_file file pool;
        Printf.printf "pool (%d bytes serialized) -> %s\n"
          (Lbr_jvm.Serialize.serialized_size pool) file
    | None -> ());
    (match cnf_file with
    | Some file ->
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool pool in
        let cnf = Lbr_jvm.Constraints.generate jv pool in
        Dimacs.write_file file cnf;
        Printf.printf "model (%d vars, %d clauses) -> %s\n" (Var.Pool.size vpool)
          (Cnf.num_clauses cnf) file
    | None -> ());
    match source_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Lbr_decompiler.Source.decompile pool);
        close_out oc;
        Printf.printf "decompiled source (%d lines) -> %s\n"
          (Lbr_decompiler.Source.line_count pool) file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Generate a benchmark and export its pool (binary), dependency model (DIMACS, for \
          external SAT/#SAT tools) and decompiled source.")
    Term.(const run $ seed_arg $ classes_arg $ cnf_arg $ pool_arg $ source_arg)

let tools_cmd =
  let run () =
    List.iter
      (fun (t : Lbr_decompiler.Tool.t) ->
        Printf.printf "%s\n" t.name;
        List.iter
          (fun (p : Lbr_decompiler.Pattern.t) -> Printf.printf "  pattern: %s\n" p.name)
          t.patterns)
      Lbr_decompiler.Tool.all
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"List the simulated decompilers and their bug patterns.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lbr-reduce" ~version:"1.0.0"
      ~doc:"Logical bytecode reduction (PLDI 2021) — reference OCaml implementation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            example_cmd;
            reduce_cmd;
            serve_cmd;
            coordinate_cmd;
            submit_cmd;
            top_cmd;
            stats_cmd;
            export_cmd;
            tools_cmd;
          ]))
