(* lbr-reduce: command-line front end for logical bytecode reduction.

   Subcommands:
     example   — run the paper's Figure 1 example end to end
     reduce    — generate a benchmark, pick a buggy decompiler, reduce
     stats     — corpus statistics (the §5 'Statistics' table)
     export    — dump a benchmark's pool (binary), model (DIMACS) and source
     tools     — list the simulated decompilers and their bug patterns *)

open Cmdliner
open Lbr_logic

(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () =
    let model = Lbr_fji.Example.model () in
    let universe = Lbr_fji.Vars.all model.vars in
    print_endline "input (Figure 1a):";
    print_endline (Lbr_fji.Pretty.program_to_string model.program);
    let predicate = Lbr.Predicate.make (Lbr_fji.Example.buggy model.vars) in
    let problem =
      Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
    in
    match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool) with
    | Error _ -> prerr_endline "reduction failed"; exit 1
    | Ok (solution, stats) ->
        Printf.printf "\nreduced in %d tool runs; kept %d of %d items\n\n"
          stats.predicate_runs
          (Assignment.cardinal solution)
          (Assignment.cardinal universe);
        print_endline "output (Figure 1b):";
        print_endline
          (Lbr_fji.Pretty.program_to_string
             (Lbr_fji.Reduce.reduce model.vars model.program solution))
  in
  Cmd.v (Cmd.info "example" ~doc:"Run the paper's Figure 1 example end to end.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let classes_arg =
  Arg.(value & opt int 60 & info [ "classes" ] ~docv:"N" ~doc:"Classes in the generated program.")

let strategy_arg =
  let strategies =
    [
      ("gbr", Lbr_harness.Experiment.Gbr);
      ("jreduce", Lbr_harness.Experiment.Jreduce);
      ("lossy-first", Lbr_harness.Experiment.Lossy_first);
      ("lossy-last", Lbr_harness.Experiment.Lossy_last);
    ]
  in
  Arg.(
    value
    & opt (enum strategies) Lbr_harness.Experiment.Gbr
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"One of gbr, jreduce, lossy-first, lossy-last.")

let tool_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tool" ] ~docv:"TOOL"
        ~doc:"Decompiler to reduce against (default: first buggy one).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the reduced decompiled source to FILE.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains.  With N > 1, reduce against $(i,every) buggy decompiler, fanning the \
           instances across N domains; the default 1 keeps today's sequential behaviour \
           (first buggy decompiler only).")

let reduce_cmd =
  let run seed classes strategy tool jobs output =
    if jobs < 1 then begin
      prerr_endline "--jobs must be >= 1";
      exit 2
    end;
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    let tools =
      match tool with
      | None -> Lbr_decompiler.Tool.all
      | Some name -> (
          match
            List.find_opt
              (fun (t : Lbr_decompiler.Tool.t) -> t.name = name)
              Lbr_decompiler.Tool.all
          with
          | Some t -> [ t ]
          | None ->
              prerr_endline ("unknown tool " ^ name ^ "; see `lbr-reduce tools'");
              exit 2)
    in
    let buggy =
      List.filter_map
        (fun t ->
          match Lbr_decompiler.Tool.errors t pool with
          | [] -> None
          | errors -> Some (t, errors))
        tools
    in
    match buggy with
    | [] ->
        print_endline "no decompiler is buggy on this program; try another --seed";
        exit 0
    | (tool, baseline) :: _ ->
        let selected = if jobs > 1 then buggy else [ (tool, baseline) ] in
        let instances =
          List.map
            (fun ((t : Lbr_decompiler.Tool.t), errors) ->
              {
                Lbr_harness.Corpus.instance_id = Printf.sprintf "seed%d/%s" seed t.name;
                benchmark = { bench_id = Printf.sprintf "seed%d" seed; seed; pool };
                tool = t;
                baseline_errors = errors;
              })
            selected
        in
        List.iter
          (fun (instance : Lbr_harness.Corpus.instance) ->
            Printf.printf "program: %d classes, %d bytes; %s produces %d errors\n"
              (Lbr_jvm.Size.classes pool) (Lbr_jvm.Size.bytes pool)
              instance.tool.Lbr_decompiler.Tool.name
              (List.length instance.baseline_errors))
          instances;
        let outcomes = Lbr_harness.Experiment.run_corpus ~jobs strategy instances in
        List.iter
          (fun (o : Lbr_harness.Experiment.outcome) ->
            Printf.printf
              "%s%s: %d -> %d classes (%.1f%%), %d -> %d bytes (%.1f%%), %d tool runs, %.0fs \
               simulated\n"
              (Lbr_harness.Experiment.strategy_name strategy)
              (if jobs > 1 then " [" ^ o.instance_id ^ "]" else "")
              o.classes0 o.classes1
              (100. *. float_of_int o.classes1 /. float_of_int o.classes0)
              o.bytes0 o.bytes1
              (100. *. float_of_int o.bytes1 /. float_of_int o.bytes0)
              o.predicate_runs o.sim_time)
          outcomes;
        (match output with
        | None -> ()
        | Some file ->
            (* Re-derive the reduced pool with GBR for the dump. *)
            let vpool = Var.Pool.create () in
            let jv = Lbr_jvm.Jvars.derive vpool pool in
            let cnf = Lbr_jvm.Constraints.generate jv pool in
            let predicate =
              Lbr.Predicate.make (fun phi ->
                  let errors =
                    Lbr_decompiler.Tool.errors tool (Lbr_jvm.Reducer.apply jv pool phi)
                  in
                  List.for_all (fun m -> List.mem m errors) baseline)
            in
            let problem =
              Lbr.Problem.make ~pool:vpool ~universe:(Lbr_jvm.Jvars.all jv) ~constraints:cnf
                ~predicate
            in
            match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation vpool) with
            | Error _ -> prerr_endline "dump failed"
            | Ok (solution, _) ->
                let reduced = Lbr_jvm.Reducer.apply jv pool solution in
                let oc = open_out file in
                output_string oc (Lbr_decompiler.Source.decompile reduced);
                close_out oc;
                Printf.printf "reduced decompiled source written to %s\n" file)
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Generate a benchmark program and reduce it against a buggy decompiler.")
    Term.(const run $ seed_arg $ classes_arg $ strategy_arg $ tool_arg $ jobs_arg $ output_arg)

(* ------------------------------------------------------------------ *)

let stats_cmd =
  let programs_arg =
    Arg.(value & opt int 20 & info [ "programs" ] ~docv:"N" ~doc:"Corpus size.")
  in
  let mean_arg =
    Arg.(value & opt int 60 & info [ "mean-classes" ] ~docv:"N" ~doc:"Geometric-mean classes.")
  in
  let run seed programs mean_classes =
    let benchmarks = Lbr_harness.Corpus.build ~seed ~programs ~mean_classes in
    let instances = Lbr_harness.Corpus.instances benchmarks in
    let s = Lbr_harness.Corpus.stats benchmarks instances in
    Printf.printf "programs: %d   instances: %d\n" s.programs s.instance_count;
    Printf.printf "geo classes: %.0f   geo bytes: %.0f   geo errors: %.1f\n" s.geo_classes
      s.geo_bytes s.geo_errors;
    Printf.printf "geo items: %.0f   geo clauses: %.0f   graph fraction: %.1f%%\n" s.geo_items
      s.geo_clauses
      (100. *. s.mean_graph_fraction)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics (the §5 'Statistics' measurements).")
    Term.(const run $ seed_arg $ programs_arg $ mean_arg)

(* ------------------------------------------------------------------ *)

let export_cmd =
  let cnf_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "cnf" ] ~docv:"FILE" ~doc:"Write the dependency model as DIMACS CNF to FILE.")
  in
  let pool_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "pool" ] ~docv:"FILE" ~doc:"Write the class pool in binary form to FILE.")
  in
  let source_arg =
    Cmdliner.Arg.(
      value & opt (some string) None
      & info [ "source" ] ~docv:"FILE" ~doc:"Write the decompiled pseudo-Java to FILE.")
  in
  let run seed classes cnf_file pool_file source_file =
    let pool =
      Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes)
    in
    (match pool_file with
    | Some file ->
        Lbr_jvm.Serialize.write_file file pool;
        Printf.printf "pool (%d bytes serialized) -> %s\n"
          (Lbr_jvm.Serialize.serialized_size pool) file
    | None -> ());
    (match cnf_file with
    | Some file ->
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool pool in
        let cnf = Lbr_jvm.Constraints.generate jv pool in
        Dimacs.write_file file cnf;
        Printf.printf "model (%d vars, %d clauses) -> %s\n" (Var.Pool.size vpool)
          (Cnf.num_clauses cnf) file
    | None -> ());
    match source_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Lbr_decompiler.Source.decompile pool);
        close_out oc;
        Printf.printf "decompiled source (%d lines) -> %s\n"
          (Lbr_decompiler.Source.line_count pool) file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Generate a benchmark and export its pool (binary), dependency model (DIMACS, for \
          external SAT/#SAT tools) and decompiled source.")
    Term.(const run $ seed_arg $ classes_arg $ cnf_arg $ pool_arg $ source_arg)

let tools_cmd =
  let run () =
    List.iter
      (fun (t : Lbr_decompiler.Tool.t) ->
        Printf.printf "%s\n" t.name;
        List.iter
          (fun (p : Lbr_decompiler.Pattern.t) -> Printf.printf "  pattern: %s\n" p.name)
          t.patterns)
      Lbr_decompiler.Tool.all
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"List the simulated decompilers and their bug patterns.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "lbr-reduce" ~version:"1.0.0"
      ~doc:"Logical bytecode reduction (PLDI 2021) — reference OCaml implementation."
  in
  exit (Cmd.eval (Cmd.group info [ example_cmd; reduce_cmd; stats_cmd; export_cmd; tools_cmd ]))
