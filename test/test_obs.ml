(* Tests for Lbr_obs (tracing + metrics) and the Counters.since delta
   semantics it leans on.

   Trace and the metric registry are process-global; every trace test
   begins with [Trace.start] (which resets the rings) and ends with
   [Trace.stop], and metric names are unique per test so registry state
   cannot leak between cases. *)

module Trace = Lbr_obs.Trace
module Metrics = Lbr_obs.Metrics
module Histogram = Lbr_obs.Metrics.Histogram

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Trace: spans and ring buffers                                       *)

let test_disabled_passthrough () =
  Trace.start ();
  Trace.stop ();
  (* disabled: values flow through, nothing is recorded *)
  Alcotest.(check int) "value" 42 (Trace.with_span "off" (fun () -> 42));
  Trace.instant "off-instant";
  Trace.span_between "off-between" ~start:0. ~finish:1.;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check bool) "disabled" false (Trace.enabled ())

let test_enabled_recording () =
  Trace.start ();
  let r = ref 0 in
  let v =
    Trace.with_span "outer"
      ~args:(fun () -> [ ("observed", Trace.Int !r) ])
      (fun () ->
        Trace.with_span "inner" (fun () -> r := 7);
        Trace.instant "mark";
        !r)
  in
  Trace.stop ();
  Alcotest.(check int) "result" 7 v;
  let events = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length events);
  let by_name n = List.find (fun (e : Trace.event) -> e.ev_name = n) events in
  let outer = by_name "outer" and inner = by_name "inner" and mark = by_name "mark" in
  Alcotest.(check char) "span ph" 'X' outer.ev_ph;
  Alcotest.(check char) "instant ph" 'i' mark.ev_ph;
  Alcotest.(check bool) "inner nested in outer" true (inner.ev_dur <= outer.ev_dur);
  (* args thunks run at span end, so they see state the body wrote *)
  match List.assoc_opt "observed" outer.ev_args with
  | Some (Trace.Int 7) -> ()
  | _ -> Alcotest.fail "outer args should carry the post-body value 7"

let test_span_on_exception () =
  Trace.start ();
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
      Alcotest.(check string) "name" "boom" e.ev_name;
      Alcotest.(check char) "ph" 'X' e.ev_ph
  | es -> Alcotest.failf "expected exactly the boom span, got %d events" (List.length es)

let test_ring_overflow_drops () =
  Trace.start ~capacity:8 ();
  for i = 1 to 20 do
    Trace.instant (string_of_int i)
  done;
  Trace.stop ();
  Alcotest.(check int) "ring keeps capacity" 8 (List.length (Trace.events ()));
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped ());
  (* the ring keeps the most recent window; sort because equal-microsecond
     timestamps make the ts order between neighbours unspecified *)
  let names =
    List.map (fun (e : Trace.event) -> e.ev_name) (Trace.events ()) |> List.sort compare
  in
  Alcotest.(check (list string))
    "newest survive"
    [ "13"; "14"; "15"; "16"; "17"; "18"; "19"; "20" ]
    names

let test_span_between () =
  Trace.start ();
  let t0 = Trace.now () in
  Trace.span_between "wait" ~start:t0 ~finish:(t0 +. 0.25);
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
      Alcotest.(check string) "name" "wait" e.ev_name;
      Alcotest.(check bool) "duration ~250ms in us" true (abs_float (e.ev_dur -. 250_000.) < 1.)
  | es -> Alcotest.failf "expected one span, got %d" (List.length es)

let test_trace_json_shape () =
  Trace.start ();
  Trace.with_span "js\"on" (fun () -> ());
  Trace.stop ();
  let json = Trace.to_json () in
  Alcotest.(check bool) "has traceEvents" true (contains ~affix:{|"traceEvents"|} json);
  Alcotest.(check bool) "escapes quotes" true (contains ~affix:{|js\"on|} json)

(* Regression: a raising args thunk must poison only that span's args —
   the span itself (and every later event) still lands in the ring. *)
let test_args_thunk_poisoned () =
  Trace.start ();
  let v = Trace.with_span "poisoned" ~args:(fun () -> failwith "args boom") (fun () -> 9) in
  Trace.instant "after";
  Trace.stop ();
  Alcotest.(check int) "value flows through" 9 v;
  let events = Trace.events () in
  Alcotest.(check int) "both events recorded" 2 (List.length events);
  let p = List.find (fun (e : Trace.event) -> e.ev_name = "poisoned") events in
  match List.assoc_opt "args" p.ev_args with
  | Some (Trace.Str "<error>") -> ()
  | _ -> Alcotest.fail "raising thunk should record args as <error>"

(* ------------------------------------------------------------------ *)
(* Trace contexts                                                      *)

let test_context_args_and_restore () =
  Trace.start ();
  let ctx = { Trace.Context.trace_id = "aaaa111122223333"; parent_span = "bbbb444455556666" } in
  Alcotest.(check bool) "no context initially" true (Trace.current_context () = None);
  Trace.with_context (Some ctx) (fun () ->
      Alcotest.(check bool) "installed" true (Trace.current_context () = Some ctx);
      Trace.instant "inside";
      (* nested installation restores the outer context, not None *)
      let ctx2 = { Trace.Context.trace_id = "cccc"; parent_span = "dddd" } in
      Trace.with_context (Some ctx2) (fun () -> Trace.instant "nested");
      Alcotest.(check bool) "outer restored after nested" true
        (Trace.current_context () = Some ctx));
  Alcotest.(check bool) "cleared after" true (Trace.current_context () = None);
  (try Trace.with_context (Some ctx) (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "cleared after exception" true (Trace.current_context () = None);
  Trace.instant "outside";
  Trace.stop ();
  let by_name n = List.find (fun (e : Trace.event) -> e.Trace.ev_name = n) (Trace.events ()) in
  (match List.assoc_opt "ctx.parent" (by_name "inside").ev_args with
  | Some (Trace.Str "bbbb444455556666") -> ()
  | _ -> Alcotest.fail "inside should carry ctx.parent");
  (match List.assoc_opt "ctx.trace" (by_name "nested").ev_args with
  | Some (Trace.Str "cccc") -> ()
  | _ -> Alcotest.fail "nested should carry the inner trace id");
  match List.assoc_opt "ctx.trace" (by_name "outside").ev_args with
  | None -> ()
  | Some _ -> Alcotest.fail "outside must not carry context args"

let test_context_mint_shape () =
  let a = Trace.Context.mint () and b = Trace.Context.mint () in
  let hex s =
    String.length s = 16
    && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
  in
  Alcotest.(check bool) "ids are 16-hex" true
    (hex a.Trace.Context.trace_id && hex a.Trace.Context.parent_span);
  Alcotest.(check bool) "ids are unique" true
    (a.Trace.Context.trace_id <> b.Trace.Context.trace_id
    && a.Trace.Context.parent_span <> b.Trace.Context.parent_span)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let fresh_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%.0f" prefix (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir d 0o755;
  d

let test_flight_rings_bounded () =
  let dir = fresh_dir "lbr-flight" in
  Lbr_obs.Flight.arm ~node:"test-node" ~spans:16 ~transitions:8 ~dir ();
  Fun.protect
    ~finally:(fun () -> Lbr_obs.Flight.disarm ())
    (fun () ->
      (* classic tracing is OFF: the hook alone must capture spans *)
      Alcotest.(check bool) "tracing off" false (Trace.enabled ());
      for i = 1 to 100 do
        Trace.instant (Printf.sprintf "ev%d" i);
        Lbr_obs.Flight.transition ~job:(Printf.sprintf "job-%d" i) ~state:"queued"
      done;
      Alcotest.(check int) "span ring bounded" 16 (Lbr_obs.Flight.span_count ());
      Alcotest.(check int) "transition ring bounded" 8
        (Lbr_obs.Flight.transition_count ());
      match Lbr_obs.Flight.render_current ~reason:"test" with
      | None -> Alcotest.fail "armed recorder must render"
      | Some body ->
          Alcotest.(check bool) "has node" true (contains ~affix:{|"node":"test-node"|} body);
          Alcotest.(check bool) "has reason" true (contains ~affix:{|"reason":"test"|} body);
          (* newest window survives: ev100 present, ev1 evicted *)
          Alcotest.(check bool) "newest span kept" true (contains ~affix:{|"ev100"|} body);
          Alcotest.(check bool) "oldest span evicted" false (contains ~affix:{|"ev1"|} body);
          Alcotest.(check bool) "newest transition kept" true
            (contains ~affix:{|"job-100"|} body))

let test_flight_dump_writes_file () =
  let dir = fresh_dir "lbr-flight-dump" in
  Lbr_obs.Flight.arm ~node:"dumper" ~dir ();
  Fun.protect
    ~finally:(fun () -> Lbr_obs.Flight.disarm ())
    (fun () ->
      Trace.instant "pre-crash";
      Lbr_obs.Flight.transition ~job:"job-1" ~state:"running";
      match Lbr_obs.Flight.dump ~reason:"drain" with
      | None -> Alcotest.fail "dump should succeed"
      | Some path ->
          Alcotest.(check bool) "file exists" true (Sys.file_exists path);
          Alcotest.(check bool) "in the journal dir" true
            (String.starts_with ~prefix:dir path);
          let ic = open_in path in
          let body = really_input_string ic (in_channel_length ic) in
          close_in ic;
          Alcotest.(check bool) "is a flight dump" true
            (contains ~affix:{|"flightRecorder":1|} body);
          Alcotest.(check bool) "span present" true (contains ~affix:{|"pre-crash"|} body))

let test_flight_disarmed_noop () =
  Lbr_obs.Flight.disarm ();
  Lbr_obs.Flight.transition ~job:"job-x" ~state:"running";
  Alcotest.(check bool) "not armed" false (Lbr_obs.Flight.armed ());
  Alcotest.(check (option string)) "no dump" None (Lbr_obs.Flight.dump ~reason:"x")

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_counter_create_or_get () =
  let a = Metrics.counter "test_obs_requests_total" in
  let b = Metrics.counter "test_obs_requests_total" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "shared state" 3 (Metrics.counter_value a);
  Alcotest.(check (option int))
    "find_counter_value" (Some 3)
    (Metrics.find_counter_value "test_obs_requests_total");
  Alcotest.(check (option int)) "unknown name" None (Metrics.find_counter_value "test_obs_nope")

let test_kind_mismatch () =
  let (_ : Metrics.counter) = Metrics.counter "test_obs_kind_clash" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument
       "Metrics: \"test_obs_kind_clash\" already registered with a different kind (wanted gauge)")
    (fun () -> ignore (Metrics.gauge "test_obs_kind_clash"));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Metrics: invalid metric name \"with space\"") (fun () ->
      ignore (Metrics.counter "with space"))

let test_gauge_ops () =
  let g = Metrics.gauge "test_obs_depth" in
  Metrics.set_gauge g 4.;
  Metrics.add_gauge g (-1.5);
  Alcotest.(check (float 1e-9)) "gauge value" 2.5 (Metrics.gauge_value g)

(* Pin the Prometheus text rendering for one counter and one histogram
   with hand-computed buckets (values chosen exactly representable). *)
let test_prometheus_pinned () =
  let c = Metrics.counter ~help:"Pinned counter." "test_obs_pin_total" in
  Metrics.add c 3;
  let h =
    Metrics.histogram ~help:"Pinned histogram." ~lo:0.25 ~growth:4.0 ~buckets:4
      "test_obs_pin_latency_seconds"
  in
  List.iter (Metrics.observe h) [ 0.125; 0.5; 2.0; 8.0 ];
  let rendered = Metrics.render_prometheus () in
  let ours =
    String.split_on_char '\n' rendered
    |> List.filter (contains ~affix:"test_obs_pin_")
    |> String.concat "\n"
  in
  let expected =
    String.concat "\n"
      [
        "# HELP test_obs_pin_latency_seconds Pinned histogram.";
        "# TYPE test_obs_pin_latency_seconds histogram";
        {|test_obs_pin_latency_seconds_bucket{le="0.25"} 1|};
        {|test_obs_pin_latency_seconds_bucket{le="1"} 2|};
        {|test_obs_pin_latency_seconds_bucket{le="4"} 3|};
        {|test_obs_pin_latency_seconds_bucket{le="+Inf"} 4|};
        "test_obs_pin_latency_seconds_sum 10.625";
        "test_obs_pin_latency_seconds_count 4";
        "# HELP test_obs_pin_total Pinned counter.";
        "# TYPE test_obs_pin_total counter";
        "test_obs_pin_total 3";
      ]
  in
  Alcotest.(check string) "prometheus text" expected ours

(* ------------------------------------------------------------------ *)
(* Histogram properties                                                *)

let layout_gen =
  QCheck.Gen.(triple (float_range 1e-9 100.) (float_range 1.1 10.) (int_range 2 40))

let values_gen = QCheck.Gen.(list_size (int_range 0 200) (float_range 1e-9 1e6))

let prop_bucket_monotonic =
  QCheck.Test.make ~count:300 ~name:"histogram bucket bounds strictly increase"
    (QCheck.make QCheck.Gen.(pair layout_gen (float_range 0. 1e7)))
    (fun ((lo, growth, buckets), v) ->
      let h = Histogram.create ~lo ~growth ~buckets () in
      let le = Histogram.upper_bounds h in
      let n = Array.length le in
      let increasing = ref true in
      for i = 1 to n - 1 do
        if not (le.(i) > le.(i - 1)) then increasing := false
      done;
      let i = Histogram.bucket_index h v in
      !increasing
      && le.(n - 1) = infinity
      && (v <= le.(i) || i = n - 1)
      && (i = 0 || v > le.(i - 1)))

let prop_merge_conserves =
  QCheck.Test.make ~count:300 ~name:"merge conserves count, sum and buckets"
    (QCheck.make QCheck.Gen.(pair values_gen values_gen))
    (fun (xs, ys) ->
      let a = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      let b = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      List.iter (Histogram.observe a) xs;
      List.iter (Histogram.observe b) ys;
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count a + Histogram.count b
      && Histogram.sum m = Histogram.sum a +. Histogram.sum b
      && Array.for_all2 (fun c (ca, cb) -> c = ca + cb)
           (Histogram.bucket_counts m)
           (Array.combine (Histogram.bucket_counts a) (Histogram.bucket_counts b)))

let prop_merge_rejects_layouts =
  QCheck.Test.make ~count:50 ~name:"merge rejects differing layouts"
    (QCheck.make layout_gen)
    (fun (lo, growth, buckets) ->
      let a = Histogram.create ~lo ~growth ~buckets () in
      let b = Histogram.create ~lo ~growth ~buckets:(buckets + 1) () in
      match Histogram.merge a b with
      | (_ : Histogram.t) -> false
      | exception Invalid_argument _ -> true)

let prop_quantile_within_bucket =
  QCheck.Test.make ~count:300 ~name:"quantile lands in the exact value's bucket"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 200) (float_range 1e-9 1e6))
           (float_range 0. 1.)))
    (fun (xs, q) ->
      let h = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      List.iter (Histogram.observe h) xs;
      let n = List.length xs in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = List.nth (List.sort compare xs) (rank - 1) in
      let estimate = Histogram.quantile h q in
      abs (Histogram.bucket_index h estimate - Histogram.bucket_index h exact) <= 1)

let test_quantile_empty_nan () =
  let h = Histogram.create () in
  Alcotest.(check bool) "nan on empty" true (Float.is_nan (Histogram.quantile h 0.5))

(* ------------------------------------------------------------------ *)
(* Counters.since: keyed on name, tolerant of after-only phases        *)

let row name calls seconds minor_words =
  { Lbr_harness.Counters.name; calls; seconds; minor_words }

let check_rows msg expected actual =
  let pp fmt (r : Lbr_harness.Counters.row) =
    Format.fprintf fmt "%s/%d/%.3f/%.0f" r.name r.calls r.seconds r.minor_words
  in
  let row_t = Alcotest.testable pp ( = ) in
  Alcotest.(check (list row_t)) msg expected actual

let test_since_keys_on_name () =
  (* rows deliberately misaligned by position: since must match by name *)
  let before = [ row "b" 2 1.0 10.; row "a" 1 0.5 4. ] in
  let after = [ row "a" 4 2.0 16.; row "b" 2 1.0 10. ] in
  check_rows "delta keyed by name"
    [ row "a" 3 1.5 12. ]
    (Lbr_harness.Counters.since ~before ~after)

let test_since_after_only_phase () =
  (* a phase first seen after the snapshot (fresh domain mid-task) is
     reported whole, not dropped or misattributed *)
  let before = [ row "a" 1 0.5 4. ] in
  let after = [ row "a" 1 0.5 4.; row "fresh" 5 2.5 20. ] in
  check_rows "after-only phase kept"
    [ row "fresh" 5 2.5 20. ]
    (Lbr_harness.Counters.since ~before ~after)

(* ------------------------------------------------------------------ *)
(* Metrics federation: dump codec + exact merge                        *)

let name_gen =
  QCheck.Gen.oneofl
    [ "alpha_total"; "beta_seconds"; "gamma"; "delta_bytes"; "epsilon_ratio" ]

let help_gen =
  QCheck.Gen.oneofl [ ""; "plain help"; "with \"quotes\" and \\ backslash" ]

let dumped_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Metrics.D_counter n) (int_range 0 1_000_000);
        map (fun v -> Metrics.D_gauge v) (float_range (-1e6) 1e6);
        map
          (fun ((lo, growth), (counts, sum)) ->
            Metrics.D_hist
              { d_lo = lo; d_growth = growth; d_counts = Array.of_list counts; d_sum = sum })
          (pair
             (pair (float_range 1e-6 1.) (float_range 1.1 4.))
             (pair (list_size (int_range 1 8) (int_range 0 1000)) (float_range 0. 1e6)));
      ])

let dump_gen =
  QCheck.Gen.(list_size (int_range 0 6) (triple name_gen help_gen dumped_gen))

let prop_dump_roundtrip =
  QCheck.Test.make ~count:200 ~name:"dump codec round-trips"
    (QCheck.make dump_gen)
    (fun d -> Metrics.decode_dump (Metrics.encode_dump d) = Ok d)

let prop_dump_decode_total =
  QCheck.Test.make ~count:300 ~name:"decode_dump is total on mangled input"
    (QCheck.make QCheck.Gen.(pair dump_gen (pair (int_range 0 5000) (int_range 0 255))))
    (fun (d, (pos, byte)) ->
      let s = Metrics.encode_dump d in
      let trunc = String.sub s 0 (pos mod (String.length s + 1)) in
      let flipped =
        if String.length s = 0 then s
        else begin
          let b = Bytes.of_string s in
          Bytes.set b (pos mod String.length s) (Char.chr byte);
          Bytes.to_string b
        end
      in
      (match Metrics.decode_dump trunc with Ok _ | Error _ -> true)
      && (match Metrics.decode_dump flipped with Ok _ | Error _ -> true))

(* The federation invariant the coordinator's [top --metrics] view rests
   on: merged counters/gauges are exact sums, histograms merge
   bucket-by-bucket, and a kind mismatch keeps the first value. *)
let test_merge_dumps_pin () =
  let open Metrics in
  let hist counts sum =
    D_hist { d_lo = 0.01; d_growth = 2.0; d_counts = counts; d_sum = sum }
  in
  let d1 =
    [
      ("gauge_x", "g", D_gauge 1.5);
      ("hist_y", "h", hist [| 1; 2; 0 |] 3.5);
      ("jobs_total", "j", D_counter 3);
      ("only_first", "o", D_counter 7);
    ]
  in
  let d2 =
    [
      ("gauge_x", "g", D_gauge 0.25);
      ("hist_y", "h", hist [| 0; 4; 1 |] 9.0);
      ("jobs_total", "j", D_counter 4);
      ("mismatch", "m", D_counter 1);
    ]
  in
  let d3 = [ ("jobs_total", "j", D_counter 5); ("mismatch", "m", D_gauge 9.0) ] in
  let merged = merge_dumps [ d1; d2; d3 ] in
  let get name = find_in_dump merged name in
  (match get "jobs_total" with
  | Some (D_counter 12) -> ()
  | _ -> Alcotest.fail "counters must sum: 3 + 4 + 5 = 12");
  (match get "gauge_x" with
  | Some (D_gauge v) when v = 1.75 -> ()
  | _ -> Alcotest.fail "gauges must sum: 1.5 + 0.25 = 1.75");
  (match get "hist_y" with
  | Some (D_hist { d_counts = [| 1; 6; 1 |]; d_sum = 12.5; _ }) -> ()
  | _ -> Alcotest.fail "histograms must merge bucket-by-bucket");
  (match get "only_first" with
  | Some (D_counter 7) -> ()
  | _ -> Alcotest.fail "a metric present in one dump passes through");
  match get "mismatch" with
  | Some (D_counter 1) -> ()
  | _ -> Alcotest.fail "kind mismatch keeps the first value, never raises"

let test_exporter_http () =
  let ex =
    Lbr_obs.Exporter.start ~host:"127.0.0.1" ~port:0 (fun () ->
        "lbr_up 1\n")
  in
  Fun.protect
    ~finally:(fun () -> Lbr_obs.Exporter.stop ex)
    (fun () ->
      let port = Lbr_obs.Exporter.port ex in
      Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
      let sock = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let oc = Unix.out_channel_of_descr sock in
      output_string oc "GET /metrics HTTP/1.0\r\n\r\n";
      flush oc;
      let ic = Unix.in_channel_of_descr sock in
      let buf = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Unix.close sock;
      let resp = Buffer.contents buf in
      Alcotest.(check bool) "HTTP 200" true (contains ~affix:"200" resp);
      Alcotest.(check bool) "body served" true (contains ~affix:"lbr_up 1" resp))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "lbr_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_passthrough;
          Alcotest.test_case "enabled recording + end-of-span args" `Quick
            test_enabled_recording;
          Alcotest.test_case "span recorded on exception" `Quick test_span_on_exception;
          Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow_drops;
          Alcotest.test_case "span_between duration" `Quick test_span_between;
          Alcotest.test_case "trace JSON shape" `Quick test_trace_json_shape;
          Alcotest.test_case "raising args thunk poisons only the args" `Quick
            test_args_thunk_poisoned;
        ] );
      ( "context",
        [
          Alcotest.test_case "install, nest, restore, ctx args" `Quick
            test_context_args_and_restore;
          Alcotest.test_case "minted ids are 16-hex and unique" `Quick
            test_context_mint_shape;
        ] );
      ( "flight",
        [
          Alcotest.test_case "rings stay bounded, newest window wins" `Quick
            test_flight_rings_bounded;
          Alcotest.test_case "dump writes a readable file" `Quick
            test_flight_dump_writes_file;
          Alcotest.test_case "disarmed recorder is inert" `Quick test_flight_disarmed_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter create-or-get" `Quick test_counter_create_or_get;
          Alcotest.test_case "kind/name validation" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
          Alcotest.test_case "prometheus rendering (pinned)" `Quick test_prometheus_pinned;
          Alcotest.test_case "quantile of empty is nan" `Quick test_quantile_empty_nan;
        ] );
      ( "histogram-properties",
        qsuite
          [
            prop_bucket_monotonic;
            prop_merge_conserves;
            prop_merge_rejects_layouts;
            prop_quantile_within_bucket;
          ] );
      ( "federation",
        Alcotest.test_case "merge_dumps is an exact sum (pinned)" `Quick
          test_merge_dumps_pin
        :: Alcotest.test_case "prometheus exporter serves over HTTP" `Quick
             test_exporter_http
        :: qsuite [ prop_dump_roundtrip; prop_dump_decode_total ] );
      ( "counters",
        [
          Alcotest.test_case "since keys on name" `Quick test_since_keys_on_name;
          Alcotest.test_case "since tolerates after-only phases" `Quick
            test_since_after_only_phase;
        ] );
    ]
