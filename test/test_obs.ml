(* Tests for Lbr_obs (tracing + metrics) and the Counters.since delta
   semantics it leans on.

   Trace and the metric registry are process-global; every trace test
   begins with [Trace.start] (which resets the rings) and ends with
   [Trace.stop], and metric names are unique per test so registry state
   cannot leak between cases. *)

module Trace = Lbr_obs.Trace
module Metrics = Lbr_obs.Metrics
module Histogram = Lbr_obs.Metrics.Histogram

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Trace: spans and ring buffers                                       *)

let test_disabled_passthrough () =
  Trace.start ();
  Trace.stop ();
  (* disabled: values flow through, nothing is recorded *)
  Alcotest.(check int) "value" 42 (Trace.with_span "off" (fun () -> 42));
  Trace.instant "off-instant";
  Trace.span_between "off-between" ~start:0. ~finish:1.;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check bool) "disabled" false (Trace.enabled ())

let test_enabled_recording () =
  Trace.start ();
  let r = ref 0 in
  let v =
    Trace.with_span "outer"
      ~args:(fun () -> [ ("observed", Trace.Int !r) ])
      (fun () ->
        Trace.with_span "inner" (fun () -> r := 7);
        Trace.instant "mark";
        !r)
  in
  Trace.stop ();
  Alcotest.(check int) "result" 7 v;
  let events = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length events);
  let by_name n = List.find (fun (e : Trace.event) -> e.ev_name = n) events in
  let outer = by_name "outer" and inner = by_name "inner" and mark = by_name "mark" in
  Alcotest.(check char) "span ph" 'X' outer.ev_ph;
  Alcotest.(check char) "instant ph" 'i' mark.ev_ph;
  Alcotest.(check bool) "inner nested in outer" true (inner.ev_dur <= outer.ev_dur);
  (* args thunks run at span end, so they see state the body wrote *)
  match List.assoc_opt "observed" outer.ev_args with
  | Some (Trace.Int 7) -> ()
  | _ -> Alcotest.fail "outer args should carry the post-body value 7"

let test_span_on_exception () =
  Trace.start ();
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
      Alcotest.(check string) "name" "boom" e.ev_name;
      Alcotest.(check char) "ph" 'X' e.ev_ph
  | es -> Alcotest.failf "expected exactly the boom span, got %d events" (List.length es)

let test_ring_overflow_drops () =
  Trace.start ~capacity:8 ();
  for i = 1 to 20 do
    Trace.instant (string_of_int i)
  done;
  Trace.stop ();
  Alcotest.(check int) "ring keeps capacity" 8 (List.length (Trace.events ()));
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped ());
  (* the ring keeps the most recent window; sort because equal-microsecond
     timestamps make the ts order between neighbours unspecified *)
  let names =
    List.map (fun (e : Trace.event) -> e.ev_name) (Trace.events ()) |> List.sort compare
  in
  Alcotest.(check (list string))
    "newest survive"
    [ "13"; "14"; "15"; "16"; "17"; "18"; "19"; "20" ]
    names

let test_span_between () =
  Trace.start ();
  let t0 = Trace.now () in
  Trace.span_between "wait" ~start:t0 ~finish:(t0 +. 0.25);
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
      Alcotest.(check string) "name" "wait" e.ev_name;
      Alcotest.(check bool) "duration ~250ms in us" true (abs_float (e.ev_dur -. 250_000.) < 1.)
  | es -> Alcotest.failf "expected one span, got %d" (List.length es)

let test_trace_json_shape () =
  Trace.start ();
  Trace.with_span "js\"on" (fun () -> ());
  Trace.stop ();
  let json = Trace.to_json () in
  Alcotest.(check bool) "has traceEvents" true (contains ~affix:{|"traceEvents"|} json);
  Alcotest.(check bool) "escapes quotes" true (contains ~affix:{|js\"on|} json)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_counter_create_or_get () =
  let a = Metrics.counter "test_obs_requests_total" in
  let b = Metrics.counter "test_obs_requests_total" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "shared state" 3 (Metrics.counter_value a);
  Alcotest.(check (option int))
    "find_counter_value" (Some 3)
    (Metrics.find_counter_value "test_obs_requests_total");
  Alcotest.(check (option int)) "unknown name" None (Metrics.find_counter_value "test_obs_nope")

let test_kind_mismatch () =
  let (_ : Metrics.counter) = Metrics.counter "test_obs_kind_clash" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument
       "Metrics: \"test_obs_kind_clash\" already registered with a different kind (wanted gauge)")
    (fun () -> ignore (Metrics.gauge "test_obs_kind_clash"));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Metrics: invalid metric name \"with space\"") (fun () ->
      ignore (Metrics.counter "with space"))

let test_gauge_ops () =
  let g = Metrics.gauge "test_obs_depth" in
  Metrics.set_gauge g 4.;
  Metrics.add_gauge g (-1.5);
  Alcotest.(check (float 1e-9)) "gauge value" 2.5 (Metrics.gauge_value g)

(* Pin the Prometheus text rendering for one counter and one histogram
   with hand-computed buckets (values chosen exactly representable). *)
let test_prometheus_pinned () =
  let c = Metrics.counter ~help:"Pinned counter." "test_obs_pin_total" in
  Metrics.add c 3;
  let h =
    Metrics.histogram ~help:"Pinned histogram." ~lo:0.25 ~growth:4.0 ~buckets:4
      "test_obs_pin_latency_seconds"
  in
  List.iter (Metrics.observe h) [ 0.125; 0.5; 2.0; 8.0 ];
  let rendered = Metrics.render_prometheus () in
  let ours =
    String.split_on_char '\n' rendered
    |> List.filter (contains ~affix:"test_obs_pin_")
    |> String.concat "\n"
  in
  let expected =
    String.concat "\n"
      [
        "# HELP test_obs_pin_latency_seconds Pinned histogram.";
        "# TYPE test_obs_pin_latency_seconds histogram";
        {|test_obs_pin_latency_seconds_bucket{le="0.25"} 1|};
        {|test_obs_pin_latency_seconds_bucket{le="1"} 2|};
        {|test_obs_pin_latency_seconds_bucket{le="4"} 3|};
        {|test_obs_pin_latency_seconds_bucket{le="+Inf"} 4|};
        "test_obs_pin_latency_seconds_sum 10.625";
        "test_obs_pin_latency_seconds_count 4";
        "# HELP test_obs_pin_total Pinned counter.";
        "# TYPE test_obs_pin_total counter";
        "test_obs_pin_total 3";
      ]
  in
  Alcotest.(check string) "prometheus text" expected ours

(* ------------------------------------------------------------------ *)
(* Histogram properties                                                *)

let layout_gen =
  QCheck.Gen.(triple (float_range 1e-9 100.) (float_range 1.1 10.) (int_range 2 40))

let values_gen = QCheck.Gen.(list_size (int_range 0 200) (float_range 1e-9 1e6))

let prop_bucket_monotonic =
  QCheck.Test.make ~count:300 ~name:"histogram bucket bounds strictly increase"
    (QCheck.make QCheck.Gen.(pair layout_gen (float_range 0. 1e7)))
    (fun ((lo, growth, buckets), v) ->
      let h = Histogram.create ~lo ~growth ~buckets () in
      let le = Histogram.upper_bounds h in
      let n = Array.length le in
      let increasing = ref true in
      for i = 1 to n - 1 do
        if not (le.(i) > le.(i - 1)) then increasing := false
      done;
      let i = Histogram.bucket_index h v in
      !increasing
      && le.(n - 1) = infinity
      && (v <= le.(i) || i = n - 1)
      && (i = 0 || v > le.(i - 1)))

let prop_merge_conserves =
  QCheck.Test.make ~count:300 ~name:"merge conserves count, sum and buckets"
    (QCheck.make QCheck.Gen.(pair values_gen values_gen))
    (fun (xs, ys) ->
      let a = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      let b = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      List.iter (Histogram.observe a) xs;
      List.iter (Histogram.observe b) ys;
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count a + Histogram.count b
      && Histogram.sum m = Histogram.sum a +. Histogram.sum b
      && Array.for_all2 (fun c (ca, cb) -> c = ca + cb)
           (Histogram.bucket_counts m)
           (Array.combine (Histogram.bucket_counts a) (Histogram.bucket_counts b)))

let prop_merge_rejects_layouts =
  QCheck.Test.make ~count:50 ~name:"merge rejects differing layouts"
    (QCheck.make layout_gen)
    (fun (lo, growth, buckets) ->
      let a = Histogram.create ~lo ~growth ~buckets () in
      let b = Histogram.create ~lo ~growth ~buckets:(buckets + 1) () in
      match Histogram.merge a b with
      | (_ : Histogram.t) -> false
      | exception Invalid_argument _ -> true)

let prop_quantile_within_bucket =
  QCheck.Test.make ~count:300 ~name:"quantile lands in the exact value's bucket"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 200) (float_range 1e-9 1e6))
           (float_range 0. 1.)))
    (fun (xs, q) ->
      let h = Histogram.create ~lo:1e-6 ~growth:2.0 ~buckets:24 () in
      List.iter (Histogram.observe h) xs;
      let n = List.length xs in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = List.nth (List.sort compare xs) (rank - 1) in
      let estimate = Histogram.quantile h q in
      abs (Histogram.bucket_index h estimate - Histogram.bucket_index h exact) <= 1)

let test_quantile_empty_nan () =
  let h = Histogram.create () in
  Alcotest.(check bool) "nan on empty" true (Float.is_nan (Histogram.quantile h 0.5))

(* ------------------------------------------------------------------ *)
(* Counters.since: keyed on name, tolerant of after-only phases        *)

let row name calls seconds minor_words =
  { Lbr_harness.Counters.name; calls; seconds; minor_words }

let check_rows msg expected actual =
  let pp fmt (r : Lbr_harness.Counters.row) =
    Format.fprintf fmt "%s/%d/%.3f/%.0f" r.name r.calls r.seconds r.minor_words
  in
  let row_t = Alcotest.testable pp ( = ) in
  Alcotest.(check (list row_t)) msg expected actual

let test_since_keys_on_name () =
  (* rows deliberately misaligned by position: since must match by name *)
  let before = [ row "b" 2 1.0 10.; row "a" 1 0.5 4. ] in
  let after = [ row "a" 4 2.0 16.; row "b" 2 1.0 10. ] in
  check_rows "delta keyed by name"
    [ row "a" 3 1.5 12. ]
    (Lbr_harness.Counters.since ~before ~after)

let test_since_after_only_phase () =
  (* a phase first seen after the snapshot (fresh domain mid-task) is
     reported whole, not dropped or misattributed *)
  let before = [ row "a" 1 0.5 4. ] in
  let after = [ row "a" 1 0.5 4.; row "fresh" 5 2.5 20. ] in
  check_rows "after-only phase kept"
    [ row "fresh" 5 2.5 20. ]
    (Lbr_harness.Counters.since ~before ~after)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "lbr_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_passthrough;
          Alcotest.test_case "enabled recording + end-of-span args" `Quick
            test_enabled_recording;
          Alcotest.test_case "span recorded on exception" `Quick test_span_on_exception;
          Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow_drops;
          Alcotest.test_case "span_between duration" `Quick test_span_between;
          Alcotest.test_case "trace JSON shape" `Quick test_trace_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter create-or-get" `Quick test_counter_create_or_get;
          Alcotest.test_case "kind/name validation" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
          Alcotest.test_case "prometheus rendering (pinned)" `Quick test_prometheus_pinned;
          Alcotest.test_case "quantile of empty is nan" `Quick test_quantile_empty_nan;
        ] );
      ( "histogram-properties",
        qsuite
          [
            prop_bucket_monotonic;
            prop_merge_conserves;
            prop_merge_rejects_layouts;
            prop_quantile_within_bucket;
          ] );
      ( "counters",
        [
          Alcotest.test_case "since keys on name" `Quick test_since_keys_on_name;
          Alcotest.test_case "since tolerates after-only phases" `Quick
            test_since_after_only_phase;
        ] );
    ]
