(* Tests for the core reduction library: instrumented predicates, the
   progression subroutine and its invariants, GBR (Algorithm 1), and the
   lossy encodings of §4.3. *)

open Lbr_logic
open Lbr_sat

let order_n n = Order.of_list (List.init n Fun.id)

let universe_n n = Assignment.of_list (List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Predicate                                                           *)

let test_predicate_memoization () =
  let p = Lbr.Predicate.make ~memoize:true (fun s -> Assignment.mem 0 s) in
  let a = Assignment.of_list [ 0; 1 ] in
  Alcotest.(check bool) "first" true (Lbr.Predicate.run p a);
  Alcotest.(check bool) "second" true (Lbr.Predicate.run p a);
  Alcotest.(check int) "one execution" 1 (Lbr.Predicate.runs p);
  Alcotest.(check int) "two queries" 2 (Lbr.Predicate.queries p);
  Lbr.Predicate.reset p;
  Alcotest.(check int) "reset" 0 (Lbr.Predicate.runs p)

let test_predicate_observer () =
  let p = Lbr.Predicate.make ~memoize:false (fun s -> Assignment.is_empty s) in
  let seen = ref 0 in
  Lbr.Predicate.on_check p (fun _ _ -> incr seen);
  ignore (Lbr.Predicate.run p Assignment.empty);
  ignore (Lbr.Predicate.run p (Assignment.singleton 3));
  Alcotest.(check int) "observer fired per execution" 2 !seen

(* ------------------------------------------------------------------ *)
(* Progression: INV-PRO and the shape guarantees                       *)

let implication_cnf_gen n =
  let open QCheck.Gen in
  let clause =
    map2
      (fun negs poss -> Clause.make ~neg:negs ~pos:poss)
      (list_size (int_bound 2) (int_bound (n - 1)))
      (list_size (int_range 1 2) (int_bound (n - 1)))
  in
  map (fun cs -> Cnf.make (List.filter_map Fun.id cs)) (list_size (int_range 0 10) clause)

let learned_gen n =
  QCheck.Gen.(list_size (int_bound 2) (list_size (int_range 1 3) (int_bound (n - 1))))

let prop_progression_invariants =
  QCheck.Test.make ~count:300 ~name:"progression: disjoint, covering, valid prefixes"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 7) (learned_gen 7)))
    (fun (cnf, learned_raw) ->
      let universe = universe_n 7 in
      let learned = List.map Assignment.of_list learned_raw in
      match Lbr.Progression.build ~cnf ~order:(order_n 7) ~learned ~universe with
      | Error `Unsat -> true (* a learned set may be unsatisfiable with cnf *)
      | Ok entries ->
          let prefixes = Lbr.Progression.prefix_unions entries in
          let n = Array.length prefixes in
          (* non-empty, disjoint, union = universe *)
          n > 0
          && Assignment.equal prefixes.(n - 1) universe
          && List.for_all
               (fun (i, j) ->
                 i >= j || Assignment.disjoint (List.nth entries i) (List.nth entries j))
               (List.concat_map
                  (fun i -> List.map (fun j -> (i, j)) (List.init n Fun.id))
                  (List.init n Fun.id))
          (* INV-PRO: every prefix satisfies R+ and overlaps every learned set *)
          && Array.for_all
               (fun prefix ->
                 Cnf.holds (Cnf.restrict cnf ~keep:universe) prefix
                 && List.for_all
                      (fun l -> not (Assignment.disjoint l prefix))
                      learned)
               prefixes)

(* ------------------------------------------------------------------ *)
(* GBR                                                                 *)

let graph_cnf_gen n =
  let open QCheck.Gen in
  let edge =
    map2
      (fun a b -> if a = b then None else Some (Clause.edge a b))
      (int_bound (n - 1)) (int_bound (n - 1))
  in
  map (fun cs -> Cnf.make (List.filter_map Fun.id cs)) (list_size (int_range 0 12) edge)

(* closure of a set under the cnf's edges (graph fragment only) *)
let closure_of cnf set =
  let edges = Cnf.clauses cnf |> List.map (fun (c : Clause.t) -> (c.neg.(0), c.pos.(0))) in
  let rec go set =
    let next =
      List.fold_left
        (fun acc (a, b) -> if Assignment.mem a acc then Assignment.add b acc else acc)
        set edges
    in
    if Assignment.equal next set then set else go next
  in
  go set

let run_gbr cnf target n =
  let pool = Var.Pool.create () in
  for i = 0 to n - 1 do
    ignore (Var.Pool.fresh pool (Printf.sprintf "v%d" i))
  done;
  let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
  let problem =
    Lbr.Problem.make ~pool ~universe:(universe_n n) ~constraints:cnf ~predicate
  in
  (Lbr.Gbr.reduce problem ~order:(order_n n), predicate)

let run_gbr_ordered cnf target n ~order =
  let pool = Var.Pool.create () in
  for i = 0 to n - 1 do
    ignore (Var.Pool.fresh pool (Printf.sprintf "v%d" i))
  done;
  let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
  let problem = Lbr.Problem.make ~pool ~universe:(universe_n n) ~constraints:cnf ~predicate in
  Lbr.Gbr.reduce problem ~order

(* Theorem 4.5 requires the order [<] to be "picked well"; the closure-size
   order realises that premise (see Order_heuristics). *)
let prop_gbr_graph_constraints =
  QCheck.Test.make ~count:300 ~name:"GBR on graph constraints: valid, failing, locally minimal"
    (QCheck.make QCheck.Gen.(pair (graph_cnf_gen 7) (list_size (int_bound 3) (int_bound 6))))
    (fun (cnf, target_seed) ->
      (* the failure needs the closure of a random seed: achievable + monotone *)
      let target = closure_of cnf (Assignment.of_list target_seed) in
      let order = Lbr.Order_heuristics.closure_order cnf ~universe:(universe_n 7) in
      match run_gbr_ordered cnf target 7 ~order with
      | Error _ -> false
      | Ok (result, stats) ->
          Assignment.subset target result
          && Cnf.holds cnf result
          && stats.predicate_runs <= 2 * 7 * 7
          (* local minimality (Thm 4.5): no single element can be dropped *)
          && Assignment.for_all
               (fun v ->
                 let smaller = Assignment.remove v result in
                 not (Cnf.holds cnf smaller && Assignment.subset target smaller))
               result)

(* With an arbitrary order the result can be suboptimal (§4.4) but must
   still be a valid failing sub-input. *)
let prop_gbr_graph_any_order =
  QCheck.Test.make ~count:300 ~name:"GBR on graph constraints under creation order: valid, failing"
    (QCheck.make QCheck.Gen.(pair (graph_cnf_gen 7) (list_size (int_bound 3) (int_bound 6))))
    (fun (cnf, target_seed) ->
      let target = closure_of cnf (Assignment.of_list target_seed) in
      match run_gbr cnf target 7 with
      | Error _, _ -> false
      | Ok (result, _), _ -> Assignment.subset target result && Cnf.holds cnf result)

let prop_gbr_general_constraints =
  QCheck.Test.make ~count:300 ~name:"GBR on general constraints: valid and failing"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 7) (list_size (int_bound 3) (int_bound 6))))
    (fun (cnf, target_seed) ->
      (* make the target achievable: MSA closure of the seed *)
      let universe = universe_n 7 in
      match
        Msa.compute cnf ~order:(order_n 7) ~universe
          ~required:(Assignment.of_list target_seed) ()
      with
      | None -> true
      | Some target -> (
          match run_gbr cnf target 7 with
          | Error _, _ -> false
          | Ok (result, _), _ -> Assignment.subset target result && Cnf.holds cnf result))

let test_gbr_suboptimal_example () =
  (* §4.4: (a ∧ b ⇒ c) ∧ (c ⇒ b), P true iff b present, order (c, b, a):
     GBR returns {b, c} although {b} is smaller. *)
  let a = 2 and b = 1 and c = 0 in
  let cnf = Cnf.make [ Clause.make_exn ~neg:[ a; b ] ~pos:[ c ]; Clause.edge c b ] in
  let pool = Var.Pool.create () in
  List.iter (fun n -> ignore (Var.Pool.fresh pool n)) [ "c"; "b"; "a" ];
  let predicate = Lbr.Predicate.make (fun s -> Assignment.mem b s) in
  let problem =
    Lbr.Problem.make ~pool ~universe:(Assignment.of_list [ a; b; c ]) ~constraints:cnf
      ~predicate
  in
  match Lbr.Gbr.reduce problem ~order:(Order.of_list [ c; b; a ]) with
  | Error _ -> Alcotest.fail "GBR failed"
  | Ok (result, _) ->
      Alcotest.(check (list int)) "returns {b, c} (suboptimal, as in the paper)" [ c; b ]
        (Assignment.to_list result)

let prop_gbr_invariants_hold =
  QCheck.Test.make ~count:200 ~name:"GBR with ~check_invariants never reports a violation"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 7) (list_size (int_bound 3) (int_bound 6))))
    (fun (cnf, target_seed) ->
      let universe = universe_n 7 in
      match
        Msa.compute cnf ~order:(order_n 7) ~universe
          ~required:(Assignment.of_list target_seed) ()
      with
      | None -> true
      | Some target ->
          let pool = Var.Pool.create () in
          for i = 0 to 6 do
            ignore (Var.Pool.fresh pool (Printf.sprintf "v%d" i))
          done;
          let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
          let problem = Lbr.Problem.make ~pool ~universe ~constraints:cnf ~predicate in
          (match Lbr.Gbr.reduce ~check_invariants:true problem ~order:(order_n 7) with
          | Ok _ -> true
          | Error (`Invariant_violation _) -> false
          | Error (`Unsat | `Predicate_inconsistent) -> false))

(* ------------------------------------------------------------------ *)
(* Incremental engine vs per-iteration rebuild: the two code paths must be
   observationally identical — same result, same predicate work, same
   learned sets, same progression shapes.                               *)

let run_gbr_mode cnf target n ~incremental =
  let pool = Var.Pool.create () in
  for i = 0 to n - 1 do
    ignore (Var.Pool.fresh pool (Printf.sprintf "v%d" i))
  done;
  let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
  let problem =
    Lbr.Problem.make ~pool ~universe:(universe_n n) ~constraints:cnf ~predicate
  in
  Lbr.Gbr.reduce problem ~order:(order_n n) ~incremental

let stats_equal (a : Lbr.Gbr.stats) (b : Lbr.Gbr.stats) =
  a.iterations = b.iterations
  && a.predicate_runs = b.predicate_runs
  && a.predicate_queries = b.predicate_queries
  && List.equal Assignment.equal a.learned b.learned
  && a.progression_lengths = b.progression_lengths

let prop_gbr_incremental_equals_rebuild =
  QCheck.Test.make ~count:300
    ~name:"GBR incremental = rebuild (result, work, learned, progressions)"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 7) (list_size (int_bound 3) (int_bound 6))))
    (fun (cnf, target_seed) ->
      let universe = universe_n 7 in
      match
        Msa.compute cnf ~order:(order_n 7) ~universe
          ~required:(Assignment.of_list target_seed) ()
      with
      | None -> true
      | Some target -> (
          match
            ( run_gbr_mode cnf target 7 ~incremental:true,
              run_gbr_mode cnf target 7 ~incremental:false )
          with
          | Ok (m1, s1), Ok (m2, s2) -> Assignment.equal m1 m2 && stats_equal s1 s2
          | Error e1, Error e2 -> e1 = e2
          | Ok _, Error _ | Error _, Ok _ -> false))

(* The same equivalence on real constraint models: every instance of a
   seeded workload corpus, with the actual decompiler-simulator predicate —
   the configuration the benchmarks measure. *)
let test_gbr_incremental_on_workload () =
  let benchmarks = Lbr_harness.Corpus.build ~seed:11 ~programs:2 ~mean_classes:25 in
  let instances = Lbr_harness.Corpus.instances benchmarks in
  Alcotest.(check bool) "workload produced instances" true (instances <> []);
  List.iter
    (fun (instance : Lbr_harness.Corpus.instance) ->
      let pool = instance.benchmark.pool in
      let run ~incremental =
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool pool in
        let cnf = Lbr_jvm.Constraints.generate jv pool in
        let sub_pool_of = Lbr_jvm.Reducer.prepare jv pool in
        let predicate =
          Lbr.Predicate.make ~name:"gbr" (fun phi ->
              let errors = Lbr_decompiler.Tool.errors instance.tool (sub_pool_of phi) in
              List.for_all (fun b -> List.mem b errors) instance.baseline_errors)
        in
        let problem =
          Lbr.Problem.make ~pool:vpool ~universe:(Lbr_jvm.Jvars.all jv)
            ~constraints:cnf ~predicate
        in
        match Lbr.Gbr.reduce problem ~order:(Order.by_creation vpool) ~incremental with
        | Ok (result, stats) -> (result, stats)
        | Error _ -> Alcotest.failf "%s: GBR failed" instance.instance_id
      in
      let r1, s1 = run ~incremental:true in
      let r2, s2 = run ~incremental:false in
      let id = instance.instance_id in
      Alcotest.(check bool) (id ^ ": same result") true (Assignment.equal r1 r2);
      Alcotest.(check int) (id ^ ": same predicate runs") s2.predicate_runs s1.predicate_runs;
      Alcotest.(check int)
        (id ^ ": same predicate queries") s2.predicate_queries s1.predicate_queries;
      Alcotest.(check bool)
        (id ^ ": same learned sets") true
        (List.equal Assignment.equal s1.learned s2.learned);
      Alcotest.(check (list int))
        (id ^ ": same progression lengths") s2.progression_lengths s1.progression_lengths)
    instances

let test_gbr_iteration_bound () =
  (* a chain of required singletons: every variable must be learned *)
  let n = 8 in
  let cnf = Cnf.make [] in
  let target = universe_n n in
  match run_gbr cnf target n with
  | Ok (result, stats), _ ->
      Alcotest.(check bool) "result covers target" true (Assignment.subset target result);
      Alcotest.(check bool)
        (Printf.sprintf "iterations %d <= n+1" stats.iterations)
        true
        (stats.iterations <= n + 1)
  | Error _, _ -> Alcotest.fail "GBR failed"

(* ------------------------------------------------------------------ *)
(* Speculation table: lifecycle, width budget, gating, poisoning — all
   with a hand-driven spawn so state transitions are deterministic.     *)

let phi_of l = Assignment.of_list l

let test_speculate_lifecycle () =
  let pending = Queue.create () in
  let computed = ref 0 in
  let sp =
    Lbr.Speculate.create
      ~spawn:(fun job -> Queue.add job pending)
      (fun phi ->
        incr computed;
        Assignment.cardinal phi)
  in
  let a = phi_of [ 0; 1 ] and b = phi_of [ 2 ] and c = phi_of [ 3; 4; 5 ] in
  Lbr.Speculate.prefetch sp a;
  Lbr.Speculate.prefetch sp a (* same digest: deduplicated *);
  Lbr.Speculate.prefetch sp b;
  Lbr.Speculate.prefetch sp c;
  Alcotest.(check int) "three launches" 3 (Lbr.Speculate.stats sp).launched;
  Lbr.Speculate.cancel sp b;
  Queue.iter (fun job -> job ()) pending;
  Queue.clear pending;
  Alcotest.(check int) "cancelled cell never computed" 2 !computed;
  Alcotest.(check (option int)) "a demanded" (Some 2) (Lbr.Speculate.demand sp a);
  Alcotest.(check (option int)) "b was cancelled" None (Lbr.Speculate.demand sp b);
  Alcotest.(check (option int))
    "never prefetched" None
    (Lbr.Speculate.demand sp (phi_of [ 9 ]));
  Lbr.Speculate.drain sp;
  let s = Lbr.Speculate.stats sp in
  Alcotest.(check int) "committed" 1 s.committed;
  Alcotest.(check int) "cancelled" 1 s.cancelled;
  Alcotest.(check int) "c wasted (computed, never demanded)" 1 s.wasted;
  Alcotest.(check int) "no failures" 0 s.failed

let test_speculate_width_budget () =
  let pending = Queue.create () in
  let sp =
    Lbr.Speculate.create
      ~spawn:(fun job -> Queue.add job pending)
      ~max_inflight:2
      (fun phi -> Assignment.cardinal phi)
  in
  List.iter (fun i -> Lbr.Speculate.prefetch sp (phi_of [ i ])) [ 0; 1; 2; 3 ];
  Alcotest.(check int) "width-capped" 2 (Lbr.Speculate.stats sp).launched;
  (* Demand on an unstarted cell reclaims it — the caller's inline
     computation becomes the only one, and the worker that later picks
     the job up walks away. *)
  Alcotest.(check (option int))
    "unstarted cell reclaimed" None
    (Lbr.Speculate.demand sp (phi_of [ 0 ]));
  Queue.iter (fun job -> job ()) pending;
  Lbr.Speculate.drain sp;
  Alcotest.(check int) "reclaim counted as a cancel" 1 (Lbr.Speculate.stats sp).cancelled

let test_speculate_gate_and_poison () =
  let sp =
    Lbr.Speculate.create
      ~spawn:(fun job -> job ())
      ~should_launch:(fun phi -> not (Assignment.mem 7 phi))
      (fun phi -> if Assignment.mem 3 phi then failwith "boom" else Assignment.cardinal phi)
  in
  Lbr.Speculate.prefetch sp (phi_of [ 7 ]);
  Alcotest.(check int) "gated launch dropped" 0 (Lbr.Speculate.stats sp).launched;
  Lbr.Speculate.prefetch sp (phi_of [ 3 ]);
  Alcotest.(check (option int))
    "poisoned worker reads as a miss" None
    (Lbr.Speculate.demand sp (phi_of [ 3 ]));
  Lbr.Speculate.drain sp;
  Alcotest.(check int) "failure counted" 1 (Lbr.Speculate.stats sp).failed

(* ------------------------------------------------------------------ *)
(* Speculative GBR must be byte-identical to sequential GBR: same
   result, same predicate work, same learned sets, same progression
   shapes — with verdicts actually computed on pool workers.           *)

let run_gbr_speculative cnf target n ~jobs =
  Lbr_runtime.Pool.with_pool ~jobs @@ fun pool ->
  let vpool = Var.Pool.create () in
  for i = 0 to n - 1 do
    ignore (Var.Pool.fresh vpool (Printf.sprintf "v%d" i))
  done;
  let check phi = Assignment.subset target phi in
  let sp =
    Lbr.Speculate.create
      ~spawn:(fun job ->
        ignore (Lbr_runtime.Pool.submit pool job : unit Lbr_runtime.Pool.future))
      ~max_inflight:(2 * jobs)
      check
  in
  let predicate =
    Lbr.Predicate.make (fun phi ->
        match Lbr.Speculate.demand sp phi with Some ok -> ok | None -> check phi)
  in
  let problem =
    Lbr.Problem.make ~pool:vpool ~universe:(universe_n n) ~constraints:cnf ~predicate
  in
  Fun.protect ~finally:(fun () -> Lbr.Speculate.drain sp) @@ fun () ->
  Lbr.Gbr.reduce ~speculate:sp problem ~order:(order_n n)

let prop_gbr_speculative_equals_sequential =
  QCheck.Test.make ~count:60
    ~name:"GBR speculative = sequential (result, work, learned, progressions)"
    (QCheck.make
       QCheck.Gen.(
         triple (implication_cnf_gen 7)
           (list_size (int_bound 3) (int_bound 6))
           (oneofl [ 2; 4 ])))
    (fun (cnf, target_seed, jobs) ->
      let universe = universe_n 7 in
      match
        Msa.compute cnf ~order:(order_n 7) ~universe
          ~required:(Assignment.of_list target_seed) ()
      with
      | None -> true
      | Some target -> (
          match
            (run_gbr_speculative cnf target 7 ~jobs, run_gbr cnf target 7 |> fst)
          with
          | Ok (m1, s1), Ok (m2, s2) -> Assignment.equal m1 m2 && stats_equal s1 s2
          | Error e1, Error e2 -> e1 = e2
          | Ok _, Error _ | Error _, Ok _ -> false))

(* The same equivalence on the pinned seeded workload, with the real
   decompiler-simulator predicate — once with healthy workers, once with
   fault-injected workers (a poisoned cell must degrade to the inline
   verdict, never to a different answer). *)
let test_gbr_speculative_on_workload () =
  let benchmarks = Lbr_harness.Corpus.build ~seed:11 ~programs:2 ~mean_classes:25 in
  let instances = Lbr_harness.Corpus.instances benchmarks in
  Alcotest.(check bool) "workload produced instances" true (instances <> []);
  Lbr_runtime.Pool.with_pool ~jobs:2 @@ fun pool ->
  List.iter
    (fun (instance : Lbr_harness.Corpus.instance) ->
      let jpool = instance.benchmark.pool in
      let run ~mode =
        let vpool = Var.Pool.create () in
        let jv = Lbr_jvm.Jvars.derive vpool jpool in
        let cnf = Lbr_jvm.Constraints.generate jv jpool in
        let check tool sub_pool_of phi =
          let errors = Lbr_decompiler.Tool.errors tool (sub_pool_of phi) in
          List.for_all (fun b -> List.mem b errors) instance.baseline_errors
        in
        let speculation =
          match mode with
          | `Sequential -> None
          | `Speculative | `Faulty_workers ->
              let worker_tool =
                match mode with
                | `Faulty_workers ->
                    Lbr_decompiler.Tool.with_faults
                      (Lbr_decompiler.Tool.Faults.make ~flaky_rate:0.4 ~seed:42 ())
                      instance.tool
                | _ -> instance.tool
              in
              (* Workers need their own prepared applier: [Reducer.prepare]
                 returns domain-local mutable state. *)
              let applier =
                Domain.DLS.new_key (fun () -> Lbr_jvm.Reducer.prepare jv jpool)
              in
              Some
                (Lbr.Speculate.create
                   ~spawn:(fun job ->
                     ignore
                       (Lbr_runtime.Pool.submit pool job : unit Lbr_runtime.Pool.future))
                   (fun phi -> check worker_tool (Domain.DLS.get applier) phi))
        in
        let inline_applier = Lbr_jvm.Reducer.prepare jv jpool in
        let predicate =
          Lbr.Predicate.make ~name:"gbr" (fun phi ->
              match Option.bind speculation (fun sp -> Lbr.Speculate.demand sp phi) with
              | Some ok -> ok
              | None -> check instance.tool inline_applier phi)
        in
        let problem =
          Lbr.Problem.make ~pool:vpool ~universe:(Lbr_jvm.Jvars.all jv) ~constraints:cnf
            ~predicate
        in
        Fun.protect ~finally:(fun () -> Option.iter Lbr.Speculate.drain speculation)
        @@ fun () ->
        match
          Lbr.Gbr.reduce ?speculate:speculation problem ~order:(Order.by_creation vpool)
        with
        | Ok (result, stats) -> (result, stats)
        | Error _ -> Alcotest.failf "%s: GBR failed" instance.instance_id
      in
      let id = instance.instance_id in
      let r_seq, s_seq = run ~mode:`Sequential in
      List.iter
        (fun (tag, mode) ->
          let r, s = run ~mode in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s same result" id tag)
            true (Assignment.equal r r_seq);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s same predicate runs" id tag)
            s_seq.predicate_runs s.predicate_runs;
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s same learned sets" id tag)
            true
            (List.equal Assignment.equal s.learned s_seq.learned);
          Alcotest.(check (list int))
            (Printf.sprintf "%s: %s same progression lengths" id tag)
            s_seq.progression_lengths s.progression_lengths)
        [ ("speculative", `Speculative); ("faulty workers", `Faulty_workers) ])
    instances

(* ------------------------------------------------------------------ *)
(* Lossy encodings                                                     *)

let prop_lossy_sound =
  QCheck.Test.make ~count:300 ~name:"lossy encodings strengthen the formula"
    (QCheck.make (implication_cnf_gen 6))
    (fun cnf ->
      List.for_all
        (fun pick ->
          let encoded = Lbr.Lossy.encode cnf ~pick in
          (* check all assignments over 6 vars *)
          let ok = ref true in
          for mask = 0 to 63 do
            let m =
              List.init 6 Fun.id
              |> List.filter (fun i -> mask land (1 lsl i) <> 0)
              |> Assignment.of_list
            in
            if not (Lbr.Lossy.is_sound_strengthening ~original:cnf ~encoded m) then ok := false
          done;
          !ok)
        [ Lbr.Lossy.First_first; Lbr.Lossy.Last_last ])

let test_lossy_all_graph () =
  let cnf =
    Cnf.make
      [
        Clause.make_exn ~neg:[ 0; 1 ] ~pos:[ 2; 3 ];
        Clause.edge 0 1;
        Clause.make_exn ~neg:[] ~pos:[ 4; 5 ];
      ]
  in
  List.iter
    (fun pick ->
      let encoded = Lbr.Lossy.encode cnf ~pick in
      Alcotest.(check bool) "all graph" true
        (List.for_all Clause.is_graph (Cnf.clauses encoded)))
    [ Lbr.Lossy.First_first; Lbr.Lossy.Last_last ];
  (* picks are the corners *)
  let enc1 = Lbr.Lossy.encode cnf ~pick:Lbr.Lossy.First_first in
  let edges, required = Lbr.Lossy.to_graph enc1 in
  Alcotest.(check bool) "first-first picks (0, 2)" true (List.mem (0, 2) edges);
  Alcotest.(check (list int)) "required picks 4" [ 4 ] required;
  let enc2 = Lbr.Lossy.encode cnf ~pick:Lbr.Lossy.Last_last in
  let edges2, required2 = Lbr.Lossy.to_graph enc2 in
  Alcotest.(check bool) "last-last picks (1, 3)" true (List.mem (1, 3) edges2);
  Alcotest.(check (list int)) "required picks 5" [ 5 ] required2

let test_lossy_rejects_negative () =
  let cnf = Cnf.make [ Clause.make_exn ~neg:[ 0 ] ~pos:[] ] in
  Alcotest.check_raises "purely negative clause rejected"
    (Invalid_argument "Lossy.encode: purely negative clause has no graph approximation")
    (fun () -> ignore (Lbr.Lossy.encode cnf ~pick:Lbr.Lossy.First_first))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_core"
    [
      ( "predicate",
        [
          Alcotest.test_case "memoization" `Quick test_predicate_memoization;
          Alcotest.test_case "observer" `Quick test_predicate_observer;
        ] );
      qsuite "progression" [ prop_progression_invariants ];
      qsuite "gbr-prop"
        [
          prop_gbr_graph_constraints;
          prop_gbr_graph_any_order;
          prop_gbr_general_constraints;
          prop_gbr_invariants_hold;
          prop_gbr_incremental_equals_rebuild;
          prop_gbr_speculative_equals_sequential;
        ];
      ( "gbr",
        [
          Alcotest.test_case "suboptimality example (§4.4)" `Quick test_gbr_suboptimal_example;
          Alcotest.test_case "iteration bound" `Quick test_gbr_iteration_bound;
          Alcotest.test_case "incremental = rebuild on seeded workload" `Quick
            test_gbr_incremental_on_workload;
          Alcotest.test_case "speculative = sequential on seeded workload" `Quick
            test_gbr_speculative_on_workload;
        ] );
      ( "speculate",
        [
          Alcotest.test_case "lifecycle" `Quick test_speculate_lifecycle;
          Alcotest.test_case "width budget and reclaim" `Quick test_speculate_width_budget;
          Alcotest.test_case "gating and poisoning" `Quick test_speculate_gate_and_poison;
        ] );
      qsuite "lossy-prop" [ prop_lossy_sound ];
      ( "lossy",
        [
          Alcotest.test_case "graph output and corner picks" `Quick test_lossy_all_graph;
          Alcotest.test_case "negative clause rejected" `Quick test_lossy_rejects_negative;
        ] );
    ]
