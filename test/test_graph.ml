(* Tests for bitsets, digraphs, Tarjan SCC, and closure tables. *)

let test_bitset_basics () =
  let s = Lbr_graph.Bitset.create 70 in
  Lbr_graph.Bitset.add s 0;
  Lbr_graph.Bitset.add s 63;
  Lbr_graph.Bitset.add s 69;
  Alcotest.(check bool) "mem 63" true (Lbr_graph.Bitset.mem s 63);
  Alcotest.(check bool) "not mem 5" false (Lbr_graph.Bitset.mem s 5);
  Alcotest.(check int) "cardinal" 3 (Lbr_graph.Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 69 ] (Lbr_graph.Bitset.to_list s)

let test_bitset_union_subset () =
  let a = Lbr_graph.Bitset.of_list 10 [ 1; 2 ] in
  let b = Lbr_graph.Bitset.of_list 10 [ 2; 7 ] in
  let c = Lbr_graph.Bitset.copy a in
  Lbr_graph.Bitset.union_into ~dst:c b;
  Alcotest.(check (list int)) "union" [ 1; 2; 7 ] (Lbr_graph.Bitset.to_list c);
  Alcotest.(check bool) "a subset union" true (Lbr_graph.Bitset.subset a c);
  Alcotest.(check bool) "union not subset a" false (Lbr_graph.Bitset.subset c a);
  Alcotest.(check bool) "equal self" true (Lbr_graph.Bitset.equal a a)

let test_digraph_reachable () =
  let g = Lbr_graph.Digraph.make ~n:5 ~edges:[ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g 0));
  Alcotest.(check (list int)) "from 3" [ 3; 4 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g 3));
  Alcotest.(check (list int)) "from set" [ 0; 1; 2; 3; 4 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable_from_set g [ 0; 3 ]))

let test_digraph_dedup () =
  let g = Lbr_graph.Digraph.make ~n:3 ~edges:[ (0, 1); (0, 1); (1, 1) ] in
  Alcotest.(check int) "self loops and dups dropped" 1 (Lbr_graph.Digraph.num_edges g)

let test_scc_cycle () =
  let g = Lbr_graph.Digraph.make ~n:6 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (4, 5) ] in
  let r = Lbr_graph.Scc.compute g in
  Alcotest.(check int) "4 components" 4 r.num_comps;
  Alcotest.(check bool) "0,1,2 together" true
    (r.comp_of.(0) = r.comp_of.(1) && r.comp_of.(1) = r.comp_of.(2));
  Alcotest.(check bool) "3 separate" true (r.comp_of.(3) <> r.comp_of.(0));
  (* reverse-topological ids: successors have smaller ids *)
  Alcotest.(check bool) "topo order" true (r.comp_of.(3) < r.comp_of.(0))

let test_all_closures_match_reachability () =
  let g =
    Lbr_graph.Digraph.make ~n:7
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (5, 4); (6, 5); (6, 0) ]
  in
  let closures = Lbr_graph.Scc.all_closures g in
  for v = 0 to 6 do
    Alcotest.(check (list int))
      (Printf.sprintf "closure of %d" v)
      (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g v))
      (Lbr_graph.Bitset.to_list closures.(v))
  done

let prop_closures_equal_reachability =
  QCheck.Test.make ~count:200 ~name:"all_closures = per-node reachability"
    QCheck.(make Gen.(list_size (int_bound 20) (pair (int_bound 9) (int_bound 9))))
    (fun edges ->
      let g = Lbr_graph.Digraph.make ~n:10 ~edges in
      let closures = Lbr_graph.Scc.all_closures g in
      List.for_all
        (fun v ->
          Lbr_graph.Bitset.equal closures.(v) (Lbr_graph.Digraph.reachable g v))
        (List.init 10 Fun.id))

(* Word-level set algebra vs a list-based reference, across word
   boundaries. *)
let prop_bitset_matches_lists =
  let module B = Lbr_graph.Bitset in
  QCheck.Test.make ~count:500 ~name:"bitset ops mirror sorted-list sets"
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_bound 30) (int_bound 129)) (list_size (int_bound 30) (int_bound 129))))
    (fun (xs, ys) ->
      let cap = 130 in
      let a = B.of_list cap xs and b = B.of_list cap ys in
      let sx = List.sort_uniq compare xs and sy = List.sort_uniq compare ys in
      let as_list s = B.to_list s in
      let union = List.sort_uniq compare (sx @ sy) in
      let inter = List.filter (fun v -> List.mem v sy) sx in
      let diff = List.filter (fun v -> not (List.mem v sy)) sx in
      as_list (B.union a b) = union
      && as_list (B.inter a b) = inter
      && as_list (B.diff a b) = diff
      && (let c = B.copy a in
          B.union_into ~dst:c b;
          as_list c = union)
      && (let c = B.copy a in
          B.inter_into ~dst:c b;
          as_list c = inter)
      && (let c = B.copy a in
          B.diff_into ~dst:c b;
          as_list c = diff)
      && B.subset a b = List.for_all (fun v -> List.mem v sy) sx
      && B.equal a b = (sx = sy)
      && B.cardinal a = List.length sx
      && Lbr_logic.Assignment.to_list (B.to_assignment a) = sx)

let test_bitset_to_assignment () =
  let module B = Lbr_graph.Bitset in
  let s = B.of_list 200 [ 0; 62; 63; 64; 126; 127; 128; 199 ] in
  let a = B.to_assignment s in
  Alcotest.(check (list int))
    "word handover keeps every boundary bit" [ 0; 62; 63; 64; 126; 127; 128; 199 ]
    (Lbr_logic.Assignment.to_list a);
  Alcotest.(check int) "cardinal agrees" (B.cardinal s) (Lbr_logic.Assignment.cardinal a)

let () =
  Alcotest.run "lbr_graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "union/subset" `Quick test_bitset_union_subset;
          Alcotest.test_case "to_assignment" `Quick test_bitset_to_assignment;
        ] );
      ( "bitset-prop", [ QCheck_alcotest.to_alcotest ~long:false prop_bitset_matches_lists ] );
      ( "digraph",
        [
          Alcotest.test_case "reachable" `Quick test_digraph_reachable;
          Alcotest.test_case "dedup" `Quick test_digraph_dedup;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "closure table" `Quick test_all_closures_match_reachability;
        ] );
      ( "scc-prop",
        [ QCheck_alcotest.to_alcotest ~long:false prop_closures_equal_reachability ] );
    ]
