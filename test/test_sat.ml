(* Tests for the DPLL solver and the order-driven MSA engine. *)

open Lbr_logic
open Lbr_sat

let naive_sat cnf n =
  let rec masks mask = if mask >= 1 lsl n then None
    else
      let m = List.init n (fun i -> i) |> List.filter (fun i -> mask land (1 lsl i) <> 0)
              |> Assignment.of_list in
      if Cnf.holds cnf m then Some m else masks (mask + 1)
  in
  masks 0

let random_cnf_gen n =
  let open QCheck.Gen in
  let lit = pair (int_bound (n - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  map
    (fun clauses ->
      clauses
      |> List.filter_map (fun lits ->
             let neg = List.filter_map (fun (v, s) -> if s then None else Some v) lits in
             let pos = List.filter_map (fun (v, s) -> if s then Some v else None) lits in
             Clause.make ~neg ~pos)
      |> Cnf.make)
    (list_size (int_range 0 10) clause)

(* Implication-fragment CNF: every clause has >= 1 positive literal, so the
   MSA fixpoint engine never conflicts. *)
let implication_cnf_gen n =
  let open QCheck.Gen in
  let clause =
    map2
      (fun negs poss -> Clause.make ~neg:negs ~pos:poss)
      (list_size (int_bound 2) (int_bound (n - 1)))
      (list_size (int_range 1 2) (int_bound (n - 1)))
  in
  map (fun cs -> Cnf.make (List.filter_map Fun.id cs)) (list_size (int_range 0 10) clause)

let graph_cnf_gen n =
  let open QCheck.Gen in
  let edge = map2 (fun a b -> if a = b then None else Some (Clause.edge a b))
      (int_bound (n - 1)) (int_bound (n - 1)) in
  map (fun cs -> Cnf.make (List.filter_map Fun.id cs)) (list_size (int_range 0 12) edge)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)

let prop_solver_agrees_with_naive =
  QCheck.Test.make ~count:300 ~name:"Solver.solve finds a model iff one exists"
    (QCheck.make (random_cnf_gen 7))
    (fun cnf ->
      match Solver.solve cnf, naive_sat cnf 7 with
      | Some m, Some _ -> Cnf.holds cnf m
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_solve_with_required =
  QCheck.Test.make ~count:200 ~name:"Solver.solve_with respects required"
    (QCheck.make QCheck.Gen.(pair (random_cnf_gen 6) (int_bound 5)))
    (fun (cnf, r) ->
      match Solver.solve_with cnf ~required:(Assignment.singleton r) with
      | None -> true
      | Some m -> Assignment.mem r m && Cnf.holds cnf m)

let prop_minimize_subset =
  QCheck.Test.make ~count:200 ~name:"Solver.minimize shrinks within the model"
    (QCheck.make (random_cnf_gen 6))
    (fun cnf ->
      match Solver.solve cnf with
      | None -> true
      | Some model ->
          let order = Order.of_list (List.init 6 Fun.id) in
          let small = Solver.minimize cnf ~order ~required:Assignment.empty ~model in
          Assignment.subset small model && Cnf.holds cnf small)

(* ------------------------------------------------------------------ *)
(* MSA                                                                 *)

let order6 = Order.of_list (List.init 6 Fun.id)

let prop_msa_satisfies =
  QCheck.Test.make ~count:300 ~name:"MSA result satisfies the formula and required set"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 6) (list_size (int_bound 2) (int_bound 5))))
    (fun (cnf, req) ->
      let required = Assignment.of_list req in
      let universe = Assignment.of_list (List.init 6 Fun.id) in
      match Msa.compute cnf ~order:order6 ~universe ~required () with
      | None -> false (* implication fragment with required always satisfiable *)
      | Some m -> Assignment.subset required m && Cnf.holds cnf m)

(* On graph constraints the MSA is the exact least model: it equals the
   forward closure of the required set over the implication edges. *)
let prop_msa_least_model_on_graphs =
  QCheck.Test.make ~count:300 ~name:"MSA on graph constraints = reachability closure"
    (QCheck.make QCheck.Gen.(pair (graph_cnf_gen 6) (list_size (int_bound 3) (int_bound 5))))
    (fun (cnf, req) ->
      let required = Assignment.of_list req in
      let universe = Assignment.of_list (List.init 6 Fun.id) in
      match Msa.compute cnf ~order:order6 ~universe ~required () with
      | None -> false
      | Some m ->
          (* closure by brute force *)
          let edges =
            Cnf.clauses cnf
            |> List.map (fun (c : Clause.t) -> (c.neg.(0), c.pos.(0)))
          in
          let rec close set =
            let next =
              List.fold_left
                (fun acc (a, b) -> if Assignment.mem a acc then Assignment.add b acc else acc)
                set edges
            in
            if Assignment.equal next set then set else close next
          in
          Assignment.equal m (close required))

let test_msa_order_tiebreak () =
  (* required head choice follows the order: a => b | c. *)
  let cnf = Cnf.make [ Clause.make_exn ~neg:[ 0 ] ~pos:[ 1; 2 ] ] in
  let universe = Assignment.of_list [ 0; 1; 2 ] in
  let check order expected =
    match Msa.compute cnf ~order ~universe ~required:(Assignment.singleton 0) () with
    | None -> Alcotest.fail "unsat"
    | Some m -> Alcotest.(check (list int)) "chosen head" expected (Assignment.to_list m)
  in
  check (Order.of_list [ 0; 1; 2 ]) [ 0; 1 ];
  check (Order.of_list [ 0; 2; 1 ]) [ 0; 2 ]

let test_msa_engine_incremental () =
  (* Incremental assumes equal one-shot computes. *)
  let cnf =
    Cnf.make [ Clause.edge 0 1; Clause.edge 1 2; Clause.make_exn ~neg:[ 2; 3 ] ~pos:[ 4 ] ]
  in
  let universe = Assignment.of_list [ 0; 1; 2; 3; 4 ] in
  let order = Order.of_list [ 0; 1; 2; 3; 4 ] in
  match Msa.Engine.create cnf ~order ~universe with
  | Error `Conflict -> Alcotest.fail "unexpected conflict"
  | Ok engine ->
      Alcotest.(check bool) "assume 0" true (Msa.Engine.assume engine 0 = Ok ());
      Alcotest.(check (list int)) "closure of 0" [ 0; 1; 2 ]
        (Assignment.to_list (Msa.Engine.true_set engine));
      Alcotest.(check bool) "assume 3" true (Msa.Engine.assume engine 3 = Ok ());
      Alcotest.(check (list int)) "horn fires" [ 0; 1; 2; 3; 4 ]
        (Assignment.to_list (Msa.Engine.true_set engine))

let test_msa_conflict_fallback () =
  (* Purely negative clause: engine conflicts, fallback DPLL path answers. *)
  let cnf = Cnf.make [ Clause.make_exn ~neg:[ 0; 1 ] ~pos:[]; Clause.edge 0 1 ] in
  let universe = Assignment.of_list [ 0; 1 ] in
  let order = Order.of_list [ 0; 1 ] in
  (match Msa.compute cnf ~order ~universe ~required:Assignment.empty () with
  | None -> Alcotest.fail "satisfiable: empty set works"
  | Some m -> Alcotest.(check bool) "empty or consistent" true (Cnf.holds cnf m));
  match Msa.compute cnf ~order ~universe ~required:(Assignment.singleton 0) () with
  | None -> () (* requiring 0 forces 1 (edge), violating the negative clause *)
  | Some _ -> Alcotest.fail "should be unsat with required=0"

(* MSA respects the universe restriction: variables outside it never turn
   on, even when clauses mention them. *)
let prop_msa_respects_universe =
  QCheck.Test.make ~count:300 ~name:"MSA never assigns outside the universe"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 6) (list_size (int_range 1 4) (int_bound 5))))
    (fun (cnf, uni) ->
      let universe = Assignment.of_list uni in
      match Msa.compute cnf ~order:order6 ~universe ~required:Assignment.empty () with
      | None -> true
      | Some m -> Assignment.subset m universe)

(* The engine's closure is monotone in its assumptions. *)
let prop_engine_monotone =
  QCheck.Test.make ~count:200 ~name:"engine closures grow monotonically"
    (QCheck.make QCheck.Gen.(pair (implication_cnf_gen 6) (list_size (int_bound 4) (int_bound 5))))
    (fun (cnf, to_assume) ->
      let universe = Assignment.of_list (List.init 6 Fun.id) in
      match Msa.Engine.create cnf ~order:order6 ~universe with
      | Error `Conflict -> true
      | Ok engine ->
          let rec go previous = function
            | [] -> true
            | v :: rest -> (
                match Msa.Engine.assume engine v with
                | Error `Conflict -> true
                | Ok () ->
                    let current = Msa.Engine.true_set engine in
                    Assignment.subset previous current
                    && Assignment.mem v current
                    && go current rest)
          in
          go (Msa.Engine.true_set engine) to_assume)

(* Snapshot/rollback must make one engine behave exactly like a family of
   fresh engines — the contract Progression.build_slow relies on when it
   reuses one engine across all entries. *)
let prop_engine_rollback_replay =
  QCheck.Test.make ~count:200 ~name:"rollback + replay = fresh engine"
    (QCheck.make
       QCheck.Gen.(
         triple (implication_cnf_gen 6)
           (list_size (int_bound 4) (int_bound 5))
           (list_size (int_bound 4) (int_bound 5))))
    (fun (cnf, first, second) ->
      let universe = Assignment.of_list (List.init 6 Fun.id) in
      let fresh vars =
        match Msa.Engine.create cnf ~order:order6 ~universe with
        | Error `Conflict -> None
        | Ok e -> (
            match Msa.Engine.assume_all e vars with
            | Ok () -> Some (Msa.Engine.true_set e)
            | Error `Conflict -> None)
      in
      match Msa.Engine.create cnf ~order:order6 ~universe with
      | Error `Conflict -> true
      | Ok engine ->
          let base = Msa.Engine.snapshot engine in
          let run vars =
            match Msa.Engine.assume_all engine vars with
            | Ok () -> Some (Msa.Engine.true_set engine)
            | Error `Conflict -> None
          in
          let r1 = run first in
          Msa.Engine.rollback engine base;
          let r2 = run second in
          Msa.Engine.rollback engine base;
          let r1' = run first in
          Option.equal Assignment.equal r1 r1'
          && Option.equal Assignment.equal r1 (fresh first)
          && Option.equal Assignment.equal r2 (fresh second))

(* ------------------------------------------------------------------ *)
(* Structural operations (add_clause, narrow) composing with
   snapshot/rollback: rolling back across a structural change must restore
   the engine exactly — same closure now, same behavior on every subsequent
   operation as a fresh engine brought to the snapshot point. *)

let universe6 = Assignment.of_list (List.init 6 Fun.id)

(* A fresh engine advanced to the same assumptions — the reference the
   rolled-back engine must be indistinguishable from. *)
let twin_at cnf assumed =
  match Msa.Engine.create cnf ~order:order6 ~universe:universe6 with
  | Error `Conflict -> None
  | Ok e -> (
      match Msa.Engine.assume_all e assumed with
      | Ok () -> Some e
      | Error `Conflict -> None)

(* Same visible state now, and the same result + state after every probe
   assumption (out-of-universe and conflicting assumes included). *)
let behaves_like e f probes =
  Assignment.equal (Msa.Engine.true_set e) (Msa.Engine.true_set f)
  && List.for_all
       (fun v ->
         let re = Msa.Engine.assume e v and rf = Msa.Engine.assume f v in
         re = rf && Assignment.equal (Msa.Engine.true_set e) (Msa.Engine.true_set f))
       probes

let probes6 = List.init 6 Fun.id

let prop_add_clause_rollback =
  QCheck.Test.make ~count:300 ~name:"add_clause + rollback restores the engine exactly"
    (QCheck.make
       QCheck.Gen.(
         quad (implication_cnf_gen 6)
           (list_size (int_bound 3) (int_bound 5))
           (list_size (int_range 1 3) (int_bound 5))
           (list_size (int_bound 3) (int_bound 5))))
    (fun (cnf, pre, pos, post) ->
      match Msa.Engine.create cnf ~order:order6 ~universe:universe6 with
      | Error `Conflict -> true
      | Ok e -> (
          match Msa.Engine.assume_all e pre with
          | Error `Conflict -> true
          | Ok () -> (
              let snap = Msa.Engine.snapshot e in
              let before = Msa.Engine.true_set e in
              match Msa.Engine.add_clause e ~pos:(List.sort_uniq compare pos) with
              | Error `Conflict -> true
              | Ok () ->
                  (match Msa.Engine.assume_all e post with
                  | Ok () | Error `Conflict -> ());
                  Msa.Engine.rollback e snap;
                  Assignment.equal (Msa.Engine.true_set e) before
                  && (match twin_at cnf pre with
                     | None -> false
                     | Some f -> behaves_like e f probes6))))

let prop_narrow_rollback =
  QCheck.Test.make ~count:300 ~name:"narrow + rollback restores the engine exactly"
    (QCheck.make
       QCheck.Gen.(
         quad (implication_cnf_gen 6)
           (list_size (int_bound 3) (int_bound 5))
           (list_size (int_bound 5) (int_bound 5))
           (list_size (int_bound 3) (int_bound 5))))
    (fun (cnf, pre, keep_list, post) ->
      match Msa.Engine.create cnf ~order:order6 ~universe:universe6 with
      | Error `Conflict -> true
      | Ok e -> (
          match Msa.Engine.assume_all e pre with
          | Error `Conflict -> true
          | Ok () ->
              let snap = Msa.Engine.snapshot e in
              let before = Msa.Engine.true_set e in
              let keep = Assignment.of_list keep_list in
              (* A conflicting narrow leaves the engine unusable until rolled
                 back — the rollback must restore it either way. *)
              (match Msa.Engine.narrow e ~keep with
              | Ok () -> (
                  match
                    Msa.Engine.assume_all e
                      (List.filter (fun v -> Assignment.mem v keep) post)
                  with
                  | Ok () | Error `Conflict -> ())
              | Error `Conflict -> ());
              Msa.Engine.rollback e snap;
              Assignment.equal (Msa.Engine.true_set e) before
              && (match twin_at cnf pre with
                 | None -> false
                 | Some f -> behaves_like e f probes6)))

(* The inter-iteration update of the incremental GBR core: appending a
   learned disjunction and narrowing must be indistinguishable from a fresh
   engine on the rebuilt formula ([r_plus] prepends the learned clause) at
   the shrunk universe — including conflict parity. *)
let prop_add_narrow_equals_rebuild =
  QCheck.Test.make ~count:300
    ~name:"add_clause + narrow = fresh create on the rebuilt formula"
    (QCheck.make
       QCheck.Gen.(
         triple (implication_cnf_gen 6)
           (list_size (int_range 1 3) (int_bound 5))
           (list_size (int_bound 5) (int_bound 5))))
    (fun (cnf, pos, keep_list) ->
      let pos = List.sort_uniq compare pos in
      let keep = Assignment.of_list keep_list in
      match Msa.Engine.create cnf ~order:order6 ~universe:universe6 with
      | Error `Conflict -> true
      | Ok e -> (
          let incremental =
            match Msa.Engine.add_clause e ~pos with
            | Error `Conflict -> None
            | Ok () -> (
                match Msa.Engine.narrow e ~keep with
                | Error `Conflict -> None
                | Ok () -> Some e)
          in
          let rebuilt =
            match
              Msa.Engine.create
                (Cnf.add_clause cnf (Clause.of_disjunction ~pos))
                ~order:order6 ~universe:keep
            with
            | Error `Conflict -> None
            | Ok f -> Some f
          in
          match incremental, rebuilt with
          | None, None -> true
          | Some e, Some f -> behaves_like e f probes6
          | None, Some _ | Some _, None -> false))

(* Fork must produce a fully independent twin of a quiescent engine: one
   fork behaves exactly like the original on every subsequent probe, and
   driving a second fork through assumes and a narrow never moves the
   original.  Arena-backed forks must behave the same after a
   release/refork cycle (the arena resets recycled shells in place). *)
let prop_fork_independent =
  QCheck.Test.make ~count:300 ~name:"fork = independent twin"
    (QCheck.make
       QCheck.Gen.(
         quad (implication_cnf_gen 6)
           (list_size (int_bound 3) (int_bound 5))
           (list_size (int_range 1 3) (int_bound 5))
           (list_size (int_bound 4) (int_bound 5))))
    (fun (cnf, pre, pos, post) ->
      match Msa.Engine.create cnf ~order:order6 ~universe:universe6 with
      | Error `Conflict -> true
      | Ok e -> (
          match Msa.Engine.assume_all e pre with
          | Error `Conflict -> true
          | Ok () -> (
              match Msa.Engine.add_clause e ~pos:(List.sort_uniq compare pos) with
              | Error `Conflict -> true
              | Ok () ->
                  let before = Msa.Engine.true_set e in
                  let arena = Msa.Arena.create () in
                  let scratch = Msa.Engine.fork ~arena e in
                  (match Msa.Engine.assume_all scratch post with
                  | Ok () -> (
                      match Msa.Engine.narrow scratch ~keep:(Assignment.of_list post) with
                      | Ok () | Error `Conflict -> ())
                  | Error `Conflict -> ());
                  Msa.Arena.release arena scratch;
                  (* A recycled shell must fork just as cleanly as a fresh one. *)
                  let twin = Msa.Engine.fork ~arena e in
                  Assignment.equal (Msa.Engine.true_set e) before
                  && behaves_like e twin probes6)))

(* ------------------------------------------------------------------ *)
(* Watched-premise propagation vs the counter-based scan scheme it
   replaced.  [Scan] is a direct reimplementation of the pre-watched
   engine's propagation core — a premises-left counter per clause, eager
   satisfied-flag sweeps, occurrence lists in decreasing clause order —
   with none of the watched machinery.  The two must produce identical
   closures and conflict verdicts after every assumption: the firing
   schedule is observable (head tie-breaks depend on which clause fires
   first), so this pins schedule equivalence, not just least-model
   equality. *)
module Scan = struct
  type t = {
    order : Order.t;
    truth : bool array;
    in_universe : bool array;
    heads : Var.t array array;
    premises_left : int array;
    satisfied : bool array;
    occs_premise : int list array;  (* var -> premise clauses, decreasing ci *)
    occs_head : int list array;
    trail : Var.t array;
    mutable trail_len : int;
    mutable drained : int;
    mutable conflicted : bool;
  }

  let set_true t v =
    if not t.truth.(v) then begin
      t.truth.(v) <- true;
      t.trail.(t.trail_len) <- v;
      t.trail_len <- t.trail_len + 1
    end

  let trigger t ci =
    if not t.satisfied.(ci) then
      if Array.exists (fun h -> t.truth.(h)) t.heads.(ci) then t.satisfied.(ci) <- true
      else
        match Order.min_of_array t.order t.heads.(ci) ~keep:(fun h -> t.in_universe.(h)) with
        | None -> t.conflicted <- true
        | Some h ->
            t.satisfied.(ci) <- true;
            set_true t h

  let drain t =
    while (not t.conflicted) && t.drained < t.trail_len do
      let v = t.trail.(t.drained) in
      t.drained <- t.drained + 1;
      List.iter (fun ci -> t.satisfied.(ci) <- true) t.occs_head.(v);
      List.iter
        (fun ci ->
          t.premises_left.(ci) <- t.premises_left.(ci) - 1;
          if t.premises_left.(ci) = 0 then trigger t ci)
        t.occs_premise.(v)
    done

  let create cnf ~order ~universe =
    let n =
      let m = ref (-1) in
      Assignment.iter (fun v -> if v > !m then m := v) (Cnf.vars cnf);
      Assignment.iter (fun v -> if v > !m then m := v) universe;
      !m + 1
    in
    let in_universe = Array.make n false in
    Assignment.iter (fun v -> in_universe.(v) <- true) universe;
    let relevant =
      List.filter
        (fun (c : Clause.t) -> Array.for_all (fun v -> in_universe.(v)) c.neg)
        (Cnf.clauses cnf)
      |> Array.of_list
    in
    let nclauses = Array.length relevant in
    let heads =
      Array.map
        (fun (c : Clause.t) ->
          Array.to_list c.pos |> List.filter (fun v -> in_universe.(v)) |> Array.of_list)
        relevant
    in
    let occs_premise = Array.make n [] and occs_head = Array.make n [] in
    for ci = 0 to nclauses - 1 do
      Array.iter (fun v -> occs_premise.(v) <- ci :: occs_premise.(v)) relevant.(ci).neg;
      Array.iter (fun v -> occs_head.(v) <- ci :: occs_head.(v)) heads.(ci)
    done;
    let t =
      {
        order;
        truth = Array.make n false;
        in_universe;
        heads;
        premises_left = Array.map (fun (c : Clause.t) -> Array.length c.neg) relevant;
        satisfied = Array.make nclauses false;
        occs_premise;
        occs_head;
        trail = Array.make n 0;
        trail_len = 0;
        drained = 0;
        conflicted = Cnf.is_unsat cnf;
      }
    in
    Array.iteri (fun ci pl -> if pl = 0 then trigger t ci) t.premises_left;
    drain t;
    if t.conflicted then Error `Conflict else Ok t

  let assume t v =
    if t.conflicted then Error `Conflict
    else if v >= Array.length t.in_universe || not t.in_universe.(v) then Error `Conflict
    else begin
      set_true t v;
      drain t;
      if t.conflicted then Error `Conflict else Ok ()
    end

  let true_set t =
    let acc = ref [] in
    for v = Array.length t.truth - 1 downto 0 do
      if t.truth.(v) then acc := v :: !acc
    done;
    Assignment.of_list !acc
end

(* Lockstep comparison: same create verdict, same closure, and after every
   assumption the same verdict and closure again.  Stops at the first
   conflict (both engines are unusable past it by contract). *)
let watched_equals_scan cnf ~order ~universe assumes =
  match Msa.Engine.create cnf ~order ~universe, Scan.create cnf ~order ~universe with
  | Error `Conflict, Error `Conflict -> true
  | Error `Conflict, Ok _ | Ok _, Error `Conflict -> false
  | Ok e, Ok s ->
      Assignment.equal (Msa.Engine.true_set e) (Scan.true_set s)
      &&
      let rec go = function
        | [] -> true
        | v :: rest -> (
            match Msa.Engine.assume e v, Scan.assume s v with
            | Ok (), Ok () ->
                Assignment.equal (Msa.Engine.true_set e) (Scan.true_set s) && go rest
            | Error `Conflict, Error `Conflict -> true
            | Ok (), Error `Conflict | Error `Conflict, Ok () -> false)
      in
      go assumes

let prop_watched_equals_scan_implications =
  QCheck.Test.make ~count:400 ~name:"watched = counter-scan (implication fragment)"
    (QCheck.make
       QCheck.Gen.(pair (implication_cnf_gen 6) (list_size (int_bound 5) (int_bound 7))))
    (fun (cnf, assumes) ->
      watched_equals_scan cnf ~order:order6
        ~universe:(Assignment.of_list (List.init 6 Fun.id))
        assumes)

let prop_watched_equals_scan_general =
  QCheck.Test.make ~count:400 ~name:"watched = counter-scan (conflicting clauses)"
    (QCheck.make
       QCheck.Gen.(pair (random_cnf_gen 6) (list_size (int_bound 5) (int_bound 7))))
    (fun (cnf, assumes) ->
      watched_equals_scan cnf ~order:order6
        ~universe:(Assignment.of_list (List.init 6 Fun.id))
        assumes)

(* And on a shrunk universe, where clauses get dropped or their head lists
   filtered at indexing time. *)
let prop_watched_equals_scan_narrowed_universe =
  QCheck.Test.make ~count:400 ~name:"watched = counter-scan (partial universe)"
    (QCheck.make
       QCheck.Gen.(
         triple (random_cnf_gen 6)
           (list_size (int_range 1 5) (int_bound 5))
           (list_size (int_bound 5) (int_bound 7))))
    (fun (cnf, uni, assumes) ->
      watched_equals_scan cnf ~order:order6 ~universe:(Assignment.of_list uni) assumes)

(* ------------------------------------------------------------------ *)
(* Pinned values on a realistic workload: any change to MSA head choice,
   clause indexing order, or the engine's undo discipline shows up here. *)

let checksum m = Assignment.fold (fun v acc -> ((acc * 1000003) + v) land max_int) m 0

let test_msa_pinned_workload () =
  let pool =
    Lbr_workload.Generator.generate ~seed:7 (Lbr_workload.Generator.njr_profile ~classes:40)
  in
  let vpool = Var.Pool.create () in
  let jv = Lbr_jvm.Jvars.derive vpool pool in
  let cnf = Lbr_jvm.Constraints.generate jv pool in
  let universe = Lbr_jvm.Jvars.all jv in
  let order = Order.by_creation vpool in
  Alcotest.(check int) "universe size" 587 (Assignment.cardinal universe);
  Alcotest.(check int) "clause count" 1914 (Cnf.num_clauses cnf);
  let msa req = Msa.compute cnf ~order ~universe ~required:(Assignment.of_list req) () in
  let check name req card sum =
    match msa req with
    | None -> Alcotest.failf "%s: unexpectedly unsat" name
    | Some m ->
        Alcotest.(check int) (name ^ ": cardinal") card (Assignment.cardinal m);
        Alcotest.(check int) (name ^ ": checksum") sum (checksum m)
  in
  check "required {}" [] 0 0;
  check "required {0}" [ 0 ] 1 0;
  check "required {17}" [ 17 ] 3 9000069000143;
  check "required {123}" [ 123 ] 10 3119680083862155803;
  check "required {500}" [ 500 ] 8 2391785680800883110;
  (match msa [ 1111 ] with
  | None -> ()
  | Some _ -> Alcotest.fail "required {1111} should be unsat");
  (* The watched engine against the counter-scan reference on the real
     constraint system, not just random 6-variable formulas. *)
  List.iter
    (fun req ->
      Alcotest.(check bool)
        (Printf.sprintf "watched = scan on workload, %d assumes" (List.length req))
        true
        (watched_equals_scan cnf ~order ~universe req))
    [ []; [ 0 ]; [ 17 ]; [ 123 ]; [ 500 ]; [ 17; 123; 500 ]; [ 1111 ] ];
  match Lbr.Progression.build ~cnf ~order ~learned:[] ~universe with
  | Error `Unsat -> Alcotest.fail "progression unexpectedly unsat"
  | Ok entries ->
      Alcotest.(check int) "progression entries" 448 (List.length entries);
      let unions = Lbr.Progression.prefix_unions entries in
      Alcotest.(check int) "last prefix union covers the universe" 587
        (Assignment.cardinal unions.(Array.length unions - 1))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_sat"
    [
      qsuite "solver"
        [ prop_solver_agrees_with_naive; prop_solve_with_required; prop_minimize_subset ];
      qsuite "msa-prop"
        [
          prop_msa_satisfies;
          prop_msa_least_model_on_graphs;
          prop_msa_respects_universe;
          prop_engine_monotone;
          prop_engine_rollback_replay;
          prop_add_clause_rollback;
          prop_narrow_rollback;
          prop_add_narrow_equals_rebuild;
          prop_fork_independent;
          prop_watched_equals_scan_implications;
          prop_watched_equals_scan_general;
          prop_watched_equals_scan_narrowed_universe;
        ];
      ( "msa",
        [
          Alcotest.test_case "order tie-break" `Quick test_msa_order_tiebreak;
          Alcotest.test_case "incremental engine" `Quick test_msa_engine_incremental;
          Alcotest.test_case "conflict fallback" `Quick test_msa_conflict_fallback;
          Alcotest.test_case "pinned 40-class workload" `Quick test_msa_pinned_workload;
        ] );
    ]
