(* The parallel runtime: domain pool, resilient oracle, fault injection,
   and the determinism of parallel corpus runs. *)

open Lbr_logic
open Lbr_runtime

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)

let test_submit_await () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let f = Pool.submit pool (fun () -> 21 * 2) in
      Alcotest.(check int) "await returns the value" 42 (Pool.await f);
      Alcotest.(check int) "await is repeatable" 42 (Pool.await f))

let test_map_list_ordered () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      let expected = List.map (fun i -> i * i) xs in
      Alcotest.(check (list int))
        "results in submission order" expected
        (Pool.map_list pool (fun i -> i * i) xs))

let test_map_list_single_worker () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int))
        "jobs=1 pool works" [ 1; 2; 3 ]
        (Pool.map_list pool (fun i -> i + 1) [ 0; 1; 2 ]))

let test_exceptions_propagate () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let f = Pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "task exception re-raised by await" (Failure "boom") (fun () ->
          ignore (Pool.await f));
      (* the pool survives a failed task *)
      Alcotest.(check int) "pool still alive" 7 (Pool.await (Pool.submit pool (fun () -> 7))))

let test_submit_after_shutdown_raises () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check int) "task before shutdown" 1 (Pool.await (Pool.submit pool (fun () -> 1)));
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> 2)))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_parallel_counter_updates () =
  (* Many concurrent tasks hammering shared mutex-guarded state. *)
  let counter = ref 0 in
  let mutex = Mutex.create () in
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map_list pool
          (fun _ ->
            Mutex.lock mutex;
            incr counter;
            Mutex.unlock mutex;
            1)
          (List.init 500 Fun.id)
      in
      Alcotest.(check int) "all tasks ran" 500 (List.fold_left ( + ) 0 results));
  Alcotest.(check int) "no lost updates" 500 !counter

(* ------------------------------------------------------------------ *)
(* Oracle                                                             *)

let assignment_of_int n = Assignment.of_list [ n ]

let test_oracle_memo_and_counters () =
  let executions = ref 0 in
  let oracle =
    Oracle.make ~name:"parity" (fun a ->
        incr executions;
        Assignment.cardinal a mod 2 = 0)
  in
  let input = Assignment.of_list [ 1; 2 ] in
  Alcotest.(check bool) "first run" true (Oracle.run oracle input);
  Alcotest.(check bool) "second run (memoized)" true (Oracle.run oracle input);
  Alcotest.(check int) "one underlying execution" 1 !executions;
  Alcotest.(check int) "executions counter" 1 (Oracle.executions oracle);
  Alcotest.(check int) "two queries" 2 (Oracle.queries oracle);
  Alcotest.(check int) "one memo hit" 1 (Oracle.memo_hits oracle);
  Oracle.reset oracle;
  Alcotest.(check int) "reset clears queries" 0 (Oracle.queries oracle);
  Alcotest.(check bool) "runs again after reset" true (Oracle.run oracle input);
  Alcotest.(check int) "re-executed after reset" 2 !executions

let transient_filter = function Lbr_decompiler.Tool.Transient_failure _ -> true | _ -> false

let test_oracle_retry_recovers () =
  (* Every input fails transiently on its first attempt, then succeeds. *)
  let attempts = Hashtbl.create 16 in
  let config =
    { Oracle.default_config with retries = 2; transient = transient_filter }
  in
  let oracle =
    Oracle.make ~config ~name:"flaky" (fun a ->
        let k = try Hashtbl.find attempts a with Not_found -> 0 in
        Hashtbl.replace attempts a (k + 1);
        if k = 0 then raise (Lbr_decompiler.Tool.Transient_failure "first attempt fails");
        Assignment.cardinal a mod 2 = 0)
  in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "input %d recovered" n)
        (Assignment.cardinal (assignment_of_int n) mod 2 = 0)
        (Oracle.run oracle (assignment_of_int n)))
    [ 1; 2; 3 ];
  Alcotest.(check int) "one retry per input" 3 (Oracle.retries_used oracle);
  Alcotest.(check int) "two attempts per input" 6 (Oracle.executions oracle);
  Alcotest.(check int) "no crashes classified" 0 (Oracle.crashes oracle)

let crashing_box _ = raise (Lbr_decompiler.Tool.Tool_crash "simulated segfault")

let test_oracle_crash_policy_fails () =
  let config = { Oracle.default_config with crash_policy = Oracle.Crash_fails } in
  let oracle = Oracle.make ~config ~name:"crashy" crashing_box in
  Alcotest.(check bool) "crash maps to false" false (Oracle.run oracle (assignment_of_int 1));
  Alcotest.(check int) "crash counted" 1 (Oracle.crashes oracle);
  (* the mapped outcome is memoized: no second execution *)
  Alcotest.(check bool) "memoized" false (Oracle.run oracle (assignment_of_int 1));
  Alcotest.(check int) "single execution" 1 (Oracle.executions oracle)

let test_oracle_crash_policy_passes () =
  let config = { Oracle.default_config with crash_policy = Oracle.Crash_passes } in
  let oracle = Oracle.make ~config ~name:"crashy" crashing_box in
  Alcotest.(check bool) "crash maps to true" true (Oracle.run oracle (assignment_of_int 1))

let test_oracle_crash_policy_raises () =
  let oracle = Oracle.make ~name:"crashy" crashing_box in
  (match Oracle.run oracle (assignment_of_int 1) with
  | (_ : bool) -> Alcotest.fail "expected Oracle.Crashed"
  | exception Oracle.Crashed { oracle = name; attempts; reason } ->
      Alcotest.(check string) "oracle name" "crashy" name;
      Alcotest.(check int) "one attempt (crashes are not retried)" 1 attempts;
      Alcotest.(check bool) "reason mentions the crash" true
        (String.length reason > 0));
  Alcotest.(check int) "crash counted" 1 (Oracle.crashes oracle)

let test_oracle_transient_exhaustion_classified () =
  (* A failure that stays transient runs out of retries and is then
     classified by the crash policy like any other crash. *)
  let config =
    {
      Oracle.default_config with
      retries = 2;
      transient = transient_filter;
      crash_policy = Oracle.Crash_fails;
    }
  in
  let oracle =
    Oracle.make ~config ~name:"always-flaky" (fun _ ->
        raise (Lbr_decompiler.Tool.Transient_failure "still failing"))
  in
  Alcotest.(check bool) "exhaustion maps to false" false
    (Oracle.run oracle (assignment_of_int 1));
  Alcotest.(check int) "three attempts" 3 (Oracle.executions oracle);
  Alcotest.(check int) "two retries" 2 (Oracle.retries_used oracle);
  Alcotest.(check int) "one crash classified" 1 (Oracle.crashes oracle)

let test_oracle_advisory_timeout () =
  (* A negative budget makes every attempt "too slow" without sleeping:
     the timeout is advisory (measured after the fact), so this exercises
     exactly the production path. *)
  let config =
    {
      Oracle.default_config with
      timeout = Some (-1.0);
      retries = 1;
      crash_policy = Oracle.Crash_fails;
    }
  in
  let oracle = Oracle.make ~config ~name:"slow" (fun _ -> true) in
  Alcotest.(check bool) "timeout maps to false" false (Oracle.run oracle (assignment_of_int 1));
  Alcotest.(check int) "both attempts timed out" 2 (Oracle.timeouts oracle);
  Alcotest.(check int) "one retry" 1 (Oracle.retries_used oracle);
  Alcotest.(check int) "classified as crash" 1 (Oracle.crashes oracle)

let test_oracle_of_predicate_layers () =
  let predicate =
    Lbr.Predicate.make ~name:"layered" (fun a -> Assignment.cardinal a mod 2 = 0)
  in
  let oracle = Oracle.of_predicate predicate in
  Alcotest.(check string) "name inherited" "layered" (Oracle.name oracle);
  Alcotest.(check bool) "runs through" false (Oracle.run oracle (assignment_of_int 3));
  Alcotest.(check bool) "memo hit on oracle layer" false
    (Oracle.run oracle (assignment_of_int 3));
  Alcotest.(check int) "predicate saw one execution" 1 (Lbr.Predicate.runs predicate)

(* In-flight dedup: concurrent queries for one uncached input must cost a
   single black-box execution.  The leader's black box blocks until the
   test releases it, so the other queries demonstrably arrive while it is
   still running; the counters are the same even if a straggler arrives
   after the leader settled (it then scores a plain memo hit), so the
   assertions are scheduling-independent. *)
let test_oracle_inflight_dedup () =
  let executing = Atomic.make false and release = Atomic.make false in
  let oracle =
    Oracle.make ~name:"dedup" (fun _ ->
        Atomic.set executing true;
        while not (Atomic.get release) do
          Unix.sleepf 0.001
        done;
        true)
  in
  let input = Assignment.of_list [ 1; 2; 3 ] in
  Pool.with_pool ~jobs:4 (fun pool ->
      let futures =
        List.init 4 (fun _ -> Pool.submit pool (fun () -> Oracle.run oracle input))
      in
      while not (Atomic.get executing) do
        Unix.sleepf 0.001
      done;
      (* let the other three queries pile up behind the leader *)
      Unix.sleepf 0.02;
      Atomic.set release true;
      List.iter (fun f -> Alcotest.(check bool) "verdict" true (Pool.await f)) futures);
  Alcotest.(check int) "one black-box execution" 1 (Oracle.executions oracle);
  Alcotest.(check int) "four queries" 4 (Oracle.queries oracle);
  Alcotest.(check int) "three memo hits" 3 (Oracle.memo_hits oracle)

(* A leader that raises (Crash_raises memoizes nothing) must not strand
   its waiters: one of them takes over as the new leader and executes. *)
let test_oracle_inflight_leader_crash_takeover () =
  let calls = Atomic.make 0 in
  let executing = Atomic.make false and release = Atomic.make false in
  let oracle =
    Oracle.make ~name:"takeover" (fun _ ->
        if Atomic.fetch_and_add calls 1 = 0 then begin
          Atomic.set executing true;
          while not (Atomic.get release) do
            Unix.sleepf 0.001
          done;
          raise (Lbr_decompiler.Tool.Tool_crash "leader dies")
        end
        else true)
  in
  let input = assignment_of_int 7 in
  let outcomes =
    Pool.with_pool ~jobs:2 (fun pool ->
        let futures =
          List.init 2 (fun _ ->
              Pool.submit pool (fun () ->
                  match Oracle.run oracle input with
                  | b -> `Ok b
                  | exception Oracle.Crashed _ -> `Crashed))
        in
        while not (Atomic.get executing) do
          Unix.sleepf 0.001
        done;
        Unix.sleepf 0.02;
        Atomic.set release true;
        List.map Pool.await futures)
  in
  Alcotest.(check int) "two executions (the takeover reruns)" 2 (Oracle.executions oracle);
  Alcotest.(check int) "one crash" 1 (Oracle.crashes oracle);
  Alcotest.(check bool) "one caller saw the crash" true (List.mem `Crashed outcomes);
  Alcotest.(check bool) "one caller got the verdict" true (List.mem (`Ok true) outcomes);
  Alcotest.(check bool) "takeover memoized the verdict" true (Oracle.run oracle input)

(* ------------------------------------------------------------------ *)
(* Fault injection through the simulated decompiler                   *)

let small_pool = lazy (Lbr_workload.Generator.generate ~seed:5 (Lbr_workload.Generator.njr_profile ~classes:20))

let test_faulty_tool_oracle_recovers () =
  let pool = Lazy.force small_pool in
  let tool = Lbr_decompiler.Tool.cfr_sim in
  let clean_errors = Lbr_decompiler.Tool.errors tool pool in
  let faults = Lbr_decompiler.Tool.Faults.make ~flaky_rate:0.3 ~seed:11 () in
  let faulty = Lbr_decompiler.Tool.with_faults faults tool in
  let config =
    {
      Oracle.default_config with
      retries = 5;
      transient = transient_filter;
      crash_policy = Oracle.Crash_raises;
    }
  in
  (* The oracle's black box compares a (here: fixed) candidate's errors
     against the clean baseline; flaky runs raise and must be retried. *)
  let oracle =
    Oracle.make ~config ~name:"faulty-cfr" (fun _ ->
        Lbr_decompiler.Tool.errors faulty pool = clean_errors)
  in
  (* distinct inputs so the memo does not absorb the repetitions *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "call %d recovered the clean outcome" n)
        true
        (Oracle.run oracle (assignment_of_int n)))
    (List.init 20 Fun.id);
  Alcotest.(check bool) "the schedule did inject flakiness" true
    (Lbr_decompiler.Tool.Faults.injected_flaky faults > 0);
  Alcotest.(check bool) "retries were exercised" true (Oracle.retries_used oracle > 0);
  Alcotest.(check int) "every transient failure was recovered" 0 (Oracle.crashes oracle)

let test_faulty_tool_crash_policies () =
  let pool = Lazy.force small_pool in
  let run_with policy =
    let faults = Lbr_decompiler.Tool.Faults.make ~crash_rate:1.0 ~seed:3 () in
    let faulty = Lbr_decompiler.Tool.with_faults faults Lbr_decompiler.Tool.procyon_sim in
    let config = { Oracle.default_config with crash_policy = policy } in
    let oracle =
      Oracle.make ~config ~name:"crashing-procyon" (fun _ ->
          Lbr_decompiler.Tool.errors faulty pool <> [])
    in
    Oracle.run oracle (assignment_of_int 0)
  in
  Alcotest.(check bool) "Crash_fails" false (run_with Oracle.Crash_fails);
  Alcotest.(check bool) "Crash_passes" true (run_with Oracle.Crash_passes);
  match run_with Oracle.Crash_raises with
  | (_ : bool) -> Alcotest.fail "expected Oracle.Crashed"
  | exception Oracle.Crashed _ -> ()

let test_faults_deterministic_schedule () =
  let schedule seed =
    let faults = Lbr_decompiler.Tool.Faults.make ~flaky_rate:0.4 ~crash_rate:0.2 ~seed () in
    let tool = Lbr_decompiler.Tool.with_faults faults Lbr_decompiler.Tool.cfr_sim in
    let pool = Lazy.force small_pool in
    List.init 30 (fun _ ->
        match Lbr_decompiler.Tool.errors tool pool with
        | (_ : string list) -> 'c'
        | exception Lbr_decompiler.Tool.Transient_failure _ -> 'f'
        | exception Lbr_decompiler.Tool.Tool_crash _ -> 'x')
  in
  Alcotest.(check (list char)) "same seed, same schedule" (schedule 99) (schedule 99);
  Alcotest.(check bool) "different seeds differ" true (schedule 99 <> schedule 100)

(* ------------------------------------------------------------------ *)
(* Determinism of parallel corpus runs                                *)

let check_outcomes_equal_modulo_wall ~what expected actual =
  Alcotest.(check int) (what ^ ": same length") (List.length expected) (List.length actual);
  List.iter2
    (fun (a : Lbr_harness.Experiment.outcome) (b : Lbr_harness.Experiment.outcome) ->
      let ctx field = Printf.sprintf "%s: %s/%s" what a.instance_id field in
      Alcotest.(check string) (ctx "instance_id") a.instance_id b.instance_id;
      Alcotest.(check bool) (ctx "ok") a.ok b.ok;
      Alcotest.(check (float 1e-9)) (ctx "sim_time") a.sim_time b.sim_time;
      Alcotest.(check int) (ctx "predicate_runs") a.predicate_runs b.predicate_runs;
      Alcotest.(check int) (ctx "classes0") a.classes0 b.classes0;
      Alcotest.(check int) (ctx "classes1") a.classes1 b.classes1;
      Alcotest.(check int) (ctx "bytes0") a.bytes0 b.bytes0;
      Alcotest.(check int) (ctx "bytes1") a.bytes1 b.bytes1;
      Alcotest.(check int) (ctx "items0") a.items0 b.items0;
      Alcotest.(check int) (ctx "items1") a.items1 b.items1;
      Alcotest.(check int) (ctx "lines0") a.lines0 b.lines0;
      Alcotest.(check int) (ctx "lines1") a.lines1 b.lines1;
      Alcotest.(check int) (ctx "timeline length") (List.length a.timeline)
        (List.length b.timeline);
      List.iter2
        (fun (t1, c1, b1) (t2, c2, b2) ->
          Alcotest.(check (float 1e-9)) (ctx "timeline time") t1 t2;
          Alcotest.(check int) (ctx "timeline classes") c1 c2;
          Alcotest.(check int) (ctx "timeline bytes") b1 b2)
        a.timeline b.timeline)
    expected actual

let ten_instances =
  lazy
    (let benchmarks = Lbr_harness.Corpus.build ~seed:2025 ~programs:8 ~mean_classes:22 in
     let instances = Lbr_harness.Corpus.instances benchmarks in
     Alcotest.(check bool) "corpus yields at least 10 instances" true
       (List.length instances >= 10);
     List.filteri (fun i _ -> i < 10) instances)

let test_run_corpus_parallel_deterministic () =
  let instances = Lazy.force ten_instances in
  let sequential = Lbr_harness.Experiment.run_corpus ~jobs:1 Lbr_harness.Experiment.Gbr instances in
  let parallel = Lbr_harness.Experiment.run_corpus ~jobs:4 Lbr_harness.Experiment.Gbr instances in
  check_outcomes_equal_modulo_wall ~what:"gbr jobs=4 vs jobs=1" sequential parallel

(* Tracing must be observation only: the same corpus reduced with the
   recorder on yields outcome-identical results, sequentially and on a
   domain pool — while actually capturing gbr.iteration spans. *)
let test_run_corpus_tracing_is_transparent () =
  let instances = Lazy.force ten_instances in
  let traced jobs =
    Lbr_obs.Trace.start ();
    let outcomes =
      Fun.protect
        ~finally:(fun () -> Lbr_obs.Trace.stop ())
        (fun () -> Lbr_harness.Experiment.run_corpus ~jobs Lbr_harness.Experiment.Gbr instances)
    in
    let iterations =
      List.length
        (List.filter
           (fun (e : Lbr_obs.Trace.event) -> e.ev_name = "gbr.iteration")
           (Lbr_obs.Trace.events ()))
    in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d captured gbr.iteration spans" jobs)
      true (iterations > 0);
    outcomes
  in
  let plain1 = Lbr_harness.Experiment.run_corpus ~jobs:1 Lbr_harness.Experiment.Gbr instances in
  check_outcomes_equal_modulo_wall ~what:"traced jobs=1 vs plain jobs=1" plain1 (traced 1);
  check_outcomes_equal_modulo_wall ~what:"traced jobs=4 vs plain jobs=1" plain1 (traced 4)

let test_run_corpus_jobs1_matches_run () =
  let instances = Lazy.force ten_instances in
  let direct = List.map (Lbr_harness.Experiment.run Lbr_harness.Experiment.Jreduce) instances in
  let corpus =
    Lbr_harness.Experiment.run_corpus ~jobs:1 Lbr_harness.Experiment.Jreduce instances
  in
  check_outcomes_equal_modulo_wall ~what:"jobs=1 vs direct map" direct corpus

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "map_list preserves order" `Quick test_map_list_ordered;
          Alcotest.test_case "single worker" `Quick test_map_list_single_worker;
          Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
          Alcotest.test_case "shutdown semantics" `Quick test_submit_after_shutdown_raises;
          Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
          Alcotest.test_case "concurrent updates" `Quick test_parallel_counter_updates;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "memo and counters" `Quick test_oracle_memo_and_counters;
          Alcotest.test_case "retry recovers transients" `Quick test_oracle_retry_recovers;
          Alcotest.test_case "crash policy: fail" `Quick test_oracle_crash_policy_fails;
          Alcotest.test_case "crash policy: pass" `Quick test_oracle_crash_policy_passes;
          Alcotest.test_case "crash policy: raise" `Quick test_oracle_crash_policy_raises;
          Alcotest.test_case "transient exhaustion" `Quick
            test_oracle_transient_exhaustion_classified;
          Alcotest.test_case "advisory timeout" `Quick test_oracle_advisory_timeout;
          Alcotest.test_case "layers over Predicate" `Quick test_oracle_of_predicate_layers;
          Alcotest.test_case "in-flight dedup" `Quick test_oracle_inflight_dedup;
          Alcotest.test_case "leader crash takeover" `Quick
            test_oracle_inflight_leader_crash_takeover;
        ] );
      ( "faults",
        [
          Alcotest.test_case "oracle recovers flaky tool" `Quick test_faulty_tool_oracle_recovers;
          Alcotest.test_case "crash policies end to end" `Quick test_faulty_tool_crash_policies;
          Alcotest.test_case "seeded schedule is deterministic" `Quick
            test_faults_deterministic_schedule;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=4 equals jobs=1 (gbr, 10 instances)" `Slow
            test_run_corpus_parallel_deterministic;
          Alcotest.test_case "jobs=1 equals direct run (jreduce)" `Slow
            test_run_corpus_jobs1_matches_run;
          Alcotest.test_case "tracing on equals tracing off (jobs=1 and 4)" `Slow
            test_run_corpus_tracing_is_transparent;
        ] );
    ]
