(* Tests for the propositional-logic substrate: clauses, CNF conditioning,
   the formula->CNF translation, and exact model counting. *)

open Lbr_logic

let mkpool n =
  let pool = Var.Pool.create () in
  let vars = List.init n (fun i -> Var.Pool.fresh pool (Printf.sprintf "v%d" i)) in
  (pool, Array.of_list vars)

(* ------------------------------------------------------------------ *)
(* Clause                                                              *)

let test_clause_tautology () =
  Alcotest.(check bool)
    "x in both sides is a tautology" true
    (Clause.make ~neg:[ 1 ] ~pos:[ 1; 2 ] = None);
  Alcotest.(check bool) "disjoint sides ok" true (Clause.make ~neg:[ 1 ] ~pos:[ 2 ] <> None)

let test_clause_dedup () =
  let c = Clause.make_exn ~neg:[ 3; 1; 3 ] ~pos:[ 2; 2 ] in
  Alcotest.(check int) "literals deduplicated" 3 (Clause.num_literals c)

let test_clause_kinds () =
  let check name expected c = Alcotest.(check bool) name true (Clause.kind c = expected) in
  check "unit_pos" Clause.Unit_pos (Clause.unit_pos 1);
  check "edge" Clause.Edge (Clause.edge 1 2);
  check "unit_neg" Clause.Unit_neg (Clause.make_exn ~neg:[ 1 ] ~pos:[]);
  check "horn" Clause.Horn (Clause.make_exn ~neg:[ 1; 2 ] ~pos:[ 3 ]);
  check "general" Clause.General (Clause.make_exn ~neg:[ 1 ] ~pos:[ 2; 3 ]);
  Alcotest.(check bool) "edge is graph" true (Clause.is_graph (Clause.edge 1 2));
  Alcotest.(check bool) "horn is not graph" false
    (Clause.is_graph (Clause.make_exn ~neg:[ 1; 2 ] ~pos:[ 3 ]))

let test_clause_holds () =
  let c = Clause.make_exn ~neg:[ 0; 1 ] ~pos:[ 2 ] in
  let holds set = Clause.holds c ~true_set:(fun v -> List.mem v set) in
  Alcotest.(check bool) "premise broken" true (holds [ 0 ]);
  Alcotest.(check bool) "head true" true (holds [ 0; 1; 2 ]);
  Alcotest.(check bool) "violated" false (holds [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* CNF                                                                 *)

let test_cnf_conditioning () =
  (* (a => b) /\ (b => c), condition a=1: (b) after propagating? No — the
     conditioning only substitutes a; b => c stays. *)
  let cnf = Cnf.make [ Clause.edge 0 1; Clause.edge 1 2 ] in
  let conditioned = Cnf.condition_true cnf (Assignment.singleton 0) in
  Alcotest.(check int) "two clauses remain, one now unit" 2 (Cnf.num_clauses conditioned);
  Alcotest.(check bool) "satisfied by {1,2}" true
    (Cnf.holds conditioned (Assignment.of_list [ 1; 2 ]));
  Alcotest.(check bool) "not satisfied by {}" false (Cnf.holds conditioned Assignment.empty)

let test_cnf_condition_false_unsat () =
  let cnf = Cnf.make [ Clause.unit_pos 0 ] in
  let conditioned = Cnf.condition_false cnf (Assignment.singleton 0) in
  Alcotest.(check bool) "forcing required var false is unsat" true (Cnf.is_unsat conditioned)

let test_cnf_restrict () =
  (* a => b|c restricted to {a, b}: a => b. *)
  let cnf = Cnf.make [ Clause.make_exn ~neg:[ 0 ] ~pos:[ 1; 2 ] ] in
  let r = Cnf.restrict cnf ~keep:(Assignment.of_list [ 0; 1 ]) in
  Alcotest.(check bool) "{0,1} satisfies" true (Cnf.holds r (Assignment.of_list [ 0; 1 ]));
  Alcotest.(check bool) "{0} does not" false (Cnf.holds r (Assignment.singleton 0));
  Alcotest.(check bool) "2 no longer occurs" false (Assignment.mem 2 (Cnf.vars r))

let test_cnf_stats () =
  let cnf =
    Cnf.make
      [
        Clause.unit_pos 0;
        Clause.edge 0 1;
        Clause.edge 1 2;
        Clause.make_exn ~neg:[ 0; 1 ] ~pos:[ 2 ];
        Clause.make_exn ~neg:[ 0 ] ~pos:[ 1; 2 ];
      ]
  in
  let s = Cnf.stats cnf in
  Alcotest.(check int) "total" 5 s.total;
  Alcotest.(check int) "edges" 2 s.edges;
  Alcotest.(check int) "unit pos" 1 s.unit_pos;
  Alcotest.(check int) "horn" 1 s.horn;
  Alcotest.(check int) "general" 1 s.general;
  Alcotest.(check (float 1e-9)) "graph fraction" 0.6 (Cnf.graph_fraction cnf)

(* ------------------------------------------------------------------ *)
(* Formula -> CNF                                                      *)

let formula_gen n =
  let open QCheck.Gen in
  let var = map (fun i -> Formula.Var i) (int_bound (n - 1)) in
  sized_size (int_bound 5) @@ fix (fun self depth ->
      if depth = 0 then oneof [ var; return Formula.True; return Formula.False ]
      else
        frequency
          [
            (3, var);
            (1, map (fun f -> Formula.Not f) (self (depth - 1)));
            (2, map2 (fun a b -> Formula.And [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Formula.Or [ a; b ]) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Formula.Implies (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.Iff (a, b)) (self (depth - 1)) (self (depth - 1)));
          ])

let assignment_of_mask n mask =
  List.init n (fun i -> i) |> List.filter (fun i -> mask land (1 lsl i) <> 0) |> Assignment.of_list

let random_cnf_gen_fwd n =
  let open QCheck.Gen in
  let lit = pair (int_bound (n - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  map
    (fun clauses ->
      clauses
      |> List.filter_map (fun lits ->
             let neg = List.filter_map (fun (v, s) -> if s then None else Some v) lits in
             let pos = List.filter_map (fun (v, s) -> if s then Some v else None) lits in
             Clause.make ~neg ~pos)
      |> Cnf.make)
    (list_size (int_range 0 8) clause)

let prop_to_cnf_preserves_semantics =
  QCheck.Test.make ~count:300 ~name:"Formula.to_cnf preserves semantics"
    (QCheck.make (formula_gen 5))
    (fun f ->
      let cnf = Formula.to_cnf f in
      let ok = ref true in
      for mask = 0 to 31 do
        let m = assignment_of_mask 5 mask in
        if Formula.eval f m <> Cnf.holds cnf m then ok := false
      done;
      !ok)

(* Conditioning algebra: (R | X=1) is satisfied by M iff R is satisfied by
   M ∪ X; (R | X=0) by M \ X; restrict agrees with condition_false on the
   complement. *)
let prop_conditioning_algebra =
  QCheck.Test.make ~count:300 ~name:"conditioning algebra"
    (QCheck.make
       QCheck.Gen.(
         triple (random_cnf_gen_fwd 6)
           (list_size (int_bound 3) (int_bound 5))
           (list_size (int_bound 3) (int_bound 5))))
    (fun (cnf, xs, ms) ->
      let x = Assignment.of_list xs and m = Assignment.of_list ms in
      let cond_true = Cnf.condition_true cnf x in
      let cond_false = Cnf.condition_false cnf x in
      let ok_true = Cnf.holds cond_true (Assignment.diff m x) = Cnf.holds cnf (Assignment.union m x) in
      let ok_false = Cnf.holds cond_false (Assignment.diff m x) = Cnf.holds cnf (Assignment.diff m x) in
      let universe = Assignment.of_list (List.init 6 Fun.id) in
      let keep = Assignment.diff universe x in
      let ok_restrict =
        Cnf.holds (Cnf.restrict cnf ~keep) (Assignment.diff m x)
        = Cnf.holds cnf (Assignment.diff m x)
      in
      ok_true && ok_false && ok_restrict)

(* ------------------------------------------------------------------ *)
(* Model counting                                                      *)

let random_cnf_gen n =
  let open QCheck.Gen in
  let lit = pair (int_bound (n - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  map
    (fun clauses ->
      clauses
      |> List.filter_map (fun lits ->
             let neg = List.filter_map (fun (v, s) -> if s then None else Some v) lits in
             let pos = List.filter_map (fun (v, s) -> if s then Some v else None) lits in
             Clause.make ~neg ~pos)
      |> Cnf.make)
    (list_size (int_range 0 8) clause)

let prop_count_matches_naive =
  QCheck.Test.make ~count:200 ~name:"Model_count.count = count_naive"
    (QCheck.make (random_cnf_gen 8))
    (fun cnf ->
      let over = List.init 8 (fun i -> i) in
      Model_count.count cnf ~over = Model_count.count_naive cnf ~over)

let test_count_free_vars () =
  let pool, v = mkpool 4 in
  ignore pool;
  let cnf = Cnf.make [ Clause.edge v.(0) v.(1) ] in
  (* a=>b over 4 vars: 3 choices of (a,b) x 4 free combos = 12. *)
  Alcotest.(check int) "edge over 4 vars" 12
    (Model_count.count cnf ~over:(Array.to_list v))

let test_count_unsat () =
  let cnf = Cnf.make [ Clause.unit_pos 0; Clause.make_exn ~neg:[ 0 ] ~pos:[] ] in
  Alcotest.(check int) "contradiction counts zero" 0 (Model_count.count cnf ~over:[ 0; 1 ])

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* DIMACS                                                              *)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~count:300 ~name:"DIMACS round-trip preserves the model set"
    (QCheck.make (random_cnf_gen_fwd 6))
    (fun cnf ->
      match Dimacs.of_string (Dimacs.to_string cnf) with
      | Error _ -> false
      | Ok cnf' ->
          let ok = ref true in
          for mask = 0 to 63 do
            let m = assignment_of_mask 6 mask in
            if Cnf.holds cnf m <> Cnf.holds cnf' m then ok := false
          done;
          (Cnf.is_unsat cnf = Cnf.is_unsat cnf') && !ok)

let test_dimacs_format () =
  let cnf = Cnf.make [ Clause.edge 0 1; Clause.unit_pos 2 ] in
  let text = Dimacs.to_string cnf in
  Alcotest.(check bool) "header present" true
    (String.length text > 10 && String.sub text 0 9 = "p cnf 3 2");
  (* example model from the paper's pipeline is exportable *)
  let model = Lbr_fji.Example.model () in
  match Dimacs.of_string (Dimacs.to_string model.constraints) with
  | Error m -> Alcotest.failf "re-parse failed: %s" m
  | Ok cnf' ->
      let over = List.init 20 Fun.id in
      Alcotest.(check int) "same model count through DIMACS" 543
        (Model_count.count cnf' ~over)

let test_dimacs_rejects_garbage () =
  (match Dimacs.of_string "hello" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (match Dimacs.of_string "p cnf 2 1\n1 -2" with
  | Ok _ -> Alcotest.fail "accepted unterminated clause"
  | Error _ -> ());
  match Dimacs.of_string "p cnf 2 1\n1 x 0" with
  | Ok _ -> Alcotest.fail "accepted bad literal"
  | Error _ -> ()

let test_dimacs_comments_and_unsat () =
  (match Dimacs.of_string "c a comment\np cnf 2 1\nc another\n1 2 0\n" with
  | Ok cnf -> Alcotest.(check int) "one clause" 1 (Cnf.num_clauses cnf)
  | Error m -> Alcotest.failf "comments rejected: %s" m);
  let unsat = Cnf.make [ Clause.make_exn ~neg:[] ~pos:[] ] in
  match Dimacs.of_string (Dimacs.to_string unsat) with
  | Ok cnf -> Alcotest.(check bool) "unsat round-trips" true (Cnf.is_unsat cnf)
  | Error m -> Alcotest.failf "unsat round-trip failed: %s" m

(* ------------------------------------------------------------------ *)
(* Packed CNF                                                          *)

let prop_packed_solve_matches_enumeration =
  QCheck.Test.make ~count:300 ~name:"Packed.solve under assumptions = enumeration"
    (QCheck.make
       QCheck.Gen.(
         triple (random_cnf_gen 6)
           (list_size (int_bound 3) (int_bound 5))
           (list_size (int_bound 3) (int_bound 5))))
    (fun (cnf, assume_true, assume_false) ->
      let p = Cnf.Packed.make cnf in
      let nv = Cnf.Packed.num_vars p in
      (* [solve] documents that assumptions on vars >= num_vars are ignored. *)
      let at = List.filter (fun v -> v < nv) assume_true in
      let af = List.filter (fun v -> v < nv) assume_false in
      let admissible m =
        Cnf.holds cnf m
        && List.for_all (fun v -> Assignment.mem v m) at
        && List.for_all (fun v -> not (Assignment.mem v m)) af
      in
      let exists_model = ref false in
      for mask = 0 to 63 do
        if admissible (assignment_of_mask 6 mask) then exists_model := true
      done;
      let first = Cnf.Packed.solve p ~assume_true ~assume_false in
      (* A second identical query checks that [solve] restored its state. *)
      let second = Cnf.Packed.solve p ~assume_true ~assume_false in
      Cnf.Packed.mark p = 0
      && Option.equal Assignment.equal first second
      &&
      match first with
      | Some m -> !exists_model && admissible m
      | None -> not !exists_model)

let prop_packed_condition_equivalence =
  (* assign + propagate on the packed state answers the same satisfiability
     question as rebuilding the conditioned immutable formula. *)
  QCheck.Test.make ~count:300 ~name:"Packed assumptions = Cnf.condition_*"
    (QCheck.make QCheck.Gen.(triple (random_cnf_gen 6) (int_bound 5) (int_bound 5)))
    (fun (cnf, vt, vf) ->
      QCheck.assume (vt <> vf);
      let p = Cnf.Packed.make cnf in
      let packed = Cnf.Packed.solve p ~assume_true:[ vt ] ~assume_false:[ vf ] in
      let conditioned =
        Cnf.condition_false (Cnf.condition_true cnf (Assignment.singleton vt))
          (Assignment.singleton vf)
      in
      let rebuilt =
        Cnf.Packed.solve (Cnf.Packed.make conditioned) ~assume_true:[] ~assume_false:[]
      in
      Option.is_some packed = Option.is_some rebuilt)

let test_packed_counters () =
  let cnf = Cnf.make [ Clause.edge 0 1; Clause.edge 1 2; Clause.unit_pos 3 ] in
  let p = Cnf.Packed.make cnf in
  Alcotest.(check int) "num_clauses" 3 (Cnf.Packed.num_clauses p);
  Alcotest.(check int) "all active" 3 (Cnf.Packed.active_count p);
  let m = Cnf.Packed.mark p in
  Cnf.Packed.assign p 1 true;
  Alcotest.(check int) "0=>1 satisfied" 2 (Cnf.Packed.active_count p);
  Alcotest.(check bool) "1=>2 still active" true (Cnf.Packed.clause_is_active p 1);
  Alcotest.(check (list int)) "unassigned of 1=>2" [ 2 ] (Cnf.Packed.clause_unassigned_vars p 1);
  Alcotest.(check bool) "unit 2 propagates" true (Cnf.Packed.propagate p);
  Alcotest.(check bool) "2 forced true" true (Cnf.Packed.value p 2 = `True);
  Cnf.Packed.undo_to p m;
  Alcotest.(check int) "undo restores active" 3 (Cnf.Packed.active_count p);
  Alcotest.(check bool) "undo restores value" true (Cnf.Packed.value p 1 = `Unassigned)

let test_packed_unsat_formula () =
  let unsat = Cnf.make [ Clause.make_exn ~neg:[] ~pos:[] ] in
  let p = Cnf.Packed.make unsat in
  Alcotest.(check bool) "first solve: unsat" true
    (Cnf.Packed.solve p ~assume_true:[] ~assume_false:[] = None);
  (* the unsat flag must survive the state restoration of a solve *)
  Alcotest.(check bool) "second solve: still unsat" true
    (Cnf.Packed.solve p ~assume_true:[] ~assume_false:[] = None)

let test_cnf_num_clauses_cached () =
  let a = Cnf.make [ Clause.edge 0 1; Clause.unit_pos 2 ] in
  let b = Cnf.add_clause a (Clause.edge 2 3) in
  let c = Cnf.conj a b in
  List.iter
    (fun (name, cnf) ->
      Alcotest.(check int) name (List.length (Cnf.clauses cnf)) (Cnf.num_clauses cnf))
    [ ("make", a); ("add_clause", b); ("conj", c) ]

(* ------------------------------------------------------------------ *)
(* Assignment vs Set.Make(Int)                                         *)

module ISet = Set.Make (Int)

let prop_assignment_matches_set =
  QCheck.Test.make ~count:500 ~name:"Assignment ops mirror Set.Make(Int)"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_bound 40) (int_bound 200))
           (list_size (int_bound 40) (int_bound 200))))
    (fun (xs, ys) ->
      let a = Assignment.of_list xs and b = Assignment.of_list ys in
      let sa = ISet.of_list xs and sb = ISet.of_list ys in
      let agrees s t = List.equal Int.equal (ISet.elements s) (Assignment.to_list t) in
      let sign c = compare c 0 in
      agrees sa a && agrees sb b
      && agrees (ISet.union sa sb) (Assignment.union a b)
      && agrees (ISet.inter sa sb) (Assignment.inter a b)
      && agrees (ISet.diff sa sb) (Assignment.diff a b)
      && ISet.subset sa sb = Assignment.subset a b
      && ISet.disjoint sa sb = Assignment.disjoint a b
      && ISet.equal sa sb = Assignment.equal a b
      && sign (ISet.compare sa sb) = sign (Assignment.compare a b)
      && ISet.cardinal sa = Assignment.cardinal a
      && ISet.fold ( + ) sa 0 = Assignment.fold ( + ) a 0
      && List.for_all (fun v -> ISet.mem v sa = Assignment.mem v a) (List.init 210 Fun.id)
      && agrees (ISet.add 63 sa) (Assignment.add 63 a)
      && agrees (ISet.remove 63 sa) (Assignment.remove 63 a)
      && agrees (ISet.filter (fun v -> v mod 3 = 0) sa) (Assignment.filter (fun v -> v mod 3 = 0) a))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_logic"
    [
      ( "clause",
        [
          Alcotest.test_case "tautology rejected" `Quick test_clause_tautology;
          Alcotest.test_case "dedup" `Quick test_clause_dedup;
          Alcotest.test_case "kinds" `Quick test_clause_kinds;
          Alcotest.test_case "holds" `Quick test_clause_holds;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "conditioning true" `Quick test_cnf_conditioning;
          Alcotest.test_case "conditioning false to unsat" `Quick test_cnf_condition_false_unsat;
          Alcotest.test_case "restrict" `Quick test_cnf_restrict;
          Alcotest.test_case "stats" `Quick test_cnf_stats;
        ] );
      qsuite "formula" [ prop_to_cnf_preserves_semantics ];
      ( "model-count",
        [
          Alcotest.test_case "free variables multiply" `Quick test_count_free_vars;
          Alcotest.test_case "unsat is zero" `Quick test_count_unsat;
        ] );
      qsuite "model-count-prop" [ prop_count_matches_naive ];
      qsuite "conditioning-prop" [ prop_conditioning_algebra ];
      ( "dimacs",
        [
          Alcotest.test_case "format + example export" `Quick test_dimacs_format;
          Alcotest.test_case "rejects garbage" `Quick test_dimacs_rejects_garbage;
          Alcotest.test_case "comments and unsat" `Quick test_dimacs_comments_and_unsat;
        ] );
      qsuite "dimacs-prop" [ prop_dimacs_roundtrip ];
      ( "packed",
        [
          Alcotest.test_case "counters and undo" `Quick test_packed_counters;
          Alcotest.test_case "unsat survives restore" `Quick test_packed_unsat_formula;
          Alcotest.test_case "num_clauses cached" `Quick test_cnf_num_clauses_cached;
        ] );
      qsuite "packed-prop"
        [ prop_packed_solve_matches_enumeration; prop_packed_condition_equivalence ];
      qsuite "assignment-prop" [ prop_assignment_matches_set ];
    ]
